#!/usr/bin/env python3
"""Meta-telescope information as a service (paper Section 9).

An IXP operator runs the inference on its own flow data and produces
the two data products of Section 5:

* the list of meta-telescope prefixes it can monitor, and
* per-member reports: which members send traffic toward inferred dark
  space (likely scanners, misconfigurations or infected hosts), so the
  operator can notify them.

Run:  python examples/ixp_operator_report.py [IXP-CODE]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro.analysis.ports import top_ports
from repro.core import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world


def main(ixp_code: str = "CE1") -> None:
    world = small_world()
    observatory = small_observatory()
    if ixp_code not in {ixp.code for ixp in world.fabric.ixps}:
        raise SystemExit(f"unknown IXP {ixp_code!r}")

    print(f"== meta-telescope service report for {ixp_code} ==")
    views = observatory.ixp_views(ixp_code, num_days=world.config.num_days)
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    result = telescope.infer(views, use_spoofing_tolerance=True)
    print(
        f"product (a): {result.num_prefixes():,} meta-telescope /24 prefixes "
        f"inferred from {ixp_code}'s own flow data (7 days)"
    )

    captured = telescope.captured_traffic(views, result)
    print(
        f"product (b): {len(captured):,} flows / "
        f"{captured.total_packets():,} sampled packets toward them"
    )
    print("top targeted TCP ports:", top_ports(captured, count=8))

    # Per-member notifications: who sends traffic into dark space?
    print("\nmembers sending traffic toward meta-telescope prefixes:")
    sender_packets: Counter[int] = Counter()
    for asn, packets in zip(captured.sender_asn, captured.packets):
        if asn >= 0:
            sender_packets[int(asn)] += int(packets)
    rows = []
    for asn, packets in sender_packets.most_common(10):
        member = world.registry.get(asn)
        distinct_dsts = len(
            np.unique(captured.dst_blocks()[captured.sender_asn == asn])
        )
        rows.append(
            (
                f"AS{asn}",
                member.name,
                member.as_type.value,
                packets,
                distinct_dsts,
            )
        )
    print(
        format_table(
            ["ASN", "member", "type", "sampled pkts -> dark", "#/24s touched"],
            rows,
        )
    )
    print(
        "\n(these members likely host scanners, misconfigured exporters or "
        "infected machines — candidates for an opt-in notification)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CE1")
