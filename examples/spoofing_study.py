#!/usr/bin/env python3
"""Operating a meta-telescope under spoofing (paper Section 7).

Reproduces the operational experience of Sections 7.1-7.2 on the small
world: per-day variability, the collapse of cumulative-day inference
under spoofed pollution, the unrouted-space tolerance that rescues it,
and the stability recommendation (trust prefixes seen on several days).

Run:  python examples/spoofing_study.py
"""

from __future__ import annotations

from repro.analysis.variability import daily_series
from repro.core import MetaTelescope, stable_dark_blocks
from repro.core.combine import per_day_results
from repro.core.pipeline import PipelineConfig
from repro.core.spoofing_tolerance import tolerances_for_views
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world


def main() -> None:
    world = small_world()
    observatory = small_observatory()
    week = world.config.num_days
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    views_by_day = {
        day: list(observatory.day(day).ixp_views.values()) for day in range(week)
    }

    # -- Figure 8: day-to-day variability -------------------------------
    series = daily_series("All", views_by_day, telescope,
                          use_spoofing_tolerance=True)
    print("independent per-day inference (days 5-6 are the weekend):")
    print(format_table(["day", "#prefixes"], list(zip(series.days, series.counts))))
    print(f"weekend uplift: {series.weekend_uplift():.2f}x\n")

    # -- Figure 9: cumulative windows ±tolerance --------------------------
    rows = []
    pooled = []
    for day in range(week):
        pooled = pooled + views_by_day[day]
        plain = telescope.infer(pooled, refine=False)
        tolerant = telescope.infer(
            pooled, use_spoofing_tolerance=True, refine=False
        )
        rows.append((day + 1, plain.pipeline.num_dark(),
                     tolerant.pipeline.num_dark()))
    print("cumulative windows: spoofing destroys, the tolerance recovers:")
    print(format_table(["days", "no tolerance", "with tolerance"], rows))

    # The tolerance itself, per vantage (the paper's 0-4 pkts/day).
    tolerances = tolerances_for_views(pooled, world.unrouted_baseline_blocks)
    biggest = sorted(tolerances.items(), key=lambda item: -item[1])[:5]
    print("\n7-day window tolerances (top 5 vantages):", biggest)

    # -- Section 7.1: stability recommendation ---------------------------
    routing = telescope.routing_for_days(list(range(week)))
    daily = per_day_results(views_by_day, routing, telescope.config)
    for min_days in (1, 3, 5):
        stable = stable_dark_blocks(daily, min_days=min_days)
        print(
            f"prefixes inferred dark on >= {min_days} of {week} days: "
            f"{len(stable):,}"
        )


if __name__ == "__main__":
    main()
