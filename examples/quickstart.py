#!/usr/bin/env python3
"""Quickstart: build a synthetic Internet and infer meta-telescope prefixes.

This walks the full loop of the paper in a couple of minutes at the
small scale:

1. generate a world (address plan, ASes, routing, traffic actors);
2. observe one day of traffic at 14 IXP vantage points;
3. run the seven-step inference pipeline with the spoofing tolerance;
4. refine with the public liveness datasets;
5. evaluate against the simulator's ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import MetaTelescope
from repro.core.evaluation import confusion_against_truth, telescope_coverage
from repro.core.pipeline import PipelineConfig
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world


def main() -> None:
    print("building the synthetic Internet (small scale)...")
    world = small_world()
    observatory = small_observatory()
    print(
        f"  {len(world.index):,} announced /24s, {len(world.registry)} ASes, "
        f"{len(world.fabric.ixps)} IXPs, 3 operational telescopes"
    )

    print("observing day 0 at every IXP...")
    views = observatory.all_ixp_views(num_days=1)
    total_flows = sum(len(view.flows) for view in views)
    print(f"  {total_flows:,} sampled flows exported")

    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )
    result = telescope.infer(views, use_spoofing_tolerance=True)

    print("\npipeline funnel (Figure 2):")
    print(format_table(["step", "#/24s"], result.pipeline.funnel.as_rows()))

    print(
        f"\nclassification: {len(result.pipeline.dark_blocks):,} dark, "
        f"{len(result.pipeline.unclean_blocks):,} unclean, "
        f"{len(result.pipeline.gray_blocks):,} gray"
    )
    print(
        f"liveness refinement removed "
        f"{len(result.refinement.removed_blocks):,} blocks "
        f"({result.refinement.removed_fraction():.1%})"
    )
    print(f"final meta-telescope: {result.num_prefixes():,} /24 prefixes")

    confusion = confusion_against_truth(result.prefixes, world.index)
    print(
        f"\nground truth check: {confusion.false_positive_rate_of_inferred():.2%}"
        f" of the final prefixes are actually active;"
        f" {confusion.recall():.1%} of the truly dark space recovered"
    )

    print("\ncoverage of the operational telescopes (Table 4 style):")
    rows = []
    for code, sensor in world.telescopes.items():
        row = telescope_coverage(result.prefixes, sensor, day=0)
        rows.append((code, row.telescope_size, row.inferred_inside,
                     f"{row.coverage():.0%}"))
    print(format_table(["telescope", "size", "inferred inside", "coverage"], rows))


if __name__ == "__main__":
    main()
