#!/usr/bin/env python3
"""Exporting the meta-telescope's data products (paper Section 5).

Shows the serialisation paths an operator uses in production:

* the prefix list, both as flat /24s and CIDR-aggregated for
  router/ACL consumption;
* the captured-traffic table as CSV, and as RFC 7011 IPFIX messages
  (round-tripped through the decoder to prove fidelity);
* per-prefix confidence scores annotating the export.

Run:  python examples/export_products.py [output-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import MetaTelescope
from repro.core.confidence import score_prefixes
from repro.core.pipeline import PipelineConfig
from repro.io import read_prefix_list, write_flows_csv, write_prefix_list
from repro.net.blocksets import aggregate_blocks
from repro.net.ipv4 import block_to_prefix
from repro.vantage.ipfix import decode_ipfix, encode_ipfix
from repro.world.scenarios import small_observatory, small_world


def main(output_dir: str | None = None) -> None:
    out = Path(output_dir) if output_dir else Path(tempfile.mkdtemp())
    out.mkdir(parents=True, exist_ok=True)

    world = small_world()
    observatory = small_observatory()
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    views = observatory.all_ixp_views(num_days=2)
    result = telescope.infer(views, use_spoofing_tolerance=True)
    print(f"inferred {result.num_prefixes():,} meta-telescope /24 prefixes")

    # -- product (a): the prefix list -----------------------------------
    flat = out / "prefixes-flat.txt"
    write_prefix_list(result.prefixes, flat, comment="meta-telescope /24s")
    aggregated = out / "prefixes-aggregated.txt"
    write_prefix_list(
        result.prefixes, aggregated,
        comment="meta-telescope, CIDR aggregated", aggregate=True,
    )
    cidrs = aggregate_blocks(result.prefixes)
    print(
        f"prefix list: {len(result.prefixes):,} /24 lines -> "
        f"{len(cidrs):,} aggregated CIDRs ({flat.name}, {aggregated.name})"
    )
    assert read_prefix_list(aggregated).tolist() == sorted(
        result.prefixes.tolist()
    )

    # -- product (b): captured traffic -----------------------------------
    captured = telescope.captured_traffic(views, result)
    csv_path = out / "captured-flows.csv"
    write_flows_csv(captured, csv_path)
    messages = encode_ipfix(captured, observation_domain=7)
    ipfix_path = out / "captured-flows.ipfix"
    ipfix_path.write_bytes(b"".join(messages))
    decoded, infos = decode_ipfix(messages)
    print(
        f"captured traffic: {len(captured):,} flows -> {csv_path.name} and "
        f"{len(messages)} IPFIX messages ({sum(len(m) for m in messages):,} "
        f"bytes, {sum(i.num_records for i in infos):,} records round-tripped)"
    )
    assert decoded.total_packets() == captured.total_packets()

    # -- confidence annotations ------------------------------------------
    daily_dark = {}
    for day in (0, 1):
        day_views = [view for view in views if view.day == day]
        daily_dark[day] = telescope.infer(
            day_views, use_spoofing_tolerance=True, refine=False
        ).pipeline.dark_blocks
    scores = score_prefixes(
        result.prefixes, views, daily_dark, config=telescope.config
    )
    scored_path = out / "prefixes-scored.txt"
    with open(scored_path, "w") as handle:
        handle.write("# prefix confidence observation margin recurrence\n")
        for i, block in enumerate(scores.blocks):
            handle.write(
                f"{block_to_prefix(int(block))} {scores.score[i]:.3f} "
                f"{scores.observation[i]:.3f} {scores.margin[i]:.3f} "
                f"{scores.recurrence[i]:.3f}\n"
            )
    strong = scores.above(0.8)
    print(
        f"confidence: {len(strong):,} of {len(scores.blocks):,} prefixes "
        f"score >= 0.8 ({scored_path.name})"
    )
    print(f"\nall products written to {out}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
