#!/usr/bin/env python3
"""Federated meta-telescopes (paper Section 9).

Three IXP operators each infer meta-telescope prefixes from their own
flow data, then share the lists: a vote among observers yields a
collectively more reliable telescope, and an opt-in marking registry
(the paper's private BGP-community/RPKI idea) lets a cooperating
operator contribute its known-unused space directly.

Run:  python examples/federated_telescope.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MetaTelescope, MarkingRegistry, OperatorReport, federate
from repro.core.evaluation import confusion_against_truth
from repro.core.pipeline import PipelineConfig
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world


def main() -> None:
    world = small_world()
    observatory = small_observatory()
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )

    members = ("CE1", "NA1", "SE2")
    reports = []
    rows = []
    for code in members:
        views = observatory.ixp_views(code, num_days=1)
        result = telescope.infer(views, use_spoofing_tolerance=True)
        observed = np.unique(
            np.concatenate([view.aggregates().blocks for view in views])
        )
        reports.append(OperatorReport.from_result(code, result, observed))
        confusion = confusion_against_truth(result.prefixes, world.index)
        rows.append(
            (
                code,
                result.num_prefixes(),
                f"{confusion.false_positive_rate_of_inferred():.2%}",
                f"{confusion.recall():.1%}",
            )
        )

    print("individual operators:")
    print(format_table(["operator", "#prefixes", "FP share", "recall"], rows))

    # A cooperating research network tags its own unused space (the
    # TEU1 telescope host opts in for its dark blocks of the day).
    registry = MarkingRegistry()
    registry.mark(world.telescopes["TEU1"].dark_blocks_on(0), owner="TEU1-host")

    for share, label in ((0.34, "any-observer vote"), (0.66, "2-of-3 vote")):
        federated = federate(reports, registry=registry, min_vote_share=share)
        confusion = confusion_against_truth(federated.prefixes, world.index)
        print(
            f"\nfederation ({label}, + opt-in marks): "
            f"{federated.num_prefixes():,} prefixes, "
            f"FP {confusion.false_positive_rate_of_inferred():.2%}, "
            f"recall {confusion.recall():.1%} "
            f"({len(federated.marked_blocks)} from the marking registry)"
        )


if __name__ == "__main__":
    main()
