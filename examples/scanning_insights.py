#!/usr/bin/env python3
"""Scanning insights by region and network type (paper Section 8).

Uses the inferred meta-telescope to answer the questions a single
conventional telescope cannot: *where* is a port being hunted, and in
*what kind* of networks?  Prints the bean-plot data of Figures 11/12
and highlights the regional campaigns (Satori in Africa, the Redis
campaign's footprint).

Run:  python examples/scanning_insights.py
"""

from __future__ import annotations

from repro.analysis.ports import (
    bean_matrix,
    port_activity_by_group,
    top_ports_per_group,
)
from repro.core import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.reporting.beanplot import render_bean_rows
from repro.world.scenarios import small_observatory, small_world


def main() -> None:
    world = small_world()
    observatory = small_observatory()
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    week = world.config.num_days
    views = observatory.all_ixp_views(num_days=week)
    result = telescope.infer(views, use_spoofing_tolerance=True)
    captured = telescope.captured_traffic(views, result)
    print(
        f"meta-telescope: {result.num_prefixes():,} /24s; captured "
        f"{captured.total_packets():,} sampled packets toward them\n"
    )

    # -- by destination region (Figure 11) ------------------------------
    continents = world.index.continents_of(captured.dst_blocks())
    by_region = port_activity_by_group(
        captured,
        {
            int(block): str(cont)
            for block, cont in zip(captured.dst_blocks(), continents)
            if cont != "??"
        },
    )
    ports = top_ports_per_group(by_region, per_group=8)[:12]
    groups, matrix = bean_matrix(by_region, ports)
    print("top ports per destination region (share within region):")
    print(render_bean_rows(ports, groups, matrix))

    if "AF" in by_region:
        satori_af = by_region["AF"].share_of(37215)
        satori_eu = by_region.get("EU")
        print(
            f"\nSatori (port 37215): {satori_af:.1%} of traffic toward Africa"
            + (
                f" vs {satori_eu.share_of(37215):.1%} toward Europe"
                if satori_eu
                else ""
            )
        )

    # -- by destination network type (Figure 12) -------------------------
    types = world.index.as_types_of(captured.dst_blocks())
    by_type = port_activity_by_group(
        captured,
        {
            int(block): t.value
            for block, t in zip(captured.dst_blocks(), types)
            if t is not None
        },
    )
    ports = top_ports_per_group(by_type, per_group=8)[:12]
    groups, matrix = bean_matrix(by_type, ports)
    print("\ntop ports per destination network type:")
    print(render_bean_rows(ports, groups, matrix))

    if "Data Center" in by_type and "ISP" in by_type:
        print(
            f"\nunprotected-web hunting: port 80 is "
            f"{by_type['Data Center'].share_of(80):.1%} of data-center traffic "
            f"vs {by_type['ISP'].share_of(80):.1%} of ISP traffic"
        )


if __name__ == "__main__":
    main()
