#!/usr/bin/env python3
"""Threat intelligence from a continuously operated meta-telescope.

Combines the Section 9 operational loop (daily re-inference with a
rolling window and stability tracking) with the threat analyses the
paper motivates: scanner characterisation with campaign fingerprints,
and DDoS-victim inference from backscatter — the insights an operator
would share with CERTs.

Run:  python examples/threat_intelligence.py
"""

from __future__ import annotations

from repro.analysis.backscatter_analysis import detect_victims
from repro.analysis.scanners_analysis import campaign_summary, detect_scanners
from repro.core import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.net.ipv4 import format_ip
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world


def main() -> None:
    world = small_world()
    observatory = small_observatory()
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )

    # -- the operational loop: one inference per day -----------------------
    online = OnlineMetaTelescope(
        telescope=telescope, window_days=4, min_stable_days=2
    )
    print("daily operation (rolling 4-day window, 2-day stability):")
    rows = []
    for day in range(world.config.num_days):
        views = list(observatory.day(day).ixp_views.values())
        update = online.update(day, views)
        rows.append(
            (day, update.serving_size, len(update.added_blocks),
             len(update.removed_blocks))
        )
    print(format_table(["day", "serving /24s", "added", "removed"], rows))

    # -- data product (b): traffic toward the serving list ----------------
    week_views = observatory.all_ixp_views(num_days=world.config.num_days)
    captured = telescope.captured_traffic(week_views, online.current_prefixes())
    print(
        f"\ncaptured {captured.total_packets():,} sampled packets toward "
        f"{len(online.current_prefixes()):,} serving prefixes"
    )

    # -- scanner characterisation ------------------------------------------
    scanners = detect_scanners(captured, min_footprint_blocks=5)
    print(f"\n{len(scanners)} scanning sources characterised; campaigns:")
    for family, count in campaign_summary(scanners).items():
        print(f"  {family:<18} {count}")
    print("\nwidest-footprint scanners:")
    rows = [
        (
            format_ip(report.source_ip),
            f"AS{report.sender_asn}",
            report.footprint_blocks,
            ",".join(map(str, report.ports[:4])),
        )
        for report in scanners[:8]
    ]
    print(format_table(["source", "ASN", "#/24s probed", "ports"], rows))

    # -- DDoS victims from backscatter ------------------------------------
    analysis = detect_victims(captured, min_spread_blocks=2, min_packets=2)
    print(
        f"\nbackscatter: {analysis.backscatter_share():.1%} of captured "
        f"packets; {len(analysis.victims)} inferred attack victims"
    )
    for victim in analysis.victims[:5]:
        print(
            f"  {format_ip(victim.victim_ip)}: replies reached "
            f"{victim.spread_blocks} dark /24s "
            f"({victim.packets} sampled packets)"
        )


if __name__ == "__main__":
    main()
