"""IPv6 snapshots behind the query service, and structured query errors.

Covers the satellite fix: asking for something more specific than the
snapshot's block length is a *client* mistake — the error must name the
requested prefix length and the snapshot's family, and the HTTP layer
must answer 400, not 500.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core.ipv6_telescope import infer_ipv6
from repro.net.family import IPV6
from repro.net.ipv4 import Prefix
from repro.net.ipv6 import Ipv6Prefix
from repro.service import MetaTelescopeService, run_daemon_in_thread
from repro.service.daemon import QueryError, parse_block
from repro.world.ipv6 import ipv6_views, micro_ipv6_world


@pytest.fixture(scope="module")
def report():
    world = micro_ipv6_world(seed=7)
    return infer_ipv6(world, ipv6_views(world))


@pytest.fixture(scope="module")
def service(report):
    service = MetaTelescopeService()
    service.publish(report.snapshot)
    return service


class TestV6Queries:
    def test_point_by_site_prefix(self, service, report):
        site = int(report.served_sites[0])
        answer = service.point(IPV6.format_block(site))
        assert answer["dark"]
        assert answer["prefix"].endswith("/48")

    def test_point_by_address(self, service, report):
        site = int(report.served_sites[0])
        ip = IPV6.block_to_ip(site) + 5
        assert service.point(IPV6.format_ip(ip))["dark"]

    def test_point_rejects_wrong_length(self, service):
        with pytest.raises(QueryError, match="/48"):
            service.point("2001:d00::/40")

    def test_parse_block_v6(self):
        site = Ipv6Prefix.parse("2001:d00:42::/48").first_site()
        assert parse_block("2001:d00:42::/48", IPV6) == site
        assert parse_block("2001:d00:42::1", IPV6) == site

    def test_range_by_org_prefix(self, service, report):
        # One org's /40 covers a contiguous band of /48 sites.
        org_prefix = "2001:d00::/40"
        answer = service.range(prefix=org_prefix)
        parsed = Ipv6Prefix.parse(org_prefix)
        for row in answer["rows"]:
            assert parsed.contains_site(row["block"])


class TestStructuredErrors:
    def test_within_prefix_too_specific_names_length_and_family(self, report):
        with pytest.raises(ValueError) as excinfo:
            report.snapshot.within_prefix(Ipv6Prefix.parse("2001:d00::/56"))
        message = str(excinfo.value)
        assert "/56" in message
        assert "ipv6" in message
        assert "/48" in message

    def test_within_prefix_family_mismatch(self, report):
        with pytest.raises(ValueError) as excinfo:
            report.snapshot.within_prefix(Prefix.parse("10.0.0.0/24"))
        message = str(excinfo.value)
        assert "ipv4" in message and "ipv6" in message

    def test_service_range_too_specific_is_query_error(self, service):
        # QueryError (HTTP 400), never a bare ValueError (HTTP 500).
        with pytest.raises(QueryError) as excinfo:
            service.range(prefix="2001:d00::/56")
        message = str(excinfo.value)
        assert "/56" in message and "/48" in message and "ipv6" in message

    def test_http_too_specific_is_400_with_details(self, service):
        daemon, stop = run_daemon_in_thread(service)
        try:
            quoted = urllib.parse.quote("2001:d00::/56", safe="")
            url = f"{daemon.base_url}/v1/range?prefix={quoted}"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=10)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "/56" in body["error"]
            assert "ipv6" in body["error"]
        finally:
            stop()

    def test_http_v6_point_round_trip(self, service, report):
        daemon, stop = run_daemon_in_thread(service)
        try:
            site = int(report.served_sites[0])
            quoted = urllib.parse.quote(IPV6.format_block(site), safe="")
            url = f"{daemon.base_url}/v1/point?block={quoted}"
            with urllib.request.urlopen(url, timeout=10) as reply:
                assert reply.status == 200
                answer = json.loads(reply.read())
            assert answer["dark"]
        finally:
            stop()
