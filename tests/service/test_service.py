"""The query service: point/range/AS/geo/diff answers, budgets, HTTP."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.online import OnlineMetaTelescope
from repro.core.metatelescope import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.core.snapshot import build_snapshot
from repro.service import (
    MetaTelescopeService,
    QueryBudget,
    run_daemon_in_thread,
)
from repro.service.daemon import QueryError, parse_block


def _telescope(world) -> MetaTelescope:
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


@pytest.fixture(scope="module")
def served(request):
    """An online engine folded over three micro-world days, published."""
    world = request.getfixturevalue("world")
    observatory = request.getfixturevalue("observatory")
    online = OnlineMetaTelescope(
        telescope=_telescope(world), window_days=3, min_stable_days=2
    )
    service = MetaTelescopeService(
        pfx2as=world.datasets.pfx2as,
        geodb=world.datasets.geodb,
        health_provider=online.health_report,
        budget=QueryBudget(max_results=50),
    )
    for day in range(3):
        online.update(day, list(observatory.day(day).ixp_views.values()))
        service.publish(online.snapshot())
    return online, service


def test_parse_block():
    assert parse_block("1.2.3.0/24") == (1 << 16) | (2 << 8) | 3
    assert parse_block("1.2.3.4") == parse_block("1.2.3.0/24")
    assert parse_block("65536") == 65536
    with pytest.raises(QueryError):
        parse_block("1.2.0.0/16")  # not a /24
    with pytest.raises(QueryError):
        parse_block("")


def test_point_parity_with_engine(served):
    online, service = served
    serving = online.current_prefixes()
    for block in serving[:: max(1, len(serving) // 25)]:
        answer = service.point(str(int(block)))
        assert answer["dark"] and answer["verdict"] == "dark"
    # An address far outside the world is unknown, never an error.
    assert service.point("255.255.255.0/24")["verdict"] == "unknown"


def test_snapshot_dark_set_equals_engine_serving_set(served):
    online, service = served
    np.testing.assert_array_equal(
        service.handle.current().dark_blocks,
        np.sort(online.current_prefixes()),
    )


def test_range_budget_truncation(served):
    _, service = served
    snapshot = service.handle.current()
    full = service.range(
        start=int(snapshot.blocks[0]), end=int(snapshot.blocks[-1])
    )
    assert full["total"] == len(snapshot)
    assert full["truncated"] and len(full["rows"]) == 50  # budget cap
    small = service.range(
        start=int(snapshot.blocks[0]), end=int(snapshot.blocks[0])
    )
    assert small["total"] == 1 and not small["truncated"]


def test_by_as_and_geo(served):
    _, service = served
    snapshot = service.handle.current()
    asn = int(snapshot.asns[snapshot.asns >= 0][0])
    by_as = service.by_as(asn, limit=5)
    assert by_as["total"] > 0
    assert all(row["asn"] == asn for row in by_as["rows"])
    country = snapshot.countries[snapshot.countries != b"??"][0].decode()
    by_geo = service.by_geo(country, limit=5)
    assert by_geo["total"] > 0
    assert all(row["country"] == country for row in by_geo["rows"])


def test_diff_feed(served):
    _, service = served
    current_version = service.handle.version()
    same = service.diff(since=current_version)
    assert same["base_retained"]
    assert same["added_dark"] == [] and same["removed_dark"] == []
    earlier = service.diff(since=1)
    assert earlier["base_retained"]
    evicted = service.diff(since=999)
    assert not evicted["base_retained"]


def test_healthz_reports_engine_health(served):
    _, service = served
    ok, body = service.healthz()
    assert ok and body["serving"]
    assert body["health_ok"] and body["staleness"] == 0
    assert body["publishes"] == 3


def test_load_shed():
    service = MetaTelescopeService(max_inflight=1)
    service.publish(build_snapshot(0, np.array([5], dtype=np.int64)))
    assert service.admit()
    assert not service.admit()  # second concurrent query is shed
    service.release()
    assert service.admit()
    service.release()
    assert service.queries_shed == 1


def test_empty_service_has_no_answer():
    service = MetaTelescopeService()
    with pytest.raises(LookupError):
        service.point("1.2.3.0/24")
    ok, body = service.healthz()
    assert not ok and not body["serving"]


def test_http_round_trip(served):
    _, service = served
    daemon, stop = run_daemon_in_thread(service)
    try:
        base = daemon.base_url

        def get(path):
            with urllib.request.urlopen(base + path, timeout=10) as reply:
                return reply.status, json.loads(reply.read())

        snapshot = service.handle.current()
        block = int(snapshot.dark_blocks[0])
        status, answer = get(f"/v1/point?block={block}")
        assert status == 200 and answer["dark"]
        assert answer == service.point(str(block))

        status, info = get("/v1/snapshot")
        assert status == 200 and info["version"] == snapshot.version

        status, health = get("/healthz")
        assert status == 200 and health["serving"]

        with pytest.raises(urllib.error.HTTPError) as bad:
            get("/v1/point?prefix=not-a-prefix")
        assert bad.value.code == 400

        with pytest.raises(urllib.error.HTTPError) as missing:
            get("/v1/nothing-here")
        assert missing.value.code == 404
    finally:
        stop()
