"""Publish is atomic: concurrent readers never see a torn snapshot.

Each published snapshot here is wholly derived from its stamp — every
column encodes the stamp — so a reader can detect *any* mix of two
publishes by cross-checking columns against each other.  Readers hammer
the handle (and the query service) while a writer publishes as fast as
it can; one inconsistent observation fails the test.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.snapshot import ClassificationSnapshot, VERDICT_DARK
from repro.service import MetaTelescopeService, SnapshotHandle


def stamped_snapshot(stamp: int, size: int = 64) -> ClassificationSnapshot:
    """A snapshot whose every column is a pure function of ``stamp``."""
    blocks = np.arange(stamp, stamp + size, dtype=np.int64)
    return ClassificationSnapshot(
        day=stamp,
        blocks=blocks,
        verdicts=np.full(size, VERDICT_DARK, dtype=np.uint8),
        confidence=np.full(size, 1.0 / (1 + stamp % 7)),
        since_day=np.full(size, stamp, dtype=np.int32),
        asns=np.full(size, stamp % 1000, dtype=np.int32),
        countries=np.full(size, b"%02d" % (stamp % 100), dtype="S2"),
        provenance={"stamp": stamp},
    )


def check_consistent(snapshot: ClassificationSnapshot) -> None:
    stamp = snapshot.provenance["stamp"]
    assert snapshot.day == stamp
    assert snapshot.blocks[0] == stamp
    assert (snapshot.since_day == stamp).all()
    assert (snapshot.asns == stamp % 1000).all()
    assert (snapshot.countries == b"%02d" % (stamp % 100)).all()
    assert snapshot.lookup(stamp).since_day == stamp


def test_readers_never_observe_mixed_state():
    handle = SnapshotHandle(history=4)
    handle.publish(stamped_snapshot(0))
    publishes = 300
    stop = threading.Event()
    failures: list[BaseException] = []

    def reader() -> None:
        last_version = 0
        try:
            while not stop.is_set():
                snapshot = handle.current()
                check_consistent(snapshot)
                # Versions move forward, never backwards.
                assert snapshot.version >= last_version
                last_version = snapshot.version
        except BaseException as error:  # propagated to the main thread
            failures.append(error)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        for stamp in range(1, publishes + 1):
            handle.publish(stamped_snapshot(stamp))
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
    assert not failures, failures[0]
    assert handle.version() == publishes + 1
    check_consistent(handle.current())


def test_service_queries_are_single_snapshot():
    """Every service answer is internally from ONE snapshot version."""
    service = MetaTelescopeService()
    service.publish(stamped_snapshot(0))
    stop = threading.Event()
    failures: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                info = service.snapshot_info()
                stamp = info["provenance"]["stamp"]
                # day and provenance came from the same publish.
                assert info["day"] == stamp
                answer = service.point(str(stamp))
                # The point answer is against one coherent snapshot:
                # whichever version served it, its fields must agree
                # (the writer may have raced past this block, in which
                # case an honest "unknown" is the consistent answer).
                if answer["verdict"] != "unknown":
                    assert answer["since_day"] == answer["snapshot_day"]
        except BaseException as error:
            failures.append(error)

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    try:
        for stamp in range(1, 200):
            service.publish(stamped_snapshot(stamp))
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
    assert not failures, failures[0]
    assert service.publishes == 200


def test_diff_against_retained_history_under_churn():
    handle = SnapshotHandle(history=8)
    for stamp in range(10):
        handle.publish(stamped_snapshot(stamp))
    current = handle.current()
    base = handle.at_version(current.version - 3)
    diff = handle.diff_since(base.version)
    assert diff is not None
    assert diff.base_version == base.version
    assert diff.version == current.version
    # Blocks shift by one per stamp: 3 added, 3 removed.
    assert len(diff.added_dark) == 3 and len(diff.removed_dark) == 3
    assert handle.diff_since(1) is None  # evicted by maxlen=8
