"""The SO_REUSEPORT fleet: shared artifact, convergence, restarts.

One module-scoped two-worker fleet serves every test here (spawning
interpreters is the expensive part).  The assertions cover the scale-out
contract: all workers answer with the supervisor's stamped version,
republishes converge within the poll interval, answers are byte-
identical across connections (and therefore across workers), dead
workers come back, and shutdown drains cleanly.
"""

from __future__ import annotations

import hashlib
import json
import urllib.error
import urllib.request

import pytest

from repro.core.snapshot_store import SnapshotDeltaStore
from repro.service import FleetSupervisor
from repro.service.fleet import free_reuseport, read_sentinel
from tests.service.test_atomic_swap import stamped_snapshot


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    supervisor = FleetSupervisor(
        root / "serving",
        processes=2,
        poll_interval=0.02,
        delta_store=SnapshotDeltaStore(root / "archive"),
    )
    supervisor.publish(stamped_snapshot(1))
    supervisor.start()
    supervisor.wait_ready(60)
    yield supervisor
    supervisor.stop()


def get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as reply:
        return reply.code, dict(reply.headers), reply.read()


def test_all_workers_ready_on_one_port(fleet):
    states = fleet.worker_states()
    assert len(states) == 2
    assert {state["port"] for state in states} == {fleet.port}
    assert len({state["pid"] for state in states}) == 2
    assert read_sentinel(fleet.root)["version"] == fleet.handle.version()


def test_queries_serve_the_stamped_version(fleet):
    version = fleet.handle.version()
    status, headers, body = get(fleet.base_url + "/v1/point?block=1")
    answer = json.loads(body)
    assert status == 200
    assert answer["dark"] is True
    assert answer["snapshot_version"] == version
    assert headers["ETag"] == f'"v{version}"'
    status, _, body = get(
        fleet.base_url + "/v1/point?block=1",
        headers={"If-None-Match": f'"v{version}"'},
    )
    assert status == 304 and body == b""


def test_republish_converges_and_archives(fleet):
    before = fleet.handle.version()
    stamped = fleet.publish(stamped_snapshot(before + 1))
    assert stamped.version == before + 1
    fleet.wait_version(stamped.version, timeout=30)
    status, _, body = get(
        fleet.base_url + f"/v1/point?block={stamped.day}"
    )
    assert status == 200
    assert json.loads(body)["snapshot_version"] == stamped.version
    # Every publish also landed in the delta archive, bit-identically.
    assert fleet.delta_store.versions()[-1] == stamped.version
    assert fleet.delta_store.load(stamped.version).identical_to(stamped)


def test_answers_are_byte_identical_across_connections(fleet):
    fleet.wait_version(fleet.handle.version(), timeout=30)
    script = ["/v1/point?block=2", "/v1/range?start=1&end=40",
              "/v1/snapshot"]
    digests = set()
    for _ in range(12):  # fresh connection each time: both workers answer
        digest = hashlib.sha256()
        for target in script:
            status, _, body = get(fleet.base_url + target)
            assert status == 200
            digest.update(body)
        digests.add(digest.hexdigest())
    assert len(digests) == 1


def test_dead_worker_is_restarted_with_current_version(fleet):
    victim = fleet.workers[0]
    victim.process.kill()
    victim.process.join(10)
    assert fleet.ensure_alive() == 1
    assert fleet.workers[0].restarts == victim.restarts + 1
    fleet.wait_ready(60)
    fleet.wait_version(fleet.handle.version(), timeout=30)
    status, _, body = get(fleet.base_url + "/v1/snapshot")
    assert status == 200
    assert json.loads(body)["version"] == fleet.handle.version()
    assert fleet.ensure_alive() == 0  # everyone's alive again


def test_stop_drains_every_worker(tmp_path):
    supervisor = FleetSupervisor(
        tmp_path, processes=2, poll_interval=0.02
    )
    supervisor.publish(stamped_snapshot(1))
    supervisor.start()
    supervisor.wait_ready(60)
    workers = list(supervisor.workers)
    supervisor.stop()
    assert supervisor.workers == []
    assert all(not worker.process.is_alive() for worker in workers)
    assert all(worker.process.exitcode == 0 for worker in workers)


def test_free_reuseport_is_bindable_twice():
    port = free_reuseport("127.0.0.1")
    assert 0 < port < 65536


def test_fleet_requires_at_least_one_process(tmp_path):
    with pytest.raises(ValueError):
        FleetSupervisor(tmp_path, processes=0)
