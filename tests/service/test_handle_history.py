"""SnapshotHandle history eviction and version adoption under churn.

The handle's deque is the contract boundary for diff feeds: a base
inside the window answers, a base that fell off the end returns None
(the client re-fetches in full), and the retained-version list always
reads oldest-to-newest with the current version last.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.service import SnapshotHandle
from tests.service.test_atomic_swap import stamped_snapshot


def test_diff_since_evicted_version_returns_none():
    handle = SnapshotHandle(history=3)
    for stamp in range(6):
        handle.publish(stamped_snapshot(stamp))
    # versions 1..3 have been pushed out of the window of 3
    assert handle.versions_retained() == [4, 5, 6]
    for evicted in (1, 2, 3):
        assert handle.at_version(evicted) is None
        assert handle.diff_since(evicted) is None
    for retained in (4, 5, 6):
        diff = handle.diff_since(retained)
        assert diff is not None
        assert diff.base_version == retained
        assert diff.version == 6


def test_at_version_misses():
    handle = SnapshotHandle(history=4)
    assert handle.at_version(1) is None  # nothing published yet
    assert handle.diff_since(1) is None
    handle.publish(stamped_snapshot(0))
    assert handle.at_version(0) is None  # versions start at 1
    assert handle.at_version(2) is None  # the future isn't retained
    assert handle.at_version(1) is not None


def test_versions_retained_ordering_under_churn():
    handle = SnapshotHandle(history=5)
    for stamp in range(25):
        handle.publish(stamped_snapshot(stamp))
        retained = handle.versions_retained()
        # Oldest-to-newest, contiguous, capped at the window, and the
        # current version is always the last entry.
        assert retained == sorted(retained)
        assert len(retained) <= 5
        assert retained[-1] == handle.version()
        assert retained == list(
            range(retained[0], retained[-1] + 1)
        )


def test_adopt_is_monotone_and_keeps_stamped_version():
    handle = SnapshotHandle(history=4)
    stamped = dataclasses.replace(stamped_snapshot(1), version=7)
    adopted = handle.adopt(stamped)
    assert adopted is stamped
    assert handle.version() == 7
    assert handle.versions_retained() == [7]

    # Stale (or equal) versions are no-ops returning what's served.
    stale = dataclasses.replace(stamped_snapshot(2), version=7)
    assert handle.adopt(stale) is stamped
    older = dataclasses.replace(stamped_snapshot(3), version=3)
    assert handle.adopt(older) is stamped
    assert handle.version() == 7

    # Newer versions adopt, and publish() continues from there.
    newer = dataclasses.replace(stamped_snapshot(4), version=9)
    assert handle.adopt(newer) is newer
    assert handle.versions_retained() == [7, 9]
    assert handle.publish(stamped_snapshot(5)).version == 10


def test_adopt_rejects_unstamped_snapshots():
    handle = SnapshotHandle()
    with pytest.raises(ValueError):
        handle.adopt(stamped_snapshot(1))  # version 0: never published
