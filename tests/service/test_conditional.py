"""Conditional queries and connection semantics on the HTTP front end.

Every ``/v1/*`` answer carries a version-derived ``ETag``; a client
replaying it via ``If-None-Match`` (or asking ``?if_version_changed=V``)
gets a body-free 304 / tiny not-modified answer instead of the full
payload.  The daemon also speaks proper ``Connection`` semantics to
HTTP/1.0 clients: explicit request tokens win, the version's default
applies otherwise, and the response always says what the server will do.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.service import MetaTelescopeService, run_daemon_in_thread
from tests.service.test_atomic_swap import stamped_snapshot


@pytest.fixture(scope="module")
def served_daemon():
    service = MetaTelescopeService()
    service.publish(stamped_snapshot(1))
    daemon, stop = run_daemon_in_thread(service)
    yield service, daemon
    stop()


def get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as reply:
        return reply.code, dict(reply.headers), reply.read()


def read_response(sock: socket.socket) -> tuple[int, dict, bytes]:
    """One HTTP response off a raw socket (Content-Length framed)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        assert chunk, f"connection closed mid-headers: {data!r}"
        data += chunk
    head, body = data.split(b"\r\n\r\n", 1)
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    want = int(headers.get("content-length", 0))
    while len(body) < want:
        chunk = sock.recv(65536)
        assert chunk, "connection closed mid-body"
        body += chunk
    return status, headers, body


def request_bytes(
    target: str, version: str = "1.1", extra: str = ""
) -> bytes:
    return (
        f"GET {target} HTTP/{version}\r\nHost: t\r\n{extra}\r\n"
    ).encode()


def test_every_v1_answer_carries_a_version_etag(served_daemon):
    _, daemon = served_daemon
    for target in (
        "/v1/point?block=1",
        "/v1/range?start=1&end=9",
        "/v1/diff?since=1",
        "/v1/snapshot",
    ):
        status, headers, body = get(daemon.base_url + target)
        assert status == 200
        assert headers["ETag"] == '"v1"'
        assert json.loads(body)["snapshot_version"] == 1
        # urllib sends "Connection: close"; the daemon must echo what
        # it will actually do in every response.
        assert headers["Connection"] == "close"


def test_if_none_match_replays_as_bodyless_304(served_daemon):
    _, daemon = served_daemon
    status, headers, body = get(
        daemon.base_url + "/v1/point?block=1",
        headers={"If-None-Match": '"v1"'},
    )
    assert status == 304
    assert body == b""
    assert headers["ETag"] == '"v1"'
    # A stale validator serves the full answer again.
    status, _, body = get(
        daemon.base_url + "/v1/point?block=1",
        headers={"If-None-Match": '"v99"'},
    )
    assert status == 200 and json.loads(body)["snapshot_version"] == 1


def test_if_version_changed_short_circuits(served_daemon):
    _, daemon = served_daemon
    status, _, body = get(
        daemon.base_url + "/v1/range?start=1&end=9&if_version_changed=1"
    )
    assert status == 200
    assert json.loads(body) == {
        "not_modified": True,
        "snapshot_version": 1,
    }
    # A different since-version gets the real answer.
    status, _, body = get(
        daemon.base_url + "/v1/range?start=1&end=9&if_version_changed=0"
    )
    answer = json.loads(body)
    assert status == 200 and answer["total"] > 0


def test_if_version_changed_never_claims_unpublished_state():
    service = MetaTelescopeService()
    daemon, stop = run_daemon_in_thread(service)
    try:
        status, _, _ = get(
            daemon.base_url + "/v1/point?block=1&if_version_changed=0"
        )
        assert status == 503  # still "no snapshot", not "unchanged"
    finally:
        stop()


def test_http10_defaults_to_close(served_daemon):
    _, daemon = served_daemon
    with socket.create_connection(
        (daemon.host, daemon.port), timeout=10
    ) as sock:
        sock.sendall(request_bytes("/v1/point?block=1", version="1.0"))
        status, headers, _ = read_response(sock)
        assert status == 200
        assert headers["connection"] == "close"
        assert sock.recv(65536) == b""  # server closed


def test_http10_keep_alive_token_is_honored(served_daemon):
    _, daemon = served_daemon
    with socket.create_connection(
        (daemon.host, daemon.port), timeout=10
    ) as sock:
        for _ in range(2):  # the second request proves it stayed open
            sock.sendall(
                request_bytes(
                    "/v1/point?block=1",
                    version="1.0",
                    extra="Connection: keep-alive\r\n",
                )
            )
            status, headers, _ = read_response(sock)
            assert status == 200
            assert headers["connection"] == "keep-alive"


def test_http11_connection_close_is_honored(served_daemon):
    _, daemon = served_daemon
    with socket.create_connection(
        (daemon.host, daemon.port), timeout=10
    ) as sock:
        sock.sendall(
            request_bytes(
                "/v1/point?block=1", extra="Connection: close\r\n"
            )
        )
        status, headers, _ = read_response(sock)
        assert status == 200
        assert headers["connection"] == "close"
        assert sock.recv(65536) == b""
