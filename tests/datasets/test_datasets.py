"""Tests for the auxiliary dataset emulators."""

import numpy as np
import pytest

from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem
from repro.bgp.rib import Announcement, RoutingTable
from repro.datasets.as2org import AsToOrgMap
from repro.datasets.geodb import GeoDatabase
from repro.datasets.ipinfo import AsClassification
from repro.datasets.liveness import LivenessDataset, union_liveness
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import Prefix, parse_ip


def registry_with(*asns):
    return ASRegistry.from_ases(
        AutonomousSystem(
            asn=asn,
            name=f"AS{asn}",
            org_id=f"ORG-{asn}",
            as_type=ASType.ISP,
            country_code="US",
        )
        for asn in asns
    )


class TestLiveness:
    def test_contains(self):
        dataset = LivenessDataset(name="x", active_blocks=np.array([5, 9]))
        assert dataset.contains(np.array([5, 6, 9])).tolist() == [True, False, True]

    def test_dedup(self):
        dataset = LivenessDataset(name="x", active_blocks=np.array([5, 5]))
        assert len(dataset) == 1

    def test_observe_recall(self, rng):
        active = np.arange(1000)
        dataset = LivenessDataset.observe(
            "c", active, np.array([]), recall=0.5, stale_rate=0.0, rng=rng
        )
        assert 350 < len(dataset) < 650

    def test_observe_stale(self, rng):
        dark = np.arange(1000)
        dataset = LivenessDataset.observe(
            "c", np.array([]), dark, recall=1.0, stale_rate=0.1, rng=rng
        )
        assert 40 < len(dataset) < 200

    def test_observe_validates(self, rng):
        with pytest.raises(ValueError):
            LivenessDataset.observe(
                "c", np.array([]), np.array([]), recall=1.5, stale_rate=0.0, rng=rng
            )

    def test_union(self):
        a = LivenessDataset(name="a", active_blocks=np.array([1]))
        b = LivenessDataset(name="b", active_blocks=np.array([2]))
        union = union_liveness([a, b])
        assert union.active_blocks.tolist() == [1, 2]
        assert union.name == "a+b"

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            union_liveness([])


class TestGeoDatabase:
    def test_lookup(self):
        geodb = GeoDatabase(
            blocks=np.array([10, 20]),
            country_codes=np.array(["US", "DE"]),
        )
        assert geodb.lookup(np.array([20, 10, 30])).tolist() == ["DE", "US", "??"]

    def test_continents(self):
        geodb = GeoDatabase(blocks=np.array([10]), country_codes=np.array(["JP"]))
        continents = geodb.continents(np.array([10, 11]))
        assert continents[0].value == "AS"
        assert continents[1] is None

    def test_from_ground_truth_no_error(self, rng):
        geodb = GeoDatabase.from_ground_truth(
            blocks=np.arange(100),
            true_codes=np.array(["US"] * 100),
            error_rate=0.0,
            rng=rng,
        )
        assert (geodb.lookup(np.arange(100)) == "US").all()

    def test_from_ground_truth_with_error(self, rng):
        geodb = GeoDatabase.from_ground_truth(
            blocks=np.arange(2000),
            true_codes=np.array(["US"] * 2000),
            error_rate=0.2,
            rng=rng,
        )
        wrong = (geodb.lookup(np.arange(2000)) != "US").mean()
        assert 0.1 < wrong < 0.3

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            GeoDatabase(blocks=np.array([1]), country_codes=np.array(["US", "DE"]))


class TestPfx2As:
    def make_map(self):
        table = RoutingTable(
            [
                Announcement(Prefix.parse("10.0.0.0/8"), 65001),
                Announcement(Prefix.parse("10.1.0.0/16"), 65002),
            ]
        )
        return PrefixToAsMap.from_routing_table(table)

    def test_scalar_lpm(self):
        mapping = self.make_map()
        assert mapping.asn_of_block(parse_ip("10.1.2.0") >> 8) == 65002
        assert mapping.asn_of_block(parse_ip("10.2.0.0") >> 8) == 65001
        assert mapping.asn_of_block(parse_ip("11.0.0.0") >> 8) is None

    def test_vectorised_matches_scalar(self):
        mapping = self.make_map()
        blocks = np.array(
            [
                parse_ip("10.1.2.0") >> 8,
                parse_ip("10.2.0.0") >> 8,
                parse_ip("11.0.0.0") >> 8,
            ]
        )
        assert mapping.asns_of_blocks(blocks).tolist() == [65002, 65001, -1]

    def test_mapped_prefixes(self):
        assert len(self.make_map().mapped_prefixes()) == 2


class TestAsMetadata:
    def test_as2org(self):
        registry = registry_with(10, 20)
        mapping = AsToOrgMap.from_registry(registry)
        assert mapping.org_of(10).org_id == "ORG-10"
        assert mapping.org_of(99) is None
        assert mapping.num_organizations() == 2

    def test_ipinfo_exact_without_error(self, rng):
        registry = registry_with(10)
        classification = AsClassification.from_registry(registry, 0.0, rng)
        assert classification.type_of(10) is ASType.ISP
        assert classification.type_of(99) is None

    def test_ipinfo_error_rate(self, rng):
        registry = registry_with(*range(1, 2001))
        classification = AsClassification.from_registry(registry, 0.5, rng)
        labels = classification.types_of(np.arange(1, 2001))
        wrong = sum(1 for label in labels if label is not ASType.ISP)
        # Half relabelled uniformly over 4 categories -> ~37.5% wrong.
        assert 0.25 < wrong / 2000 < 0.5

    def test_ipinfo_validates(self, rng):
        with pytest.raises(ValueError):
            AsClassification.from_registry(registry_with(1), 1.0, rng)
