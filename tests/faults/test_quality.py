"""Tests for per-day feed-quality scoring."""

import numpy as np
import pytest

from repro.faults import (
    CorruptedFields,
    DuplicatedRecords,
    FaultPlan,
    TruncatedDay,
    score_feed,
)

from _factories import ip, make_view

BASE = 0x140000


def clean_view(rows=60, vantage="V", sampling_factor=10.0):
    return make_view(
        [
            {"dst_ip": ip(BASE + i % 5, host=1 + i % 200), "packets": 2}
            for i in range(rows)
        ],
        vantage=vantage,
        sampling_factor=sampling_factor,
    )


class TestScoreFeed:
    def test_clean_day_scores_one(self):
        quality = score_feed(0, [clean_view()])
        assert quality.score == pytest.approx(1.0)
        assert quality.reasons == ()
        assert not quality.degraded(0.5)

    def test_empty_day_scores_zero(self):
        quality = score_feed(3, [])
        assert quality.score == 0.0
        assert quality.reasons == ("no views",)
        assert quality.degraded(0.5)

    def test_missing_feeds_lower_presence(self):
        quality = score_feed(0, [clean_view()], expected_views=4)
        assert quality.score == pytest.approx(0.25)
        assert any("expected feeds" in reason for reason in quality.reasons)

    def test_volume_collapse_detected(self):
        history = [score_feed(0, [clean_view()]).estimated_packets] * 3
        truncated = FaultPlan(seed=1).add(
            TruncatedDay(keep_fraction=0.2)
        ).apply(1, [clean_view()])
        quality = score_feed(1, list(truncated.views), history_packets=history)
        assert quality.volume_ratio == pytest.approx(0.2, abs=0.05)
        assert quality.degraded(0.5)

    def test_volume_inflation_detected(self):
        history = [clean_view().estimated_packets() / 4] * 3
        quality = score_feed(1, [clean_view()], history_packets=history)
        assert quality.volume_ratio == pytest.approx(4.0)
        assert quality.degraded(0.5)

    def test_duplicates_detected(self):
        doubled = FaultPlan(seed=1).add(
            DuplicatedRecords(duplicate_fraction=0.8)
        ).apply(0, [clean_view()])
        quality = score_feed(0, list(doubled.views))
        assert quality.duplicate_fraction > 0.3
        assert quality.degraded(0.5)

    def test_corruption_detected(self):
        corrupted = FaultPlan(seed=1).add(
            CorruptedFields(corrupt_fraction=0.4)
        ).apply(0, [clean_view()])
        quality = score_feed(0, list(corrupted.views))
        assert quality.invalid_fraction == pytest.approx(0.4, abs=0.02)
        assert quality.degraded(0.5)

    def test_sub_unity_sampling_factor_is_implausible(self):
        quality = score_feed(0, [clean_view(sampling_factor=0.5)])
        assert quality.score == pytest.approx(0.3)
        assert any("< 1" in reason for reason in quality.reasons)

    def test_factor_deviation_from_typical(self):
        quality = score_feed(
            0,
            [clean_view(sampling_factor=1000.0)],
            typical_factors={"V": 10.0},
        )
        assert quality.score == pytest.approx(0.3)
        assert any("typical" in reason for reason in quality.reasons)

    def test_factor_within_tolerance_is_fine(self):
        quality = score_feed(
            0,
            [clean_view(sampling_factor=20.0)],
            typical_factors={"V": 10.0},
        )
        assert quality.score == pytest.approx(1.0)

    def test_all_empty_views_degraded(self):
        quality = score_feed(0, [make_view([])])
        assert quality.degraded(0.5)
        assert any("empty" in reason for reason in quality.reasons)

    def test_scoring_never_mutates_views(self):
        view = clean_view()
        before = view.flows.packets.copy()
        score_feed(0, [view], history_packets=[1.0], expected_views=2)
        assert np.array_equal(view.flows.packets, before)


class TestEmptyFlowTables:
    """Zero-row days must score cleanly — never divide by zero."""

    def test_duplicate_and_invalid_fractions_guard_empty(self):
        from repro.faults.quality import _duplicate_fraction, _invalid_fraction

        empty = make_view([]).flows
        assert _duplicate_fraction(empty) == 0.0
        assert _invalid_fraction(empty) == 0.0

    def test_zero_row_day_with_history_scores_finite(self):
        history = [score_feed(0, [clean_view()]).estimated_packets] * 3
        quality = score_feed(1, [make_view([])], history_packets=history)
        assert np.isfinite(quality.score)
        assert quality.score == 0.0
        assert quality.duplicate_fraction == 0.0
        assert quality.invalid_fraction == 0.0
        assert quality.degraded(0.5)

    def test_mixed_empty_and_populated_views(self):
        quality = score_feed(
            0, [make_view([]), clean_view()], expected_views=2
        )
        assert np.isfinite(quality.score)
        # The empty view still counts as delivered; the weighted
        # defect fractions come from the populated one alone.
        assert quality.num_views == 2
        assert quality.duplicate_fraction < 0.05
        assert quality.invalid_fraction == 0.0

    def test_zero_row_day_with_expectations_everywhere(self):
        history = [100.0, 120.0, 110.0]
        quality = score_feed(
            2,
            [make_view([]), make_view([], vantage="W")],
            history_packets=history,
            expected_views=4,
            typical_factors={"VP1": 1.0, "W": 1.0},
        )
        assert np.isfinite(quality.score)
        assert quality.score == 0.0
        assert any("empty" in reason for reason in quality.reasons)
