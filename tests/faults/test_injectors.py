"""Tests for the fault injectors and seeded fault plans."""

import numpy as np
import pytest

from repro.faults import (
    CorruptedFields,
    DuplicatedRecords,
    FaultPlan,
    MisreportedSampling,
    SiteOutage,
    StaleRib,
    StaleRibCollector,
    TruncatedDay,
    standard_injector,
)
from repro.faults.quality import _duplicate_fraction, _invalid_fraction

from _factories import ip, make_view

BASE = 0x140000  # 20.0.0.0/24


def sample_view(rows=40, vantage="V", day=0, sampling_factor=1.0):
    return make_view(
        [{"dst_ip": ip(BASE + i % 7, host=1 + i % 200)} for i in range(rows)],
        vantage=vantage,
        day=day,
        sampling_factor=sampling_factor,
    )


def rng():
    return np.random.default_rng(42)


class TestInjectors:
    def test_site_outage_drops_the_view(self):
        view, detail = SiteOutage().inject(sample_view(), rng())
        assert view is None
        assert "dropped" in detail

    def test_truncation_keeps_a_prefix(self):
        original = sample_view(rows=40)
        view, _ = TruncatedDay(keep_fraction=0.25).inject(original, rng())
        assert len(view.flows) == 10
        # A prefix slice, not a sample: the first rows survive.
        assert np.array_equal(view.flows.dst_ip, original.flows.dst_ip[:10])

    def test_duplication_reemits_rows(self):
        original = sample_view(rows=40)
        view, _ = DuplicatedRecords(duplicate_fraction=0.5).inject(
            original, rng()
        )
        assert len(view.flows) == 60
        assert _duplicate_fraction(view.flows) > _duplicate_fraction(
            original.flows
        )

    def test_corruption_produces_impossible_rows(self):
        original = sample_view(rows=40)
        view, _ = CorruptedFields(corrupt_fraction=0.5).inject(original, rng())
        assert len(view.flows) == len(original.flows)
        assert _invalid_fraction(view.flows) > 0.3
        assert _invalid_fraction(original.flows) == 0.0

    def test_misreported_sampling_touches_only_the_factor(self):
        original = sample_view(sampling_factor=100.0)
        view, _ = MisreportedSampling(factor_multiplier=0.1).inject(
            original, rng()
        )
        assert view.sampling_factor == pytest.approx(10.0)
        assert np.array_equal(view.flows.packets, original.flows.packets)

    def test_targeting_by_day_and_vantage(self):
        injector = SiteOutage(days=frozenset({2}), vantages=frozenset({"A"}))
        assert injector.applies(2, "A")
        assert not injector.applies(1, "A")
        assert not injector.applies(2, "B")
        assert SiteOutage().applies(0, "anything")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TruncatedDay(keep_fraction=1.5)
        with pytest.raises(ValueError):
            DuplicatedRecords(duplicate_fraction=-0.1)
        with pytest.raises(ValueError):
            CorruptedFields(corrupt_fraction=2.0)
        with pytest.raises(ValueError):
            MisreportedSampling(factor_multiplier=0.0)
        with pytest.raises(ValueError):
            StaleRib(lag_days=-1)


class TestFaultPlan:
    def test_deterministic_replay(self):
        views = [sample_view(vantage="A"), sample_view(vantage="B")]
        plan = lambda: FaultPlan(seed=9).add(
            DuplicatedRecords(duplicate_fraction=0.3)
        ).add(CorruptedFields(corrupt_fraction=0.2))
        once = plan().apply(0, views)
        again = plan().apply(0, views)
        for a, b in zip(once.views, again.views):
            assert np.array_equal(a.flows.dst_ip, b.flows.dst_ip)
            assert np.array_equal(a.flows.bytes, b.flows.bytes)

    def test_seed_changes_the_injection(self):
        views = [sample_view()]
        one = FaultPlan(seed=1).add(
            DuplicatedRecords(duplicate_fraction=0.3)
        ).apply(0, views)
        two = FaultPlan(seed=2).add(
            DuplicatedRecords(duplicate_fraction=0.3)
        ).apply(0, views)
        assert not np.array_equal(
            one.views[0].flows.dst_ip, two.views[0].flows.dst_ip
        )

    def test_outage_short_circuits_later_injectors(self):
        # TruncatedDay sorts after SiteOutage in the canonical name
        # order, so the outage kills the view before truncation runs —
        # regardless of the (reversed) construction order here.
        plan = FaultPlan().add(TruncatedDay(keep_fraction=0.5)).add(SiteOutage())
        faulted = plan.apply(0, [sample_view()])
        assert faulted.outage()
        assert [event.fault for event in faulted.events] == ["SiteOutage"]

    def test_composition_is_order_deterministic(self):
        views = [sample_view(vantage="A"), sample_view(vantage="B")]
        forwards = FaultPlan(seed=9).add(
            DuplicatedRecords(duplicate_fraction=0.3)
        ).add(CorruptedFields(corrupt_fraction=0.2))
        backwards = FaultPlan(seed=9).add(
            CorruptedFields(corrupt_fraction=0.2)
        ).add(DuplicatedRecords(duplicate_fraction=0.3))
        one = forwards.apply(0, views)
        two = backwards.apply(0, views)
        assert [e.fault for e in one.events] == [e.fault for e in two.events]
        for a, b in zip(one.views, two.views):
            assert np.array_equal(a.flows.src_ip, b.flows.src_ip)
            assert np.array_equal(a.flows.dst_ip, b.flows.dst_ip)
            assert np.array_equal(a.flows.bytes, b.flows.bytes)
            assert np.array_equal(a.flows.packets, b.flows.packets)

    def test_untargeted_views_pass_through(self):
        plan = FaultPlan().add(SiteOutage(vantages=frozenset({"A"})))
        faulted = plan.apply(0, [sample_view(vantage="A"), sample_view(vantage="B")])
        assert [view.vantage for view in faulted.views] == ["B"]
        assert faulted.events[0].vantage == "A"

    def test_event_log(self):
        plan = FaultPlan().add(TruncatedDay(keep_fraction=0.5))
        faulted = plan.apply(3, [sample_view(vantage="X", day=3)])
        event = faulted.events[0]
        assert (event.day, event.vantage, event.fault) == (3, "X", "TruncatedDay")
        assert "kept first" in event.detail

    def test_standard_injectors(self):
        for name in ("outage", "truncate", "duplicate", "corrupt",
                     "missample", "stale-rib"):
            injector = standard_injector(name, days=frozenset({1}))
            assert injector.applies(1, "V")
            assert not injector.applies(0, "V")
        with pytest.raises(ValueError):
            standard_injector("nope")


class _RecordingCollector:
    def __init__(self):
        self.requested = []

    def daily_table(self, day):
        self.requested.append(day)
        return f"table-{day}"


class TestStaleRib:
    def test_collector_serves_lagged_days(self):
        inner = _RecordingCollector()
        wrapped = StaleRibCollector(inner, [StaleRib(lag_days=2)])
        assert wrapped.daily_table(5) == "table-3"
        assert wrapped.daily_table(1) == "table-0"  # clamped at day 0

    def test_lag_respects_day_targeting(self):
        inner = _RecordingCollector()
        wrapped = StaleRibCollector(
            inner, [StaleRib(lag_days=2, days=frozenset({5}))]
        )
        assert wrapped.daily_table(5) == "table-3"
        assert wrapped.daily_table(4) == "table-4"

    def test_plan_wraps_only_when_needed(self):
        inner = _RecordingCollector()
        assert FaultPlan().wrap_collector(inner) is inner
        wrapped = FaultPlan().add(StaleRib(lag_days=1)).wrap_collector(inner)
        assert isinstance(wrapped, StaleRibCollector)

    def test_views_pass_through_stale_rib(self):
        view = sample_view()
        out, detail = StaleRib(lag_days=1).inject(view, rng())
        assert out is view
        assert "lagged" in detail
