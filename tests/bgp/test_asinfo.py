"""Tests for the AS registry."""

import pytest

from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem, Organization
from repro.geo.countries import Continent
from repro.net.ipv4 import Prefix


def make_as(asn=1, as_type=ASType.ISP, country="US", **kwargs):
    return AutonomousSystem(
        asn=asn,
        name=f"AS{asn}",
        org_id=f"ORG-{asn}",
        as_type=as_type,
        country_code=country,
        **kwargs,
    )


class TestAutonomousSystem:
    def test_country_lookup(self):
        assert make_as(country="DE").country.name == "Germany"

    def test_continent(self):
        assert make_as(country="JP").continent is Continent.ASIA

    def test_num_announced_blocks(self):
        autonomous_system = make_as()
        autonomous_system.announced.append(Prefix.parse("10.0.0.0/22"))
        autonomous_system.announced.append(Prefix.parse("11.0.0.0/24"))
        assert autonomous_system.num_announced_blocks() == 5

    def test_defaults(self):
        autonomous_system = make_as()
        assert not autonomous_system.is_cdn
        assert autonomous_system.spoof_filtered


class TestRegistry:
    def test_add_and_get(self):
        registry = ASRegistry()
        registry.add(make_as(5))
        assert registry.get(5).asn == 5
        assert 5 in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ASRegistry()
        registry.add(make_as(5))
        with pytest.raises(ValueError):
            registry.add(make_as(5))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            ASRegistry().get(99)

    def test_org_conflict_rejected(self):
        registry = ASRegistry()
        registry.add_org(Organization("O1", "Org One", "US"))
        registry.add_org(Organization("O1", "Org One", "US"))  # idempotent
        with pytest.raises(ValueError):
            registry.add_org(Organization("O1", "Other", "US"))

    def test_by_type(self):
        registry = ASRegistry.from_ases(
            [make_as(1, ASType.ISP), make_as(2, ASType.EDUCATION)]
        )
        assert [a.asn for a in registry.by_type(ASType.EDUCATION)] == [2]

    def test_by_country(self):
        registry = ASRegistry.from_ases(
            [make_as(1, country="US"), make_as(2, country="DE")]
        )
        assert [a.asn for a in registry.by_country("DE")] == [2]

    def test_from_ases_creates_orgs(self):
        registry = ASRegistry.from_ases([make_as(7)])
        assert registry.org("ORG-7").country_code == "US"

    def test_asns_sorted(self):
        registry = ASRegistry.from_ases([make_as(9), make_as(3)])
        assert registry.asns() == [3, 9]
