"""Tests for route events and the evented collector proxy."""

import pytest

from repro.bgp.events import EventedCollector, RouteEvent
from repro.net.ipv4 import Prefix


def event(days={1}, kind="leak", asn=64500):
    return RouteEvent(
        prefix=Prefix.parse("10.4.0.0/16"),
        by_asn=asn,
        days=frozenset(days),
        kind=kind,
    )


class TestRouteEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            event(kind="withdrawal")

    def test_announcement_is_unstable(self):
        announcement = event().announcement()
        assert announcement.origin_asn == 64500
        assert announcement.stable is False

    def test_active_window(self):
        leak = event(days={1, 2})
        assert not leak.active_on(0)
        assert leak.active_on(1) and leak.active_on(2)
        assert not leak.active_on(3)


class TestEventedCollector:
    def test_event_days_gain_the_announcement(self, world):
        evented = EventedCollector(world.collector, [event(days={1})])
        base_day1 = world.collector.daily_table(1)
        day0 = evented.daily_table(0)
        day1 = evented.daily_table(1)
        assert len(day0.announcements) == len(
            world.collector.daily_table(0).announcements
        )
        assert len(day1.announcements) == len(base_day1.announcements) + 1
        assert Prefix.parse("10.4.0.0/16") in day1.prefixes()

    def test_dumps_carry_the_event_too(self, world):
        evented = EventedCollector(world.collector, [event(days={1})])
        base = world.collector.dump(1, 0)
        dump = evented.dump(1, 0)
        assert dump.dump_hour == base.dump_hour
        assert len(dump.table.announcements) == len(base.table.announcements) + 1

    def test_daily_prefixes_derive_from_the_evented_table(self, world):
        evented = EventedCollector(world.collector, [event(days={0})])
        assert Prefix.parse("10.4.0.0/16") in evented.daily_prefixes(0)
