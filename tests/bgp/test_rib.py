"""Tests for RIB emulation and the Route Views collector."""

import numpy as np
import pytest

from repro.bgp.rib import (
    DUMPS_PER_DAY,
    Announcement,
    RibSnapshot,
    RouteViewsCollector,
    RoutingTable,
)
from repro.net.ipv4 import Prefix, parse_ip


def ann(text, asn, stable=True):
    return Announcement(prefix=Prefix.parse(text), origin_asn=asn, stable=stable)


class TestRoutingTable:
    def test_origin_lookup(self):
        table = RoutingTable([ann("10.0.0.0/8", 65001), ann("10.1.0.0/16", 65002)])
        assert table.origin_of_ip(parse_ip("10.1.2.3")) == 65002
        assert table.origin_of_ip(parse_ip("10.2.0.1")) == 65001
        assert table.origin_of_ip(parse_ip("11.0.0.1")) is None

    def test_origin_of_block(self):
        table = RoutingTable([ann("10.0.0.0/8", 65001)])
        assert table.origin_of_block(parse_ip("10.5.5.0") >> 8) == 65001

    def test_routed_block(self):
        table = RoutingTable([ann("10.0.0.0/8", 65001)])
        assert table.is_routed_block(parse_ip("10.0.1.0") >> 8)
        assert not table.is_routed_block(parse_ip("11.0.0.0") >> 8)

    def test_routed_mask(self):
        table = RoutingTable([ann("10.0.0.0/8", 65001)])
        blocks = np.array([parse_ip("10.0.0.0") >> 8, parse_ip("12.0.0.0") >> 8])
        assert table.routed_mask(blocks).tolist() == [True, False]

    def test_prefixes_sorted(self):
        table = RoutingTable([ann("11.0.0.0/8", 2), ann("10.0.0.0/8", 1)])
        assert [str(p) for p in table.prefixes()] == ["10.0.0.0/8", "11.0.0.0/8"]

    def test_len(self):
        assert len(RoutingTable([ann("10.0.0.0/8", 1)])) == 1


class TestCollector:
    def test_stable_in_every_dump(self):
        collector = RouteViewsCollector([ann("10.0.0.0/8", 1)])
        for dump_index in range(DUMPS_PER_DAY):
            snapshot = collector.dump(0, dump_index)
            assert isinstance(snapshot, RibSnapshot)
            assert len(snapshot.table) == 1

    def test_flapping_missing_sometimes(self):
        collector = RouteViewsCollector(
            [ann("10.0.0.0/8", 1), ann("10.0.0.0/9", 1, stable=False)], seed=3
        )
        sizes = {len(collector.dump(0, i).table) for i in range(DUMPS_PER_DAY)}
        assert sizes == {1, 2}  # the flapper disappears in some dumps

    def test_daily_union_includes_flappers(self):
        collector = RouteViewsCollector(
            [ann("10.0.0.0/8", 1), ann("10.0.0.0/9", 1, stable=False)], seed=3
        )
        daily = collector.daily_table(0)
        assert len(daily) == 2

    def test_dump_hours(self):
        collector = RouteViewsCollector([ann("10.0.0.0/8", 1)])
        assert collector.dump(2, 3).dump_hour == 2 * 24 + 6

    def test_dump_index_validated(self):
        collector = RouteViewsCollector([ann("10.0.0.0/8", 1)])
        with pytest.raises(ValueError):
            collector.dump(0, DUMPS_PER_DAY)

    def test_deterministic(self):
        a = RouteViewsCollector([ann("10.0.0.0/9", 1, stable=False)], seed=9)
        b = RouteViewsCollector([ann("10.0.0.0/9", 1, stable=False)], seed=9)
        for i in range(DUMPS_PER_DAY):
            assert len(a.dump(1, i).table) == len(b.dump(1, i).table)

    def test_daily_prefixes(self):
        collector = RouteViewsCollector([ann("10.0.0.0/8", 1)])
        assert [str(p) for p in collector.daily_prefixes(0)] == ["10.0.0.0/8"]
