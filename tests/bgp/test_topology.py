"""Tests for the AS topology and customer cones."""

import pytest

from repro.bgp.topology import AsTopology


def hierarchy():
    # 1,2 tier1; 10 mid (customer of 1,2); 100,101 stubs of 10; 200 stub of 2.
    return AsTopology.build_hierarchy(
        tier1=[1, 2],
        mid_tier={10: [1, 2]},
        stubs={100: [10], 101: [10], 200: [2]},
    )


class TestRelationships:
    def test_providers(self):
        topo = hierarchy()
        assert topo.providers_of(10) == {1, 2}
        assert topo.providers_of(100) == {10}

    def test_customers(self):
        topo = hierarchy()
        assert topo.customers_of(10) == {100, 101}

    def test_peers_symmetric(self):
        topo = hierarchy()
        assert 2 in topo.peers_of(1)
        assert 1 in topo.peers_of(2)

    def test_peering_not_in_cone(self):
        topo = hierarchy()
        assert 2 not in topo.customer_cone(1)

    def test_self_provider_rejected(self):
        topo = AsTopology()
        with pytest.raises(ValueError):
            topo.add_provider_customer(1, 1)

    def test_self_peering_rejected(self):
        topo = AsTopology()
        with pytest.raises(ValueError):
            topo.add_peering(1, 1)


class TestCones:
    def test_stub_cone_is_self(self):
        topo = hierarchy()
        assert topo.customer_cone(100) == {100}

    def test_mid_cone(self):
        topo = hierarchy()
        assert topo.customer_cone(10) == {10, 100, 101}

    def test_tier1_cone_transitive(self):
        topo = hierarchy()
        assert topo.customer_cone(1) == {1, 10, 100, 101}
        assert topo.customer_cone(2) == {2, 10, 100, 101, 200}

    def test_cone_cache_invalidated(self):
        topo = hierarchy()
        assert 300 not in topo.customer_cone(1)
        topo.add_provider_customer(1, 300)
        assert 300 in topo.customer_cone(1)


class TestStructure:
    def test_tier1_detection(self):
        topo = hierarchy()
        assert topo.tier1_asns() == [1, 2]

    def test_stub_detection(self):
        topo = hierarchy()
        assert topo.is_stub(100)
        assert not topo.is_stub(10)

    def test_asns_listing(self):
        topo = hierarchy()
        assert topo.asns() == [1, 2, 10, 100, 101, 200]

    def test_transit_path_exists(self):
        topo = hierarchy()
        assert topo.transit_path_exists(100, 200)
        assert topo.transit_path_exists(5, 5)
