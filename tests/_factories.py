"""Hand-crafted flow/view factories for precise pipeline tests."""

from __future__ import annotations

import numpy as np

from repro.bgp.rib import Announcement, RoutingTable
from repro.net.ipv4 import Prefix
from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP
from repro.vantage.sampling import VantageDayView


def make_flows(rows: list[dict]) -> FlowTable:
    """Build a FlowTable from row dicts with sensible defaults.

    Recognised keys: src_ip, dst_ip, proto, dport, packets, bytes,
    sender_asn, dst_asn, spoofed.  ``bytes`` defaults to 40 per packet
    (bare TCP SYNs).
    """
    defaults = {
        "src_ip": 0x01010101,
        "dst_ip": 0x02020202,
        "proto": PROTO_TCP,
        "dport": 23,
        "packets": 1,
        "bytes": None,
        "sender_asn": 1,
        "dst_asn": 2,
        "spoofed": False,
    }
    filled = []
    for row in rows:
        merged = {**defaults, **row}
        if merged["bytes"] is None:
            merged["bytes"] = merged["packets"] * 40
        filled.append(merged)
    return FlowTable(
        src_ip=np.array([r["src_ip"] for r in filled], dtype=np.uint32),
        dst_ip=np.array([r["dst_ip"] for r in filled], dtype=np.uint32),
        proto=np.array([r["proto"] for r in filled], dtype=np.uint8),
        dport=np.array([r["dport"] for r in filled], dtype=np.uint16),
        packets=np.array([r["packets"] for r in filled], dtype=np.int64),
        bytes=np.array([r["bytes"] for r in filled], dtype=np.int64),
        sender_asn=np.array([r["sender_asn"] for r in filled], dtype=np.int32),
        dst_asn=np.array([r["dst_asn"] for r in filled], dtype=np.int32),
        spoofed=np.array([r["spoofed"] for r in filled], dtype=bool),
    )


def make_view(
    rows: list[dict],
    vantage: str = "VP1",
    day: int = 0,
    sampling_factor: float = 1.0,
) -> VantageDayView:
    """A vantage-day view over hand-written rows."""
    return VantageDayView(
        vantage=vantage,
        day=day,
        flows=make_flows(rows),
        sampling_factor=sampling_factor,
    )


def routing_for(*prefix_texts: str, origin: int = 65000) -> RoutingTable:
    """A routing table announcing the given prefixes."""
    return RoutingTable(
        Announcement(prefix=Prefix.parse(text), origin_asn=origin + i)
        for i, text in enumerate(prefix_texts)
    )


def ip(block: int, host: int = 1) -> int:
    """Address ``host`` inside /24 block id ``block``."""
    if not 0 <= host <= 255:
        raise ValueError("host out of range")
    return (block << 8) | host
