"""IPv6 flow-table and prefix-list serialisation round-trips."""

import numpy as np
import pytest

from repro.flowpack import FlowpackError, append_flows_archive
from repro.io import (
    convert_flows,
    prefix_list_text,
    read_flows_archive,
    read_flows_csv,
    read_prefix_list,
    write_flows_archive,
    write_flows_csv,
    write_prefix_list,
)
from repro.net.family import IPV6
from repro.net.ipv6 import Ipv6Prefix
from repro.traffic.flows import FLOW_COLUMNS_V6, FlowTable


def random_v6_flows(rng: np.random.Generator, rows: int) -> FlowTable:
    return FlowTable(
        # Engine keys stay int64-safe (< 2**63)...
        src_ip=rng.integers(0, 2**63, rows, dtype=np.uint64),
        dst_ip=rng.integers(0, 2**63, rows, dtype=np.uint64),
        proto=rng.integers(0, 256, rows, dtype=np.uint8),
        dport=rng.integers(0, 2**16, rows, dtype=np.uint16),
        packets=rng.integers(0, 2**40, rows, dtype=np.int64),
        bytes=rng.integers(0, 2**45, rows, dtype=np.int64),
        sender_asn=rng.integers(-1, 2**31 - 1, rows, dtype=np.int32),
        dst_asn=rng.integers(-1, 2**31 - 1, rows, dtype=np.int32),
        spoofed=rng.integers(0, 2, rows).astype(bool),
        # ...but the lo side columns use the full uint64 range, so the
        # round-trip must not pass them through int64.
        src_ip_lo=rng.integers(0, 2**64, rows, dtype=np.uint64),
        dst_ip_lo=rng.integers(0, 2**64, rows, dtype=np.uint64),
        family="ipv6",
    )


def tables_equal(a: FlowTable, b: FlowTable) -> bool:
    return (
        a.family == b.family
        and len(a) == len(b)
        and all(
            np.array_equal(getattr(a, name), getattr(b, name))
            for name in FLOW_COLUMNS_V6
        )
    )


@pytest.fixture()
def flows():
    rng = np.random.default_rng(11)
    table = random_v6_flows(rng, 150)
    assert table.dst_ip_lo.max() > 2**63, "fixture should stress uint64 range"
    return table


class TestFlowRoundTrips:
    def test_csv(self, flows, tmp_path):
        path = tmp_path / "v6.csv"
        write_flows_csv(flows, path)
        assert tables_equal(read_flows_csv(path), flows)

    def test_flowpack(self, flows, tmp_path):
        path = tmp_path / "v6.fpk"
        write_flows_archive(flows, path, chunk_rows=32)
        assert tables_equal(read_flows_archive(path), flows)

    def test_empty_v6_table(self, tmp_path):
        empty = FlowTable.empty("ipv6")
        path = tmp_path / "empty.fpk"
        write_flows_archive(empty, path)
        loaded = read_flows_archive(path)
        assert loaded.family == "ipv6" and len(loaded) == 0

    def test_append_family_mismatch_rejected(self, flows, tmp_path):
        path = tmp_path / "v6.fpk"
        write_flows_archive(flows, path)
        v4 = FlowTable.empty("ipv4")
        with pytest.raises(FlowpackError, match="ipv6"):
            append_flows_archive(v4, path)

    def test_append_same_family_extends(self, flows, tmp_path):
        path = tmp_path / "v6.fpk"
        write_flows_archive(flows, path)
        append_flows_archive(flows, path)
        assert len(read_flows_archive(path)) == 2 * len(flows)

    def test_convert_preserves_family_both_ways(self, flows, tmp_path):
        csv = tmp_path / "v6.csv"
        pack = tmp_path / "v6.fpk"
        back = tmp_path / "back.csv"
        write_flows_csv(flows, csv)
        assert convert_flows(csv, pack, to="flowpack", chunk_rows=40) == len(flows)
        assert tables_equal(read_flows_archive(pack), flows)
        assert convert_flows(pack, back, to="csv", chunk_rows=40) == len(flows)
        assert tables_equal(read_flows_csv(back), flows)


class TestPrefixLists:
    SITES = [
        "2001:db8::/48",
        "2001:db8:1::/48",
        "2001:db8:2::/48",
        "2001:db8:10::/48",
    ]

    def blocks(self):
        return np.array(
            [Ipv6Prefix.parse(p).first_site() for p in self.SITES],
            dtype=np.int64,
        )

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "v6.prefixes"
        write_prefix_list(self.blocks(), path, comment="v6 dark", family=IPV6)
        assert np.array_equal(read_prefix_list(path, family=IPV6), self.blocks())

    def test_aggregated_list_reads_back_to_same_blocks(self, tmp_path):
        path = tmp_path / "v6-agg.prefixes"
        write_prefix_list(self.blocks(), path, aggregate=True, family=IPV6)
        assert np.array_equal(read_prefix_list(path, family=IPV6), self.blocks())

    def test_aggregate_collapses_contiguous_sites(self):
        text = prefix_list_text(self.blocks(), aggregate=True, family=IPV6)
        lines = [line for line in text.splitlines() if line]
        # 2001:db8::/48 + :1::/48 collapse into a /47; :2:: and :10::
        # stay alone.
        assert lines == ["2001:db8::/47", "2001:db8:2::/48", "2001:db8:10::/48"]
