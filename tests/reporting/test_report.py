"""Tests for the markdown operator report."""

import pytest

from repro.core import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.reporting.report import generate_report


@pytest.fixture(scope="module")
def report_setup(integration_world, integration_observatory):
    world = integration_world
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    views = integration_observatory.all_ixp_views(num_days=1)
    result = telescope.infer(views, use_spoofing_tolerance=True)
    return world, telescope, views, result


class TestReport:
    def test_full_report_sections(self, report_setup):
        world, telescope, views, result = report_setup
        text = generate_report(
            telescope,
            views,
            result,
            geodb=world.datasets.geodb,
            pfx2as=world.datasets.pfx2as,
            title="Test report",
        )
        assert text.startswith("# Test report")
        for heading in (
            "## Inference",
            "## Geography",
            "## Largest dark footprints per AS",
            "## Traffic toward the meta-telescope",
            "## Threat summary",
        ):
            assert heading in text
        assert f"{result.num_prefixes():,} meta-telescope /24 prefixes" in text
        assert "| observed /24 subnets |" in text

    def test_minimal_report_without_datasets(self, report_setup):
        _, telescope, views, result = report_setup
        text = generate_report(telescope, views, result)
        assert "## Geography" not in text
        assert "## Largest dark footprints" not in text
        assert "## Threat summary" in text

    def test_report_lists_vantages_and_window(self, report_setup):
        _, telescope, views, result = report_setup
        text = generate_report(telescope, views, result)
        assert "day 0–0" in text
        assert "CE1" in text

    def test_markdown_tables_well_formed(self, report_setup):
        world, telescope, views, result = report_setup
        text = generate_report(
            telescope, views, result,
            geodb=world.datasets.geodb, pfx2as=world.datasets.pfx2as,
        )
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
                assert line.count("|") >= 3

    def test_cli_report_command(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "report.md"
        assert main(
            ["report", "--scale", "micro", "--output", str(output)]
        ) == 0
        assert output.read_text().startswith("# Meta-telescope report")
