"""Tests for the text rendering helpers."""

import numpy as np
import pytest

from repro.reporting.beanplot import render_bean_rows, render_share_table
from repro.reporting.ecdf import Ecdf, render_ecdf_rows
from repro.reporting.tables import format_table
from repro.reporting.worldmap import render_country_bars


class TestTables:
    def test_basic_alignment(self):
        text = format_table(["name", "count"], [["a", 10], ["bb", 2000]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "2,000" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_nan(self):
        assert "nan" in format_table(["v"], [[float("nan")]])

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestEcdf:
    def test_at(self):
        ecdf = Ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ecdf.at(2.0) == pytest.approx(0.5)
        assert ecdf.at(0.0) == 0.0
        assert ecdf.at(10.0) == 1.0

    def test_survival(self):
        ecdf = Ecdf(np.array([1.0, 2.0]))
        assert ecdf.survival(1.0) == pytest.approx(0.5)

    def test_quantile(self):
        ecdf = Ecdf(np.array([1.0, 2.0, 3.0]))
        assert ecdf.quantile(0.5) == 2.0

    def test_quantile_validates(self):
        with pytest.raises(ValueError):
            Ecdf(np.array([1.0])).quantile(1.5)
        with pytest.raises(ValueError):
            Ecdf(np.array([])).quantile(0.5)

    def test_sample_points_monotone(self):
        ecdf = Ecdf(np.array([3.0, 1.0, 2.0]))
        x, y = ecdf.sample_points()
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert (np.diff(y) >= 0).all()

    def test_render_rows(self):
        rows = render_ecdf_rows({"a": Ecdf(np.array([1.0]))}, np.array([0.5, 1.5]))
        assert rows[0] == [0.5, "0.000"]
        assert rows[1] == [1.5, "1.000"]


class TestBeanplot:
    def test_render(self):
        text = render_bean_rows([23, 80], ["NA", "EU"], np.array([[1.0, 0.5], [0.2, 0.0]]))
        lines = text.splitlines()
        assert len(lines) == 3
        assert "23" in lines[1]
        assert "█" in lines[1]

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            render_bean_rows([23], ["NA"], np.zeros((2, 2)))

    def test_share_table(self):
        rows = render_share_table([23], ["NA"], np.array([[0.5]]))
        assert rows == [[23, 0.5]]

    def test_zero_matrix(self):
        text = render_bean_rows([23], ["NA"], np.zeros((1, 1)))
        assert "23" in text


class TestWorldmap:
    def test_render(self):
        text = render_country_bars({"US": 1000, "DE": 10})
        lines = text.splitlines()
        assert lines[0].startswith("US")
        assert "1,000" in lines[0]

    def test_top_limits(self):
        text = render_country_bars({"US": 10, "DE": 5, "CN": 1}, top=2)
        assert len(text.splitlines()) == 2

    def test_empty(self):
        assert render_country_bars({}) == "(no data)"
