"""Tests for the country/continent registry."""

import pytest

from repro.geo.countries import (
    CONTINENTS,
    COUNTRIES,
    Continent,
    countries_of_continent,
    country_by_code,
)


class TestRegistry:
    def test_codes_unique(self):
        codes = [c.code for c in COUNTRIES]
        assert len(codes) == len(set(codes))

    def test_every_continent_populated(self):
        populated = {c.continent for c in COUNTRIES}
        assert populated == set(CONTINENTS)

    def test_lookup(self):
        assert country_by_code("US").name == "United States"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            country_by_code("XX")

    def test_us_dominates_allocation(self):
        us = country_by_code("US")
        others = [c.allocation_weight for c in COUNTRIES if c.code != "US"]
        assert us.allocation_weight > max(others)

    def test_china_second(self):
        ranked = sorted(COUNTRIES, key=lambda c: -c.allocation_weight)
        assert [c.code for c in ranked[:2]] == ["US", "CN"]

    def test_weights_positive(self):
        assert all(c.allocation_weight > 0 for c in COUNTRIES)

    def test_legacy_share_bounded(self):
        assert all(0.0 <= c.legacy_share <= 1.0 for c in COUNTRIES)

    def test_continent_filter(self):
        africa = countries_of_continent(Continent.AFRICA)
        assert {c.continent for c in africa} == {Continent.AFRICA}
        assert len(africa) >= 5

    def test_continent_values_match_paper_labels(self):
        assert {c.value for c in CONTINENTS} == {
            "NA", "SA", "EU", "AS", "AF", "OC", "INT",
        }

    def test_small_countries_present(self):
        # The paper highlights visibility into small/unusual countries.
        for code in ("KP", "TD", "FJ"):
            assert country_by_code(code)
