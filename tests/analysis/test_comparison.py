"""Tests for the port-statistics comparison (paper §4.3 evaluation (ii))."""

import pytest

from repro.analysis.comparison import compare_port_statistics

from _factories import ip, make_flows


def flows_for(port_counts):
    rows = []
    for port, packets in port_counts.items():
        rows.append({"dst_ip": ip(1), "dport": port, "packets": packets})
    return make_flows(rows)


class TestComparison:
    def test_identical_distributions(self):
        flows = flows_for({23: 100, 80: 50, 443: 10})
        comparison = compare_port_statistics(flows, flows, top_k=3)
        assert comparison.overlap == 3
        assert comparison.overlap_share() == 1.0
        assert comparison.spearman_rho == pytest.approx(1.0)
        assert comparison.l1_distance == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        left = flows_for({23: 100})
        right = flows_for({9999: 100})
        comparison = compare_port_statistics(left, right, top_k=1)
        assert comparison.overlap == 0
        assert comparison.l1_distance == pytest.approx(1.0)

    def test_same_ports_inverted_ranks(self):
        left = flows_for({23: 100, 80: 10})
        right = flows_for({23: 10, 80: 100})
        comparison = compare_port_statistics(left, right, top_k=2)
        assert comparison.overlap == 2
        assert comparison.spearman_rho == pytest.approx(-1.0)

    def test_partial_overlap(self):
        left = flows_for({23: 100, 80: 50})
        right = flows_for({23: 80, 22: 40})
        comparison = compare_port_statistics(left, right, top_k=2)
        assert comparison.overlap == 1
        assert 0.0 < comparison.l1_distance < 1.0

    def test_world_meta_vs_telescope(
        self, integration_world, integration_observatory
    ):
        """The paper's finding: meta-telescope port stats closely match
        the operational telescopes'."""
        from repro.core import MetaTelescope
        from repro.core.pipeline import PipelineConfig

        world = integration_world
        telescope = MetaTelescope(
            collector=world.collector,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        views = integration_observatory.all_ixp_views(num_days=1)
        result = telescope.infer(views, use_spoofing_tolerance=True)
        captured = telescope.captured_traffic(views, result)
        tus1 = integration_observatory.day(0).telescope_views["TUS1"].flows
        comparison = compare_port_statistics(captured, tus1, top_k=10)
        assert comparison.overlap >= 7
        assert comparison.spearman_rho > 0.5
        assert comparison.l1_distance < 0.5
