"""Tests for backscatter victim detection and scanner characterisation."""

import numpy as np
import pytest

from repro.analysis.backscatter_analysis import detect_victims
from repro.analysis.scanners_analysis import (
    CAMPAIGN_FINGERPRINTS,
    ScannerReport,
    campaign_summary,
    classify_campaign,
    detect_scanners,
)
from repro.traffic.packets import PROTO_UDP

from _factories import ip, make_flows


def backscatter_rows(victim=0x0A0A0A0A, blocks=range(100, 110)):
    """Replies from one victim to dispersed dark blocks/ephemeral ports."""
    return [
        {
            "src_ip": victim,
            "dst_ip": ip(block, 1),
            "dport": 20000 + 137 * i,
            "packets": 2,
        }
        for i, block in enumerate(blocks)
    ]


def scan_rows(scanner=0x0B0B0B0B, port=23, blocks=range(300, 330)):
    """Probes from one scanner to many blocks on a fixed port."""
    return [
        {"src_ip": scanner, "dst_ip": ip(block, 7), "dport": port, "sender_asn": 42}
        for block in blocks
    ]


class TestVictimDetection:
    def test_detects_victim(self):
        analysis = detect_victims(make_flows(backscatter_rows()))
        assert len(analysis.victims) == 1
        victim = analysis.victims[0]
        assert victim.victim_ip == 0x0A0A0A0A
        assert victim.spread_blocks == 10
        assert victim.packets == 20

    def test_scanner_on_high_port_not_a_victim(self):
        # Fixed high destination port (8080) fails the dispersion test.
        flows = make_flows(scan_rows(port=8080))
        analysis = detect_victims(flows)
        assert analysis.victims == []

    def test_min_spread_respected(self):
        flows = make_flows(backscatter_rows(blocks=range(100, 102)))
        assert detect_victims(flows, min_spread_blocks=3).victims == []

    def test_min_packets_respected(self):
        flows = make_flows(backscatter_rows())
        assert detect_victims(flows, min_packets=100).victims == []

    def test_udp_ignored(self):
        rows = backscatter_rows()
        for row in rows:
            row["proto"] = PROTO_UDP
        assert detect_victims(make_flows(rows)).victims == []

    def test_share_accounting(self):
        flows = make_flows(backscatter_rows() + scan_rows())
        analysis = detect_victims(flows)
        assert 0 < analysis.backscatter_share() < 1
        assert analysis.victims[0].estimated_attack_share(
            analysis.backscatter_packets
        ) == pytest.approx(1.0)

    def test_empty(self):
        analysis = detect_victims(make_flows([]))
        assert analysis.victims == []
        assert analysis.backscatter_share() == 0.0


class TestScannerDetection:
    def test_detects_scanner(self):
        reports = detect_scanners(make_flows(scan_rows()))
        assert len(reports) == 1
        report = reports[0]
        assert report.source_ip == 0x0B0B0B0B
        assert report.sender_asn == 42
        assert report.footprint_blocks == 30
        assert report.ports == (23,)

    def test_small_footprint_excluded(self):
        reports = detect_scanners(
            make_flows(scan_rows(blocks=range(300, 302)))
        )
        assert reports == []

    def test_backscatter_not_a_scanner(self):
        # Dispersed ephemeral ports: not a concentrated port set.
        reports = detect_scanners(
            make_flows(backscatter_rows(blocks=range(100, 130)))
        )
        assert reports == []

    def test_heavy_flag(self):
        report = detect_scanners(
            make_flows(scan_rows(blocks=range(300, 400)))
        )[0]
        assert report.is_heavy(footprint_threshold=50)
        assert not report.is_heavy(footprint_threshold=500)

    def test_multi_port_scanner_ports_ranked(self):
        rows = scan_rows(port=23) + scan_rows(port=2222, blocks=range(300, 310))
        report = detect_scanners(make_flows(rows))[0]
        assert report.ports[0] == 23
        assert set(report.ports) == {23, 2222}


class TestCampaignClassification:
    def make_report(self, ports):
        return ScannerReport(
            source_ip=1, sender_asn=1, packets=10,
            footprint_blocks=100, ports=tuple(ports),
        )

    def test_mirai_fingerprint(self):
        assert classify_campaign(self.make_report([23, 2222])) == "mirai-family"

    def test_satori_fingerprint(self):
        assert classify_campaign(self.make_report([37215, 52869])) == "satori"

    def test_unknown_ports(self):
        assert classify_campaign(self.make_report([9999])) is None

    def test_fingerprints_disjoint_enough(self):
        # Every fingerprint classifies its own full port set to itself.
        for family, fingerprint in CAMPAIGN_FINGERPRINTS.items():
            report = self.make_report(sorted(fingerprint))
            assert classify_campaign(report) == family, family

    def test_summary(self):
        reports = [
            self.make_report([23]),
            self.make_report([37215]),
            self.make_report([9999]),
        ]
        summary = campaign_summary(reports)
        assert summary["mirai-family"] == 1
        assert summary["satori"] == 1
        assert summary["unclassified"] == 1


class TestOnWorldTraffic:
    def test_world_victims_and_scanners(
        self, integration_world, integration_observatory
    ):
        """The detectors work on real simulated telescope traffic."""
        view = integration_observatory.day(0).telescope_views["TUS1"]
        scanners = detect_scanners(view.flows, min_footprint_blocks=3)
        assert scanners, "simulated IBR must contain detectable scanners"
        summary = campaign_summary(scanners)
        assert "mirai-family" in summary or "web-recon" in summary
        analysis = detect_victims(view.flows, min_spread_blocks=2,
                                  min_packets=2)
        # Backscatter victims are present in ground truth; at capture
        # scale at least some should be recovered.
        assert analysis.backscatter_packets >= 0
