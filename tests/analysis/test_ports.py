"""Tests for port-ranking analyses."""

import numpy as np
import pytest

from repro.analysis.ports import (
    bean_matrix,
    port_activity_by_group,
    port_packet_counts,
    tcp_share,
    top_ports,
    top_ports_per_group,
)
from repro.traffic.packets import PROTO_UDP

from _factories import ip, make_flows


def flows_with_ports():
    return make_flows(
        [
            {"dst_ip": ip(1), "dport": 23, "packets": 10},
            {"dst_ip": ip(1), "dport": 80, "packets": 5},
            {"dst_ip": ip(2), "dport": 23, "packets": 7},
            {"dst_ip": ip(2), "dport": 443, "packets": 2},
            {"dst_ip": ip(2), "dport": 53, "proto": PROTO_UDP, "packets": 99},
        ]
    )


class TestRanking:
    def test_top_ports_order(self):
        assert top_ports(flows_with_ports(), count=3) == [23, 80, 443]

    def test_udp_excluded_by_default(self):
        assert 53 not in top_ports(flows_with_ports(), count=10)

    def test_udp_included_when_requested(self):
        ports = top_ports(flows_with_ports(), count=1, tcp_only=False)
        assert ports == [53]

    def test_counts(self):
        activity = port_packet_counts(flows_with_ports())
        assert activity.share_of(23) == pytest.approx(17 / 24)
        assert activity.rank_of(23) == 1
        assert activity.rank_of(9999) is None

    def test_empty(self):
        activity = port_packet_counts(make_flows([]))
        assert activity.share_of(23) == 0.0
        assert top_ports(make_flows([])) == []


class TestGrouping:
    def group_map(self):
        return {1: "NA", 2: "EU"}

    def test_by_group(self):
        grouped = port_activity_by_group(flows_with_ports(), self.group_map())
        assert set(grouped) == {"NA", "EU"}
        assert grouped["NA"].share_of(23) == pytest.approx(10 / 15)

    def test_unmapped_blocks_skipped(self):
        grouped = port_activity_by_group(flows_with_ports(), {1: "NA"})
        assert set(grouped) == {"NA"}

    def test_union_top_list(self):
        grouped = port_activity_by_group(flows_with_ports(), self.group_map())
        union = top_ports_per_group(grouped, per_group=2)
        assert union[0] == 23  # globally dominant
        assert set(union) == {23, 80, 443}

    def test_bean_matrix_group_relative(self):
        grouped = port_activity_by_group(flows_with_ports(), self.group_map())
        groups, matrix = bean_matrix(grouped, [23, 80], relative_to="group")
        assert groups == ["EU", "NA"]
        na = groups.index("NA")
        assert matrix[0, na] == pytest.approx(10 / 15)
        assert matrix[1, na] == pytest.approx(5 / 15)

    def test_bean_matrix_overall(self):
        grouped = port_activity_by_group(flows_with_ports(), self.group_map())
        groups, matrix = bean_matrix(grouped, [23], relative_to="overall")
        assert matrix.sum() == pytest.approx(17 / 24)


class TestTcpShare:
    def test_share(self):
        assert tcp_share(flows_with_ports()) == pytest.approx(24 / 123)

    def test_empty(self):
        assert tcp_share(make_flows([])) == 0.0
