"""Tests for geo distribution, network types, prefix index, Hilbert viz."""

import numpy as np
import pytest

from repro.analysis.geo_dist import (
    continent_counts,
    country_counts,
    inventory_row,
    log_scale_world_counts,
)
from repro.analysis.hilbert_viz import (
    hilbert_grid,
    precision_inside_reference,
    render_hilbert_ascii,
    write_pgm,
)
from repro.analysis.nettypes import dark_share_by_type, type_continent_matrix
from repro.analysis.prefix_index import (
    index_values_by_group,
    prefix_index_distribution,
    share_exceeding,
)
from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem
from repro.bgp.rib import Announcement, RoutingTable
from repro.datasets.geodb import GeoDatabase
from repro.datasets.ipinfo import AsClassification
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import Prefix, parse_ip


def geodb():
    return GeoDatabase(
        blocks=np.array([10, 11, 20]),
        country_codes=np.array(["US", "US", "DE"]),
    )


def routing():
    return RoutingTable(
        [
            Announcement(Prefix.parse("20.0.0.0/16"), 1),
            Announcement(Prefix.parse("21.0.0.0/16"), 2),
        ]
    )


def pfx2as():
    return PrefixToAsMap.from_routing_table(routing())


def classification():
    registry = ASRegistry.from_ases(
        [
            AutonomousSystem(1, "a", "O1", ASType.ISP, "US"),
            AutonomousSystem(2, "b", "O2", ASType.DATA_CENTER, "DE"),
        ]
    )
    rng = np.random.default_rng(0)
    return AsClassification.from_registry(registry, 0.0, rng)


class TestGeoDist:
    def test_country_counts_sorted(self):
        counts = country_counts(np.array([10, 11, 20]), geodb())
        assert counts == {"US": 2, "DE": 1}
        assert list(counts)[0] == "US"

    def test_unknown_skipped(self):
        counts = country_counts(np.array([10, 999]), geodb())
        assert counts == {"US": 1}

    def test_continent_counts(self):
        counts = continent_counts(np.array([10, 20]), geodb())
        assert counts == {"NA": 1, "EU": 1}

    def test_log_scale(self):
        scaled = log_scale_world_counts({"US": 100})
        assert scaled["US"] == pytest.approx(2.0)

    def test_inventory_row(self):
        base20 = parse_ip("20.0.0.0") >> 8
        base21 = parse_ip("21.0.0.0") >> 8
        geo = GeoDatabase(
            blocks=np.array([base20, base21]),
            country_codes=np.array(["US", "DE"]),
        )
        row = inventory_row(np.array([base20, base21]), geo, pfx2as())
        assert row == (2, 2, 2)


class TestNetTypes:
    def test_matrix(self):
        base20 = parse_ip("20.0.0.0") >> 8
        base21 = parse_ip("21.0.0.0") >> 8
        geo = GeoDatabase(
            blocks=np.array([base20, base21]),
            country_codes=np.array(["US", "DE"]),
        )
        matrix = type_continent_matrix(
            np.array([base20, base21]), geo, pfx2as(), classification()
        )
        assert matrix["All"]["Total"] == 2
        assert matrix["NA"]["ISP"] == 1
        assert matrix["EU"]["Data Center"] == 1

    def test_dark_share_by_type(self):
        base20 = parse_ip("20.0.0.0") >> 8
        base21 = parse_ip("21.0.0.0") >> 8
        universe = np.array([base20, base20 + 1, base21, base21 + 1])
        shares = dark_share_by_type(
            np.array([base20]), universe, pfx2as(), classification()
        )
        assert shares["ISP"] == pytest.approx(0.5)
        assert shares["Data Center"] == 0.0


class TestPrefixIndex:
    def test_distribution(self):
        base20 = parse_ip("20.0.0.0") >> 8
        dark = np.arange(base20, base20 + 64)
        per_length = prefix_index_distribution(dark, routing(), lengths=(16,))
        entries = per_length[16]
        assert len(entries) == 2
        indices = {str(e.prefix): e.index for e in entries}
        assert indices["20.0.0.0/16"] == pytest.approx(64 / 256)
        assert indices["21.0.0.0/16"] == 0.0

    def test_share_exceeding(self):
        per_length = prefix_index_distribution(
            np.arange(parse_ip("20.0.0.0") >> 8, (parse_ip("20.0.0.0") >> 8) + 64),
            routing(),
            lengths=(16,),
        )
        assert share_exceeding(per_length[16], 0.05) == pytest.approx(0.5)
        assert share_exceeding([], 0.05) == 0.0

    def test_values_by_group(self):
        dark = np.arange(parse_ip("20.0.0.0") >> 8, (parse_ip("20.0.0.0") >> 8) + 64)
        groups = index_values_by_group(
            dark, routing(), {1: "ISP", 2: "DC"}, lengths=(16,)
        )
        assert groups["ISP"].tolist() == [pytest.approx(0.25)]
        assert groups["DC"].tolist() == [0.0]


class TestHilbert:
    def test_grid_marks(self):
        base = Prefix.parse("20.0.0.0/16")
        first = base.first_block()
        hmap = hilbert_grid(
            base,
            dark_blocks=np.array([first, first + 1]),
            reference_blocks=np.array([first, first + 5]),
        )
        assert (hmap.grid == 1).sum() == 2  # dark wins overlaps
        assert (hmap.grid == 2).sum() == 1
        assert hmap.dark_pixels() == 2

    def test_out_of_range_ignored(self):
        base = Prefix.parse("20.0.0.0/16")
        hmap = hilbert_grid(base, dark_blocks=np.array([0]))
        assert hmap.dark_pixels() == 0

    def test_precision(self):
        base = Prefix.parse("20.0.0.0/16")
        first = base.first_block()
        inside, outside = precision_inside_reference(
            base,
            dark_blocks=np.array([first, first + 1, first + 9]),
            reference_blocks=np.array([first, first + 1]),
        )
        assert (inside, outside) == (2, 1)

    def test_ascii_render(self):
        base = Prefix.parse("20.0.0.0/16")
        first = base.first_block()
        hmap = hilbert_grid(base, dark_blocks=np.array([first]))
        text = render_hilbert_ascii(hmap)
        assert "#" in text
        assert len(text.splitlines()) == 16

    def test_ascii_downsample(self):
        base = Prefix.parse("20.0.0.0/12")
        first = base.first_block()
        hmap = hilbert_grid(base, dark_blocks=np.arange(first, first + 50))
        text = render_hilbert_ascii(hmap, max_side=16)
        assert len(text.splitlines()) == 16
        assert "#" in text

    def test_pgm_output(self, tmp_path):
        base = Prefix.parse("20.0.0.0/16")
        hmap = hilbert_grid(base, dark_blocks=np.array([base.first_block()]))
        path = tmp_path / "map.pgm"
        write_pgm(hmap, str(path))
        data = path.read_bytes()
        assert data.startswith(b"P5\n16 16\n255\n")
        assert 255 in data[len(b"P5\n16 16\n255\n"):]
