"""Tests for the prefix-set stability metrics."""

import numpy as np
import pytest

from repro.analysis.stability import stability_report


class TestStabilityReport:
    def test_identical_days(self):
        daily = {0: np.array([1, 2, 3]), 1: np.array([1, 2, 3])}
        report = stability_report(daily)
        assert report.adjacent_similarity() == 1.0
        assert report.retention.tolist() == [1.0, 1.0]
        assert report.survival.tolist() == [1.0, 1.0]

    def test_disjoint_days(self):
        daily = {0: np.array([1]), 1: np.array([2])}
        report = stability_report(daily)
        assert report.adjacent_similarity() == 0.0
        assert report.retention[1] == 0.0
        assert report.survival[1] == 0.0

    def test_partial_overlap(self):
        daily = {0: np.array([1, 2]), 1: np.array([2, 3])}
        report = stability_report(daily)
        assert report.jaccard_matrix[0, 1] == pytest.approx(1 / 3)
        assert report.retention[1] == pytest.approx(0.5)

    def test_survival_vs_day_zero(self):
        daily = {
            0: np.array([1, 2, 3, 4]),
            1: np.array([1, 2, 3]),
            2: np.array([1]),
        }
        report = stability_report(daily)
        assert report.survival.tolist() == [1.0, 0.75, 0.25]

    def test_matrix_symmetric_with_unit_diagonal(self):
        daily = {0: np.array([1, 2]), 1: np.array([2]), 2: np.array([9])}
        report = stability_report(daily)
        assert np.allclose(report.jaccard_matrix, report.jaccard_matrix.T)
        assert np.allclose(np.diag(report.jaccard_matrix), 1.0)

    def test_days_sorted(self):
        daily = {3: np.array([1]), 1: np.array([1])}
        report = stability_report(daily)
        assert report.days == (1, 3)

    def test_single_day(self):
        report = stability_report({0: np.array([1])})
        assert report.adjacent_similarity() == 1.0

    def test_empty_day_handled(self):
        report = stability_report({0: np.array([]), 1: np.array([1])})
        assert report.retention[1] == 1.0  # vacuous: nothing to retain
        assert report.survival[1] == 1.0

    def test_requires_days(self):
        with pytest.raises(ValueError):
            stability_report({})
