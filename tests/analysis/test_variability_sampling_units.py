"""Unit-level tests for the variability and sampling-study helpers."""

import numpy as np
import pytest

from repro.analysis.sampling_study import SamplingPoint, sampling_sweep
from repro.analysis.variability import DailySeries, daily_dark_sets, daily_series
from repro.bgp.rib import Announcement, RouteViewsCollector
from repro.core.metatelescope import MetaTelescope
from repro.net.ipv4 import Prefix, parse_ip
from repro.world.ground_truth import BlockIndex, BlockState

from _factories import ip, make_view

BASE = parse_ip("20.0.0.0") >> 8


def make_telescope():
    collector = RouteViewsCollector(
        [Announcement(Prefix.parse("20.0.0.0/8"), 65001)]
    )
    return MetaTelescope(collector=collector)


class TestDailySeries:
    def views_by_day(self):
        return {
            day: [
                make_view(
                    [{"dst_ip": ip(BASE + i)} for i in range(day + 1)], day=day
                )
            ]
            for day in range(7)
        }

    def test_counts_per_day(self):
        series = daily_series("X", self.views_by_day(), make_telescope())
        assert series.label == "X"
        assert series.counts == [1, 2, 3, 4, 5, 6, 7]

    def test_weekend_uplift_computation(self):
        series = DailySeries(label="x", days=list(range(7)),
                             counts=[10, 10, 10, 10, 10, 20, 20])
        assert series.weekend_uplift() == pytest.approx(2.0)

    def test_weekend_uplift_needs_both(self):
        series = DailySeries(label="x", days=[0, 1], counts=[1, 2])
        assert np.isnan(series.weekend_uplift())

    def test_daily_dark_sets(self):
        sets = daily_dark_sets(self.views_by_day(), make_telescope())
        assert set(sets) == set(range(7))
        assert len(sets[6]) == 7


class TestSamplingSweepUnits:
    def make_index(self):
        blocks = np.arange(BASE, BASE + 4)
        return BlockIndex(
            blocks=blocks,
            asn=np.full(4, 1),
            country_index=np.zeros(4),
            type_index=np.zeros(4),
            state=np.full(4, int(BlockState.DARK)),
        )

    def test_factor_one_uses_original(self):
        views = [make_view([{"dst_ip": ip(BASE), "packets": 50}])]
        points = sampling_sweep(
            views, make_telescope(), self.make_index(), factors=(1,)
        )
        assert points[0].factor == 1
        assert points[0].inferred == 1
        assert points[0].sampled_packets == 50

    def test_extreme_factor_goes_dark(self):
        views = [make_view([{"dst_ip": ip(BASE), "packets": 3}])]
        points = sampling_sweep(
            views, make_telescope(), self.make_index(),
            factors=(1, 10**6), seed=1,
        )
        assert points[-1].inferred == 0
        assert points[-1].sampled_packets == 0

    def test_points_are_dataclasses(self):
        views = [make_view([{"dst_ip": ip(BASE)}])]
        points = sampling_sweep(
            views, make_telescope(), self.make_index(), factors=(1, 2)
        )
        assert all(isinstance(p, SamplingPoint) for p in points)
        assert [p.factor for p in points] == [1, 2]

    def test_deterministic_given_seed(self):
        views = [make_view([{"dst_ip": ip(BASE), "packets": 200}])]
        a = sampling_sweep(
            views, make_telescope(), self.make_index(), factors=(5,), seed=3
        )
        b = sampling_sweep(
            views, make_telescope(), self.make_index(), factors=(5,), seed=3
        )
        assert a[0].sampled_packets == b[0].sampled_packets
