"""Tests for the observatory (per-day observation cache)."""

import numpy as np
import pytest

from repro.world.observe import Observatory


class TestObservatory:
    def test_day_cached(self, observatory):
        assert observatory.day(0) is observatory.day(0)

    def test_views_structure(self, day0, world):
        assert set(day0.ixp_views) == set(world.fabric.codes())
        assert set(day0.telescope_views) == {"TUS1", "TEU1", "TEU2"}
        assert day0.isp_view.vantage == "ISP1"

    def test_view_lookup(self, day0):
        assert day0.view("CE1").vantage == "CE1"
        assert day0.view("TUS1").vantage == "TUS1"
        assert day0.view("ISP1").vantage == "ISP1"
        with pytest.raises(KeyError):
            day0.view("NOPE")

    def test_sampling_factors_match_config(self, day0, world):
        for spec in world.config.ixps:
            assert day0.ixp_views[spec.code].sampling_factor == spec.sampling_factor
        assert day0.telescope_views["TUS1"].sampling_factor == 1.0

    def test_telescope_sees_only_its_blocks(self, day0, world):
        for code, telescope in world.telescopes.items():
            view = day0.telescope_views[code]
            if len(view.flows):
                assert np.isin(view.flows.dst_blocks(), telescope.blocks).all()

    def test_teu1_never_sees_blocked_ports(self, observatory):
        for day in range(2):
            view = observatory.day(day).telescope_views["TEU1"]
            assert not np.isin(view.flows.dport, [23, 445]).any()

    def test_isp_view_restricted(self, day0, world):
        flows = day0.isp_view.flows
        touches = np.isin(flows.dst_blocks(), world.isp.blocks) | np.isin(
            flows.src_blocks(), world.isp.blocks
        )
        assert touches.all()

    def test_deterministic_across_instances(self, world):
        a = Observatory(world).day(0)
        b = Observatory(world).day(0)
        assert a.ixp_views["CE1"].flows.total_packets() == b.ixp_views[
            "CE1"
        ].flows.total_packets()

    def test_days_list(self, observatory, world):
        observations = observatory.days(2)
        assert [o.day for o in observations] == [0, 1]

    def test_all_ixp_views_count(self, observatory, world):
        views = observatory.all_ixp_views(num_days=2)
        assert len(views) == 2 * len(world.fabric.ixps)

    def test_big_ixps_see_more(self, day0):
        big = day0.ixp_views["CE1"].flows.total_packets()
        small = day0.ixp_views["SE6"].flows.total_packets()
        assert big > small

    def test_telescope_receives_mostly_tcp(self, day0):
        from repro.analysis.ports import tcp_share

        view = day0.telescope_views["TUS1"]
        assert tcp_share(view.flows) > 0.7
