"""Direct tests of the world builder's internal helpers."""

import numpy as np
import pytest

from repro.net.special import SPECIAL_PURPOSE_REGISTRY
from repro.world.builder import _Allocator, _decompose_blocks
from repro.world.config import micro_config
from repro.world.ground_truth import BlockState
from repro.world.scenarios import micro_world


class TestAllocator:
    def make(self):
        return _Allocator(forbidden_blocks=[(39 << 16, (39 << 16) + 255)])

    def test_alignment(self):
        allocator = self.make()
        allocator.allocate(24)
        prefix = allocator.allocate(20)
        assert prefix.network % (1 << (32 - 20)) == 0

    def test_sequential_non_overlapping(self):
        allocator = self.make()
        prefixes = [allocator.allocate(22) for _ in range(10)]
        blocks = [b for p in prefixes for b in p.blocks()]
        assert len(blocks) == len(set(blocks))

    def test_avoids_special_space(self):
        allocator = self.make()
        for _ in range(64):
            prefix = allocator.allocate(16)
            for block in (prefix.first_block(),
                          prefix.first_block() + prefix.num_blocks() - 1):
                assert not SPECIAL_PURPOSE_REGISTRY.is_special_block(block)

    def test_avoids_forbidden_octet(self):
        allocator = self.make()
        for _ in range(128):
            prefix = allocator.allocate(16)
            assert prefix.network >> 24 != 39

    def test_rejects_long_prefixes(self):
        with pytest.raises(ValueError):
            self.make().allocate(25)

    def test_exhaustion(self):
        allocator = self.make()
        with pytest.raises(RuntimeError):
            for _ in range(10_000):
                allocator.allocate(8)


class TestDecomposeMore:
    @pytest.mark.parametrize("target", [1, 2, 3, 7, 255, 256, 257, 26_079])
    def test_sizes_close(self, target):
        lengths = _decompose_blocks(target)
        total = sum(1 << (24 - length) for length in lengths)
        assert total >= target
        assert total <= target + (1 << (24 - max(lengths)))

    def test_lengths_valid(self):
        for length in _decompose_blocks(12345):
            assert 8 <= length <= 24


class TestGroundTruthDistribution:
    def test_state_proportions_sane(self, world):
        """The configured usage mix is realised within tolerance."""
        index = world.index
        total = len(index)
        dark = (index.state == int(BlockState.DARK)).mean()
        mixed = (index.state == int(BlockState.MIXED)).mean()
        active = (index.state == int(BlockState.ACTIVE)).mean()
        assert 0.1 < dark < 0.6
        assert mixed > active  # lightly-used client space dominates
        assert total > 500

    def test_dark_runs_contiguous(self, world):
        """Dark space comes in runs (the Hilbert-visible structure)."""
        dark = world.index.truly_dark_blocks()
        adjacent = (np.diff(dark) == 1).mean()
        assert adjacent > 0.5

    def test_deterministic_datasets(self):
        a = micro_world(31)
        b = micro_world(31)
        assert np.array_equal(
            a.datasets.liveness[0].active_blocks,
            b.datasets.liveness[0].active_blocks,
        )
        assert a.datasets.ipinfo.mapping == b.datasets.ipinfo.mapping

    def test_campaign_locality_masks(self, world):
        """The regional campaigns target only their footprint."""
        from repro.traffic.scanners import ScanCampaign

        campaigns = {
            actor.name: actor
            for actor in world.mix.actors
            if isinstance(actor, ScanCampaign)
        }
        redis = campaigns["redis-campaign"]
        live = redis.target_blocks[
            (redis.target_weights if redis.target_weights is not None else 1)
            > 0
        ]
        continents = world.index.continents_of(live)
        countries = world.index.country_codes_of(live)
        for continent, country in zip(continents, countries):
            assert continent == "NA" or country == "CH"

    def test_blacklist_campaign_avoids_telescopes(self, world):
        from repro.traffic.scanners import ScanCampaign

        research = next(
            actor
            for actor in world.mix.actors
            if isinstance(actor, ScanCampaign)
            and actor.name == "research-scanners"
        )
        assert research.avoid_blocks is not None
        assert np.isin(
            world.telescopes["TUS1"].blocks, research.avoid_blocks
        ).all()
