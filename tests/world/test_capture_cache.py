"""Tests for the content-addressed capture cache and its Observatory wiring."""

import numpy as np
import pytest

from repro.traffic.flows import FLOW_COLUMNS
from repro.world.builder import build_world
from repro.world.capture_cache import CaptureCache, capture_key
from repro.world.config import micro_config
from repro.world.observe import Observatory


@pytest.fixture(scope="module")
def world():
    return build_world(micro_config(seed=13))


def _views_equal(a, b) -> bool:
    return (
        a.vantage == b.vantage
        and a.day == b.day
        and a.sampling_factor == b.sampling_factor
        and all(
            np.array_equal(getattr(a.flows, name), getattr(b.flows, name))
            for name in FLOW_COLUMNS
        )
    )


class TestKeys:
    def test_key_is_content_addressed(self):
        a = micro_config(seed=1)
        b = micro_config(seed=2)
        assert capture_key(a, 0, "CE1") == capture_key(a, 0, "CE1")
        assert capture_key(a, 0, "CE1") != capture_key(b, 0, "CE1")
        assert capture_key(a, 0, "CE1") != capture_key(a, 1, "CE1")
        assert capture_key(a, 0, "CE1") != capture_key(a, 0, "CE2")

    def test_knobs_participate(self):
        config = micro_config(seed=1)
        plain = capture_key(config, 0, "CE1")
        knobbed = capture_key(config, 0, "CE1", {"decimate": 10})
        assert plain != knobbed
        assert knobbed == capture_key(config, 0, "CE1", {"decimate": 10})


class TestCache:
    def test_store_then_load_bit_identical(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        view = Observatory(world).day(0).isp_view
        key = cache.key_for(world.config, 0, view.vantage)
        assert cache.load(key) is None
        cache.store(key, view)
        loaded = cache.load(key)
        assert loaded is not None
        assert _views_equal(view, loaded)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_unreadable_entry_is_a_miss(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        view = Observatory(world).day(0).isp_view
        key = cache.key_for(world.config, 0, view.vantage)
        cache.store(key, view)
        cache.path_for(key).write_bytes(b"garbage")
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_stats_and_prune(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        view = Observatory(world).day(0).isp_view
        cache.store(cache.key_for(world.config, 0, view.vantage), view)
        stats = cache.stats()
        assert stats.entries == 1 and stats.bytes > 0
        assert "1 entrie(s)" in stats.summary()
        assert cache.prune() == 1
        assert cache.stats().entries == 0


class TestObservatoryWiring:
    def test_warm_run_skips_generation_and_matches(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        cold = Observatory(world, capture_cache=cache).day(0)
        assert cache.stats().entries > 0

        class ExplodingMix:
            def generate_day(self, day, rng):
                raise AssertionError("generate_day called on a warm cache")

        warm_world = build_world(micro_config(seed=13))
        warm_world.mix = ExplodingMix()
        warm = Observatory(warm_world, capture_cache=cache).day(0)

        for code, view in cold.ixp_views.items():
            assert _views_equal(view, warm.ixp_views[code])
        for code, view in cold.telescope_views.items():
            assert _views_equal(view, warm.telescope_views[code])
        assert _views_equal(cold.isp_view, warm.isp_view)

    def test_partial_cache_regenerates(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        cold = Observatory(world, capture_cache=cache).day(0)
        victim = next(iter(cold.ixp_views))
        cache.path_for(cache.key_for(world.config, 0, victim)).unlink()

        rerun_world = build_world(micro_config(seed=13))
        rerun = Observatory(rerun_world, capture_cache=cache).day(0)
        assert _views_equal(cold.ixp_views[victim], rerun.ixp_views[victim])

    def test_different_seed_never_hits(self, world, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        Observatory(world, capture_cache=cache).day(0)
        other = build_world(micro_config(seed=14))
        Observatory(other, capture_cache=cache).day(0)
        assert cache.hits == 0

    def test_no_cache_unchanged(self, world):
        observatory = Observatory(world)
        assert observatory.capture_cache is None
        assert observatory.day(0).day == 0
