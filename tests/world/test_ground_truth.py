"""Tests for the ground-truth block index."""

import numpy as np
import pytest

from repro.bgp.asinfo import ASType
from repro.geo.countries import Continent
from repro.world.ground_truth import (
    BlockIndex,
    BlockState,
    country_index_of,
    type_index_of,
)


def make_index():
    return BlockIndex(
        blocks=np.array([10, 20, 30, 40]),
        asn=np.array([1, 1, 2, 3]),
        country_index=np.array(
            [country_index_of("US"), country_index_of("US"),
             country_index_of("DE"), country_index_of("CN")]
        ),
        type_index=np.array(
            [type_index_of(ASType.ISP), type_index_of(ASType.ISP),
             type_index_of(ASType.EDUCATION), type_index_of(ASType.DATA_CENTER)]
        ),
        state=np.array(
            [int(BlockState.DARK), int(BlockState.ACTIVE),
             int(BlockState.MIXED), int(BlockState.TELESCOPE)]
        ),
    )


class TestLookups:
    def test_positions(self):
        index = make_index()
        assert index.positions(np.array([20, 99, 10])).tolist() == [1, -1, 0]

    def test_known_mask(self):
        index = make_index()
        assert index.known_mask(np.array([10, 15])).tolist() == [True, False]

    def test_asn_of(self):
        index = make_index()
        assert index.asn_of(np.array([30, 99])).tolist() == [2, -1]

    def test_state_of(self):
        index = make_index()
        assert index.state_of(np.array([40]))[0] == int(BlockState.TELESCOPE)

    def test_country_codes(self):
        index = make_index()
        assert index.country_codes_of(np.array([30, 99])).tolist() == ["DE", "??"]

    def test_continents(self):
        index = make_index()
        assert index.continents_of(np.array([40])).tolist() == ["AS"]

    def test_as_types(self):
        index = make_index()
        types = index.as_types_of(np.array([40, 99]))
        assert types[0] is ASType.DATA_CENTER
        assert types[1] is None


class TestSelections:
    def test_blocks_in_state(self):
        index = make_index()
        assert index.blocks_in_state(BlockState.DARK).tolist() == [10]

    def test_truly_dark_includes_telescopes(self):
        index = make_index()
        assert index.truly_dark_blocks().tolist() == [10, 40]

    def test_truly_active_includes_mixed(self):
        index = make_index()
        assert index.truly_active_blocks().tolist() == [20, 30]

    def test_by_continent(self):
        index = make_index()
        assert index.blocks_of_continent(Continent.EUROPE).tolist() == [30]

    def test_by_type(self):
        index = make_index()
        assert index.blocks_of_type(ASType.ISP).tolist() == [10, 20]

    def test_by_country(self):
        index = make_index()
        assert index.blocks_of_country("CN").tolist() == [40]


class TestValidation:
    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BlockIndex(
                blocks=np.array([20, 10]),
                asn=np.array([1, 1]),
                country_index=np.array([0, 0]),
                type_index=np.array([0, 0]),
                state=np.array([0, 0]),
            )

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            BlockIndex(
                blocks=np.array([10, 20]),
                asn=np.array([1]),
                country_index=np.array([0, 0]),
                type_index=np.array([0, 0]),
                state=np.array([0, 0]),
            )
