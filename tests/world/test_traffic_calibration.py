"""Calibration tests: the traffic generator matches the paper's
published aggregates (the statistical properties every filter relies on)."""

import numpy as np
import pytest

from repro.traffic.packets import PROTO_TCP
from repro.world.ground_truth import BlockState


@pytest.fixture(scope="module")
def week_ground(integration_world):
    """One regenerated ground-truth day at the small scale."""
    world = integration_world
    rng = world.config.child_rng("traffic-day-1")
    return world.annotate_dst_asn(world.mix.generate_day(1, rng))


class TestIbrProperties:
    def test_telescope_tcp_is_mostly_bare_syns(self, integration_observatory):
        """Paper §4.1: the vast majority of telescope TCP is bare SYNs.

        Flow records aggregate several packets, so "every packet in the
        flow was 40 B" is a stricter proxy than the paper's per-packet
        93 % — we require most packets to sit in such flows.
        """
        view = integration_observatory.day(1).telescope_views["TUS1"]
        tcp = view.flows.tcp()
        bare = tcp.packets[(tcp.bytes == tcp.packets * 40)].sum()
        assert bare / tcp.total_packets() > 0.75

    def test_telescope_average_below_threshold(self, integration_observatory):
        """The fingerprint's premise: dark-space TCP averages <= 44 B."""
        view = integration_observatory.day(1).telescope_views["TUS1"]
        tcp = view.flows.tcp()
        assert tcp.total_bytes() / tcp.total_packets() <= 44.0

    def test_dark_blocks_receive_traffic(self, integration_world, week_ground):
        """IBR reaches dark space broadly (the telescope's raw material)."""
        dark = integration_world.index.truly_dark_blocks()
        hit = np.isin(dark, np.unique(week_ground.dst_blocks()))
        assert hit.mean() > 0.9


class TestActiveSpaceProperties:
    def test_active_inbound_mean_exceeds_threshold(
        self, integration_world, week_ground
    ):
        """Heavily-used space must fail the 44 B filter at the block level."""
        active = integration_world.index.blocks_in_state(BlockState.ACTIVE)
        inbound = week_ground.toward_blocks(active).tcp()
        assert inbound.total_bytes() / inbound.total_packets() > 100

    def test_active_blocks_originate(self, integration_world, week_ground):
        active = integration_world.index.blocks_in_state(BlockState.ACTIVE)
        sources = np.unique(week_ground.src_blocks())
        assert np.isin(active, sources).mean() > 0.9

    def test_mixed_blocks_originate_but_no_heavy_inbound(
        self, integration_world, week_ground
    ):
        """Lightly-used client space: visible outbound, IBR-like inbound."""
        mixed = integration_world.index.blocks_in_state(BlockState.MIXED)
        sources = np.unique(week_ground.src_blocks())
        assert np.isin(mixed, sources).mean() > 0.8
        inbound = week_ground.toward_blocks(mixed).tcp()
        nonspoofed = inbound.filter(~inbound.spoofed)
        assert nonspoofed.total_bytes() / nonspoofed.total_packets() < 60

    def test_cdn_sinks_high_volume_small_packets(
        self, integration_world, week_ground
    ):
        cdn = integration_world.index.blocks_in_state(BlockState.CDN_SINK)
        inbound = week_ground.toward_blocks(cdn).tcp()
        per_block = inbound.total_packets() / len(cdn)
        assert per_block > integration_world.config.volume_threshold_pkts_day
        assert inbound.total_bytes() / inbound.total_packets() <= 44.0

    def test_cdn_sinks_never_genuinely_originate(
        self, integration_world, week_ground
    ):
        # Spoofers may *claim* CDN sources; the CDN itself sends its
        # data over paths invisible to the IXPs (no generated outbound).
        genuine = week_ground.filter(~week_ground.spoofed)
        cdn = integration_world.index.blocks_in_state(BlockState.CDN_SINK)
        sources = np.unique(genuine.src_blocks())
        assert not np.isin(cdn, sources).any()


class TestSpoofingProperties:
    def test_spoofed_flows_flagged(self, week_ground):
        spoofed = week_ground.filter(week_ground.spoofed)
        assert len(spoofed) > 0
        # Spoofed senders are never BCP38-filtered networks.
        assert (spoofed.sender_asn >= 0).all()

    def test_spoofed_sources_cover_unrouted_baseline(
        self, integration_world, week_ground
    ):
        """The tolerance baseline needs pollution inside unrouted space."""
        spoofed = week_ground.filter(week_ground.spoofed)
        unrouted_hits = np.isin(
            spoofed.src_blocks(), integration_world.unrouted_baseline_blocks
        )
        assert unrouted_hits.any()

    def test_spoofed_rate_symmetric(self, integration_world, week_ground):
        """Per-/24 uniform pollution is comparable in announced and
        unrouted space — the property that makes the baseline valid."""
        spoofed = week_ground.filter(week_ground.spoofed & (week_ground.packets == 1))
        src = spoofed.src_blocks()
        unrouted = integration_world.unrouted_baseline_blocks
        announced = integration_world.index.blocks
        rate_unrouted = np.isin(src, unrouted).sum() / len(unrouted)
        rate_announced = np.isin(src, announced).sum() / len(announced)
        assert rate_unrouted == pytest.approx(rate_announced, rel=0.35)

    def test_floods_avoid_telescope_ranges(self, integration_world, week_ground):
        flood = week_ground.filter(week_ground.spoofed & (week_ground.packets > 3))
        if len(flood) == 0:
            pytest.skip("no flood scheduled this day")
        flood_16s = set((flood.src_blocks() >> 8).tolist())
        for telescope in integration_world.telescopes.values():
            assert not flood_16s & set((telescope.blocks >> 8).tolist())


class TestWeeklyBudget:
    def test_ibr_rate_toward_dark_space(self, integration_world, week_ground):
        """Dark space receives only IBR, so its TCP rate reflects the
        configured scan budget (plus backscatter's small share)."""
        config = integration_world.config
        dark = integration_world.index.truly_dark_blocks()
        inbound = week_ground.toward_blocks(dark).tcp()
        genuine = inbound.filter(~inbound.spoofed)
        per_block = genuine.total_packets() / len(dark)
        assert per_block == pytest.approx(
            config.scan_pkts_per_block_day, rel=0.6
        )
