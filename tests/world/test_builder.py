"""Structural tests of the generated world (micro scale)."""

import numpy as np
import pytest

from repro.bgp.asinfo import ASType
from repro.net.special import SPECIAL_PURPOSE_REGISTRY
from repro.world.builder import _decompose_blocks, build_world
from repro.world.config import micro_config
from repro.world.ground_truth import BlockState


class TestDecompose:
    def test_exact_power(self):
        assert _decompose_blocks(256) == [16]

    def test_mixed(self):
        lengths = _decompose_blocks(26_079)
        sizes = sum(1 << (24 - length) for length in lengths)
        assert abs(sizes - 26_079) <= 64  # rounded into CIDR pieces

    def test_single_block(self):
        assert _decompose_blocks(1) == [24]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            _decompose_blocks(0)

    def test_respects_max_parts(self):
        assert len(_decompose_blocks(0b101010101, max_parts=3)) <= 3


class TestWorldStructure:
    def test_deterministic(self):
        a = build_world(micro_config(seed=3))
        b = build_world(micro_config(seed=3))
        assert np.array_equal(a.index.blocks, b.index.blocks)
        assert np.array_equal(a.index.state, b.index.state)

    def test_seed_changes_world(self):
        a = build_world(micro_config(seed=3))
        b = build_world(micro_config(seed=4))
        assert not np.array_equal(a.index.state, b.index.state)

    def test_telescopes_exist(self, world):
        assert set(world.telescopes) == {"TUS1", "TEU1", "TEU2"}
        config = world.config
        assert world.telescopes["TUS1"].size() == config.tus1_blocks
        assert world.telescopes["TEU1"].size() == config.teu1_blocks
        assert world.telescopes["TEU2"].size() == config.teu2_blocks

    def test_telescope_blocks_marked_dark(self, world):
        for telescope in world.telescopes.values():
            states = world.index.state_of(telescope.blocks)
            assert (states == int(BlockState.TELESCOPE)).all()

    def test_tus1_inside_isp(self, world):
        tus1 = world.telescopes["TUS1"].blocks
        assert np.isin(tus1, world.isp.blocks).all()

    def test_isp_activity_counts(self, world):
        states = world.index.state_of(world.isp.blocks)
        config = world.config
        assert (states == int(BlockState.ACTIVE)).sum() == config.isp_active_blocks
        assert (states == int(BlockState.LOW_ACTIVE)).sum() == config.isp_low_active_blocks

    def test_teu1_blocks_port_filtered(self, world):
        assert world.telescopes["TEU1"].blocked_ports == frozenset({23, 445})

    def test_teu1_lending_sticky(self, world):
        teu1 = world.telescopes["TEU1"]
        lent_sets = [set(v.tolist()) for v in teu1.lent_blocks_by_day.values()]
        union = set().union(*lent_sets)
        never_lent = teu1.size() - len(union)
        # A stable remainder must never be lent out.
        assert never_lent >= teu1.size() * 0.2

    def test_announced_space_not_special(self, world):
        mask = SPECIAL_PURPOSE_REGISTRY.special_mask(world.index.blocks)
        assert not mask.any()

    def test_unrouted_baseline_not_announced(self, world):
        assert not np.isin(
            world.unrouted_baseline_blocks, world.index.blocks
        ).any()

    def test_all_states_present(self, world):
        states = set(world.index.state.tolist())
        for required in (BlockState.DARK, BlockState.ACTIVE, BlockState.MIXED,
                         BlockState.CDN_SINK, BlockState.TELESCOPE,
                         BlockState.LOW_ACTIVE):
            assert int(required) in states

    def test_collector_covers_most_announced(self, world):
        routed = world.collector.daily_table(0).routed_mask(world.index.blocks)
        assert routed.mean() > 0.98

    def test_true_routing_covers_all_announced(self, world):
        assert world.true_routing.routed_mask(world.index.blocks).all()

    def test_registry_types_diverse(self, world):
        types = {a.as_type for a in world.registry}
        assert types == set(ASType)

    def test_fabric_has_all_ixps(self, world):
        assert len(world.fabric.ixps) == 14
        assert world.fabric.codes()[0] == "CE1"

    def test_teu2_member_at_configured_ixps(self, world):
        teu2_asn = world.special_asns["teu2"]
        for ixp in world.fabric.ixps:
            expected = ixp.code in world.config.teu2_member_ixps
            assert (teu2_asn in ixp.member_asns) == expected

    def test_tus1_host_not_member_in_europe(self, world):
        isp_asn = world.special_asns["isp"]
        for ixp in world.fabric.ixps:
            if ixp.code.startswith(("CE", "SE")):
                assert isp_asn not in ixp.member_asns

    def test_tus1_invisible_at_ce1(self, world):
        # The paper cannot find TUS1's space at CE1 at all.
        isp_asn = world.special_asns["isp"]
        assert world.fabric.engagement_of("CE1", isp_asn) == 0.0

    def test_datasets_present(self, world):
        datasets = world.datasets
        assert [d.name for d in datasets.liveness] == ["censys", "ndt", "isi"]
        assert datasets.as2org.num_organizations() == len(world.registry)

    def test_liveness_mostly_correct(self, world):
        union_active = world.index.truly_active_blocks()
        censys = world.datasets.liveness[0]
        recall = censys.contains(union_active).mean()
        assert recall > 0.8

    def test_annotate_dst_asn(self, world, rng):
        flows = world.mix.generate_day(0, rng)
        annotated = world.annotate_dst_asn(flows)
        known = world.index.known_mask(annotated.dst_blocks())
        assert (annotated.dst_asn[known] >= 0).all()
