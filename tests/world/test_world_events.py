"""Tests for world events: flash re-activation, steering, day gating."""

import numpy as np
import pytest

from repro.bgp.events import RouteEvent
from repro.net.ipv4 import Prefix
from repro.traffic.flows import FlowTable
from repro.traffic.mix import DailyTrafficMix
from repro.traffic.spoofing import TargetedSpoofFlood
from repro.world.scenarios import (
    DayGatedActor,
    FlashReactivation,
    SteeredTrafficMix,
)


class _ConstantActor:
    """Emits the same single flow every day (test double)."""

    def generate(self, day, rng):
        return FlowTable(
            src_ip=np.array([0x0A000001], dtype=np.uint32),
            dst_ip=np.array([0x0B000001], dtype=np.uint32),
            proto=np.array([6], dtype=np.uint8),
            dport=np.array([80], dtype=np.uint16),
            packets=np.array([3], dtype=np.int64),
            bytes=np.array([120], dtype=np.int64),
            sender_asn=np.array([100], dtype=np.int32),
            dst_asn=np.array([200], dtype=np.int32),
            spoofed=np.array([False]),
        )


class TestDayGatedActor:
    def test_silent_before_the_gate(self, rng):
        gated = DayGatedActor(actor=_ConstantActor(), start_day=2)
        assert len(gated.generate(1, rng)) == 0
        assert len(gated.generate(2, rng)) == 1


class TestFlashReactivation:
    def flash(self, start_day=1):
        return FlashReactivation(
            blocks=np.arange(5000, 5016, dtype=np.int64),
            asns=np.full(16, 300, dtype=np.int32),
            remote_ips=np.array([0x0C000001, 0x0C000002], dtype=np.uint32),
            remote_asns=np.array([400, 401], dtype=np.int32),
            inbound_pkts_per_day=2000.0,
            start_day=start_day,
        )

    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            FlashReactivation(
                blocks=np.empty(0, dtype=np.int64),
                asns=np.empty(0, dtype=np.int32),
                remote_ips=np.array([1], dtype=np.uint32),
                remote_asns=np.array([1], dtype=np.int32),
                inbound_pkts_per_day=100.0,
                start_day=0,
            )

    def test_dark_until_the_flash(self, rng):
        actor = self.flash(start_day=1)
        assert len(actor.generate(0, rng)) == 0
        flows = actor.generate(1, rng)
        assert len(flows) > 0
        # Production is two-way: inbound rows land in the lit blocks,
        # outbound rows head for the remote peers.
        inbound = np.isin(flows.dst_ip >> 8, actor.blocks)
        assert inbound.any()
        assert np.isin(flows.dst_ip[~inbound] >> 8, actor.remote_ips >> 8).all()

    def test_traffic_looks_like_production(self, rng):
        flows = self.flash().generate(2, rng)
        inbound = np.isin(flows.dst_ip >> 8, self.flash().blocks)
        mean_size = (flows.bytes / flows.packets)[inbound].mean()
        assert mean_size > 44.0


class TestSteeredTrafficMix:
    def event(self, days={1}):
        return RouteEvent(
            prefix=Prefix.from_ip(0x0B000000, 16),
            by_asn=64999,
            days=frozenset(days),
        )

    def steered(self, shift_share=1.0):
        mix = DailyTrafficMix()
        mix.add(_ConstantActor())
        return SteeredTrafficMix(
            base=mix, event=self.event(), shift_share=shift_share
        )

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            self.steered(shift_share=0.0)

    def test_off_event_days_pass_through(self, rng):
        flows = self.steered().generate_day(0, rng)
        assert flows.dst_asn[0] == 200

    def test_event_day_steers_dst_asn(self, rng):
        flows = self.steered(shift_share=1.0).generate_day(1, rng)
        assert flows.dst_asn[0] == 64999

    def test_actors_pass_through(self):
        steered = self.steered()
        assert len(steered.actors) == 1
        steered.add(_ConstantActor())
        assert len(steered.actors) == 2


class TestTargetedSpoofFlood:
    def flood(self, **overrides):
        defaults = dict(
            target_blocks=np.arange(7000, 7008, dtype=np.int64),
            attacker_asns=np.array([900], dtype=np.int32),
            victim_ips=np.array([0x0D000001], dtype=np.uint32),
            victim_asns=np.array([500], dtype=np.int32),
            pkts_per_block_day=400,
        )
        defaults.update(overrides)
        return TargetedSpoofFlood(**defaults)

    def test_impersonates_every_target(self, rng):
        flood = self.flood()
        flows = flood.generate(0, rng)
        assert flows.spoofed.all()
        impersonated = np.unique(flows.src_ip >> 8)
        assert np.array_equal(impersonated, flood.target_blocks)

    def test_volume_far_above_tolerance(self, rng):
        flows = self.flood().generate(0, rng)
        per_block = {}
        for block, pkts in zip(flows.src_ip >> 8, flows.packets):
            per_block[block] = per_block.get(block, 0) + pkts
        assert min(per_block.values()) >= 300

    def test_silent_before_start_day(self, rng):
        assert len(self.flood(start_day=2).generate(1, rng)) == 0
