"""Tests for the IPv6 world simulator (repro.world.ipv6)."""

import numpy as np
import pytest

from repro.core.ipv6_candidates import ipv6_candidate_sites
from repro.net.family import IPV6
from repro.net.ipv6 import Ipv6Prefix
from repro.world.ipv6 import (
    LEAK_ASN,
    LEAKED_SITE,
    Ipv6WorldConfig,
    build_ipv6_world,
    ipv6_day_view,
    ipv6_views,
    micro_ipv6_config,
    micro_ipv6_world,
    small_ipv6_world,
)


def observed_sites(view) -> set[int]:
    return set(IPV6.block_of(view.flows.dst_ip).tolist())


class TestBuild:
    def test_deterministic(self):
        a = micro_ipv6_world(seed=7)
        b = micro_ipv6_world(seed=7)
        assert a.orgs == b.orgs
        assert a.hitlist_sites == b.hitlist_sites
        assert a.scanner_sites == b.scanner_sites

    def test_seed_changes_world(self):
        assert micro_ipv6_world(seed=7).orgs != micro_ipv6_world(seed=8).orgs

    def test_org_space_is_global_unicast_and_int64_safe(self):
        world = small_ipv6_world()
        for org in world.orgs:
            assert org.prefix.length == 40
            for site in org.sites:
                # All engine keys must stay below 2**63 (int64-safe).
                assert (site << 16) < (1 << 63)
                assert org.prefix.contains_site(site)
        for site in world.scanner_sites:
            assert (site << 16) < (1 << 63)

    def test_site_roles_partition(self):
        world = small_ipv6_world()
        for org in world.orgs:
            roles = (
                set(org.dark_sites) | set(org.quiet_sites) | set(org.loud_sites)
            )
            assert len(roles) == len(org.sites)

    def test_hitlist_is_incomplete_subset_of_active(self):
        world = small_ipv6_world()
        active = world.active_sites()
        assert world.hitlist_sites < active

    def test_never_announced_orgs_excluded_from_truth(self):
        world = small_ipv6_world()
        never = [org for org in world.orgs if org.announce_day is None]
        assert len(never) == world.config.unannounced_orgs
        dark = world.dark_sites()
        for org in never:
            assert not dark & set(org.dark_sites)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Ipv6WorldConfig(sites_per_org=4, dark_sites_per_org=3, quiet_sites_per_org=1)


class TestRouting:
    def test_bgp_reactive_announcements(self):
        world = micro_ipv6_world(seed=7)
        late = [org for org in world.orgs if org.announce_day]
        assert late, "micro config should include a late announcer"
        org = late[0]
        day0 = world.collector.daily_table(0)
        after = world.collector.daily_table(org.announce_day)
        assert not any(a.prefix == org.prefix for a in day0.announcements)
        assert any(a.prefix == org.prefix for a in after.announcements)

    def test_route_leak_announced(self):
        world = micro_ipv6_world(seed=7)
        table = world.collector.daily_table(0)
        leak = [a for a in table.announcements if a.origin_asn == LEAK_ASN]
        assert len(leak) == 1
        assert str(leak[0].prefix) == "2001:db8::/32"


class TestTraffic:
    def test_day_view_deterministic_across_builds(self):
        va = ipv6_day_view(micro_ipv6_world(seed=7), 1)
        vb = ipv6_day_view(micro_ipv6_world(seed=7), 1)
        assert len(va.flows) == len(vb.flows)
        for name in va.flows.columns():
            assert np.array_equal(
                getattr(va.flows, name), getattr(vb.flows, name)
            ), name

    def test_views_are_ipv6(self):
        for view in ipv6_views(micro_ipv6_world(seed=7)):
            assert view.flows.family == "ipv6"
            assert view.vantage == "V6IX"

    def test_scanners_react_to_announcements(self):
        world = micro_ipv6_world(seed=7)
        late = [org for org in world.orgs if org.announce_day][0]
        before = observed_sites(ipv6_day_view(world, 0))
        after = observed_sites(ipv6_day_view(world, late.announce_day))
        assert not before & set(late.sites)
        assert after & set(late.sites)

    def test_stale_replay_reaches_unannounced_space(self):
        world = micro_ipv6_world(seed=7)
        never = [org for org in world.orgs if org.announce_day is None][0]
        assert observed_sites(ipv6_day_view(world, 0)) & set(never.sites)

    def test_leaked_site_observed(self):
        world = micro_ipv6_world(seed=7)
        assert LEAKED_SITE in observed_sites(ipv6_day_view(world, 0))

    def test_flood_dwarfs_scan_volume(self):
        world = micro_ipv6_world(seed=7)
        view = ipv6_day_view(world, 0)
        blocks = IPV6.block_of(view.flows.dst_ip)
        flood_pkts = int(view.flows.packets[blocks == world.flood_site].sum())
        assert flood_pkts >= world.config.flood_packets

    def test_udp_only_site_gets_no_tcp(self):
        world = micro_ipv6_world(seed=7)
        view = ipv6_day_view(world, 0)
        blocks = IPV6.block_of(view.flows.dst_ip)
        protos = set(view.flows.proto[blocks == world.udp_only_site].tolist())
        assert protos and 6 not in protos


class TestCandidateDrops:
    """Seed-stability pins for the /48 candidate filter (satellite 3)."""

    @staticmethod
    def drops(world, views):
        observed_dst: set[int] = set()
        observed_src: set[int] = set()
        for view in views:
            observed_dst |= observed_sites(view)
            observed_src |= set(IPV6.block_of(view.flows.src_ip).tolist())
        last = world.config.num_days - 1
        announced = [a.prefix for a in world.collector.daily_table(last).announcements]
        return ipv6_candidate_sites(
            observed_dst, observed_src, announced, world.hitlist_sites
        )

    def test_micro_seed7_pinned_counts(self):
        world = micro_ipv6_world(seed=7)
        result = self.drops(world, ipv6_views(world))
        assert result.observed == 25
        assert result.dropped_unannounced == 4
        assert result.dropped_hitlist == 6
        assert result.dropped_sources == 0
        assert len(result.candidate_sites) == 15

    def test_small_seed7_pinned_counts(self):
        world = small_ipv6_world(seed=7)
        result = self.drops(world, ipv6_views(world))
        assert result.observed == 73
        assert result.dropped_unannounced == 6
        assert result.dropped_hitlist == 22
        assert result.dropped_sources == 7
        assert len(result.candidate_sites) == 38

    def test_drop_accounting_balances(self):
        for seed in (7, 11, 23):
            world = micro_ipv6_world(seed=seed)
            result = self.drops(world, ipv6_views(world))
            assert result.observed == (
                len(result.candidate_sites)
                + result.dropped_unannounced
                + result.dropped_hitlist
                + result.dropped_sources
            )

    def test_leaked_site_survives_candidate_filter(self):
        # The candidate filter only checks routedness — the leak makes
        # documentation space "routed", so the *special* stage of the
        # engine is what must drop it (covered in the e2e tests).
        world = micro_ipv6_world(seed=7)
        result = self.drops(world, ipv6_views(world))
        assert LEAKED_SITE in result.candidate_sites
