"""Tests for world configuration and RNG derivation."""

import dataclasses

import pytest

from repro.world.config import (
    DEFAULT_IXPS,
    IXP_REGION_CONTINENTS,
    WorldConfig,
    micro_config,
    paper_config,
    small_config,
)


class TestConfig:
    def test_default_has_14_ixps(self):
        assert len(DEFAULT_IXPS) == 14

    def test_ixp_codes_match_paper(self):
        codes = {spec.code for spec in DEFAULT_IXPS}
        assert codes == {
            "CE1", "CE2", "CE3", "CE4",
            "NA1", "NA2", "NA3", "NA4",
            "SE1", "SE2", "SE3", "SE4", "SE5", "SE6",
        }

    def test_region_continents_cover_regions(self):
        regions = {spec.region for spec in DEFAULT_IXPS}
        assert regions <= set(IXP_REGION_CONTINENTS)

    def test_ce1_largest(self):
        ce1 = next(s for s in DEFAULT_IXPS if s.code == "CE1")
        assert ce1.member_share == max(s.member_share for s in DEFAULT_IXPS)

    def test_frozen(self):
        config = WorldConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 9  # type: ignore[misc]

    def test_scaled_copy(self):
        config = WorldConfig().scaled(seed=42)
        assert config.seed == 42

    def test_child_rng_deterministic(self):
        config = WorldConfig(seed=5)
        a = config.child_rng("x").integers(0, 1000, 5)
        b = config.child_rng("x").integers(0, 1000, 5)
        assert a.tolist() == b.tolist()

    def test_child_rng_name_separates(self):
        config = WorldConfig(seed=5)
        a = config.child_rng("x").integers(0, 1000, 5)
        b = config.child_rng("y").integers(0, 1000, 5)
        assert a.tolist() != b.tolist()

    def test_scales_ordered(self):
        paper = paper_config()
        small = small_config()
        micro = micro_config()
        assert paper.general_blocks > small.general_blocks > micro.general_blocks
        assert paper.isp_blocks > small.isp_blocks > micro.isp_blocks

    def test_telescope_paper_sizes(self):
        config = paper_config()
        assert config.tus1_blocks == 1856
        assert config.teu1_blocks == 768
        assert config.teu2_blocks == 8

    def test_teu2_peers_at_ten_ixps(self):
        assert len(paper_config().teu2_member_ixps) == 10
