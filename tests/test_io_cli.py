"""Tests for serialisation (repro.io) and the CLI (repro.cli)."""

import json

import numpy as np
import pytest

from repro.io import (
    prefix_list_text,
    read_flows_csv,
    read_flows_csv_lenient,
    read_prefix_list,
    read_prefix_list_lenient,
    write_flows_csv,
    write_prefix_list,
)
from repro.net.ipv4 import parse_ip

from _factories import make_flows


class TestPrefixList:
    def test_roundtrip(self, tmp_path):
        blocks = np.array([parse_ip("10.0.1.0") >> 8, parse_ip("10.0.0.0") >> 8])
        path = tmp_path / "prefixes.txt"
        write_prefix_list(blocks, path, comment="test list")
        text = path.read_text()
        assert text.startswith("# test list\n10.0.0.0/24\n10.0.1.0/24")
        assert read_prefix_list(path).tolist() == sorted(blocks.tolist())

    def test_dedup(self, tmp_path):
        path = tmp_path / "p.txt"
        write_prefix_list(np.array([5, 5, 5]), path)
        assert read_prefix_list(path).tolist() == [5]

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# header\n\n0.0.5.0/24\n")
        assert read_prefix_list(path).tolist() == [5]

    def test_expands_aggregated_entries(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("10.0.0.0/23\n")
        blocks = read_prefix_list(path)
        assert len(blocks) == 2

    def test_rejects_finer_than_slash24(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("10.0.0.0/25\n")
        with pytest.raises(ValueError):
            read_prefix_list(path)

    def test_aggregate_roundtrip(self, tmp_path):
        base = parse_ip("10.0.0.0") >> 8
        blocks = np.arange(base, base + 8)
        path = tmp_path / "p.txt"
        write_prefix_list(blocks, path, aggregate=True)
        assert "10.0.0.0/21" in path.read_text()
        assert read_prefix_list(path).tolist() == blocks.tolist()

    def test_text_variant(self):
        text = prefix_list_text(np.array([5]), comment="c")
        assert text == "# c\n0.0.5.0/24\n"

    def test_text_matches_file_output(self, tmp_path):
        blocks = np.arange(40, 48)
        for aggregate in (False, True):
            path = tmp_path / "p.txt"
            write_prefix_list(blocks, path, comment="hdr", aggregate=aggregate)
            assert path.read_text() == prefix_list_text(
                blocks, comment="hdr", aggregate=aggregate
            )

    def test_text_supports_aggregation(self):
        text = prefix_list_text(np.arange(40, 48), aggregate=True)
        assert text == "0.0.40.0/21\n"

    def test_parse_error_names_the_line(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# header\n0.0.5.0/24\nnot-a-prefix\n")
        with pytest.raises(ValueError, match=r"p\.txt:3:"):
            read_prefix_list(path)

    def test_too_fine_error_names_the_line(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("0.0.5.0/24\n10.0.0.0/25\n")
        with pytest.raises(ValueError, match=r"p\.txt:2: finer than /24"):
            read_prefix_list(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("0.0.5.0/24\n\n\n")
        assert read_prefix_list(path).tolist() == [5]

    def test_lenient_collects_bad_lines(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("0.0.5.0/24\ngarbage\n0.0.6.0/24\n10.0.0.0/30\n")
        blocks, report = read_prefix_list_lenient(path)
        assert blocks.tolist() == [5, 6]
        assert not report.ok()
        assert [error.line for error in report.errors] == [2, 4]
        assert report.good_rows == 2
        assert report.total_rows == 4
        assert "line 2" in report.summary()


class TestFlowsCsv:
    def test_roundtrip(self, tmp_path):
        flows = make_flows(
            [
                {"src_ip": 123, "dst_ip": 456, "packets": 7, "bytes": 280,
                 "spoofed": True},
                {"dport": 443, "sender_asn": 9},
            ]
        )
        path = tmp_path / "flows.csv"
        write_flows_csv(flows, path)
        loaded = read_flows_csv(path)
        assert len(loaded) == 2
        assert loaded.src_ip.tolist() == flows.src_ip.tolist()
        assert loaded.packets.tolist() == flows.packets.tolist()
        assert loaded.spoofed.tolist() == flows.spoofed.tolist()

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(make_flows([]), path)
        assert len(read_flows_csv(path)) == 0

    def test_header_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_flows_csv(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        flows = make_flows([{"packets": 3}])
        path = tmp_path / "flows.csv"
        write_flows_csv(flows, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_flows_csv(path)) == 1

    def test_strict_error_names_the_line(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(make_flows([{}, {}]), path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace(",", ",oops,", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"flows\.csv:3:"):
            read_flows_csv(path)

    def test_lenient_skips_damaged_rows(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(make_flows([{"packets": 1}, {"packets": 2},
                                    {"packets": 3}]), path)
        lines = path.read_text().splitlines()
        lines[2] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        flows, report = read_flows_csv_lenient(path)
        assert flows.packets.tolist() == [1, 3]
        assert [error.line for error in report.errors] == [3]
        assert report.error_fraction() == pytest.approx(1 / 3)

    def test_lenient_header_mismatch_still_fatal(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_flows_csv_lenient(path)

    def test_lenient_clean_file_reports_ok(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(make_flows([{}]), path)
        flows, report = read_flows_csv_lenient(path)
        assert len(flows) == 1
        assert report.ok()
        assert "no errors" in report.summary()


class TestCli:
    def test_parser_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["demo", "--scale", "micro"])
        assert args.scale == "micro"
        assert args.handler is not None

    def test_demo_runs(self, capsys):
        from repro.cli import main

        assert main(["demo", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        assert "final meta-telescope" in out
        assert "ground truth" in out

    def test_funnel_runs(self, capsys):
        from repro.cli import main

        assert main(["funnel", "--scale", "micro", "--vantage", "CE1"]) == 0
        assert "observed /24 subnets" in capsys.readouterr().out

    def test_infer_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "list.txt"
        assert main(["infer", "--scale", "micro", "--output", str(output)]) == 0
        blocks = read_prefix_list(output)
        assert len(blocks) > 0

    def test_telescopes_runs(self, capsys):
        from repro.cli import main

        assert main(["telescopes", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        assert "TUS1" in out

    def test_ports_runs(self, capsys):
        from repro.cli import main

        assert main(["ports", "--scale", "micro", "--count", "3"]) == 0
        assert "23" in capsys.readouterr().out

    def test_unknown_vantage_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["funnel", "--scale", "micro", "--vantage", "NOPE"])

    def test_plan_prints_without_executing(self, capsys):
        from repro.cli import main

        assert main([
            "plan", "--scale", "micro", "--workers", "2",
            "--chunk-size", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "parallel" in out
        assert "final meta-telescope" not in out  # nothing was inferred

    def test_infer_explain_matches_plan(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "p.txt"
        assert main([
            "infer", "--scale", "micro", "--explain",
            "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "execution plan" in out and "serial" in out
        assert not output.exists()  # --explain never runs the inference

    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.engine import validate_trace_file

        trace = tmp_path / "trace.jsonl"
        assert main([
            "demo", "--scale", "micro", "--workers", "2",
            "--trace", str(trace),
        ]) == 0
        assert validate_trace_file(trace) > 0
        kinds = {
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        }
        assert {"plan", "generate", "worker", "stage"} <= kinds

    def test_faults_runs_all_classes(self, capsys):
        from repro.cli import main

        assert main(["faults", "--scale", "micro", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "degraded operation" in out
        assert "carried" in out
        assert "injected day 1" in out

    def test_faults_single_class_and_policy(self, capsys):
        from repro.cli import main

        assert main([
            "faults", "--scale", "micro", "--days", "3",
            "--fault", "corrupt", "--policy", "skip", "--fault-day", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert "CorruptedFields" in out

    def test_faults_strict_policy_crashes_on_outage(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="need views"):
            main([
                "faults", "--scale", "micro", "--days", "3",
                "--fault", "outage", "--policy", "strict",
            ])

    def test_convert_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import read_flows_archive

        flows = make_flows([{"packets": 3}, {"packets": 5, "spoofed": True}])
        csv_a = tmp_path / "a.csv"
        fpk = tmp_path / "a.fpk"
        csv_b = tmp_path / "b.csv"
        write_flows_csv(flows, csv_a)
        assert main(["convert", str(csv_a), str(fpk)]) == 0
        assert "2 flow records" in capsys.readouterr().out
        assert read_flows_archive(fpk).packets.tolist() == [3, 5]
        assert main(["convert", str(fpk), str(csv_b), "--to", "csv"]) == 0
        assert csv_a.read_bytes() == csv_b.read_bytes()

    def test_infer_capture_output_and_cache(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import read_flows

        capture = tmp_path / "captured.fpk"
        cache = tmp_path / "cache"
        argv = [
            "infer", "--scale", "micro",
            "--output", str(tmp_path / "p.txt"),
            "--capture-output", str(capture),
            "--format", "flowpack",
            "--capture-cache", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "captured flow records" in first
        cold = read_flows(capture)

        assert main(argv) == 0  # warm: served from the capture cache
        assert read_flows(capture).packets.tolist() == cold.packets.tolist()
        assert (tmp_path / "p.txt").exists()
        assert any(cache.glob("*/*.fpk"))


class TestFlowFormatHelpers:
    def test_write_flows_rejects_unknown_format(self, tmp_path):
        from repro.io import write_flows

        with pytest.raises(ValueError, match="format"):
            write_flows(make_flows([{}]), tmp_path / "x", format="parquet")

    def test_convert_rejects_unknown_target(self, tmp_path):
        from repro.io import convert_flows

        path = tmp_path / "a.csv"
        write_flows_csv(make_flows([{}]), path)
        with pytest.raises(ValueError, match="format"):
            convert_flows(path, tmp_path / "b", to="parquet")

    def test_vectorised_writer_matches_legacy_csv_module(self, tmp_path):
        import csv

        flows = make_flows(
            [
                {"src_ip": 2**32 - 1, "packets": 2**50, "spoofed": True},
                {"dst_asn": -1, "sender_asn": -1},
            ]
        )
        fast = tmp_path / "fast.csv"
        write_flows_csv(flows, fast)
        legacy = tmp_path / "legacy.csv"
        with open(legacy, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([
                "src_ip", "dst_ip", "proto", "dport", "packets", "bytes",
                "sender_asn", "dst_asn", "spoofed",
            ])
            for row in range(len(flows)):
                writer.writerow([
                    flows.src_ip[row], flows.dst_ip[row], flows.proto[row],
                    flows.dport[row], flows.packets[row], flows.bytes[row],
                    flows.sender_asn[row], flows.dst_asn[row],
                    int(flows.spoofed[row]),
                ])
        assert fast.read_bytes() == legacy.read_bytes()
