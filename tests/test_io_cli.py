"""Tests for serialisation (repro.io) and the CLI (repro.cli)."""

import numpy as np
import pytest

from repro.io import (
    prefix_list_text,
    read_flows_csv,
    read_prefix_list,
    write_flows_csv,
    write_prefix_list,
)
from repro.net.ipv4 import parse_ip

from _factories import make_flows


class TestPrefixList:
    def test_roundtrip(self, tmp_path):
        blocks = np.array([parse_ip("10.0.1.0") >> 8, parse_ip("10.0.0.0") >> 8])
        path = tmp_path / "prefixes.txt"
        write_prefix_list(blocks, path, comment="test list")
        text = path.read_text()
        assert text.startswith("# test list\n10.0.0.0/24\n10.0.1.0/24")
        assert read_prefix_list(path).tolist() == sorted(blocks.tolist())

    def test_dedup(self, tmp_path):
        path = tmp_path / "p.txt"
        write_prefix_list(np.array([5, 5, 5]), path)
        assert read_prefix_list(path).tolist() == [5]

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# header\n\n0.0.5.0/24\n")
        assert read_prefix_list(path).tolist() == [5]

    def test_expands_aggregated_entries(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("10.0.0.0/23\n")
        blocks = read_prefix_list(path)
        assert len(blocks) == 2

    def test_rejects_finer_than_slash24(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("10.0.0.0/25\n")
        with pytest.raises(ValueError):
            read_prefix_list(path)

    def test_aggregate_roundtrip(self, tmp_path):
        base = parse_ip("10.0.0.0") >> 8
        blocks = np.arange(base, base + 8)
        path = tmp_path / "p.txt"
        write_prefix_list(blocks, path, aggregate=True)
        assert "10.0.0.0/21" in path.read_text()
        assert read_prefix_list(path).tolist() == blocks.tolist()

    def test_text_variant(self):
        text = prefix_list_text(np.array([5]), comment="c")
        assert text == "# c\n0.0.5.0/24\n"


class TestFlowsCsv:
    def test_roundtrip(self, tmp_path):
        flows = make_flows(
            [
                {"src_ip": 123, "dst_ip": 456, "packets": 7, "bytes": 280,
                 "spoofed": True},
                {"dport": 443, "sender_asn": 9},
            ]
        )
        path = tmp_path / "flows.csv"
        write_flows_csv(flows, path)
        loaded = read_flows_csv(path)
        assert len(loaded) == 2
        assert loaded.src_ip.tolist() == flows.src_ip.tolist()
        assert loaded.packets.tolist() == flows.packets.tolist()
        assert loaded.spoofed.tolist() == flows.spoofed.tolist()

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(make_flows([]), path)
        assert len(read_flows_csv(path)) == 0

    def test_header_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_flows_csv(path)


class TestCli:
    def test_parser_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["demo", "--scale", "micro"])
        assert args.scale == "micro"
        assert args.handler is not None

    def test_demo_runs(self, capsys):
        from repro.cli import main

        assert main(["demo", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        assert "final meta-telescope" in out
        assert "ground truth" in out

    def test_funnel_runs(self, capsys):
        from repro.cli import main

        assert main(["funnel", "--scale", "micro", "--vantage", "CE1"]) == 0
        assert "observed /24 subnets" in capsys.readouterr().out

    def test_infer_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "list.txt"
        assert main(["infer", "--scale", "micro", "--output", str(output)]) == 0
        blocks = read_prefix_list(output)
        assert len(blocks) > 0

    def test_telescopes_runs(self, capsys):
        from repro.cli import main

        assert main(["telescopes", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        assert "TUS1" in out

    def test_ports_runs(self, capsys):
        from repro.cli import main

        assert main(["ports", "--scale", "micro", "--count", "3"]) == 0
        assert "23" in capsys.readouterr().out

    def test_unknown_vantage_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["funnel", "--scale", "micro", "--vantage", "NOPE"])
