"""Chunked-ingestion contracts: tables, readers, vantage exporters, CLI.

Every producer in the streaming path promises the same thing: its
bounded-size chunks concatenate to exactly what the one-shot call
returns (the IXP exporter, which re-draws randomness per chunk, instead
promises a valid same-distribution realisation).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.io import iter_flows_csv, read_flows_csv, write_flows_csv
from repro.traffic.flows import FlowTable

from _factories import make_flows, ip


def sample_flows(rows: int = 25) -> FlowTable:
    return make_flows(
        [
            {"src_ip": ip(1000 + i % 7), "dst_ip": ip(2000 + i % 5), "packets": 1 + i}
            for i in range(rows)
        ]
    )


class TestFlowTableChunks:
    def test_chunks_concat_roundtrip(self):
        flows = sample_flows()
        for chunk_rows in (1, 4, 25, 1000):
            rebuilt = FlowTable.concat(flows.iter_chunks(chunk_rows))
            np.testing.assert_array_equal(rebuilt.src_ip, flows.src_ip)
            np.testing.assert_array_equal(rebuilt.packets, flows.packets)

    def test_chunks_are_zero_copy(self):
        flows = sample_flows()
        for chunk in flows.iter_chunks(4):
            assert np.shares_memory(chunk.src_ip, flows.src_ip)
            assert np.shares_memory(chunk.packets, flows.packets)

    def test_chunk_sizes_bounded(self):
        sizes = [len(c) for c in sample_flows(25).iter_chunks(4)]
        assert sizes == [4, 4, 4, 4, 4, 4, 1]

    def test_none_yields_whole_table_once(self):
        flows = sample_flows()
        chunks = list(flows.iter_chunks(None))
        assert len(chunks) == 1 and chunks[0] is flows

    def test_empty_table_yields_nothing(self):
        assert list(FlowTable.empty().iter_chunks(5)) == []

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(sample_flows().iter_chunks(0))


class TestCsvStreaming:
    def test_chunks_concat_to_one_shot_read(self, tmp_path):
        flows = sample_flows(50)
        path = tmp_path / "flows.csv"
        write_flows_csv(flows, path)
        streamed = FlowTable.concat(iter_flows_csv(path, chunk_rows=7))
        whole = read_flows_csv(path)
        for name in ("src_ip", "dst_ip", "packets", "bytes"):
            np.testing.assert_array_equal(
                getattr(streamed, name), getattr(whole, name)
            )

    def test_chunk_sizes_bounded(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(sample_flows(20), path)
        sizes = [len(c) for c in iter_flows_csv(path, chunk_rows=8)]
        assert sizes == [8, 8, 4]

    def test_strict_error_names_the_line(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(sample_flows(5), path)
        lines = path.read_text().splitlines()
        lines[3] = lines[3].replace(lines[3].split(",")[0], "not-a-number", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{path}:4: "):
            list(iter_flows_csv(path, chunk_rows=2))

    def test_header_mismatch_fatal(self, tmp_path):
        path = tmp_path / "flows.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            list(iter_flows_csv(path))

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows_csv(sample_flows(2), path)
        with pytest.raises(ValueError, match="chunk_rows"):
            list(iter_flows_csv(path, chunk_rows=0))


class TestVantageChunkedCapture:
    def test_telescope_capture_chunks_match_one_shot(self, world):
        code, telescope = next(iter(world.telescopes.items()))
        flows = _ground_truth(world, day=0)
        whole = telescope.capture(flows, day=0).flows
        streamed = FlowTable.concat(
            telescope.capture_chunks(flows, day=0, chunk_rows=997)
        )
        assert len(streamed) == len(whole)
        np.testing.assert_array_equal(streamed.dst_ip, whole.dst_ip)
        np.testing.assert_array_equal(streamed.packets, whole.packets)

    def test_isp_capture_chunks_match_one_shot(self, world):
        flows = _ground_truth(world, day=0)
        whole = world.isp.capture(flows, day=0).flows
        streamed = FlowTable.concat(
            world.isp.capture_chunks(flows, day=0, chunk_rows=997)
        )
        assert len(streamed) == len(whole)
        np.testing.assert_array_equal(streamed.src_ip, whole.src_ip)
        np.testing.assert_array_equal(streamed.dst_ip, whole.dst_ip)

    def test_ixp_export_chunks_are_valid_views(self, world):
        flows = _ground_truth(world, day=0)
        rng = np.random.default_rng(11)
        codes = set(world.fabric.codes())
        total = 0
        for exports in world.fabric.export_day_chunks(flows, rng, chunk_rows=1500):
            assert set(exports) <= codes
            for table in exports.values():
                assert len(table) > 0
                total += len(table)
        assert total > 0


def _ground_truth(world, day: int):
    rng = world.config.child_rng(f"traffic-day-{day}")
    return world.annotate_dst_asn(world.mix.generate_day(day, rng))


class TestCliChunkSize:
    def test_funnel_accepts_chunk_size_and_prints_timings(self, capsys):
        assert main(
            ["funnel", "--scale", "micro", "--chunk-size", "500"]
        ) == 0
        out = capsys.readouterr().out
        assert "observed /24 subnets" in out
        for stage in ("tcp", "avg-size", "source-unseen", "volume", "classify"):
            assert stage in out

    def test_chunk_size_does_not_change_the_funnel(self, capsys):
        assert main(["funnel", "--scale", "micro"]) == 0
        plain = capsys.readouterr().out
        assert main(["funnel", "--scale", "micro", "--chunk-size", "73"]) == 0
        chunked = capsys.readouterr().out
        # Same funnel table; only the timing numbers may differ.
        funnel = lambda text: text.split("\n\n")[0]  # noqa: E731
        assert funnel(plain) == funnel(chunked)
