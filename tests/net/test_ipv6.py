"""Tests for IPv6 address/prefix plumbing and the candidate prototype."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ipv6_candidates import ipv6_candidate_sites
from repro.net.ipv6 import (
    MAX_IPV6,
    Ipv6Error,
    Ipv6Prefix,
    format_ip6,
    parse_ip6,
    site_of_ip6,
)


class TestParsing:
    @pytest.mark.parametrize(
        ("text", "value"),
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            ("2001:db8::1", (0x20010DB8 << 96) | 1),
            (
                "2001:0db8:0000:0000:0000:0000:0000:0001",
                (0x20010DB8 << 96) | 1,
            ),
            ("fe80::1%0" .replace("%0", ""), (0xFE80 << 112) | 1),
            ("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", MAX_IPV6),
            ("::ffff:192.0.2.1", (0xFFFF << 32) | 0xC0000201),
        ],
    )
    def test_parse(self, text, value):
        assert parse_ip6(text) == value

    @pytest.mark.parametrize(
        "text",
        [
            "",
            ":::",
            "1::2::3",
            "2001:db8",
            "2001:db8:0:0:0:0:0:0:1",
            "g::1",
            "12345::",
            "::ffff:300.0.2.1",
            "::ffff:1.2.3",
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(Ipv6Error):
            parse_ip6(text)

    @pytest.mark.parametrize(
        ("value", "text"),
        [
            (0, "::"),
            (1, "::1"),
            ((0x20010DB8 << 96) | 1, "2001:db8::1"),
            (MAX_IPV6, "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
            # RFC 5952: compress the longest run, leftmost on ties.
            (parse_ip6("2001:0:0:1:0:0:0:1"), "2001:0:0:1::1"),
            (parse_ip6("2001:db8:0:1:1:1:1:1"), "2001:db8:0:1:1:1:1:1"),
        ],
    )
    def test_format_canonical(self, value, text):
        assert format_ip6(value) == text

    def test_format_rejects_out_of_range(self):
        with pytest.raises(Ipv6Error):
            format_ip6(-1)

    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_roundtrip(self, value):
        assert parse_ip6(format_ip6(value)) == value


class TestPrefix:
    def test_parse(self):
        prefix = Ipv6Prefix.parse("2001:db8::/32")
        assert prefix.length == 32
        assert str(prefix) == "2001:db8::/32"

    def test_host_bits_rejected(self):
        with pytest.raises(Ipv6Error):
            Ipv6Prefix.parse("2001:db8::1/32")

    def test_contains_ip(self):
        prefix = Ipv6Prefix.parse("2001:db8::/32")
        assert prefix.contains_ip(parse_ip6("2001:db8:dead::beef"))
        assert not prefix.contains_ip(parse_ip6("2001:db9::1"))

    def test_sites(self):
        prefix = Ipv6Prefix.parse("2001:db8::/32")
        assert prefix.num_sites() == 2**16
        site = site_of_ip6(parse_ip6("2001:db8:7::1"))
        assert prefix.contains_site(site)
        assert not prefix.contains_site(site_of_ip6(parse_ip6("2001:db9::1")))

    def test_long_prefix_has_no_sites(self):
        assert Ipv6Prefix.parse("2001:db8::/64").num_sites() == 0

    def test_first_site(self):
        prefix = Ipv6Prefix.parse("2001:db8::/48")
        assert prefix.first_site() == site_of_ip6(parse_ip6("2001:db8::1"))


class TestCandidatePrototype:
    def make_space(self):
        announced = [Ipv6Prefix.parse("2001:db8::/32")]
        site = lambda text: site_of_ip6(parse_ip6(text))  # noqa: E731
        return announced, site

    def test_candidate_selection(self):
        announced, site = self.make_space()
        observed_dst = {
            site("2001:db8:1::1"),   # clean candidate
            site("2001:db8:2::1"),   # in hitlist
            site("2001:db8:3::1"),   # also a source
            site("3fff:1::1"),       # unannounced
        }
        result = ipv6_candidate_sites(
            observed_dst_sites=observed_dst,
            observed_src_sites={site("2001:db8:3::1")},
            announced=announced,
            hitlist_sites={site("2001:db8:2::1")},
        )
        assert result.candidate_sites == (site("2001:db8:1::1"),)
        assert result.observed == 4
        assert result.dropped_unannounced == 1
        assert result.dropped_hitlist == 1
        assert result.dropped_sources == 1

    def test_empty_observation(self):
        announced, _ = self.make_space()
        result = ipv6_candidate_sites(set(), set(), announced, set())
        assert result.candidate_sites == ()
        assert result.observed == 0
