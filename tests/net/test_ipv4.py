"""Unit and property tests for IPv4 address/prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import (
    MAX_IPV4,
    AddressError,
    Prefix,
    block_of_ip,
    block_to_network_ip,
    block_to_prefix,
    format_ip,
    parse_ip,
)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ip("192.0.2.1") == 0xC0000201

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == MAX_IPV4

    def test_parse_strips_whitespace(self):
        assert parse_ip(" 10.0.0.1 ") == 0x0A000001

    @pytest.mark.parametrize(
        "text", ["256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "", "1..2.3"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            parse_ip(text)

    def test_format_basic(self):
        assert format_ip(0xC0000201) == "192.0.2.1"

    @pytest.mark.parametrize("value", [-1, MAX_IPV4 + 1])
    def test_format_rejects_out_of_range(self, value):
        with pytest.raises(AddressError):
            format_ip(value)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value


class TestBlocks:
    def test_block_of_ip(self):
        assert block_of_ip(parse_ip("10.1.2.3")) == parse_ip("10.1.2.0") >> 8

    def test_block_to_network_ip(self):
        assert block_to_network_ip(block_of_ip(0x0A010203)) == 0x0A010200

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_block_roundtrip(self, value):
        block = block_of_ip(value)
        assert block_to_network_ip(block) <= value < block_to_network_ip(block) + 256

    def test_block_to_prefix(self):
        prefix = block_to_prefix(block_of_ip(parse_ip("198.51.0.7")))
        assert str(prefix) == "198.51.0.0/24"


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.network == 0x0A000000
        assert prefix.length == 8

    def test_parse_requires_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/8")

    @pytest.mark.parametrize("length", [-1, 33])
    def test_rejects_bad_length(self, length):
        with pytest.raises(AddressError):
            Prefix(0, length)

    def test_from_ip_masks(self):
        prefix = Prefix.from_ip(parse_ip("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/8").num_addresses() == 2**24
        assert Prefix.parse("10.0.0.0/32").num_addresses() == 1

    def test_num_blocks(self):
        assert Prefix.parse("10.0.0.0/8").num_blocks() == 2**16
        assert Prefix.parse("10.0.0.0/24").num_blocks() == 1
        assert Prefix.parse("10.0.0.0/25").num_blocks() == 0

    def test_first_last_ip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.first_ip() == parse_ip("192.0.2.0")
        assert prefix.last_ip() == parse_ip("192.0.2.255")

    def test_contains_ip(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains_ip(parse_ip("10.255.0.1"))
        assert not prefix.contains_ip(parse_ip("11.0.0.1"))

    def test_contains_block(self):
        prefix = Prefix.parse("10.0.0.0/16")
        assert prefix.contains_block(parse_ip("10.0.5.0") >> 8)
        assert not prefix.contains_block(parse_ip("10.1.0.0") >> 8)

    def test_long_prefix_contains_no_block(self):
        assert not Prefix.parse("10.0.0.0/25").contains_block(0x0A0000)

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_blocks_range(self):
        prefix = Prefix.parse("10.0.0.0/22")
        blocks = prefix.blocks()
        assert len(blocks) == 4
        assert blocks[0] == parse_ip("10.0.0.0") >> 8

    def test_blocks_empty_for_long(self):
        assert len(Prefix.parse("10.0.0.0/26").blocks()) == 0

    def test_subprefixes(self):
        subs = list(Prefix.parse("10.0.0.0/23").subprefixes(24))
        assert [str(s) for s in subs] == ["10.0.0.0/24", "10.0.1.0/24"]

    def test_subprefixes_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subprefixes(23))

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]

    def test_hashable(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
    )
    def test_from_ip_always_contains(self, address, length):
        prefix = Prefix.from_ip(address, length)
        assert prefix.contains_ip(address)

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=24),
    )
    def test_block_count_matches_range(self, address, length):
        prefix = Prefix.from_ip(address, length)
        assert prefix.num_blocks() == len(prefix.blocks())

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=1, max_value=32),
    )
    def test_netmask_hostmask_partition(self, address, length):
        prefix = Prefix.from_ip(address, length)
        assert prefix.netmask() ^ prefix.hostmask() == MAX_IPV4
        assert prefix.netmask() & prefix.hostmask() == 0
