"""Tests for block sets and CIDR aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.blocksets import BlockSet, aggregate_blocks, expand_prefixes
from repro.net.ipv4 import Prefix, parse_ip


class TestAggregation:
    def test_single_block(self):
        prefixes = aggregate_blocks(np.array([parse_ip("10.0.0.0") >> 8]))
        assert [str(p) for p in prefixes] == ["10.0.0.0/24"]

    def test_aligned_run(self):
        base = parse_ip("10.0.0.0") >> 8
        prefixes = aggregate_blocks(np.arange(base, base + 256))
        assert [str(p) for p in prefixes] == ["10.0.0.0/16"]

    def test_unaligned_run(self):
        base = parse_ip("10.0.1.0") >> 8
        prefixes = aggregate_blocks(np.arange(base, base + 3))
        assert [str(p) for p in prefixes] == ["10.0.1.0/24", "10.0.2.0/23"]

    def test_disjoint_runs(self):
        a = parse_ip("10.0.0.0") >> 8
        b = parse_ip("11.0.0.0") >> 8
        prefixes = aggregate_blocks(np.array([a, a + 1, b]))
        assert [str(p) for p in prefixes] == ["10.0.0.0/23", "11.0.0.0/24"]

    def test_empty(self):
        assert aggregate_blocks(np.array([])) == []

    def test_duplicates_ignored(self):
        base = parse_ip("10.0.0.0") >> 8
        prefixes = aggregate_blocks(np.array([base, base]))
        assert len(prefixes) == 1

    @given(
        st.lists(
            st.integers(min_value=0, max_value=5000), min_size=0, max_size=200
        )
    )
    @settings(max_examples=80)
    def test_cover_exactness(self, block_list):
        blocks = np.array(block_list, dtype=np.int64)
        prefixes = aggregate_blocks(blocks)
        covered = expand_prefixes(prefixes)
        assert covered.tolist() == np.unique(blocks).tolist()

    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=60)
    def test_run_cover_is_small(self, start, length):
        # A contiguous run of n blocks needs at most 2*log2(n)+2 prefixes.
        blocks = np.arange(start, start + length)
        prefixes = aggregate_blocks(blocks)
        assert len(prefixes) <= 2 * length.bit_length() + 2
        assert expand_prefixes(prefixes).tolist() == blocks.tolist()


class TestBlockSet:
    def test_membership(self):
        block_set = BlockSet(np.array([5, 9]))
        assert 5 in block_set
        assert 6 not in block_set
        assert len(block_set) == 2

    def test_algebra(self):
        a = BlockSet(np.array([1, 2, 3]))
        b = BlockSet(np.array([3, 4]))
        assert a.union(b).blocks.tolist() == [1, 2, 3, 4]
        assert a.intersection(b).blocks.tolist() == [3]
        assert a.difference(b).blocks.tolist() == [1, 2]

    def test_jaccard(self):
        a = BlockSet(np.array([1, 2]))
        b = BlockSet(np.array([2, 3]))
        assert a.jaccard(b) == pytest.approx(1 / 3)
        assert BlockSet(np.array([])).jaccard(BlockSet(np.array([]))) == 1.0

    def test_cidr_roundtrip(self):
        base = parse_ip("10.0.0.0") >> 8
        original = BlockSet(np.arange(base, base + 7))
        rebuilt = BlockSet.from_prefixes(original.to_cidrs())
        assert rebuilt.blocks.tolist() == original.blocks.tolist()
