"""Tests for the longest-prefix-match trie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipv4 import MAX_IPV4, Prefix, parse_ip
from repro.net.trie import PrefixTrie


def build(*entries):
    trie = PrefixTrie()
    for text, value in entries:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestInsertLookup:
    def test_exact(self):
        trie = build(("10.0.0.0/8", "a"))
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "a"
        assert trie.exact(Prefix.parse("10.0.0.0/9")) is None

    def test_len_counts_unique_prefixes(self):
        trie = build(("10.0.0.0/8", 1), ("10.0.0.0/16", 2), ("10.0.0.0/8", 3))
        assert len(trie) == 2

    def test_replace_value(self):
        trie = build(("10.0.0.0/8", 1), ("10.0.0.0/8", 2))
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == 2

    def test_longest_match_prefers_specific(self):
        trie = build(("10.0.0.0/8", "outer"), ("10.1.0.0/16", "inner"))
        prefix, value = trie.longest_match(parse_ip("10.1.2.3"))
        assert value == "inner"
        assert prefix.length == 16
        prefix, value = trie.longest_match(parse_ip("10.2.0.1"))
        assert value == "outer"

    def test_longest_match_miss(self):
        trie = build(("10.0.0.0/8", "a"))
        assert trie.longest_match(parse_ip("11.0.0.1")) is None

    def test_default_route(self):
        trie = build(("0.0.0.0/0", "default"))
        assert trie.longest_match(parse_ip("203.0.113.9"))[1] == "default"

    def test_items_ordered(self):
        trie = build(("11.0.0.0/8", 2), ("10.0.0.0/8", 1), ("10.1.0.0/16", 3))
        prefixes = [str(p) for p, _ in trie.items()]
        assert prefixes == ["10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"]


class TestBlockCoverage:
    def test_covers_block_inside(self):
        trie = build(("10.0.0.0/8", 1))
        assert trie.covers_block(parse_ip("10.9.9.0") >> 8)

    def test_covers_block_outside(self):
        trie = build(("10.0.0.0/8", 1))
        assert not trie.covers_block(parse_ip("11.0.0.0") >> 8)

    def test_long_prefix_does_not_cover_block(self):
        trie = build(("10.0.0.0/25", 1))
        assert not trie.covers_block(parse_ip("10.0.0.0") >> 8)

    def test_long_prefix_with_short_cover(self):
        trie = build(("10.0.0.0/25", 1), ("10.0.0.0/16", 2))
        assert trie.covers_block(parse_ip("10.0.0.0") >> 8)

    def test_covered_mask_matches_scalar(self):
        trie = build(("10.0.0.0/8", 1), ("192.0.0.0/16", 2))
        blocks = np.array(
            [
                parse_ip(a) >> 8
                for a in ("10.1.1.0", "11.0.0.0", "192.0.5.0", "192.1.0.0")
            ]
        )
        assert trie.covered_mask(blocks).tolist() == [True, False, True, False]

    def test_covered_mask_with_nested_prefixes(self):
        # A nested more-specific must not shadow its covering prefix.
        trie = build(("10.0.0.0/8", 1), ("10.0.0.0/16", 2), ("10.128.0.0/9", 3))
        probe = np.array([parse_ip("10.64.0.0") >> 8, parse_ip("10.200.0.0") >> 8])
        assert trie.covered_mask(probe).tolist() == [True, True]

    def test_covered_mask_empty_trie(self):
        trie = PrefixTrie()
        assert trie.covered_mask(np.array([1, 2, 3])).tolist() == [False] * 3

    def test_cache_invalidated_on_insert(self):
        trie = build(("10.0.0.0/8", 1))
        assert not trie.covered_mask(np.array([parse_ip("11.0.0.0") >> 8]))[0]
        trie.insert(Prefix.parse("11.0.0.0/8"), 2)
        assert trie.covered_mask(np.array([parse_ip("11.0.0.0") >> 8]))[0]


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=24))
    address = draw(st.integers(min_value=0, max_value=MAX_IPV4))
    return Prefix.from_ip(address, length)


class TestProperties:
    @given(st.lists(prefixes(), min_size=1, max_size=20), st.data())
    @settings(max_examples=60)
    def test_mask_agrees_with_scalar_lookup(self, prefix_list, data):
        trie = PrefixTrie()
        for i, prefix in enumerate(prefix_list):
            trie.insert(prefix, i)
        block = data.draw(st.integers(min_value=0, max_value=2**24 - 1))
        mask = trie.covered_mask(np.array([block]))
        assert bool(mask[0]) == trie.covers_block(block)

    @given(st.lists(prefixes(), min_size=1, max_size=20), st.data())
    @settings(max_examples=60)
    def test_lpm_is_a_cover(self, prefix_list, data):
        trie = PrefixTrie()
        for i, prefix in enumerate(prefix_list):
            trie.insert(prefix, i)
        address = data.draw(st.integers(min_value=0, max_value=MAX_IPV4))
        match = trie.longest_match(address)
        if match is not None:
            prefix, value = match
            assert prefix.contains_ip(address)
            assert prefix_list[value].length == prefix.length
