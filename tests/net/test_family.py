"""Tests for the address-family contract (repro.net.family)."""

import numpy as np
import pytest

from repro.net.family import (
    FAMILY_IPV4,
    FAMILY_IPV6,
    IPV4,
    IPV6,
    family,
    family_names,
    family_of_prefix,
)
from repro.net.ipv4 import AddressError, Prefix, parse_ip
from repro.net.ipv6 import Ipv6Prefix, parse_ip6


class TestLookup:
    def test_names(self):
        assert tuple(family_names()) == (FAMILY_IPV4, FAMILY_IPV6)

    def test_by_name(self):
        assert family("ipv4") is IPV4
        assert family("ipv6") is IPV6

    def test_unknown_name_is_a_value_error(self):
        # AddressError subclasses ValueError so generic parse handlers
        # catch family errors too.
        with pytest.raises(AddressError):
            family("ipv5")
        with pytest.raises(ValueError):
            family("ipv5")

    def test_of_prefix(self):
        assert family_of_prefix(Prefix.parse("10.0.0.0/8")) is IPV4
        assert family_of_prefix(Ipv6Prefix.parse("2001:db8::/32")) is IPV6


class TestConstants:
    def test_ipv4(self):
        assert IPV4.ip_block_shift == 8
        assert IPV4.key_block_shift == 8
        assert IPV4.num_blocks == 1 << 24
        assert IPV4.key_dtype == np.dtype(np.uint32)

    def test_ipv6(self):
        # Engine key = upper 64 bits (/64 id); block = /48 site.
        assert IPV6.ip_block_shift == 80
        assert IPV6.key_block_shift == 16
        assert IPV6.num_blocks == 1 << 48
        assert IPV6.key_dtype == np.dtype(np.uint64)


class TestBlockArithmetic:
    def test_v4_block_of_matches_historical_shift(self):
        keys = np.array([0, 255, 256, 0xC0A80101, 0xFFFFFFFF], dtype=np.uint32)
        expected = (keys >> np.uint32(8)).astype(np.int64)
        assert np.array_equal(IPV4.block_of(keys), expected)
        assert IPV4.block_of(keys).dtype == np.int64

    def test_v6_block_of(self):
        site = 0x20010D0000 << 8  # 2001:d00::/48 site id
        keys = np.array(
            [site << 16, (site << 16) | 0xFFFF], dtype=np.uint64
        )
        assert IPV6.block_of(keys).tolist() == [site, site]

    def test_blocks_to_keys_roundtrip(self):
        for fam in (IPV4, IPV6):
            blocks = np.array([0, 1, fam.num_blocks - 1], dtype=np.int64)
            keys = fam.blocks_to_keys(blocks)
            assert keys.dtype == fam.key_dtype
            assert np.array_equal(fam.block_of(keys), blocks)

    def test_scalar_conversions(self):
        ip = parse_ip("192.0.2.77")
        assert IPV4.key_of_ip(ip) == ip
        assert IPV4.lo_of_ip(ip) == 0
        assert IPV4.block_of_ip(ip) == ip >> 8
        ip6 = parse_ip6("2001:db8:1:2:3:4:5:6")
        assert IPV6.key_of_ip(ip6) == ip6 >> 64
        assert IPV6.lo_of_ip(ip6) == ip6 & ((1 << 64) - 1)
        assert IPV6.block_of_ip(ip6) == ip6 >> 80
        assert IPV6.block_of_key(IPV6.key_of_ip(ip6)) == ip6 >> 80

    def test_block_to_ip_is_network_address(self):
        assert IPV4.block_to_ip(IPV4.block_of_ip(parse_ip("10.1.2.3"))) == (
            parse_ip("10.1.2.0")
        )
        site = IPV6.block_of_ip(parse_ip6("2001:db8:42::1"))
        assert IPV6.block_to_ip(site) == parse_ip6("2001:db8:42::")


class TestText:
    def test_parse_format(self):
        assert IPV4.format_ip(IPV4.parse_ip("198.51.100.1")) == "198.51.100.1"
        assert IPV6.format_ip(IPV6.parse_ip("2001:DB8::1")) == "2001:db8::1"

    def test_block_to_prefix(self):
        prefix = IPV4.block_to_prefix(IPV4.block_of_ip(parse_ip("10.2.3.9")))
        assert str(prefix) == "10.2.3.0/24"
        site = IPV6.block_of_ip(parse_ip6("2001:db8:7::9"))
        assert IPV6.format_block(site) == "2001:db8:7::/48"

    def test_parse_prefix_types(self):
        assert isinstance(IPV4.parse_prefix("10.0.0.0/24"), Prefix)
        assert isinstance(IPV6.parse_prefix("2001:db8::/48"), Ipv6Prefix)


class TestSpecialRegistry:
    def test_families_get_their_own_registry(self):
        v4 = IPV4.special_registry()
        v6 = IPV6.special_registry()
        assert v4.family is IPV4
        assert v6.family is IPV6
        assert v6.is_special_block(
            Ipv6Prefix.parse("2001:db8::/48").first_site()
        )
        assert not v6.is_special_block(
            Ipv6Prefix.parse("2001:d00::/48").first_site()
        )
