"""Tests for the RFC 6890 special-purpose registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import Prefix, parse_ip
from repro.net.special import (
    SPECIAL_PURPOSE_REGISTRY,
    SpecialPurposeEntry,
    SpecialPurposeRegistry,
)


class TestMembership:
    @pytest.mark.parametrize(
        "address",
        [
            "10.0.0.1",
            "127.0.0.1",
            "169.254.1.1",
            "172.16.0.1",
            "172.31.255.255",
            "192.168.1.1",
            "100.64.0.1",
            "198.18.0.1",
            "192.0.2.1",
            "198.51.100.1",
            "203.0.113.1",
            "224.0.0.1",
            "239.255.255.255",
            "240.0.0.1",
            "0.1.2.3",
        ],
    )
    def test_special_addresses(self, address):
        assert SPECIAL_PURPOSE_REGISTRY.is_special_ip(parse_ip(address))

    @pytest.mark.parametrize(
        "address",
        [
            "1.1.1.1",
            "8.8.8.8",
            "100.63.255.255",
            "100.128.0.0",
            "172.32.0.1",
            "11.0.0.1",
            "223.255.255.255",
            "198.20.0.1",
        ],
    )
    def test_public_addresses(self, address):
        assert not SPECIAL_PURPOSE_REGISTRY.is_special_ip(parse_ip(address))

    def test_block_query_matches_ip_query(self):
        block = parse_ip("192.168.55.0") >> 8
        assert SPECIAL_PURPOSE_REGISTRY.is_special_block(block)

    def test_broadcast_taints_its_block(self):
        assert SPECIAL_PURPOSE_REGISTRY.is_special_block(parse_ip("255.255.255.0") >> 8)


class TestVectorised:
    def test_mask_agrees_with_scalar(self):
        blocks = np.array(
            [
                parse_ip(a) >> 8
                for a in ("10.1.2.0", "8.8.8.0", "192.168.0.0", "1.2.3.0")
            ]
        )
        mask = SPECIAL_PURPOSE_REGISTRY.special_mask(blocks)
        assert mask.tolist() == [True, False, True, False]

    def test_empty_input(self):
        assert SPECIAL_PURPOSE_REGISTRY.special_mask(np.array([], dtype=np.int64)).size == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**24 - 1), max_size=64))
    def test_mask_property(self, blocks):
        blocks_arr = np.array(blocks, dtype=np.int64)
        mask = SPECIAL_PURPOSE_REGISTRY.special_mask(blocks_arr)
        for block, value in zip(blocks, mask):
            assert SPECIAL_PURPOSE_REGISTRY.is_special_block(block) == bool(value)


class TestDescribe:
    def test_known_entry(self):
        name = SPECIAL_PURPOSE_REGISTRY.describe(parse_ip("10.3.0.0") >> 8)
        assert name == "private-use"

    def test_unknown_entry(self):
        assert SPECIAL_PURPOSE_REGISTRY.describe(parse_ip("8.8.8.0") >> 8) is None


class TestCustomRegistry:
    def test_custom_entries(self):
        registry = SpecialPurposeRegistry(
            [
                SpecialPurposeEntry(Prefix.parse("5.0.0.0/8"), "test", False),
            ]
        )
        assert registry.is_special_ip(parse_ip("5.1.2.3"))
        assert not registry.is_special_ip(parse_ip("6.1.2.3"))

    def test_default_matches_module_constant(self):
        fresh = SpecialPurposeRegistry.default()
        assert len(fresh.entries) == len(SPECIAL_PURPOSE_REGISTRY.entries)
