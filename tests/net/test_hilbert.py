"""Tests for the Hilbert curve mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.hilbert import HilbertCurve
from repro.net.ipv4 import Prefix


class TestBasics:
    def test_order_one(self):
        curve = HilbertCurve(1)
        coords = [curve.d2xy(d) for d in range(4)]
        # The four cells of a 2x2 grid, each visited once.
        assert sorted(coords) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_adjacent_distances_are_adjacent_cells(self):
        curve = HilbertCurve(4)
        for d in range(curve.length - 1):
            x1, y1 = curve.d2xy(d)
            x2, y2 = curve.d2xy(d + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            HilbertCurve(0)
        with pytest.raises(ValueError):
            HilbertCurve(17)

    def test_rejects_out_of_range_distance(self):
        curve = HilbertCurve(2)
        with pytest.raises(ValueError):
            curve.d2xy(16)

    def test_rejects_out_of_range_xy(self):
        curve = HilbertCurve(2)
        with pytest.raises(ValueError):
            curve.xy2d(4, 0)


class TestBijection:
    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=50)
    def test_roundtrip(self, order, data):
        curve = HilbertCurve(order)
        distance = data.draw(st.integers(min_value=0, max_value=curve.length - 1))
        x, y = curve.d2xy(distance)
        assert curve.xy2d(x, y) == distance

    def test_full_bijection_order_4(self):
        curve = HilbertCurve(4)
        d = np.arange(curve.length)
        x, y = curve.d2xy_array(d)
        assert len(set(zip(x.tolist(), y.tolist()))) == curve.length
        assert np.array_equal(curve.xy2d_array(x, y), d)


class TestForPrefix:
    def test_slash8_is_order_8(self):
        curve = HilbertCurve.for_prefix(Prefix.parse("10.0.0.0/8"))
        assert curve.order == 8
        assert curve.length == 2**16

    def test_slash16_is_order_4(self):
        curve = HilbertCurve.for_prefix(Prefix.parse("10.0.0.0/16"))
        assert curve.order == 4

    def test_odd_split_rejected(self):
        with pytest.raises(ValueError):
            HilbertCurve.for_prefix(Prefix.parse("10.0.0.0/9"))

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            HilbertCurve.for_prefix(Prefix.parse("10.0.0.0/25"))


class TestGrid:
    def test_grid_marks_blocks(self):
        curve = HilbertCurve(2)
        grid = curve.grid_for_blocks(100, np.array([100, 101, 115]))
        assert grid.sum() == 3

    def test_grid_values(self):
        curve = HilbertCurve(2)
        grid = curve.grid_for_blocks(
            0, np.array([0, 1]), values=np.array([5, 7])
        )
        assert sorted(grid[grid > 0].tolist()) == [5, 7]

    def test_contiguous_blocks_form_connected_region(self):
        # Hilbert locality: a run of consecutive blocks paints a
        # connected set of pixels (each consecutive pair adjacent).
        curve = HilbertCurve(5)
        run = np.arange(200, 264)
        x, y = curve.d2xy_array(run - 0)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (steps == 1).all()
