"""Property-based tests for IPv6 text handling and site arithmetic.

Hypothesis generates addresses across the whole 128-bit space; the
invariants below pin the RFC 5952 behaviour the rest of the engine
relies on: parse and format are inverse bijections, formatting is
canonical (re-parsing a formatted address and formatting again is a
no-op), and ``site_of_ip6`` maps exactly the addresses of a /48 to
its site id.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipv6 import (
    SITE_SHIFT,
    Ipv6Prefix,
    format_ip6,
    parse_ip6,
    site_of_ip6,
)

MAX_IP6 = (1 << 128) - 1
addresses = st.integers(min_value=0, max_value=MAX_IP6)
sites = st.integers(min_value=0, max_value=(1 << 48) - 1)


@settings(max_examples=300)
@given(addresses)
def test_format_parse_roundtrip(value):
    assert parse_ip6(format_ip6(value)) == value


@settings(max_examples=300)
@given(addresses)
def test_format_is_canonical(value):
    # RFC 5952 gives every address exactly one canonical text form, so
    # formatting is idempotent under re-parsing.
    text = format_ip6(value)
    assert format_ip6(parse_ip6(text)) == text


@given(addresses)
def test_format_is_lowercase_and_compact(value):
    text = format_ip6(value)
    assert text == text.lower()
    assert ":::" not in text
    assert text.count("::") <= 1


@settings(max_examples=200)
@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=8, max_size=8))
def test_parse_full_form(groups):
    text = ":".join(f"{g:x}" for g in groups)
    expected = 0
    for group in groups:
        expected = (expected << 16) | group
    assert parse_ip6(text) == expected


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_parse_embedded_ipv4(v4):
    octets = [(v4 >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    dotted = ".".join(str(o) for o in octets)
    assert parse_ip6(f"::ffff:{dotted}") == (0xFFFF << 32) | v4


@given(sites)
def test_site_of_ip6_covers_exactly_the_slash48(site):
    first = site << SITE_SHIFT
    last = first + (1 << SITE_SHIFT) - 1
    assert site_of_ip6(first) == site
    assert site_of_ip6(last) == site
    if first > 0:
        assert site_of_ip6(first - 1) == site - 1
    if last < MAX_IP6:
        assert site_of_ip6(last + 1) == site + 1


@given(sites)
def test_prefix_from_site_roundtrip(site):
    prefix = Ipv6Prefix(network=site << SITE_SHIFT, length=48)
    assert prefix.first_site() == site
    assert site_of_ip6(prefix.last_ip()) == site
    assert Ipv6Prefix.parse(str(prefix)) == prefix
