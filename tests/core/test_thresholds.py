"""Tests for the Table-3 threshold tuning machinery."""

import numpy as np
import pytest

from repro.core.thresholds import (
    block_size_features,
    evaluate_thresholds,
    isp_inbound_tables,
    label_isp_blocks,
)
from repro.traffic.packets import PROTO_UDP

from _factories import ip, make_flows, make_view


class TestLabeling:
    def test_dark_vs_active_labels(self):
        isp_blocks = np.array([10, 11, 12])
        views = [
            make_view(
                [
                    {"dst_ip": ip(10)},                      # receives only
                    {"dst_ip": ip(11)},
                    {"src_ip": ip(11), "dst_ip": ip(99), "packets": 2000},
                    {"dst_ip": ip(12)},
                    {"src_ip": ip(12), "dst_ip": ip(99), "packets": 5},
                ],
                vantage="ISP",
            )
        ]
        labels = label_isp_blocks(views, isp_blocks, active_min_week_packets=1000)
        assert labels.dark_blocks.tolist() == [10]
        assert labels.active_blocks.tolist() == [11]
        assert labels.excluded_blocks.tolist() == [12]
        assert labels.receiving_blocks.tolist() == [10, 11, 12]

    def test_activity_pooled_across_days(self):
        isp_blocks = np.array([10])
        views = [
            make_view(
                [
                    {"dst_ip": ip(10)},
                    {"src_ip": ip(10), "dst_ip": ip(99), "packets": 600},
                ],
                day=d,
            )
            for d in range(2)
        ]
        labels = label_isp_blocks(views, isp_blocks, active_min_week_packets=1000)
        assert labels.active_blocks.tolist() == [10]

    def test_outside_blocks_ignored(self):
        views = [make_view([{"dst_ip": ip(50)}])]
        labels = label_isp_blocks(views, np.array([10]), 1000)
        assert len(labels.receiving_blocks) == 0


class TestFeatures:
    def test_mean_and_median(self):
        flows = make_flows(
            [
                {"dst_ip": ip(10), "packets": 9, "bytes": 9 * 40},
                {"dst_ip": ip(10, 2), "packets": 1, "bytes": 1500},
            ]
        )
        features = block_size_features([flows], np.array([10]))
        assert features.blocks.tolist() == [10]
        assert features.mean_size[0] == pytest.approx((9 * 40 + 1500) / 10)
        assert features.median_size[0] == 40.0

    def test_udp_excluded(self):
        flows = make_flows(
            [
                {"dst_ip": ip(10), "packets": 1, "bytes": 40},
                {"dst_ip": ip(10), "proto": PROTO_UDP, "packets": 100, "bytes": 10000},
            ]
        )
        features = block_size_features([flows], np.array([10]))
        assert features.mean_size[0] == 40.0

    def test_restricted_to_requested_blocks(self):
        flows = make_flows([{"dst_ip": ip(10)}, {"dst_ip": ip(11)}])
        features = block_size_features([flows], np.array([10]))
        assert features.blocks.tolist() == [10]


class TestEvaluation:
    def make_setup(self):
        # Two dark blocks (small sizes) and two active (one with small
        # median but large mean -> the median/mean contrast).
        flows = make_flows(
            [
                {"dst_ip": ip(10), "packets": 10, "bytes": 400},
                {"dst_ip": ip(11), "packets": 10, "bytes": 400},
                # active with many ACKs (median 40) but large mean
                {"dst_ip": ip(20), "packets": 6, "bytes": 6 * 40},
                {"dst_ip": ip(20, 2), "packets": 4, "bytes": 4 * 1500},
                # plainly active
                {"dst_ip": ip(21), "packets": 10, "bytes": 10 * 1500},
                # an excluded weak-activity block
                {"dst_ip": ip(30), "packets": 10, "bytes": 400},
            ]
        )
        features = block_size_features([flows], np.array([10, 11, 20, 21, 30]))

        class Labels:
            dark_blocks = np.array([10, 11])
            active_blocks = np.array([20, 21])
            excluded_blocks = np.array([30])
            receiving_blocks = np.array([10, 11, 20, 21, 30])

        return features, Labels()

    def test_mean_feature_perfect_here(self):
        features, labels = self.make_setup()
        rows = evaluate_thresholds(features, labels, thresholds=(44.0,))
        mean_row = next(r for r in rows if r.feature == "average")
        assert mean_row.false_positive_rate == 0.0
        assert mean_row.false_negative_rate == 0.0
        assert mean_row.f1_score == 1.0

    def test_median_feature_has_false_positive(self):
        features, labels = self.make_setup()
        rows = evaluate_thresholds(features, labels, thresholds=(44.0,))
        median_row = next(r for r in rows if r.feature == "median")
        # Block 20's median is 40 (ACK-heavy) -> classified dark though active.
        assert median_row.false_positive_rate == pytest.approx(0.5)

    def test_excluded_blocks_not_evaluated(self):
        features, labels = self.make_setup()
        rows = evaluate_thresholds(features, labels, thresholds=(44.0,))
        # 4 evaluated blocks -> rates are multiples of 1/2 per class.
        for row in rows:
            assert row.true_positive_rate + row.false_negative_rate == pytest.approx(1.0)

    def test_all_thresholds_evaluated(self):
        features, labels = self.make_setup()
        rows = evaluate_thresholds(features, labels)
        assert len(rows) == 8  # 2 features x 4 default thresholds

    def test_isp_inbound_tables(self):
        views = [make_view([{"dst_ip": ip(10)}, {"dst_ip": ip(50)}])]
        tables = isp_inbound_tables(views, np.array([10]))
        assert len(tables) == 1
        assert tables[0].dst_blocks().tolist() == [10]
