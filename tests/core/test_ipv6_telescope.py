"""End-to-end tests for IPv6 inference through the unchanged engine."""

import numpy as np
import pytest

from repro.core.ipv6_telescope import infer_ipv6, ipv6_telescope
from repro.core.online import OnlineMetaTelescope
from repro.core.snapshot import ClassificationSnapshot
from repro.net.family import FAMILY_IPV6
from repro.world.ipv6 import (
    LEAKED_SITE,
    ipv6_views,
    micro_ipv6_world,
)


@pytest.fixture(scope="module")
def world():
    return micro_ipv6_world(seed=7)


@pytest.fixture(scope="module")
def views(world):
    return ipv6_views(world)


@pytest.fixture(scope="module")
def report(world, views):
    return infer_ipv6(world, views)


class TestBatch:
    def test_funnel_pinned_micro_seed7(self, report):
        counts = report.result.pipeline.funnel
        assert counts.observed == 25
        assert counts.after_tcp == 24
        assert counts.after_avg_size == 19
        assert counts.after_source_unseen == 19
        assert counts.after_special == 18
        assert counts.after_routed == 14
        assert counts.after_volume == 13

    def test_served_and_coverage_pinned(self, report):
        assert len(report.served_sites) == 12
        assert report.coverage.truth_dark == 10
        assert report.coverage.served == 12
        assert report.coverage.recall() == pytest.approx(0.8)
        assert report.coverage.precision() == pytest.approx(8 / 12)

    def test_engine_drops_what_the_candidate_filter_cannot(self, world, report):
        # The leak makes documentation space routed, so only the
        # special-purpose stage can exclude it.
        served = set(report.served_sites.tolist())
        assert LEAKED_SITE in report.candidates.candidate_sites
        assert LEAKED_SITE not in served
        # Flooded and UDP-only dark sites fall at the volume/TCP stages.
        assert world.flood_site not in served
        assert world.udp_only_site not in served

    def test_served_is_dark_and_candidate(self, report):
        dark = set(report.result.pipeline.dark_blocks.tolist())
        candidates = set(report.candidates.candidate_sites)
        served = set(report.served_sites.tolist())
        assert served == dark & candidates

    def test_snapshot_family_and_provenance(self, report):
        assert report.snapshot.family == FAMILY_IPV6
        assert report.snapshot.provenance["engine"] == "ipv6"
        drops = report.snapshot.provenance["candidate_drops"]
        assert drops == {"unannounced": 4, "hitlist": 6, "sources": 0}


class TestExecutionIdentity:
    def test_chunked_matches_batch(self, world, views, report):
        chunked = infer_ipv6(world, views, chunk_size=97)
        assert np.array_equal(chunked.served_sites, report.served_sites)
        assert chunked.snapshot.identical_to(report.snapshot)

    def test_parallel_matches_batch(self, world, views, report):
        parallel = infer_ipv6(world, views, workers=2)
        assert np.array_equal(parallel.served_sites, report.served_sites)
        assert parallel.snapshot.identical_to(report.snapshot)

    def test_native_kernel_matches_numpy(self, world, views, report):
        native = infer_ipv6(world, views, kernel="native")
        assert np.array_equal(native.served_sites, report.served_sites)
        assert native.snapshot.identical_to(report.snapshot)


class TestOnline:
    def test_online_matches_batch_dark_set(self, world, views, report):
        online = OnlineMetaTelescope(
            telescope=ipv6_telescope(world),
            window_days=world.config.num_days,
            min_stable_days=1,
            use_spoofing_tolerance=False,
        )
        for view in views:
            update = online.update(view.day, [view])
            assert update.action == "inferred"
        assert np.array_equal(
            online.current_prefixes(), report.result.pipeline.dark_blocks
        )
        snapshot = online.snapshot()
        assert snapshot.family == FAMILY_IPV6


class TestPersistence:
    def test_snapshot_roundtrip_keeps_family(self, report, tmp_path):
        path = tmp_path / "v6.snapshot"
        report.snapshot.save(path)
        loaded = ClassificationSnapshot.open(path)
        assert loaded.family == FAMILY_IPV6
        assert loaded.identical_to(report.snapshot)

    def test_roundtripped_snapshot_formats_sites(self, report, tmp_path):
        path = tmp_path / "v6.snapshot"
        report.snapshot.save(path)
        loaded = ClassificationSnapshot.open(path)
        answer = loaded.lookup(int(report.served_sites[0]))
        assert answer.dark
        assert str(answer.prefix).endswith("/48")


class TestValidation:
    def test_empty_views_rejected(self, world):
        with pytest.raises(ValueError):
            infer_ipv6(world, [])
