"""Exact-semantics tests of the seven-step inference pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.net.ipv4 import parse_ip
from repro.traffic.packets import PROTO_TCP, PROTO_UDP

from _factories import ip, make_view, routing_for

# Blocks inside the announced test prefix 20.0.0.0/8.
BASE = parse_ip("20.0.0.0") >> 8
ROUTING = routing_for("20.0.0.0/8")


def run(rows, config=None, views=None):
    if views is None:
        views = [make_view(rows)]
    return run_pipeline(views, ROUTING, config or PipelineConfig())


def syn_row(block, host=1, packets=1, **overrides):
    row = {
        "dst_ip": ip(block, host),
        "proto": PROTO_TCP,
        "packets": packets,
        "bytes": packets * 40,
    }
    row.update(overrides)
    return row


class TestDarkClassification:
    def test_clean_syn_block_is_dark(self):
        result = run([syn_row(BASE)])
        assert result.dark_blocks.tolist() == [BASE]

    def test_multiple_ips_all_surviving(self):
        result = run([syn_row(BASE, host=h) for h in range(1, 6)])
        assert result.dark_blocks.tolist() == [BASE]

    def test_48_byte_option_syn_still_dark(self):
        # One option-SYN must not demote the block (per-IP slack).
        result = run(
            [syn_row(BASE, host=1), syn_row(BASE, host=2, bytes=48)]
        )
        assert result.dark_blocks.tolist() == [BASE]


class TestTcpFilter:
    def test_udp_only_block_removed(self):
        result = run([syn_row(BASE, proto=PROTO_UDP, bytes=100)])
        assert result.funnel.observed == 1
        assert result.funnel.after_tcp == 0
        assert len(result.dark_blocks) == 0

    def test_udp_only_ip_is_neutral(self):
        # A UDP-only address carries no TCP evidence either way: the
        # block stays dark as long as a TCP-surviving address exists.
        rows = [
            syn_row(BASE, host=1),
            syn_row(BASE, host=2, proto=PROTO_UDP, bytes=100),
        ]
        result = run(rows)
        assert result.dark_blocks.tolist() == [BASE]


class TestSizeFilter:
    def test_large_average_block_removed(self):
        result = run([syn_row(BASE, bytes=1500)])
        assert result.funnel.after_tcp == 1
        assert result.funnel.after_avg_size == 0

    def test_block_average_pooled_across_ips(self):
        # Two IPs at 40 B and one payload IP at 1500 B: block mean > 44.
        rows = [
            syn_row(BASE, host=1, packets=2),
            syn_row(BASE, host=2, packets=2),
            syn_row(BASE, host=3, bytes=1500),
        ]
        result = run(rows)
        assert result.funnel.after_avg_size == 0

    def test_payload_ip_in_small_block_makes_unclean(self):
        # Many SYNs keep the block mean small; one payload IP fails
        # individually -> unclean.
        rows = [syn_row(BASE, host=h, packets=10) for h in range(1, 10)]
        rows.append(syn_row(BASE, host=10, bytes=120))
        result = run(rows)
        assert result.unclean_blocks.tolist() == [BASE]

    def test_threshold_configurable(self):
        config = PipelineConfig(avg_size_threshold=100.0, ip_size_threshold=100.0)
        result = run([syn_row(BASE, bytes=80)], config=config)
        assert result.dark_blocks.tolist() == [BASE]


class TestSourceFilter:
    def test_source_block_becomes_gray(self):
        rows = [
            syn_row(BASE, host=1),
            {"src_ip": ip(BASE, 2), "dst_ip": ip(BASE + 500, 1)},
        ]
        result = run(rows)
        assert result.gray_blocks.tolist() == [BASE]
        assert BASE not in result.dark_blocks

    def test_sole_ip_both_directions_removed(self):
        # The only observed IP also sources traffic: no survivor left
        # in BASE (the outbound flow's destination block is a separate
        # observation that dies at the globally-routed step).
        rows = [
            syn_row(BASE, host=1),
            {"src_ip": ip(BASE, 1), "dst_ip": parse_ip("30.0.0.1")},
        ]
        result = run(rows)
        assert result.funnel.after_avg_size == 2
        assert result.funnel.after_source_unseen == 1
        assert result.funnel.after_routed == 0

    def test_tolerance_forgives_small_source(self):
        rows = [
            syn_row(BASE, host=1),
            {"src_ip": ip(BASE, 2), "dst_ip": parse_ip("30.0.0.1"), "packets": 1},
        ]
        config = PipelineConfig(spoof_tolerance=1.0)
        result = run(rows, config=config)
        assert result.dark_blocks.tolist() == [BASE]

    def test_tolerance_exceeded_still_gray(self):
        rows = [
            syn_row(BASE, host=1),
            {"src_ip": ip(BASE, 2), "dst_ip": ip(BASE + 500, 1), "packets": 5},
        ]
        config = PipelineConfig(spoof_tolerance=1.0)
        result = run(rows, config=config)
        assert result.gray_blocks.tolist() == [BASE]

    def test_per_view_tolerance_mapping(self):
        view = make_view(
            [
                syn_row(BASE, host=1),
                {"src_ip": ip(BASE, 2), "dst_ip": parse_ip("30.0.0.1")},
            ],
            vantage="V9",
            day=3,
        )
        config = PipelineConfig(spoof_tolerance={"V9": 2.0})
        result = run(None, config=config, views=[view])
        assert result.dark_blocks.tolist() == [BASE]
        assert result.applied_tolerances["V9"] == 2.0

    def test_ignored_sender_asns(self):
        rows = [
            syn_row(BASE, host=1),
            {
                "src_ip": ip(BASE, 2),
                "dst_ip": parse_ip("30.0.0.1"),
                "sender_asn": 666,
            },
        ]
        config = PipelineConfig(ignore_sources_from_asns=frozenset({666}))
        result = run(rows, config=config)
        assert result.dark_blocks.tolist() == [BASE]


class TestSpecialAndRouting:
    def test_reserved_block_removed(self):
        private = parse_ip("192.168.1.0") >> 8
        result = run([syn_row(private)])
        assert result.funnel.after_source_unseen == 1
        assert result.funnel.after_special == 0

    def test_unrouted_block_removed(self):
        unrouted = parse_ip("99.0.0.0") >> 8
        result = run([syn_row(unrouted)])
        assert result.funnel.after_special == 1
        assert result.funnel.after_routed == 0


class TestVolumeFilter:
    def test_high_volume_removed(self):
        config = PipelineConfig(volume_threshold_pkts_day=100.0)
        result = run([syn_row(BASE, packets=200)], config=config)
        assert result.funnel.after_routed == 1
        assert result.funnel.after_volume == 0
        assert result.volume_filtered_blocks.tolist() == [BASE]

    def test_sampling_factor_scales_estimate(self):
        # 20 sampled packets at factor 10 -> estimate 200 > threshold.
        view = make_view([syn_row(BASE, packets=20)], sampling_factor=10.0)
        config = PipelineConfig(volume_threshold_pkts_day=100.0)
        result = run(None, config=config, views=[view])
        assert len(result.dark_blocks) == 0

    def test_median_across_days(self):
        # One burst day out of three: the median saves the block.
        views = [
            make_view([syn_row(BASE, packets=500)], day=0),
            make_view([syn_row(BASE, packets=10)], day=1),
            make_view([syn_row(BASE, packets=10)], day=2),
        ]
        config = PipelineConfig(volume_threshold_pkts_day=100.0)
        result = run(None, config=config, views=views)
        assert result.dark_blocks.tolist() == [BASE]

    def test_majority_of_days_over_threshold_removed(self):
        views = [
            make_view([syn_row(BASE, packets=500)], day=d) for d in range(2)
        ] + [make_view([syn_row(BASE, packets=10)], day=2)]
        config = PipelineConfig(volume_threshold_pkts_day=100.0)
        result = run(None, config=config, views=views)
        assert len(result.dark_blocks) == 0

    def test_udp_counts_toward_volume(self):
        rows = [
            syn_row(BASE, packets=10),
            syn_row(BASE, host=2, proto=PROTO_UDP, packets=500, bytes=500 * 60),
        ]
        config = PipelineConfig(volume_threshold_pkts_day=100.0)
        result = run(rows, config=config)
        assert len(result.dark_blocks) == 0


class TestMultiView:
    def test_pooling_across_vantages(self):
        # Source sighting at one vantage disqualifies everywhere.
        views = [
            make_view([syn_row(BASE, host=1)], vantage="A"),
            make_view(
                [{"src_ip": ip(BASE, 2), "dst_ip": ip(BASE + 500, 1)}], vantage="B"
            ),
        ]
        result = run(None, views=views)
        assert result.gray_blocks.tolist() == [BASE]

    def test_union_of_observed_blocks(self):
        views = [
            make_view([syn_row(BASE)], vantage="A"),
            make_view([syn_row(BASE + 1)], vantage="B"),
        ]
        result = run(None, views=views)
        assert sorted(result.dark_blocks.tolist()) == [BASE, BASE + 1]

    def test_empty_views_rejected(self):
        with pytest.raises(ValueError):
            run_pipeline([], ROUTING)


class TestFunnelConsistency:
    def test_funnel_monotone(self):
        rows = [
            syn_row(BASE),
            syn_row(BASE + 1, bytes=1500),
            syn_row(BASE + 2, proto=PROTO_UDP),
            syn_row(parse_ip("192.168.0.0") >> 8),
        ]
        funnel = run(rows).funnel
        counts = [c for _, c in funnel.as_rows()]
        assert counts == sorted(counts, reverse=True)

    def test_classes_partition_candidates(self):
        rows = [
            syn_row(BASE, host=1),
            syn_row(BASE + 1, host=1),
            {"src_ip": ip(BASE + 1, 2), "dst_ip": ip(BASE + 900, 1)},
            syn_row(BASE + 2, host=1),
            syn_row(BASE + 2, host=2, proto=PROTO_UDP),
        ]
        result = run(rows)
        classified = (
            len(result.dark_blocks)
            + len(result.unclean_blocks)
            + len(result.gray_blocks)
        )
        assert classified == result.funnel.after_volume

    def test_classes_disjoint(self):
        rows = [syn_row(BASE + i, host=1) for i in range(20)]
        result = run(rows)
        dark = set(result.dark_blocks.tolist())
        unclean = set(result.unclean_blocks.tolist())
        gray = set(result.gray_blocks.tolist())
        assert not (dark & unclean or dark & gray or unclean & gray)
