"""Property-based tests of the inference pipeline's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.net.ipv4 import parse_ip
from repro.net.special import SPECIAL_PURPOSE_REGISTRY
from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.vantage.sampling import VantageDayView

from _factories import routing_for

ROUTING = routing_for("20.0.0.0/8", "21.0.0.0/8")
BASE = parse_ip("20.0.0.0") >> 8


@st.composite
def flow_tables(draw):
    """Random small flow tables around the announced test space."""
    count = draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    # Destinations spread over announced, unannounced and reserved space.
    dst_pool = np.array(
        [BASE + i for i in range(8)]
        + [parse_ip("99.0.0.0") >> 8, parse_ip("192.168.1.0") >> 8]
    )
    dst_blocks = rng.choice(dst_pool, size=count)
    dst_ip = (dst_blocks.astype(np.uint32) << np.uint32(8)) | rng.integers(
        0, 4, size=count, dtype=np.uint32
    )
    src_ip = ((BASE + rng.integers(0, 8, size=count)).astype(np.uint32) << np.uint32(8)) | 200
    proto = rng.choice(
        np.array([PROTO_TCP, PROTO_UDP, PROTO_ICMP], dtype=np.uint8),
        size=count,
        p=np.array([0.7, 0.2, 0.1]),
    )
    packets = rng.integers(1, 6, size=count).astype(np.int64)
    per_packet = rng.choice(np.array([40, 44, 48, 120, 1500]), size=count)
    sends = rng.random(count) < 0.2  # some rows are outbound
    return FlowTable(
        src_ip=np.where(sends, dst_ip, src_ip).astype(np.uint32),
        dst_ip=np.where(sends, src_ip, dst_ip).astype(np.uint32),
        proto=proto,
        dport=rng.integers(1, 1000, size=count).astype(np.uint16),
        packets=packets,
        bytes=packets * per_packet,
        sender_asn=np.ones(count, dtype=np.int32),
        dst_asn=np.ones(count, dtype=np.int32),
        spoofed=np.zeros(count, dtype=bool),
    )


def run(flows, **config_kwargs):
    view = VantageDayView(vantage="V", day=0, flows=flows)
    return run_pipeline([view], ROUTING, PipelineConfig(**config_kwargs))


class TestInvariants:
    @given(flow_tables())
    @settings(max_examples=60, deadline=None)
    def test_funnel_monotone(self, flows):
        funnel = run(flows).funnel
        counts = [c for _, c in funnel.as_rows()]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] >= 0

    @given(flow_tables())
    @settings(max_examples=60, deadline=None)
    def test_classes_partition_survivors(self, flows):
        result = run(flows)
        classified = (
            len(result.dark_blocks)
            + len(result.unclean_blocks)
            + len(result.gray_blocks)
        )
        assert classified == result.funnel.after_volume
        dark = set(result.dark_blocks.tolist())
        gray = set(result.gray_blocks.tolist())
        unclean = set(result.unclean_blocks.tolist())
        assert not (dark & gray or dark & unclean or gray & unclean)

    @given(flow_tables())
    @settings(max_examples=60, deadline=None)
    def test_dark_blocks_are_routed_and_public(self, flows):
        result = run(flows)
        for block in result.dark_blocks:
            assert ROUTING.is_routed_block(int(block))
            assert not SPECIAL_PURPOSE_REGISTRY.is_special_block(int(block))

    @given(flow_tables())
    @settings(max_examples=40, deadline=None)
    def test_tolerance_monotonicity(self, flows):
        # A larger spoofing tolerance can only add dark blocks.
        strict = set(run(flows, spoof_tolerance=0.0).dark_blocks.tolist())
        loose = set(run(flows, spoof_tolerance=100.0).dark_blocks.tolist())
        assert strict <= loose

    @given(flow_tables())
    @settings(max_examples=40, deadline=None)
    def test_volume_threshold_monotonicity(self, flows):
        tight = set(
            run(flows, volume_threshold_pkts_day=1.0).dark_blocks.tolist()
        )
        loose = set(
            run(flows, volume_threshold_pkts_day=1e12).dark_blocks.tolist()
        )
        assert tight <= loose

    @given(flow_tables())
    @settings(max_examples=40, deadline=None)
    def test_size_threshold_monotonicity(self, flows):
        small = set(run(flows, avg_size_threshold=40.0).dark_blocks.tolist())
        large = set(
            run(
                flows, avg_size_threshold=2000.0, ip_size_threshold=2000.0
            ).dark_blocks.tolist()
        )
        assert small <= large

    @given(flow_tables())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, flows):
        first = run(flows)
        second = run(flows)
        assert np.array_equal(first.dark_blocks, second.dark_blocks)
        assert first.funnel == second.funnel

    @given(flow_tables(), flow_tables())
    @settings(max_examples=30, deadline=None)
    def test_pooling_only_disqualifies_observed(self, flows_a, flows_b):
        # Adding a second vantage can add new dark blocks (newly
        # observed) but never turn an existing *gray* block dark.
        solo = run(flows_a)
        view_a = VantageDayView(vantage="A", day=0, flows=flows_a)
        view_b = VantageDayView(vantage="B", day=0, flows=flows_b)
        pooled = run_pipeline([view_a, view_b], ROUTING, PipelineConfig())
        solo_gray = set(solo.gray_blocks.tolist())
        pooled_dark = set(pooled.dark_blocks.tolist())
        assert not (solo_gray & pooled_dark)
