"""Tests for federated meta-telescopes (Section 9 extension)."""

import numpy as np
import pytest

from repro.core.federation import (
    FederatedResult,
    MarkingRegistry,
    OperatorReport,
    QuorumError,
    federate,
    validate_reports,
)


def report(operator, dark, observed=None):
    dark = np.asarray(dark, dtype=np.int64)
    if observed is None:
        observed = dark
    return OperatorReport(
        operator=operator,
        dark_blocks=dark,
        observed_blocks=np.asarray(observed, dtype=np.int64),
    )


class TestVoting:
    def test_unanimous_block_included(self):
        result = federate([report("a", [1, 2]), report("b", [1])])
        assert 1 in result.prefixes

    def test_majority_vote(self):
        # Block 2: seen by 3 operators, inferred dark by 2 -> in (2/3).
        members = [
            report("a", [2], observed=[2]),
            report("b", [2], observed=[2]),
            report("c", [], observed=[2]),
        ]
        result = federate(members, min_vote_share=0.5)
        assert 2 in result.prefixes

    def test_minority_vote_excluded(self):
        members = [
            report("a", [2], observed=[2]),
            report("b", [], observed=[2]),
            report("c", [], observed=[2]),
        ]
        result = federate(members, min_vote_share=0.5)
        assert 2 not in result.prefixes

    def test_abstentions_do_not_veto(self):
        # Only one member ever observed block 5; its single vote wins.
        members = [
            report("a", [5], observed=[5]),
            report("b", [], observed=[]),
            report("c", [], observed=[]),
        ]
        result = federate(members)
        assert 5 in result.prefixes

    def test_vote_counts_reported(self):
        result = federate([report("a", [7]), report("b", [7])])
        assert result.votes_for[7] == 2

    def test_requires_members(self):
        with pytest.raises(ValueError):
            federate([])

    def test_validates_share(self):
        with pytest.raises(ValueError):
            federate([report("a", [1])], min_vote_share=0.0)

    def test_stricter_share_shrinks(self):
        members = [
            report("a", [1, 2], observed=[1, 2]),
            report("b", [1], observed=[1, 2]),
        ]
        loose = federate(members, min_vote_share=0.5)
        strict = federate(members, min_vote_share=1.0)
        assert len(strict.prefixes) <= len(loose.prefixes)
        assert 1 in strict.prefixes
        assert 2 not in strict.prefixes


class TestVotingEdgeCases:
    def test_single_member_federation(self):
        result = federate([report("solo", [1, 2, 3])])
        assert result.prefixes.tolist() == [1, 2, 3]
        assert result.votes_for == {1: 1, 2: 1, 3: 1}

    def test_member_with_empty_dark_blocks(self):
        members = [
            report("a", [4], observed=[4]),
            report("b", [], observed=[4]),
        ]
        result = federate(members, min_vote_share=0.6)
        # b observed 4 and voted "not dark": 1 of 2 observers -> out.
        assert 4 not in result.prefixes

    def test_all_members_empty(self):
        result = federate([report("a", []), report("b", [])])
        assert result.num_prefixes() == 0

    def test_vote_share_exactly_at_threshold_included(self):
        # Block 9: 2 observers, 1 vote -> share is exactly 0.5.
        members = [
            report("a", [9], observed=[9]),
            report("b", [], observed=[9]),
        ]
        result = federate(members, min_vote_share=0.5)
        assert 9 in result.prefixes

    def test_registry_marks_overlapping_voted_blocks(self):
        registry = MarkingRegistry()
        registry.mark(np.array([1, 2]), owner="op-a")
        result = federate(
            [report("a", [1]), report("b", [1])], registry=registry
        )
        # Block 1 is both voted and marked; the union must not double it.
        assert result.prefixes.tolist() == [1, 2]
        assert 1 in result.voted_blocks
        assert 1 in result.marked_blocks


class TestSanityChecking:
    def test_fabricated_report_excluded(self):
        # c claims dark space it never observed: an impossible report.
        members = [
            report("a", [1], observed=[1, 2]),
            report("b", [1], observed=[1, 2]),
            report("c", [5, 6, 7], observed=[]),
        ]
        result = federate(members)
        assert result.excluded_members() == ("c",)
        assert 5 not in result.prefixes
        assert 1 in result.prefixes

    def test_small_foreign_share_tolerated(self):
        # One sloppy extra block in 20 stays within tolerance.
        dark = list(range(20))
        members = [report("a", dark, observed=dark[:-1])]
        result = federate(members)
        assert result.excluded_members() == ()
        assert len(result.prefixes) == 20

    def test_oversized_report_down_weighted(self):
        # b's dark list dwarfs its peers (spoofing pollution): its lone
        # "dark" vote on block 1 no longer outvotes a's clean "active".
        big = list(range(100, 200))
        members = [
            report("a", [], observed=[1]),
            report("b", [1] + big, observed=[1] + big),
            report("c", [2], observed=[2]),
            report("d", [2], observed=[2]),
        ]
        validations = {
            v.operator: v for v in validate_reports(members, max_size_ratio=20.0)
        }
        assert validations["b"].weight == 0.5
        result = federate(members)
        assert 1 not in result.prefixes
        assert federate(members, validate=False).prefixes.tolist()[0] == 1

    def test_quorum_enforced(self):
        fabricated = [report("x", [1, 2, 3], observed=[])]
        with pytest.raises(QuorumError):
            federate(fabricated)
        healthy = [report("a", [1]), report("b", [1])]
        with pytest.raises(QuorumError):
            federate(healthy, min_quorum=3)
        assert federate(healthy, min_quorum=2).num_prefixes() == 1

    def test_min_quorum_validated(self):
        with pytest.raises(ValueError):
            federate([report("a", [1])], min_quorum=0)

    def test_validations_reported_for_all_members(self):
        members = [report("a", [1]), report("b", [1], observed=[])]
        result = federate(members)
        assert [v.operator for v in result.validations] == ["a", "b"]
        assert result.validations[0].weight == 1.0
        assert result.validations[1].excluded()
        assert result.validations[1].reasons


class TestMarkingRegistry:
    def test_mark_and_resolve(self):
        registry = MarkingRegistry()
        registry.mark(np.array([10, 11]), owner="op-a")
        assert registry.owner_of(10) == "op-a"
        assert registry.owner_of(99) is None
        assert len(registry) == 2

    def test_unmark(self):
        registry = MarkingRegistry()
        registry.mark(np.array([10]), owner="op-a")
        registry.unmark(np.array([10, 99]))
        assert len(registry) == 0

    def test_marked_blocks_sorted(self):
        registry = MarkingRegistry()
        registry.mark(np.array([30, 10]), owner="op-a")
        assert registry.marked_blocks().tolist() == [10, 30]

    def test_marks_join_federation(self):
        registry = MarkingRegistry()
        registry.mark(np.array([42]), owner="op-a")
        result = federate([report("a", [1])], registry=registry)
        assert 42 in result.prefixes
        assert 42 in result.marked_blocks
        assert 1 in result.voted_blocks

    def test_result_shape(self):
        result = federate([report("a", [1])])
        assert isinstance(result, FederatedResult)
        assert result.num_prefixes() == 1


class TestFromResult:
    def test_from_result(self, integration_world, integration_observatory):
        from repro.core import MetaTelescope
        from repro.core.pipeline import PipelineConfig

        world = integration_world
        telescope = MetaTelescope(
            collector=world.collector,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        views = integration_observatory.ixp_views("CE1", num_days=1)
        result = telescope.infer(views, use_spoofing_tolerance=True)
        observed = views[0].aggregates().blocks
        member = OperatorReport.from_result("CE1", result, observed)
        assert member.operator == "CE1"
        assert len(member.dark_blocks) == result.num_prefixes()

    def test_federating_vantages_reduces_false_positives(
        self, integration_world, integration_observatory
    ):
        from repro.core import MetaTelescope
        from repro.core.evaluation import confusion_against_truth
        from repro.core.pipeline import PipelineConfig

        world = integration_world
        telescope = MetaTelescope(
            collector=world.collector,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        reports = []
        for code in ("CE1", "NA1", "SE2"):
            views = integration_observatory.ixp_views(code, num_days=1)
            result = telescope.infer(views, use_spoofing_tolerance=True)
            observed = np.unique(
                np.concatenate([v.aggregates().blocks for v in views])
            )
            reports.append(OperatorReport.from_result(code, result, observed))
        solo = confusion_against_truth(reports[0].dark_blocks, world.index)
        federated = federate(reports, min_vote_share=0.66)
        joint = confusion_against_truth(federated.prefixes, world.index)
        assert (
            joint.false_positive_rate_of_inferred()
            <= solo.false_positive_rate_of_inferred() + 0.02
        )


class TestPartialAccumulators:
    """Members may send mergeable partial aggregates instead of reports."""

    def _telescope(self, world):
        from repro.core import MetaTelescope
        from repro.core.pipeline import PipelineConfig

        return MetaTelescope(
            collector=world.collector,
            config=PipelineConfig(
                avg_size_threshold=world.config.avg_size_threshold,
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
            ),
        )

    def test_partials_vote_like_finished_reports(self, world, observatory):
        from repro.core.accum import accumulate_views

        telescope = self._telescope(world)
        codes = ("CE1", "NA1")
        reports, partials = [], {}
        for code in codes:
            views = observatory.ixp_views(code, num_days=2)
            # One partial accumulator per day, as a member node would
            # stream them; the coordinator merges and classifies.
            partials[code] = [
                accumulate_views([view], chunk_size=97) for view in views
            ]
            reports.append(
                OperatorReport.from_accumulator(
                    code, accumulate_views(views), telescope
                )
            )
        via_reports = federate(reports, min_vote_share=0.5)
        via_partials = federate(
            [], partials=partials, coordinator=telescope, min_vote_share=0.5
        )
        np.testing.assert_array_equal(
            via_reports.prefixes, via_partials.prefixes
        )

    def test_partials_require_coordinator(self, world, observatory):
        from repro.core.accum import accumulate_views

        views = observatory.ixp_views("CE1", num_days=1)
        with pytest.raises(ValueError, match="coordinator"):
            federate([], partials={"CE1": [accumulate_views(views)]})

    def test_empty_partial_list_rejected(self, world):
        telescope = self._telescope(world)
        with pytest.raises(ValueError, match="no partials"):
            federate([], partials={"CE1": []}, coordinator=telescope)

    def test_from_accumulator_observed_blocks(self, world, observatory):
        from repro.core.accum import accumulate_views

        telescope = self._telescope(world)
        views = observatory.ixp_views("CE1", num_days=1)
        accumulator = accumulate_views(views)
        member = OperatorReport.from_accumulator("CE1", accumulator, telescope)
        np.testing.assert_array_equal(
            member.observed_blocks, accumulator.observed_blocks()
        )
        # dark ⊆ observed: the report passes its own validation.
        validation = validate_reports([member])[0]
        assert not validation.excluded()
