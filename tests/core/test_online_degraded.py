"""Tests for degraded-mode online operation (policies, health, quarantine)."""

import numpy as np
import pytest

from repro.bgp.rib import Announcement, RouteViewsCollector
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.net.ipv4 import Prefix, parse_ip

from _factories import ip, make_view

BASE = parse_ip("20.0.0.0") >> 8


def make_online(**overrides):
    collector = RouteViewsCollector(
        [Announcement(Prefix.parse("20.0.0.0/8"), 65001)]
    )
    telescope = MetaTelescope(collector=collector)
    defaults = dict(
        telescope=telescope,
        window_days=3,
        min_stable_days=1,
        use_spoofing_tolerance=False,
    )
    defaults.update(overrides)
    return OnlineMetaTelescope(**defaults)


def day_views(day, blocks=(BASE,), invalid_rows=0):
    """One vantage-day; ``invalid_rows`` adds impossible records."""
    rows = [{"dst_ip": ip(b)} for b in blocks]
    rows.extend({"dst_ip": 0} for _ in range(invalid_rows))
    return [make_view(rows, vantage="V", day=day)]


class TestDayOrdering:
    def test_duplicate_day_rejected(self):
        online = make_online()
        online.update(0, day_views(0))
        with pytest.raises(ValueError, match="strictly increasing"):
            online.update(0, day_views(0))

    def test_out_of_order_day_rejected(self):
        online = make_online()
        online.update(5, day_views(5))
        with pytest.raises(ValueError, match="not after the last fed day 5"):
            online.update(3, day_views(3))

    def test_gaps_are_allowed(self):
        online = make_online()
        online.update(0, day_views(0))
        update = online.update(7, day_views(7))
        assert update.day == 7


class TestWindowEviction:
    def test_window_exactly_reached_keeps_all_days(self):
        online = make_online(window_days=3)
        for day in range(3):
            online.update(day, day_views(day))
        # Exactly window_days folded: nothing evicted yet.
        assert online.days_in_window() == [0, 1, 2]

    def test_one_past_the_boundary_evicts_exactly_one(self):
        online = make_online(window_days=3)
        for day in range(4):
            online.update(day, day_views(day))
        assert online.days_in_window() == [1, 2, 3]


class TestStrictPolicy:
    def test_empty_day_still_raises_by_default(self):
        online = make_online()
        assert online.policy == "strict"
        with pytest.raises(ValueError, match="need views"):
            online.update(0, [])

    def test_degraded_day_folds_unquestioned(self):
        online = make_online()
        update = online.update(0, day_views(0, invalid_rows=8))
        assert update.action == "inferred"
        assert update.staleness == 0
        assert update.quality.degraded(0.5)


class TestSkipPolicy:
    def test_degraded_day_skipped_and_flagged(self):
        online = make_online(policy="skip")
        online.update(0, day_views(0))
        before = online.current_prefixes().copy()
        update = online.update(1, day_views(1, invalid_rows=8))
        assert update.action == "skipped"
        assert update.staleness == 1
        assert online.days_in_window() == [0]  # day never entered the window
        assert np.array_equal(online.current_prefixes(), before)

    def test_empty_day_skipped(self):
        online = make_online(policy="skip")
        online.update(0, day_views(0))
        update = online.update(1, [])
        assert update.action == "skipped"
        assert update.serving_size == 1

    def test_clean_day_resets_staleness(self):
        online = make_online(policy="skip")
        online.update(0, day_views(0))
        online.update(1, [])
        update = online.update(2, day_views(2))
        assert update.action == "inferred"
        assert update.staleness == 0


class TestCarryPolicy:
    def test_empty_day_carries_serving_list(self):
        online = make_online(policy="carry")
        online.update(0, day_views(0))
        update = online.update(1, [])
        assert update.action == "carried"
        assert update.serving_size == 1
        assert BASE in online.current_prefixes()
        assert online.staleness() == 1

    def test_degraded_day_still_folds(self):
        online = make_online(policy="carry")
        online.update(0, day_views(0))
        update = online.update(1, day_views(1, invalid_rows=8))
        assert update.action == "degraded"
        assert online.days_in_window() == [0, 1]
        assert update.staleness == 1

    def test_flapping_block_quarantined(self):
        online = make_online(policy="carry", quarantine_days=2)
        online.update(0, day_views(0, blocks=(BASE, BASE + 1)))
        # Degraded day: BASE+1 vanishes from the daily dark set.
        update = online.update(1, day_views(1, blocks=(BASE,), invalid_rows=8))
        assert BASE + 1 in update.quarantined_blocks
        assert BASE + 1 not in online.current_prefixes()
        assert BASE in online.current_prefixes()

    def test_quarantine_released_after_clean_days(self):
        online = make_online(policy="carry", quarantine_days=2)
        online.update(0, day_views(0, blocks=(BASE, BASE + 1)))
        online.update(1, day_views(1, blocks=(BASE,), invalid_rows=8))
        online.update(2, day_views(2, blocks=(BASE, BASE + 1)))
        assert BASE + 1 not in online.current_prefixes()  # 1 clean day of 2
        online.update(3, day_views(3, blocks=(BASE, BASE + 1)))
        assert BASE + 1 in online.current_prefixes()
        assert len(online.quarantined_blocks()) == 0

    def test_max_staleness_expires_the_list(self):
        online = make_online(policy="carry", max_staleness=1)
        online.update(0, day_views(0))
        online.update(1, [])
        assert online.current_prefixes().tolist() == [BASE]
        update = online.update(2, [])
        assert update.serving_size == 0
        assert BASE in update.removed_blocks


class TestHealthReport:
    def test_records_every_day(self):
        online = make_online(policy="carry")
        online.update(0, day_views(0))
        online.update(1, [])
        online.update(2, day_views(2, invalid_rows=8))
        report = online.health_report()
        assert report.days_processed() == 3
        assert report.days_by_action() == {
            "inferred": 1, "carried": 1, "degraded": 1,
        }
        assert [record.day for record in report.records] == [0, 1, 2]
        assert report.max_staleness_seen() == 2

    def test_reasons_surface_in_records(self):
        online = make_online(policy="carry")
        online.update(0, day_views(0))
        online.update(1, [])
        report = online.health_report()
        assert report.records[1].reasons == ("no views",)

    def test_ok_and_summary(self):
        online = make_online(policy="carry")
        online.update(0, day_views(0))
        assert online.health_report().ok()
        online.update(1, [])
        report = online.health_report()
        assert not report.ok()
        assert "staleness 1" in report.summary()

    def test_validation_of_new_knobs(self):
        with pytest.raises(ValueError, match="policy"):
            make_online(policy="yolo")
        with pytest.raises(ValueError, match="min_quality"):
            make_online(min_quality=1.5)
        with pytest.raises(ValueError, match="quarantine_days"):
            make_online(quarantine_days=-1)


class TestQualityLearning:
    def test_volume_baseline_learned_from_clean_days(self):
        online = make_online(policy="skip")
        for day in range(3):
            online.update(day, day_views(day, blocks=(BASE, BASE + 1, BASE + 2)))
        # A day with a tiny fraction of the usual volume is degraded.
        update = online.update(3, day_views(3, blocks=(BASE,)))
        assert update.quality.volume_ratio is not None
        assert update.quality.volume_ratio < 0.5
        assert update.action == "skipped"

    def test_expected_views_learned(self):
        online = make_online(policy="carry")
        views = [
            make_view([{"dst_ip": ip(BASE)}], vantage="A", day=0),
            make_view([{"dst_ip": ip(BASE + 1)}], vantage="B", day=0),
        ]
        online.update(0, views)
        update = online.update(
            1, [make_view([{"dst_ip": ip(BASE)}], vantage="A", day=1)]
        )
        assert update.quality.expected_views == 2
        assert update.quality.num_views == 1
