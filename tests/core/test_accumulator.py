"""Streaming-equivalence properties of the prefix accumulator.

The contract of the streaming refactor: folding views into a
:class:`~repro.core.accum.PrefixAccumulator` chunk by chunk — at *any*
chunk size, in any merge grouping, batch or incremental — classifies
bit-identically to the one-shot batch pipeline.  These tests pin that
contract on a seeded multi-day world, under fault injection, and with
the per-vantage spoofing tolerance engaged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accum import PrefixAccumulator, accumulate_views
from repro.core.metatelescope import MetaTelescope
from repro.core.pipeline import (
    PipelineConfig,
    run_pipeline,
    run_pipeline_accumulated,
    run_pipeline_chunked,
)
from repro.faults import FaultPlan, standard_injector
from repro.vantage.sampling import VantageDayView

from test_pipeline_properties import ROUTING, flow_tables


def assert_identical(a, b):
    """Two pipeline results agree on every classification output."""
    np.testing.assert_array_equal(a.dark_blocks, b.dark_blocks)
    np.testing.assert_array_equal(a.unclean_blocks, b.unclean_blocks)
    np.testing.assert_array_equal(a.gray_blocks, b.gray_blocks)
    np.testing.assert_array_equal(
        a.volume_filtered_blocks, b.volume_filtered_blocks
    )
    assert a.funnel == b.funnel
    assert a.applied_tolerances == b.applied_tolerances


@pytest.fixture(scope="module")
def multi_day(observatory):
    """Three days of every IXP's views over the micro world."""
    return observatory.all_ixp_views(num_days=3)


@pytest.fixture(scope="module")
def telescope(world):
    return MetaTelescope(
        collector=world.collector,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


@pytest.fixture(scope="module")
def routing(telescope, multi_day):
    return telescope.routing_for_days([view.day for view in multi_day])


class TestChunkedEqualsBatch:
    @pytest.mark.parametrize("chunk_size", [1, 97, None])
    def test_world_classification_identical(
        self, multi_day, routing, telescope, chunk_size
    ):
        batch = run_pipeline(multi_day, routing, telescope.config)
        chunked = run_pipeline_chunked(
            multi_day, routing, telescope.config, chunk_size=chunk_size
        )
        assert_identical(batch, chunked)
        assert batch.num_dark() > 0  # a vacuous world proves nothing

    def test_spoofing_tolerance_identical(self, multi_day, telescope):
        batch = telescope.infer(
            multi_day, use_spoofing_tolerance=True, refine=False
        )
        chunked = telescope.infer(
            multi_day, use_spoofing_tolerance=True, refine=False, chunk_size=97
        )
        assert_identical(batch.pipeline, chunked.pipeline)
        assert any(
            tolerance > 0
            for tolerance in batch.pipeline.applied_tolerances.values()
        ), "tolerance never engaged; the equivalence was not exercised"

    def test_identical_under_fault_injection(self, multi_day, routing, telescope):
        plan = FaultPlan(seed=3)
        for name in ("truncate", "duplicate", "corrupt", "missample"):
            plan.add(standard_injector(name, days=frozenset({1})))
        faulted = []
        for day in range(3):
            day_views = [view for view in multi_day if view.day == day]
            faulted.extend(plan.apply(day, day_views).views)
        batch = run_pipeline(faulted, routing, telescope.config)
        chunked = run_pipeline_chunked(
            faulted, routing, telescope.config, chunk_size=61
        )
        assert_identical(batch, chunked)

    def test_empty_view_still_counts(self, multi_day, routing, telescope):
        """An empty view must claim a tolerance slot and a volume day."""
        from repro.traffic.flows import FlowTable

        silent = VantageDayView(
            vantage="SILENT", day=9, flows=FlowTable.empty()
        )
        batch = run_pipeline(multi_day + [silent], routing, telescope.config)
        chunked = run_pipeline_chunked(
            multi_day + [silent], routing, telescope.config, chunk_size=50
        )
        assert "SILENT" in batch.applied_tolerances
        assert_identical(batch, chunked)


class TestMerge:
    def test_merge_grouping_invariant(self, multi_day, routing, telescope):
        """Any associativity grouping of partials classifies the same."""
        partials = [accumulate_views([view], chunk_size=53) for view in multi_day]

        left = partials[0].copy()
        for partial in partials[1:]:
            left.merge(partial)

        right = partials[-1].copy()
        for partial in reversed(partials[:-1]):
            right.merge(partial)

        mid = len(partials) // 2
        first, second = partials[0].copy(), partials[mid].copy()
        for partial in partials[1:mid]:
            first.merge(partial)
        for partial in partials[mid + 1 :]:
            second.merge(partial)
        paired = first.merge(second)

        results = [
            run_pipeline_accumulated(acc, routing, telescope.config)
            for acc in (left, right, paired)
        ]
        assert_identical(results[0], results[1])
        assert_identical(results[0], results[2])

    def test_merge_leaves_other_untouched(self, multi_day):
        a = accumulate_views(multi_day[:2])
        b = accumulate_views(multi_day[2:4])
        before = b.rows_ingested()
        a.merge(b)
        assert b.rows_ingested() == before
        assert a.rows_ingested() == sum(len(v.flows) for v in multi_day[:4])

    def test_mismatched_ignore_sets_refuse_to_merge(self):
        with pytest.raises(ValueError, match="ignored-sender"):
            PrefixAccumulator().merge(
                PrefixAccumulator(ignore_sources_from_asns=frozenset({7}))
            )

    def test_config_ignore_set_mismatch_rejected(self, multi_day, routing):
        accumulator = accumulate_views(multi_day)
        with pytest.raises(ValueError, match="ignore"):
            run_pipeline_accumulated(
                accumulator,
                routing,
                PipelineConfig(ignore_sources_from_asns=frozenset({42})),
            )


class TestProperties:
    @given(flow_tables(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_any_chunk_size_matches_batch(self, flows, chunk_size):
        view = VantageDayView(vantage="V", day=0, flows=flows)
        batch = run_pipeline([view], ROUTING, PipelineConfig())
        chunked = run_pipeline_chunked(
            [view], ROUTING, PipelineConfig(), chunk_size=chunk_size
        )
        assert_identical(batch, chunked)

    @given(flow_tables(), flow_tables())
    @settings(max_examples=40, deadline=None)
    def test_update_commutes_with_merge(self, flows_a, flows_b):
        """update(a); update(b) == merge of two single-view partials."""
        views = [
            VantageDayView(vantage="A", day=0, flows=flows_a),
            VantageDayView(vantage="B", day=1, flows=flows_b),
        ]
        together = accumulate_views(views)
        merged = accumulate_views(views[:1]).merge(accumulate_views(views[1:]))
        assert_identical(
            run_pipeline_accumulated(together, ROUTING),
            run_pipeline_accumulated(merged, ROUTING),
        )


class TestAccumulatorState:
    def test_introspection(self, multi_day):
        accumulator = accumulate_views(multi_day)
        assert accumulator.days() == [0, 1, 2]
        assert set(accumulator.vantages()) == {
            view.vantage for view in multi_day
        }
        assert not accumulator.is_empty()
        assert accumulator.rows_ingested() == sum(
            len(view.flows) for view in multi_day
        )
        assert len(accumulator.observed_blocks()) > 0

    def test_finalize_does_not_consume(self, multi_day, routing, telescope):
        accumulator = accumulate_views(multi_day[:3])
        first = run_pipeline_accumulated(accumulator, routing, telescope.config)
        again = run_pipeline_accumulated(accumulator, routing, telescope.config)
        assert_identical(first, again)
        accumulator.update_view(multi_day[3])  # still ingestible afterwards
        assert accumulator.rows_ingested() == sum(
            len(view.flows) for view in multi_day[:4]
        )

    def test_empty_accumulator_rejected(self, routing):
        with pytest.raises(ValueError, match="at least one"):
            run_pipeline_accumulated(PrefixAccumulator(), routing)

    def test_copy_is_independent(self, multi_day):
        original = accumulate_views(multi_day[:2])
        duplicate = original.copy()
        duplicate.update_view(multi_day[2])
        assert original.rows_ingested() != duplicate.rows_ingested()


class TestKeyedSumsShortCircuit:
    """Already-compacted state must cost nothing to re-compact."""

    def _family(self):
        from repro.core.accum import _KeyedSums

        family = _KeyedSums(1)
        keys = np.array([3, 5, 9], dtype=np.int64)
        sums = np.array([1.0, 2.0, 3.0])
        family.add(keys, sums, sorted_unique=True)
        return family, keys, sums

    def test_compacted_single_sorted_part_is_no_copy(self):
        family, keys, sums = self._family()
        out_keys, (out_sums,) = family.compacted()
        # The short-circuit returns the stored arrays themselves — any
        # copy here would put an O(total keys) tax on every chunk of a
        # long stream (compacted() runs once per squash promotion).
        assert out_keys is keys
        assert out_sums is sums
        again_keys, (again_sums,) = family.compacted()
        assert again_keys is keys
        assert again_sums is sums

    def test_squash_pending_without_pending_is_noop(self):
        family, keys, sums = self._family()
        family.squash_pending()
        out_keys, (out_sums,) = family.compacted()
        assert out_keys is keys
        assert out_sums is sums
