"""Bit-identity and plumbing of the parallel inference engine.

The contract of :mod:`repro.core.parallel`: fanning the aggregation out
over any number of workers — any shard order, any merge grouping, the
compact wire form in between — classifies **bit-identically** to the
serial fold.  These tests pin that contract on seeded worlds, random
flow tables, and fault-injected inputs, and cover the satellites that
ride along (adaptive chunking, compaction knob, routing-table interval
cache).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accum import (
    AUTO_CHUNK,
    PrefixAccumulator,
    accumulate_views,
    adaptive_chunk_rows,
    resolve_chunk_size,
)
from repro.core.federation import federate
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.parallel import (
    default_workers,
    parallel_accumulate_views,
    partial_states_identical,
    shard_views,
    tree_merge,
)
from repro.core.pipeline import PipelineConfig, run_pipeline_accumulated
from repro.faults import FaultPlan, standard_injector
from repro.vantage.sampling import VantageDayView

from test_accumulator import assert_identical
from test_pipeline_properties import ROUTING, flow_tables


@pytest.fixture(scope="module")
def multi_day(observatory):
    return observatory.all_ixp_views(num_days=3)


@pytest.fixture(scope="module")
def telescope(world):
    return MetaTelescope(
        collector=world.collector,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


@pytest.fixture(scope="module")
def routing(telescope, multi_day):
    return telescope.routing_for_days([view.day for view in multi_day])


@pytest.fixture(scope="module")
def serial(multi_day):
    return accumulate_views(multi_day)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_any_worker_count_identical(self, multi_day, serial, workers):
        merged, stats = parallel_accumulate_views(multi_day, workers=workers)
        assert partial_states_identical(serial, merged)
        assert stats.mode in ("fork", "spawn")
        assert stats.partials >= 1
        assert sum(report.rows for report in stats.reports) == sum(
            len(view.flows) for view in multi_day
        )

    def test_oversized_views_split_into_row_shards(self, multi_day, serial):
        merged, stats = parallel_accumulate_views(
            multi_day, workers=4, max_shard_rows=257
        )
        assert partial_states_identical(serial, merged)
        assert sum(report.shards for report in stats.reports) > len(multi_day)

    @pytest.mark.parametrize("chunk_size", [64, AUTO_CHUNK, None])
    def test_chunking_inside_workers_identical(
        self, multi_day, serial, chunk_size
    ):
        merged, _ = parallel_accumulate_views(
            multi_day, workers=3, chunk_size=chunk_size
        )
        assert partial_states_identical(serial, merged)

    def test_classification_identical(self, multi_day, routing, telescope):
        merged, _ = parallel_accumulate_views(multi_day, workers=4)
        assert_identical(
            run_pipeline_accumulated(
                accumulate_views(multi_day), routing, telescope.config
            ),
            run_pipeline_accumulated(merged, routing, telescope.config),
        )

    def test_serial_short_circuits(self, multi_day, serial):
        for workers in (None, 1):
            merged, stats = parallel_accumulate_views(
                multi_day, workers=workers
            )
            assert stats.mode == "serial"
            assert stats.workers == 1
            assert partial_states_identical(serial, merged)

    def test_workers_zero_uses_all_cpus(self, multi_day, serial):
        merged, stats = parallel_accumulate_views(multi_day, workers=0)
        assert partial_states_identical(serial, merged)
        expected = "serial" if default_workers() == 1 else stats.mode
        assert stats.mode == expected

    def test_empty_views_observed_everywhere(self):
        from repro.traffic.flows import FlowTable

        silent = [
            VantageDayView(vantage=f"S{i}", day=i, flows=FlowTable.empty())
            for i in range(3)
        ]
        merged, _ = parallel_accumulate_views(silent, workers=2)
        assert merged.days() == [0, 1, 2]
        assert set(merged.vantages()) == {"S0", "S1", "S2"}

    def test_identical_under_fault_injection(self, multi_day, routing, telescope):
        """Fault-injected inputs classify identically at any worker count.

        The ``missample`` fault injects *non-integer* sampling factors,
        where raw float sums may differ in the last bit between shard
        splits (the same caveat the chunked path carries) — so this
        pins the classification contract, like the chunked fault test.
        """
        plan = FaultPlan(seed=3)
        for name in ("truncate", "duplicate", "corrupt", "missample"):
            plan.add(standard_injector(name, days=frozenset({1})))
        faulted = []
        for day in range(3):
            day_views = [view for view in multi_day if view.day == day]
            faulted.extend(plan.apply(day, day_views).views)
        merged, _ = parallel_accumulate_views(faulted, workers=4)
        assert_identical(
            run_pipeline_accumulated(
                accumulate_views(faulted), routing, telescope.config
            ),
            run_pipeline_accumulated(merged, routing, telescope.config),
        )

    @given(
        flow_tables(),
        flow_tables(),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_tables_any_worker_count(self, flows_a, flows_b, workers):
        views = [
            VantageDayView(vantage="A", day=0, flows=flows_a),
            VantageDayView(vantage="B", day=1, flows=flows_b),
        ]
        merged, _ = parallel_accumulate_views(
            views, workers=workers, max_shard_rows=7
        )
        assert_identical(
            run_pipeline_accumulated(accumulate_views(views), ROUTING),
            run_pipeline_accumulated(merged, ROUTING),
        )


class TestSharding:
    def test_deterministic(self, multi_day):
        first = shard_views(multi_day, 4)
        second = shard_views(multi_day, 4)
        assert first == second

    def test_every_row_exactly_once(self, multi_day):
        buckets = shard_views(multi_day, 5, max_shard_rows=100)
        seen: dict[int, list[tuple[int, int]]] = {}
        for bucket in buckets:
            for index, start, stop in bucket:
                seen.setdefault(index, []).append((start, stop))
        for index, view in enumerate(multi_day):
            ranges = sorted(seen[index])
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(view.flows)
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start  # contiguous, no overlap, no gap

    def test_balance(self, multi_day):
        buckets = shard_views(multi_day, 4)
        loads = [
            sum(stop - start for _, start, stop in bucket)
            for bucket in buckets
        ]
        total = sum(len(view.flows) for view in multi_day)
        # LPT with shards capped at total/workers keeps buckets within
        # 2x of the ideal split.
        assert max(loads) <= 2 * (total / len(buckets))

    def test_rejects_bad_arguments(self, multi_day):
        with pytest.raises(ValueError, match="workers"):
            shard_views(multi_day, 0)
        with pytest.raises(ValueError, match="max_shard_rows"):
            shard_views(multi_day, 2, max_shard_rows=0)


class TestTreeMerge:
    def test_any_grouping_identical(self, multi_day):
        partials = [accumulate_views([view]) for view in multi_day]
        tree = tree_merge(partials, copy=True)

        flat = partials[0].copy()
        for partial in partials[1:]:
            flat.merge(partial)
        assert partial_states_identical(flat, tree)

    def test_shard_order_invariant(self, multi_day):
        partials = [accumulate_views([view]) for view in multi_day]
        forward = tree_merge(partials, copy=True)
        backward = tree_merge(list(reversed(partials)), copy=True)
        assert partial_states_identical(forward, backward)

    def test_copy_leaves_inputs_untouched(self, multi_day):
        partials = [accumulate_views([view]) for view in multi_day[:3]]
        rows = [partial.rows_ingested() for partial in partials]
        tree_merge(partials, copy=True)
        assert [partial.rows_ingested() for partial in partials] == rows

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            tree_merge([])


class TestWireState:
    def test_round_trip(self, multi_day, routing, telescope):
        accumulator = accumulate_views(multi_day)
        restored = PrefixAccumulator.from_state(accumulator.to_state())
        assert partial_states_identical(accumulator, restored)
        assert restored.days() == accumulator.days()
        assert restored.rows_ingested() == accumulator.rows_ingested()
        assert_identical(
            run_pipeline_accumulated(accumulator, routing, telescope.config),
            run_pipeline_accumulated(restored, routing, telescope.config),
        )

    def test_round_trip_under_fault_injection(self, multi_day):
        plan = FaultPlan(seed=11)
        for name in ("truncate", "duplicate", "corrupt", "missample"):
            plan.add(standard_injector(name, days=frozenset({0, 2})))
        faulted = []
        for day in range(3):
            day_views = [view for view in multi_day if view.day == day]
            faulted.extend(plan.apply(day, day_views).views)
        accumulator = accumulate_views(faulted, chunk_size=83)
        restored = PrefixAccumulator.from_state(accumulator.to_state())
        assert partial_states_identical(accumulator, restored)

    def test_round_trip_preserves_ignore_set(self, multi_day):
        accumulator = accumulate_views(
            multi_day, ignore_sources_from_asns=frozenset({1, 9})
        )
        restored = PrefixAccumulator.from_state(accumulator.to_state())
        assert restored.ignore_sources_from_asns == frozenset({1, 9})

    def test_empty_round_trip(self):
        accumulator = PrefixAccumulator()
        accumulator.observe("V", 4)
        restored = PrefixAccumulator.from_state(accumulator.to_state())
        assert restored.days() == [4]
        assert partial_states_identical(accumulator, restored)

    def test_restored_still_mergeable(self, multi_day):
        half_a = accumulate_views(multi_day[: len(multi_day) // 2])
        half_b = accumulate_views(multi_day[len(multi_day) // 2 :])
        restored = PrefixAccumulator.from_state(half_a.to_state())
        restored.merge(half_b)
        assert partial_states_identical(
            accumulate_views(multi_day), restored
        )

    def test_version_checked(self):
        state = PrefixAccumulator().to_state()
        state["version"] = 999
        with pytest.raises(ValueError, match="version"):
            PrefixAccumulator.from_state(state)

    @given(flow_tables())
    @settings(max_examples=25, deadline=None)
    def test_random_tables_round_trip(self, flows):
        view = VantageDayView(vantage="V", day=0, flows=flows)
        accumulator = accumulate_views([view], chunk_size=5)
        restored = PrefixAccumulator.from_state(accumulator.to_state())
        assert partial_states_identical(accumulator, restored)


class TestFacadeIntegration:
    def test_metatelescope_workers_identical(self, multi_day, telescope):
        serial = telescope.infer(
            multi_day, use_spoofing_tolerance=True, refine=False
        )
        parallel = telescope.infer(
            multi_day, use_spoofing_tolerance=True, refine=False, workers=3
        )
        assert_identical(serial.pipeline, parallel.pipeline)
        stages = [timing.stage for timing in parallel.pipeline.stage_timings]
        assert "merge" in stages and "ipc" in stages
        assert any(stage.startswith("fanout[") for stage in stages)

    def test_online_workers_identical(self, world, observatory, telescope):
        def run(workers):
            online = OnlineMetaTelescope(
                telescope=telescope,
                window_days=2,
                min_stable_days=1,
                use_spoofing_tolerance=False,
                workers=workers,
            )
            for day in range(2):
                views = list(observatory.day(day).ixp_views.values())
                online.update(day, views)
            return online

        serial = run(None)
        parallel = run(2)
        np.testing.assert_array_equal(
            serial.current_prefixes(), parallel.current_prefixes()
        )
        stages = [t.stage for t in parallel.last_stage_timings()]
        assert any(stage.startswith("fanout[") for stage in stages)

    def test_federate_wire_state_partials(self, multi_day, telescope):
        half = len(multi_day) // 2
        partials = [
            accumulate_views(multi_day[:half]),
            accumulate_views(multi_day[half:]),
        ]
        as_objects = federate(
            [], partials={"op": partials}, coordinator=telescope
        )
        as_states = federate(
            [],
            partials={"op": [partial.to_state() for partial in partials]},
            coordinator=telescope,
        )
        np.testing.assert_array_equal(as_objects.prefixes, as_states.prefixes)
        assert as_objects.num_prefixes() > 0

    def test_federate_workers_identical(self, multi_day, telescope):
        half = len(multi_day) // 2
        partials = {
            "alpha": [accumulate_views(multi_day[:half])],
            "beta": [accumulate_views(multi_day[half:])],
        }
        serial = federate([], partials=partials, coordinator=telescope)
        parallel = federate(
            [], partials=partials, coordinator=telescope, workers=2
        )
        np.testing.assert_array_equal(serial.prefixes, parallel.prefixes)
        assert serial.votes_for == parallel.votes_for

    def test_federate_rejects_malformed_state(self, telescope):
        with pytest.raises(ValueError, match="malformed"):
            federate(
                [], partials={"op": [{"version": 1}]}, coordinator=telescope
            )
        with pytest.raises(TypeError, match="expected"):
            federate([], partials={"op": [42]}, coordinator=telescope)


class TestChunkingKnobs:
    def test_adaptive_chunk_rows(self):
        assert adaptive_chunk_rows(0) is None
        assert adaptive_chunk_rows(8192) is None
        assert adaptive_chunk_rows(80_000) == 10_000
        assert adaptive_chunk_rows(10**9) == 1 << 18  # ceiling

    def test_resolve_chunk_size(self):
        assert resolve_chunk_size(None, 10**6) is None
        assert resolve_chunk_size(4096, 10**6) == 4096
        assert resolve_chunk_size(AUTO_CHUNK, 80_000) == 10_000
        with pytest.raises(ValueError, match="auto"):
            resolve_chunk_size("bogus", 10**6)

    def test_auto_chunking_identical(self, multi_day, serial):
        auto = accumulate_views(multi_day, chunk_size=AUTO_CHUNK)
        assert partial_states_identical(serial, auto)

    def test_compact_every_knob_identical(self, multi_day, serial):
        eager = accumulate_views(multi_day, chunk_size=17, compact_every=2)
        lazy = accumulate_views(multi_day, chunk_size=17, compact_every=1000)
        assert partial_states_identical(serial, eager)
        assert partial_states_identical(serial, lazy)

    def test_compact_every_validated(self):
        with pytest.raises(ValueError, match="compact_every"):
            PrefixAccumulator(compact_every=1)

    def test_chunked_squashes_pending_parts(self, multi_day):
        """A chunk-fed accumulator never carries a view's chunk log
        past the view boundary (two-tier invariant: base + squashed)."""
        accumulator = accumulate_views(multi_day, chunk_size=31)
        for sums in (accumulator._dst_ip_sums, accumulator._src_ip_sums):
            assert len(sums._parts) <= 2
        accumulator.compact()
        for sums in (accumulator._dst_ip_sums, accumulator._src_ip_sums):
            assert len(sums._parts) <= 1


class TestRoutingTableCache:
    def test_routed_mask_cached_and_correct(self, routing):
        blocks = np.arange(0, 1 << 16, 7, dtype=np.int64)
        first = routing.routed_mask(blocks)
        assert routing._interval_cache is not None
        starts_before = routing._interval_cache[0]
        second = routing.routed_mask(blocks)
        assert routing._interval_cache[0] is starts_before
        np.testing.assert_array_equal(first, second)

    def test_matches_trie(self, routing):
        blocks = np.arange(0, 1 << 16, 13, dtype=np.int64)
        np.testing.assert_array_equal(
            routing.routed_mask(blocks), routing._trie.covered_mask(blocks)
        )
