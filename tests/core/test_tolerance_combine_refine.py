"""Tests for spoofing tolerance, multi-day combination and refinement."""

import numpy as np
import pytest

from repro.core.combine import (
    cumulative_day_results,
    intersect_dark,
    per_day_results,
    stable_dark_blocks,
    union_dark,
)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.refine import (
    cone_filtered_view,
    drop_spoofed_ground_truth,
    non_bcp38_asns,
    refine_with_liveness,
)
from repro.core.spoofing_tolerance import tolerance_for_view, tolerances_for_views
from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem
from repro.bgp.rib import Announcement, RoutingTable
from repro.bgp.topology import AsTopology
from repro.datasets.liveness import LivenessDataset
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import Prefix, parse_ip

from _factories import ip, make_view, routing_for

BASE = parse_ip("20.0.0.0") >> 8
ROUTING = routing_for("20.0.0.0/8")
UNROUTED = np.arange(parse_ip("39.0.0.0") >> 8, (parse_ip("39.0.0.0") >> 8) + 100)


class TestTolerance:
    def test_zero_when_unrouted_clean(self):
        view = make_view([{"dst_ip": ip(BASE)}])
        assert tolerance_for_view(view, UNROUTED) == 0.0

    def test_quantile_of_pollution(self):
        rows = [{"dst_ip": ip(BASE)}]
        # Pollute 90 of 100 unrouted blocks with 2 packets each.
        rows.extend(
            {"src_ip": ip(int(b)), "dst_ip": ip(BASE + 700), "packets": 2}
            for b in UNROUTED[:90]
        )
        view = make_view(rows)
        assert tolerance_for_view(view, UNROUTED, quantile=0.5) == 2.0

    def test_extreme_quantile_is_max(self):
        rows = [
            {"src_ip": ip(int(UNROUTED[0])), "dst_ip": ip(BASE + 700), "packets": 9}
        ]
        view = make_view(rows)
        assert tolerance_for_view(view, UNROUTED) == 9.0

    def test_requires_baseline(self):
        view = make_view([{"dst_ip": ip(BASE)}])
        with pytest.raises(ValueError):
            tolerance_for_view(view, np.array([]))

    def test_validates_quantile(self):
        view = make_view([{"dst_ip": ip(BASE)}])
        with pytest.raises(ValueError):
            tolerance_for_view(view, UNROUTED, quantile=1.5)

    def test_per_view_mapping(self):
        views = [
            make_view([{"dst_ip": ip(BASE)}], vantage="A", day=0),
            make_view([{"dst_ip": ip(BASE)}], vantage="B", day=1),
        ]
        mapping = tolerances_for_views(views, UNROUTED)
        assert set(mapping) == {"A", "B"}


class TestCombine:
    def views_by_day(self):
        return {
            0: [make_view([{"dst_ip": ip(BASE)}], day=0)],
            1: [make_view([{"dst_ip": ip(BASE)}, {"dst_ip": ip(BASE + 1)}], day=1)],
        }

    def test_per_day(self):
        results = per_day_results(self.views_by_day(), ROUTING)
        assert results[0].num_dark() == 1
        assert results[1].num_dark() == 2

    def test_cumulative(self):
        results = cumulative_day_results(self.views_by_day(), ROUTING)
        assert results[1].num_dark() == 2

    def test_stable_blocks(self):
        daily = per_day_results(self.views_by_day(), ROUTING)
        stable = stable_dark_blocks(daily, min_days=2)
        assert stable.tolist() == [BASE]

    def test_stable_validates(self):
        with pytest.raises(ValueError):
            stable_dark_blocks({}, min_days=0)

    def test_union_and_intersection(self):
        daily = per_day_results(self.views_by_day(), ROUTING)
        results = list(daily.values())
        assert union_dark(results).tolist() == [BASE, BASE + 1]
        assert intersect_dark(results).tolist() == [BASE]

    def test_empty_results(self):
        assert len(union_dark([])) == 0
        assert len(intersect_dark([])) == 0


class TestRefine:
    def test_liveness_removal(self):
        liveness = [LivenessDataset(name="c", active_blocks=np.array([BASE]))]
        result = refine_with_liveness(np.array([BASE, BASE + 1]), liveness)
        assert result.final_blocks.tolist() == [BASE + 1]
        assert result.removed_blocks.tolist() == [BASE]
        assert result.removed_fraction() == pytest.approx(0.5)

    def test_no_liveness(self):
        result = refine_with_liveness(np.array([BASE]), [])
        assert result.final_blocks.tolist() == [BASE]
        assert result.removed_fraction() == 0.0

    def test_non_bcp38(self):
        registry = ASRegistry.from_ases(
            [
                AutonomousSystem(1, "a", "O1", ASType.ISP, "US", spoof_filtered=True),
                AutonomousSystem(2, "b", "O2", ASType.ISP, "US", spoof_filtered=False),
            ]
        )
        assert non_bcp38_asns(registry) == frozenset({2})

    def test_drop_spoofed_oracle(self):
        view = make_view(
            [
                {"dst_ip": ip(BASE), "spoofed": False},
                {"dst_ip": ip(BASE), "spoofed": True},
            ]
        )
        cleaned = drop_spoofed_ground_truth(view)
        assert len(cleaned.flows) == 1

    def test_cone_filter(self):
        # AS1 (provider) -> AS2 (customer).  Claimed sources originated
        # by AS2 are plausible from sender AS1; sources from AS3 are not.
        topology = AsTopology()
        topology.add_provider_customer(1, 2)
        topology.add_as(3)
        pfx2as = PrefixToAsMap.from_routing_table(
            RoutingTable(
                [
                    Announcement(Prefix.parse("20.0.0.0/8"), 2),
                    Announcement(Prefix.parse("30.0.0.0/8"), 3),
                ]
            )
        )
        view = make_view(
            [
                {"src_ip": parse_ip("20.1.1.1"), "sender_asn": 1},
                {"src_ip": parse_ip("30.1.1.1"), "sender_asn": 1},  # spoofed
            ]
        )
        cleaned = cone_filtered_view(view, topology, pfx2as)
        assert len(cleaned.flows) == 1
        assert cleaned.flows.src_ip[0] == parse_ip("20.1.1.1")

    def test_cone_filter_empty_view(self):
        topology = AsTopology()
        pfx2as = PrefixToAsMap.from_routing_table(RoutingTable([]))
        view = make_view([])
        assert len(cone_filtered_view(view, topology, pfx2as).flows) == 0
