"""The immutable classification snapshot: build, query, persist."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.snapshot import (
    NO_ASN,
    VERDICT_CANDIDATE,
    VERDICT_DARK,
    VERDICT_GRAY,
    VERDICT_UNCLEAN,
    VERDICT_UNKNOWN,
    ClassificationSnapshot,
    build_snapshot,
    empty_snapshot,
)
from repro.flowpack import write_table_archive
from repro.net.ipv4 import Prefix


def blocks(*values):
    return np.asarray(values, dtype=np.int64)


@pytest.fixture()
def snapshot():
    return build_snapshot(
        day=5,
        dark=blocks(10, 11, 12, 40),
        unclean=blocks(20),
        gray=blocks(21, 22),
        candidate=blocks(30),
        history=[
            (3, blocks(10, 11, 30)),
            (4, blocks(10, 11, 12, 30)),
            (5, blocks(10, 12, 30, 40)),
        ],
        provenance={"engine": "test"},
    )


def test_verdict_assignment_and_counts(snapshot):
    assert snapshot.verdict_counts() == {
        "dark": 4,
        "unclean": 1,
        "gray": 2,
        "candidate": 1,
    }
    assert snapshot.lookup(20).verdict == VERDICT_UNCLEAN
    assert snapshot.lookup(21).verdict == VERDICT_GRAY
    assert snapshot.lookup(30).verdict == VERDICT_CANDIDATE
    assert snapshot.lookup(40).verdict == VERDICT_DARK


def test_dark_wins_on_overlap():
    snap = build_snapshot(
        day=0, dark=blocks(7), gray=blocks(7), unclean=blocks(7)
    )
    assert snap.lookup(7).verdict == VERDICT_DARK


def test_streak_confidence_and_since_day(snapshot):
    # 10: present on days 3..5 -> streak 3, since day 3.
    ten = snapshot.lookup(10)
    assert ten.since_day == 3
    assert ten.confidence == pytest.approx(3 / 4)
    # 12: present 4..5 -> streak 2, since day 4.
    twelve = snapshot.lookup(12)
    assert twelve.since_day == 4
    assert twelve.confidence == pytest.approx(2 / 3)
    # 40: only today -> streak 1, since day 5.
    forty = snapshot.lookup(40)
    assert forty.since_day == 5
    assert forty.confidence == pytest.approx(1 / 2)
    # 11: in history days 3..4 but NOT today -> streak restarts at 1.
    eleven = snapshot.lookup(11)
    assert eleven.since_day == 5
    assert eleven.confidence == pytest.approx(1 / 2)
    # Candidate blocks score like dark ones; observed verdicts are 1.0.
    assert snapshot.lookup(30).confidence == pytest.approx(3 / 4)
    assert snapshot.lookup(20).confidence == 1.0
    assert snapshot.lookup(21).confidence == 1.0


def test_lookup_absent_is_unknown(snapshot):
    missing = snapshot.lookup(9999)
    assert missing.verdict == VERDICT_UNKNOWN
    assert not missing.dark
    assert missing.confidence == 0.0
    assert missing.to_dict()["since_day"] is None
    assert missing.to_dict()["asn"] is None


def test_is_dark_matches_naive_membership(snapshot):
    probes = np.arange(0, 60, dtype=np.int64)
    expect = np.isin(probes, snapshot.dark_blocks)
    np.testing.assert_array_equal(snapshot.is_dark(probes), expect)


def test_range_and_within_prefix(snapshot):
    sub = snapshot.range(10, 21)  # inclusive on both ends
    np.testing.assert_array_equal(sub.blocks, blocks(10, 11, 12, 20, 21))
    # A /24 prefix covers exactly one block.
    one = snapshot.within_prefix(Prefix.parse("0.0.10.0/24"))
    np.testing.assert_array_equal(one.blocks, blocks(10))
    assert len(snapshot.head(3)) == 3
    assert len(snapshot.head(10_000)) == len(snapshot)


def test_immutability(snapshot):
    with pytest.raises(ValueError):
        snapshot.blocks[0] = 99
    with pytest.raises(Exception):
        snapshot.day = 7  # frozen dataclass


def test_blocks_must_be_sorted_unique():
    with pytest.raises(ValueError):
        ClassificationSnapshot(
            day=0,
            blocks=blocks(5, 4),
            verdicts=np.array([1, 1], dtype=np.uint8),
            confidence=np.ones(2),
            since_day=np.zeros(2, dtype=np.int32),
            asns=np.full(2, NO_ASN, dtype=np.int32),
            countries=np.full(2, b"??", dtype="S2"),
            provenance={},
        )


def test_diff(snapshot):
    newer = build_snapshot(
        day=6,
        dark=blocks(10, 12, 50),  # 40 gone, 50 new
        unclean=blocks(20),
        gray=blocks(21, 22),
        candidate=blocks(11),  # 11 changed candidate<-dark? was dark day 5
        history=[(6, blocks(10, 12, 50))],
    )
    diff = newer.diff(snapshot)
    np.testing.assert_array_equal(diff.added_dark, blocks(50))
    np.testing.assert_array_equal(np.sort(diff.removed_dark), blocks(11, 40))
    assert not diff.is_empty()
    d = diff.to_dict()
    assert d["added_dark"] == ["0.0.50.0/24"]


def test_save_open_round_trip(snapshot, tmp_path):
    path = tmp_path / "snapshot.fpk"
    snapshot.save(path)
    back = ClassificationSnapshot.open(path)
    np.testing.assert_array_equal(back.blocks, snapshot.blocks)
    np.testing.assert_array_equal(back.verdicts, snapshot.verdicts)
    np.testing.assert_array_equal(back.confidence, snapshot.confidence)
    np.testing.assert_array_equal(back.since_day, snapshot.since_day)
    np.testing.assert_array_equal(back.asns, snapshot.asns)
    np.testing.assert_array_equal(back.countries, snapshot.countries)
    assert back.day == snapshot.day
    assert back.provenance == snapshot.provenance


def test_open_rejects_foreign_archive(tmp_path):
    path = tmp_path / "other.fpk"
    write_table_archive(
        {"x": np.arange(3, dtype=np.int64)}, path, meta={"kind": "other"}
    )
    with pytest.raises(ValueError):
        ClassificationSnapshot.open(path)


def test_empty_snapshot_round_trip(tmp_path):
    snap = empty_snapshot(day=2)
    assert len(snap) == 0
    assert snap.verdict_counts() == {}
    assert not snap.is_dark(blocks(1, 2, 3)).any()
    path = tmp_path / "empty.fpk"
    snap.save(path)
    back = ClassificationSnapshot.open(path)
    assert len(back) == 0 and back.day == 2


def test_enrich(world):
    snap = build_snapshot(day=0, dark=world.unrouted_baseline_blocks[:8])
    rich = snap.enrich(world.datasets.pfx2as, world.datasets.geodb)
    assert len(rich) == len(snap)
    # Enrichment never mutates the original.
    assert (snap.asns == NO_ASN).all()
