"""Tests for the MetaTelescope facade and evaluation helpers."""

import numpy as np
import pytest

from repro.bgp.rib import Announcement, RouteViewsCollector
from repro.core.evaluation import confusion_against_truth, telescope_coverage
from repro.core.metatelescope import MetaTelescope
from repro.datasets.liveness import LivenessDataset
from repro.net.ipv4 import Prefix, parse_ip
from repro.vantage.telescope import Telescope
from repro.world.ground_truth import BlockIndex, BlockState

from _factories import ip, make_view

BASE = parse_ip("20.0.0.0") >> 8


def collector():
    return RouteViewsCollector(
        [Announcement(Prefix.parse("20.0.0.0/8"), 65001)]
    )


class TestMetaTelescope:
    def test_basic_inference(self):
        telescope = MetaTelescope(collector=collector())
        result = telescope.infer([make_view([{"dst_ip": ip(BASE)}])])
        assert result.prefixes.tolist() == [BASE]
        assert result.num_prefixes() == 1

    def test_refinement_applied(self):
        telescope = MetaTelescope(
            collector=collector(),
            liveness=[LivenessDataset(name="c", active_blocks=np.array([BASE]))],
        )
        result = telescope.infer([make_view([{"dst_ip": ip(BASE)}])])
        assert result.num_prefixes() == 0
        assert result.refinement.removed_blocks.tolist() == [BASE]

    def test_refine_disabled(self):
        telescope = MetaTelescope(
            collector=collector(),
            liveness=[LivenessDataset(name="c", active_blocks=np.array([BASE]))],
        )
        result = telescope.infer(
            [make_view([{"dst_ip": ip(BASE)}])], refine=False
        )
        assert result.num_prefixes() == 1

    def test_tolerance_requires_baseline(self):
        telescope = MetaTelescope(collector=collector())
        with pytest.raises(ValueError):
            telescope.infer(
                [make_view([{"dst_ip": ip(BASE)}])], use_spoofing_tolerance=True
            )

    def test_tolerance_forgives(self):
        unrouted = np.arange(1000, 1100)
        rows = [
            {"dst_ip": ip(BASE)},
            # pollution of BASE itself plus heavy unrouted pollution to
            # raise the tolerance.
            {"src_ip": ip(BASE, 7), "dst_ip": parse_ip("20.200.0.1")},
            {"src_ip": ip(1000, 1), "dst_ip": parse_ip("20.200.0.1"), "packets": 3},
        ]
        telescope = MetaTelescope(
            collector=collector(), unrouted_baseline=unrouted
        )
        without = telescope.infer([make_view(rows)])
        with_tol = telescope.infer([make_view(rows)], use_spoofing_tolerance=True)
        assert BASE not in without.prefixes
        assert BASE in with_tol.prefixes

    def test_requires_views(self):
        with pytest.raises(ValueError):
            MetaTelescope(collector=collector()).infer([])

    def test_routing_cached(self):
        telescope = MetaTelescope(collector=collector())
        first = telescope.routing_for_days([0, 1])
        second = telescope.routing_for_days([1, 0])
        assert first is second

    def test_captured_traffic(self):
        telescope = MetaTelescope(collector=collector())
        views = [make_view([{"dst_ip": ip(BASE)}, {"dst_ip": ip(5000)}])]
        result = telescope.infer(views)
        captured = telescope.captured_traffic(views, result)
        assert captured.dst_blocks().tolist() == [BASE]


class TestEvaluation:
    def test_telescope_coverage(self):
        telescope = Telescope(code="T", region="NA", blocks=np.array([5, 6, 7]))
        row = telescope_coverage(np.array([5, 7, 99]), telescope)
        assert row.inferred_inside == 2
        assert row.coverage() == pytest.approx(2 / 3)

    def test_coverage_respects_lent_blocks(self):
        telescope = Telescope(
            code="T", region="NA", blocks=np.array([5, 6]),
            lent_blocks_by_day={0: np.array([6])},
        )
        row = telescope_coverage(np.array([5, 6]), telescope, day=0)
        assert row.inferred_inside == 1

    def test_confusion(self):
        index = BlockIndex(
            blocks=np.array([10, 11, 12]),
            asn=np.array([1, 1, 1]),
            country_index=np.array([0, 0, 0]),
            type_index=np.array([0, 0, 0]),
            state=np.array(
                [int(BlockState.DARK), int(BlockState.ACTIVE), int(BlockState.DARK)]
            ),
        )
        confusion = confusion_against_truth(np.array([10, 11]), index)
        assert confusion.true_positives == 1
        assert confusion.false_positives == 1
        assert confusion.missed_dark == 1
        assert confusion.false_positive_rate_of_inferred() == pytest.approx(0.5)
        assert confusion.recall() == pytest.approx(0.5)

    def test_confusion_day_overrides(self):
        index = BlockIndex(
            blocks=np.array([10]),
            asn=np.array([1]),
            country_index=np.array([0]),
            type_index=np.array([0]),
            state=np.array([int(BlockState.TELESCOPE)]),
        )
        confusion = confusion_against_truth(
            np.array([10]), index, day_active_overrides=np.array([10])
        )
        assert confusion.false_positives == 1
        assert confusion.true_positives == 0
