"""Kernel backend parity, fallback, and regression tests.

The identity contract under test: ``kernel=numpy`` (the reference) and
``kernel=native`` (whatever provider resolves — Numba, the bundled C
library, or the silent numpy fallback) produce bit-identical
accumulator states and classifications for *any* input.  The explicit
cases pin the shapes that have bitten compiled group-by kernels:
empty and single-row chunks, all-duplicate keys, full-range 32-bit
addresses (a ``uint32`` shifted by its own width is undefined
behaviour in C — the regression here once looped forever), fault-
injected feeds, and the ignored-sender filter path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accum import PrefixAccumulator
from repro.core.engine import ExecutionPlanner, MemorySink, RunContext, execute_plan
from repro.core.kernels import (
    DISABLE_NATIVE_ENV,
    KERNEL_CHOICES,
    NumpyKernel,
    get_kernel,
    invalidate_cache,
    native_provider,
    resolve_kernel_name,
)
from repro.core.parallel import partial_states_identical
from repro.core.pipeline import PipelineConfig, run_pipeline_chunked
from repro.faults.injectors import CorruptedFields, DuplicatedRecords
from repro.net.ipv4 import parse_ip
from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.vantage.sampling import VantageDayView

from _factories import routing_for

ROUTING = routing_for("20.0.0.0/8", "21.0.0.0/8")
BASE = parse_ip("20.0.0.0") >> 8


def make_flows(
    dst_ip,
    src_ip=None,
    proto=PROTO_TCP,
    packets=None,
    bytes_=None,
    spoofed=False,
    sender_asn=1,
):
    """A flow table from raw column values (scalars broadcast)."""
    dst_ip = np.asarray(dst_ip, dtype=np.uint32)
    count = len(dst_ip)
    if src_ip is None:
        src_ip = np.full(count, (BASE << 8) | 7, dtype=np.uint32)
    packets = (
        np.full(count, 3, dtype=np.int64)
        if packets is None
        else np.asarray(packets, dtype=np.int64)
    )
    bytes_ = packets * 44 if bytes_ is None else np.asarray(bytes_, dtype=np.int64)
    return FlowTable(
        src_ip=np.asarray(src_ip, dtype=np.uint32),
        dst_ip=dst_ip,
        proto=np.full(count, proto, dtype=np.uint8),
        dport=np.full(count, 80, dtype=np.uint16),
        packets=packets,
        bytes=bytes_,
        sender_asn=np.full(count, sender_asn, dtype=np.int32),
        dst_asn=np.ones(count, dtype=np.int32),
        spoofed=np.full(count, spoofed, dtype=bool),
    )


@st.composite
def flow_tables(draw):
    """Random flow tables spanning the full 32-bit address range."""
    count = draw(st.integers(min_value=0, max_value=80))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    pool = draw(
        st.sampled_from(
            [
                np.array([BASE + i for i in range(8)], dtype=np.uint64) << 8,
                # Full-range keys: 0, the top of the address space, and
                # random points in between (the radix-plan regression).
                np.array([0, 2**32 - 1, 2**31, 2**16], dtype=np.uint64),
                rng.integers(0, 2**32, size=8, dtype=np.uint64),
            ]
        )
    )
    dst_ip = rng.choice(pool, size=count).astype(np.uint32)
    src_ip = rng.choice(pool, size=count).astype(np.uint32)
    packets = rng.integers(1, 50, size=count).astype(np.int64)
    return FlowTable(
        src_ip=src_ip,
        dst_ip=dst_ip,
        proto=rng.choice(
            np.array([PROTO_TCP, PROTO_UDP, PROTO_ICMP], dtype=np.uint8),
            size=count,
        ),
        dport=rng.integers(1, 1000, size=count).astype(np.uint16),
        packets=packets,
        bytes=packets * rng.choice(np.array([40, 44, 1500]), size=count),
        sender_asn=rng.integers(1, 5, size=count).astype(np.int32),
        dst_asn=np.ones(count, dtype=np.int32),
        spoofed=rng.random(count) < 0.3,
    )


def fold(tables, kernel, ignored=frozenset(), compact_every=4):
    """Fold tables across two vantages/days under one backend."""
    accumulator = PrefixAccumulator(
        ignored, compact_every=compact_every, kernel=kernel
    )
    for index, table in enumerate(tables):
        accumulator.update(
            table,
            vantage=f"V{index % 2}",
            day=index % 3,
            sampling_factor=4.0 if index % 2 else 1.0,
        )
    return accumulator


def assert_backends_agree(tables, ignored=frozenset()):
    reference = fold(tables, "numpy", ignored)
    native = fold(tables, "native", ignored)
    assert partial_states_identical(reference, native)


class TestFoldParity:
    def test_empty_table(self):
        assert_backends_agree([make_flows([])])

    def test_single_row(self):
        assert_backends_agree([make_flows([(BASE << 8) | 1])])

    def test_all_spoofed(self):
        ips = (np.arange(40, dtype=np.uint64) % 5 + BASE) << 8
        assert_backends_agree([make_flows(ips.astype(np.uint32), spoofed=True)])

    def test_duplicate_keys(self):
        ips = np.full(500, (BASE << 8) | 9, dtype=np.uint32)
        assert_backends_agree([make_flows(ips)])

    def test_full_range_keys(self):
        # Destinations at 0 and 2**32-1: the widest possible key range.
        # The C radix plan once computed its pass widths with a 32-bit
        # shift-by-32 (undefined behaviour) and looped forever here.
        rng = np.random.default_rng(3)
        ips = rng.integers(0, 2**32, size=500, dtype=np.uint64).astype(np.uint32)
        ips[0], ips[1] = 0, 2**32 - 1
        assert_backends_agree([make_flows(ips)])

    def test_ignored_senders_path(self):
        ips = ((np.arange(60, dtype=np.uint64) % 7 + BASE) << 8).astype(np.uint32)
        tables = [make_flows(ips, sender_asn=1), make_flows(ips, sender_asn=2)]
        assert_backends_agree(tables, ignored=frozenset({2}))

    def test_fault_injected_views(self):
        rng = np.random.default_rng(11)
        ips = rng.choice(
            np.array([(BASE + i) << 8 for i in range(6)], dtype=np.uint64), size=300
        ).astype(np.uint32)
        view = VantageDayView(vantage="V", day=0, flows=make_flows(ips))
        for injector in (
            DuplicatedRecords(duplicate_fraction=0.5),
            CorruptedFields(corrupt_fraction=0.3),
        ):
            faulted, _ = injector.inject(view, np.random.default_rng(5))
            assert_backends_agree([faulted.flows])

    def test_many_parts_exercise_merge(self):
        # compact_every=2 forces a compaction per update: the native
        # linear/k-way merges run repeatedly against the reference
        # regroup's operation order.
        rng = np.random.default_rng(23)
        tables = [
            make_flows(
                rng.integers(0, 2**32, size=50, dtype=np.uint64).astype(np.uint32)
            )
            for _ in range(6)
        ]
        reference = fold(tables, "numpy", compact_every=2)
        native = fold(tables, "native", compact_every=2)
        assert partial_states_identical(reference, native)

    @given(st.lists(flow_tables(), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_property_states_identical(self, tables):
        assert_backends_agree(tables)

    @given(st.lists(flow_tables(), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_property_merged_states_identical(self, tables):
        # absorb() crosses compacted parts between accumulators — the
        # merge path a parallel or federated fold takes.
        halves = {}
        for kernel in ("numpy", "native"):
            left = fold(tables[: len(tables) // 2 + 1], kernel)
            right = fold(tables[len(tables) // 2 + 1 :], kernel)
            left.merge(right)
            halves[kernel] = left
        assert partial_states_identical(halves["numpy"], halves["native"])


class TestClassificationParity:
    @given(st.lists(flow_tables(), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_property_classification_identical(self, tables):
        views = [
            VantageDayView(vantage=f"V{i}", day=i % 2, flows=table)
            for i, table in enumerate(tables)
        ]
        results = {
            kernel: run_pipeline_chunked(
                views, ROUTING, PipelineConfig(), chunk_size=17, kernel=kernel
            )
            for kernel in ("numpy", "native")
        }
        assert np.array_equal(
            results["numpy"].dark_blocks, results["native"].dark_blocks
        )
        assert np.array_equal(
            results["numpy"].gray_blocks, results["native"].gray_blocks
        )
        assert np.array_equal(
            results["numpy"].unclean_blocks, results["native"].unclean_blocks
        )
        assert results["numpy"].funnel == results["native"].funnel


class TestStageMaskParity:
    @given(st.lists(flow_tables(), min_size=1, max_size=2))
    @settings(max_examples=25, deadline=None)
    def test_member_and_interval_masks(self, tables):
        reference = get_kernel("numpy")
        native = get_kernel("native")
        blocks = np.unique(
            np.concatenate(
                [table.dst_ip.astype(np.int64) >> 8 for table in tables]
            )
        )
        table = blocks[::2].copy()
        assert np.array_equal(
            reference.sorted_member_mask(blocks, table),
            native.sorted_member_mask(blocks, table),
        )
        starts = blocks[::3].copy()
        ends = starts + 2
        assert np.array_equal(
            reference.interval_covered_mask(starts, ends, blocks),
            native.interval_covered_mask(starts, ends, blocks),
        )


class TestResolution:
    def test_choices_and_validation(self):
        assert set(KERNEL_CHOICES) == {"auto", "numpy", "native"}
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel_name("fortran")

    def test_numpy_resolves_to_reference(self):
        kernel = get_kernel("numpy")
        assert type(kernel) is NumpyKernel
        assert kernel.describe()["provider"] == "numpy"

    def test_auto_matches_provider_availability(self):
        resolved = resolve_kernel_name("auto")
        assert resolved == ("native" if native_provider() else "numpy")


class TestFallback:
    @pytest.fixture()
    def disabled_native(self, monkeypatch):
        monkeypatch.setenv(DISABLE_NATIVE_ENV, "1")
        invalidate_cache()
        yield
        monkeypatch.delenv(DISABLE_NATIVE_ENV)
        invalidate_cache()

    def test_native_degrades_to_reference(self, disabled_native):
        kernel = get_kernel("native")
        assert kernel.provider == "numpy"
        assert DISABLE_NATIVE_ENV in kernel.fallback_reason
        # Degraded native is the reference computation.
        table = make_flows(
            np.array([(BASE << 8) | 3, (BASE << 8) | 4], dtype=np.uint32)
        )
        reference = fold([table], "numpy")
        assert partial_states_identical(reference, fold([table], "native"))

    def test_auto_plans_numpy_when_degraded(self, disabled_native):
        assert native_provider() is None
        assert resolve_kernel_name("auto") == "numpy"

    def test_degraded_engine_emits_fallback_trace_event(self, disabled_native):
        views = [
            VantageDayView(
                vantage="V",
                day=0,
                flows=make_flows(np.array([(BASE << 8) | 1], dtype=np.uint32)),
            )
        ]
        sink = MemorySink()
        plan = ExecutionPlanner().plan(views, kernel="native")
        context = RunContext(knobs=plan.knobs, plan=plan, sinks=(sink,))
        execute_plan(plan, views, context)
        events = [event for event in sink.events if event.kind == "kernel"]
        assert len(events) == 1
        assert events[0].meta["provider"] == "numpy"
        assert DISABLE_NATIVE_ENV in events[0].meta["fallback_reason"]

    def test_plan_still_names_native_when_degraded(self, disabled_native):
        # The knob records intent ("native"); the trace event records
        # what actually computed (the fallback) — both are provenance.
        plan = ExecutionPlanner().plan([], kernel="native")
        assert plan.knobs.kernel == "native"
