"""The execution engine: plans, knobs, the trace spine, bit-identity.

The engine's core invariant — every (plan, knob) combination folds and
classifies **bit-identically** — is pinned here as a matrix over
execution modes {serial, chunked, parallel(2), parallel(4)}, storage
backends {in-memory views, flowpack archive views}, and fault-injected
inputs, for both planner-chosen and hand-forced plans.  The trace
spine gets a golden schema test: every JSONL event must carry exactly
the :data:`~repro.core.engine.TRACE_FIELDS` keys, in order, with the
schema's types.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    TRACE_FIELDS,
    ExecutionPlanner,
    JsonlSink,
    MemorySink,
    RunContext,
    TableSink,
    default_workers,
    execute_plan,
    resolve_execution_knobs,
    validate_trace_event,
    validate_trace_file,
)
from repro.core.accum import DEFAULT_COMPACT_EVERY, accumulate_views
from repro.core.federation import federate
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.parallel import partial_states_identical
from repro.core.pipeline import PipelineConfig, run_pipeline_accumulated
from repro.faults import FaultPlan, standard_injector
from repro.vantage.archive import export_view
from repro.vantage.sampling import VantageDayView

from test_pipeline_properties import ROUTING, flow_tables


@pytest.fixture(scope="module")
def views(observatory):
    return observatory.all_ixp_views(num_days=2)


@pytest.fixture(scope="module")
def archive_views(views, tmp_path_factory):
    root = tmp_path_factory.mktemp("engine-archives")
    return [
        export_view(view, root / f"v{index}.fpk", chunk_rows=257)
        for index, view in enumerate(views)
    ]


@pytest.fixture(scope="module")
def faulted_views(views):
    plan = FaultPlan(seed=3)
    plan.add(standard_injector("truncate", days=frozenset({0})))
    plan.add(standard_injector("missample", days=frozenset({1})))
    faulted = []
    for day in (0, 1):
        day_views = [view for view in views if view.day == day]
        faulted.extend(plan.apply(day, day_views).views)
    return faulted


@pytest.fixture(scope="module")
def telescope(world):
    return MetaTelescope(
        collector=world.collector,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


def classify(telescope, accumulator):
    pipeline = telescope.infer_accumulated(accumulator, refine=False).pipeline
    return (
        pipeline.dark_blocks,
        pipeline.unclean_blocks,
        pipeline.gray_blocks,
    )


class TestKnobResolution:
    def test_defaults_are_serial(self):
        knobs = resolve_execution_knobs()
        assert knobs.workers == 1
        assert knobs.chunk_size is None
        assert knobs.compact_every == DEFAULT_COMPACT_EVERY
        assert not knobs.parallel()

    def test_workers_zero_means_one_per_cpu(self):
        assert resolve_execution_knobs(workers=0).workers == default_workers()
        assert resolve_execution_knobs(workers=0, cpus=6).workers == 6

    def test_explicit_workers_honoured_even_oversubscribed(self):
        # Oversubscription is the operator's call; classification is
        # identical at any count, so the engine never second-guesses.
        assert resolve_execution_knobs(workers=5, cpus=1).workers == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"chunk_size": 0},
            {"chunk_size": "bogus"},
            {"compact_every": 1},
        ],
    )
    def test_junk_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            resolve_execution_knobs(**kwargs)


class TestPlanner:
    def test_default_plan_is_serial(self, views):
        plan = ExecutionPlanner().plan(views)
        assert plan.mode == "serial"
        assert plan.workers == 1
        assert plan.shards == ()
        assert plan.total_rows() == sum(view.num_rows for view in views)

    def test_chunk_size_plans_chunked(self, views):
        plan = ExecutionPlanner().plan(views, chunk_size=100)
        assert plan.mode == "chunked"
        assert all(spec.chunk_rows == 100 for spec in plan.views)

    def test_workers_plan_parallel_with_shards(self, views):
        plan = ExecutionPlanner().plan(views, workers=3)
        assert plan.mode == "parallel"
        assert plan.workers == 3
        assert len(plan.shards) == 3
        shard_rows = sum(
            stop - start
            for bucket in plan.shards
            for _, start, stop in bucket
        )
        assert shard_rows == plan.total_rows()

    def test_forced_mode_overrides_choice(self, views):
        serial = ExecutionPlanner().plan(views, workers=4, mode="serial")
        assert serial.mode == "serial" and serial.workers == 1
        parallel = ExecutionPlanner().plan(views, mode="parallel")
        assert parallel.mode == "parallel" and parallel.workers >= 2
        with pytest.raises(ValueError):
            ExecutionPlanner().plan(views, mode="sideways")

    def test_memory_budget_forces_chunking(self, views):
        plan = ExecutionPlanner(memory_budget_mib=0.001).plan(views)
        assert plan.mode == "chunked"
        assert all(
            spec.chunk_rows is not None or spec.num_rows == 0
            for spec in plan.views
        )

    def test_archive_views_are_planned_as_memmap(self, archive_views):
        plan = ExecutionPlanner().plan(archive_views)
        assert plan.cache_policy == "memmap"
        assert all(spec.storage == "archive" for spec in plan.views)

    def test_plan_is_data(self, views):
        plan = ExecutionPlanner().plan(views, workers=2, chunk_size="auto")
        encoded = json.loads(json.dumps(plan.to_dict()))
        assert encoded["mode"] == "parallel"
        assert len(encoded["views"]) == len(views)
        fields = [name for name, _ in plan.describe_rows()]
        assert "mode" in fields and "est. peak" in fields


def _plan_matrix():
    return [
        {"mode": None},
        {"mode": None, "chunk_size": 173},
        {"mode": None, "chunk_size": "auto"},
        {"mode": None, "workers": 2},
        {"mode": None, "workers": 4, "chunk_size": "auto"},
        {"mode": "serial", "workers": 4},
        {"mode": "chunked", "chunk_size": 64},
        {"mode": "parallel"},
    ]


class TestBitIdenticalMatrix:
    """Any plan — planner-chosen or hand-forced — folds identically."""

    @pytest.mark.parametrize("knobs", _plan_matrix())
    @pytest.mark.parametrize("backend", ["memory", "archive"])
    def test_matrix(self, views, archive_views, telescope, knobs, backend):
        chosen = views if backend == "memory" else archive_views
        baseline = accumulate_views(views)
        plan = ExecutionPlanner().plan(chosen, **knobs)
        folded = execute_plan(plan, chosen)
        assert partial_states_identical(baseline, folded)
        dark, unclean, gray = classify(telescope, folded)
        base_dark, base_unclean, base_gray = classify(telescope, baseline)
        np.testing.assert_array_equal(dark, base_dark)
        np.testing.assert_array_equal(unclean, base_unclean)
        np.testing.assert_array_equal(gray, base_gray)

    @pytest.mark.parametrize(
        "knobs",
        [{"workers": 2}, {"chunk_size": 97}, {"mode": "parallel"}],
    )
    def test_fault_injected_views_fold_identically(
        self, faulted_views, telescope, knobs
    ):
        # ``missample`` injects non-integer sampling factors, where raw
        # float sums may differ in the last bit between shard splits —
        # the pinned contract here is classification identity.
        baseline = accumulate_views(faulted_views)
        plan = ExecutionPlanner().plan(faulted_views, **knobs)
        folded = execute_plan(plan, faulted_views)
        for got, expected in zip(
            classify(telescope, folded), classify(telescope, baseline)
        ):
            np.testing.assert_array_equal(got, expected)

    @settings(max_examples=10, deadline=None)
    @given(
        tables=st.lists(flow_tables(), min_size=1, max_size=3),
        chunk=st.one_of(st.none(), st.just("auto"), st.integers(1, 500)),
        workers=st.sampled_from([None, 2, 3]),
    )
    def test_property_any_plan_identical(self, tables, chunk, workers):
        views = [
            VantageDayView(vantage=f"V{i}", day=i % 2, flows=table)
            for i, table in enumerate(tables)
        ]
        baseline = accumulate_views(views)
        plan = ExecutionPlanner().plan(
            views, chunk_size=chunk, workers=workers
        )
        folded = execute_plan(plan, views)
        assert partial_states_identical(baseline, folded)
        base = run_pipeline_accumulated(baseline, ROUTING)
        got = run_pipeline_accumulated(folded, ROUTING)
        np.testing.assert_array_equal(got.dark_blocks, base.dark_blocks)
        np.testing.assert_array_equal(got.gray_blocks, base.gray_blocks)


class TestEventSpine:
    def test_serial_fold_emits_plan_and_view_events(self, views):
        plan = ExecutionPlanner().plan(views)
        context = RunContext(knobs=plan.knobs, plan=plan)
        execute_plan(plan, views, context)
        kinds = [event.kind for event in context.events()]
        assert kinds[0] == "plan"
        assert kinds.count("view") == len(views)
        # A serial fold has no fan-out: timing rows stay empty.
        assert context.stage_timings() == ()

    def test_chunked_fold_emits_chunk_events(self, views):
        plan = ExecutionPlanner().plan(views, chunk_size=128)
        context = RunContext(knobs=plan.knobs, plan=plan)
        execute_plan(plan, views, context)
        chunk_events = context.events(["chunk"])
        assert len(chunk_events) >= len(views)
        assert sum(event.rows_in for event in chunk_events) == sum(
            view.num_rows for view in views
        )

    def test_parallel_fold_emits_worker_ipc_merge(self, views):
        plan = ExecutionPlanner().plan(views, workers=2)
        context = RunContext(knobs=plan.knobs, plan=plan)
        execute_plan(plan, views, context)
        names = [timing.stage for timing in context.stage_timings()]
        assert names[:2] == ["fanout[w0]", "fanout[w1]"]
        assert names[-2:] == ["ipc", "merge"]

    def test_scoped_events_filter_timings(self):
        context = RunContext()
        context.emit("stage", "outer", 0.1, rows_out=5)
        with context.scoped("inner"):
            context.emit("stage", "inner", 0.2, rows_out=3)
        assert [t.stage for t in context.stage_timings()] == [
            "outer", "inner",
        ]
        assert [
            t.stage for t in context.stage_timings(scopes=("inner",))
        ] == ["inner"]

    def test_events_fan_out_to_attached_sinks(self):
        extra = MemorySink()
        table = TableSink()
        context = RunContext(sinks=(extra, table))
        context.emit("stage", "tcp", 0.001, rows_out=7)
        context.emit("chunk", "v@d0", 0.001, rows_in=10)
        assert [event.kind for event in extra.events] == ["stage", "chunk"]
        rendered = table.render()
        assert "tcp" in rendered and "v@d0" not in rendered

    def test_rng_is_seeded_and_stable(self):
        a, b = RunContext(seed=11), RunContext(seed=11)
        assert a.rng.integers(1 << 30) == b.rng.integers(1 << 30)


class TestTraceGolden:
    def test_traced_run_validates_and_keeps_field_order(
        self, views, telescope, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        context = RunContext(sinks=(JsonlSink(path),))
        telescope.infer(views, workers=2, chunk_size="auto", context=context)
        context.close()
        assert validate_trace_file(path) == len(context.events())
        kinds = set()
        for line in path.read_text().splitlines():
            event = json.loads(line)
            # Golden: the serialised key order IS the schema order.
            assert tuple(event) == TRACE_FIELDS
            kinds.add(event["kind"])
        assert {"plan", "worker", "ipc", "merge", "stage"} <= kinds

    def test_tampered_events_rejected(self, tmp_path):
        good = RunContext().emit("stage", "tcp", 0.1, rows_out=1).to_json()
        validate_trace_event(good)
        for tamper in (
            {"v": 99},
            {"seconds": -1.0},
            {"kind": None},
            {"rows_out": "many"},
        ):
            with pytest.raises(ValueError):
                validate_trace_event({**good, **tamper})
        with pytest.raises(ValueError):
            validate_trace_event({k: v for k, v in good.items() if k != "meta"})
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            validate_trace_file(empty)

    def test_jsonl_sink_appends_across_contexts(self, tmp_path):
        path = tmp_path / "rolling.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            context = RunContext(sinks=(sink,))
            context.emit("stage", "tcp", 0.1)
            context.close()
        assert validate_trace_file(path) == 2


class TestFacadesRunThroughEngine:
    def test_metatelescope_records_its_context(self, views, telescope):
        result = telescope.infer(views, workers=2)
        context = telescope.last_run_context()
        assert context is not None
        assert context.plan.mode == "parallel"
        assert result.pipeline.stage_timings == context.stage_timings()

    def test_online_timings_come_from_the_event_stream(
        self, views, telescope
    ):
        online = OnlineMetaTelescope(
            telescope=telescope,
            window_days=2,
            min_stable_days=1,
            use_spoofing_tolerance=False,
            workers=2,
        )
        for day in (0, 1):
            online.update(day, [v for v in views if v.day == day])
        context = online.last_run_context()
        assert context is not None
        assert online.last_stage_timings() == context.stage_timings(
            scopes=("fold", "window")
        )
        assert context.events(["quarantine"])
        scopes = {event.scope for event in context.events(["stage"])}
        assert scopes == {"day", "window"}

    def test_federation_emits_member_events(self, views, telescope):
        context = RunContext()
        partials = {
            "op-a": [accumulate_views(views[: len(views) // 2])],
            "op-b": [accumulate_views(views[len(views) // 2 :])],
        }
        federate(
            [],
            partials=partials,
            coordinator=telescope,
            context=context,
        )
        members = context.events(["member"])
        assert sorted(event.name for event in members) == ["op-a", "op-b"]
        assert all(event.rows_out is not None for event in members)
