"""Property tests: snapshot -> flowpack -> mmap -> query parity.

The contract under test is that persisting a snapshot and memory-mapping
it back changes *nothing*: every column is bit-identical and every point
query answers exactly as the in-memory snapshot — which itself answers
exactly as the batch :meth:`MetaTelescope.infer` that produced it.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot import (
    VERDICT_DARK,
    ClassificationSnapshot,
    build_snapshot,
    empty_snapshot,
)


@st.composite
def verdict_sets(draw):
    """Random disjoint dark/unclean/gray/candidate sets plus a history."""
    pool = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**24 - 1),
            min_size=0,
            max_size=60,
            unique=True,
        )
    )
    rng = np.random.default_rng(
        draw(st.integers(min_value=0, max_value=2**31))
    )
    blocks = np.array(sorted(pool), dtype=np.int64)
    labels = rng.integers(0, 4, size=len(blocks))
    sets = {
        name: blocks[labels == code]
        for code, name in enumerate(("dark", "unclean", "gray", "candidate"))
    }
    day = draw(st.integers(min_value=0, max_value=30))
    history = []
    for past in range(draw(st.integers(min_value=0, max_value=4))):
        keep = rng.random(len(blocks)) < 0.6
        history.append((day - past, blocks[keep]))
    return day, sets, history


def round_trip(snapshot: ClassificationSnapshot) -> ClassificationSnapshot:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot.fpk"
        snapshot.save(path)
        reopened = ClassificationSnapshot.open(path)
        # Force materialisation while the mmap is alive.
        return reopened


@settings(max_examples=60, deadline=None)
@given(verdict_sets())
def test_flowpack_round_trip_is_bit_identical(drawn):
    day, sets, history = drawn
    snapshot = build_snapshot(
        day,
        dark=sets["dark"],
        unclean=sets["unclean"],
        gray=sets["gray"],
        candidate=sets["candidate"],
        history=history,
        provenance={"engine": "property-test"},
    )
    back = round_trip(snapshot)
    np.testing.assert_array_equal(back.blocks, snapshot.blocks)
    np.testing.assert_array_equal(back.verdicts, snapshot.verdicts)
    np.testing.assert_array_equal(back.confidence, snapshot.confidence)
    np.testing.assert_array_equal(back.since_day, snapshot.since_day)
    np.testing.assert_array_equal(back.asns, snapshot.asns)
    np.testing.assert_array_equal(back.countries, snapshot.countries)
    assert back.day == snapshot.day
    assert back.provenance == snapshot.provenance


@settings(max_examples=40, deadline=None)
@given(verdict_sets(), st.lists(st.integers(0, 2**24 - 1), max_size=20))
def test_point_queries_survive_round_trip(drawn, probes):
    day, sets, history = drawn
    snapshot = build_snapshot(
        day,
        dark=sets["dark"],
        unclean=sets["unclean"],
        gray=sets["gray"],
        candidate=sets["candidate"],
        history=history,
    )
    back = round_trip(snapshot)
    targets = list(probes) + [int(b) for b in snapshot.blocks[:10]]
    for block in targets:
        assert back.lookup(block).to_dict() == snapshot.lookup(block).to_dict()
    probe_arr = np.asarray(targets or [0], dtype=np.int64)
    np.testing.assert_array_equal(
        back.is_dark(probe_arr), snapshot.is_dark(probe_arr)
    )


def test_empty_snapshot_round_trip():
    back = round_trip(empty_snapshot(day=0))
    assert len(back) == 0
    assert back.lookup(123).verdict == 0


def test_single_block_snapshot_round_trip():
    snapshot = build_snapshot(3, dark=np.array([77], dtype=np.int64))
    back = round_trip(snapshot)
    assert back.lookup(77).dark
    assert not back.lookup(76).dark
    np.testing.assert_array_equal(back.dark_blocks, [77])


def test_infer_snapshot_matches_batch_infer(world, day0):
    """The frozen snapshot serves exactly what batch inference decided."""
    from repro.core.metatelescope import MetaTelescope
    from repro.core.pipeline import PipelineConfig

    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )
    views = list(day0.ixp_views.values())
    result = telescope.infer(views)
    snapshot = telescope.infer_snapshot(views)
    np.testing.assert_array_equal(
        snapshot.dark_blocks, np.sort(result.prefixes)
    )
    back = round_trip(snapshot)
    for block in snapshot.blocks:
        answer = back.lookup(int(block))
        assert (answer.verdict == VERDICT_DARK) == (
            block in set(result.prefixes.tolist())
        )
