"""Tests for confidence scoring and per-AS dark-share analysis."""

import numpy as np
import pytest

from repro.analysis.as_dark_share import dark_share_by_as, top_dark_organizations
from repro.bgp.rib import Announcement, RoutingTable
from repro.core.confidence import ConfidenceWeights, score_prefixes
from repro.core.pipeline import PipelineConfig
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import Prefix, parse_ip

from _factories import ip, make_view

BASE = parse_ip("20.0.0.0") >> 8


class TestConfidence:
    def make_views(self):
        # Block BASE: deeply observed; BASE+1: one lucky packet.
        rows = [{"dst_ip": ip(BASE, h)} for h in range(1, 17)]
        rows.append({"dst_ip": ip(BASE + 1, 1)})
        return [make_view(rows, vantage="V", day=0)]

    def test_observation_depth_separates(self):
        scores = score_prefixes(
            np.array([BASE, BASE + 1]),
            self.make_views(),
            daily_dark={0: np.array([BASE, BASE + 1])},
        )
        by_block = dict(zip(scores.blocks.tolist(), scores.observation.tolist()))
        assert by_block[BASE] == 1.0
        assert by_block[BASE + 1] < 0.1
        assert scores.top(1)[0][0] == BASE

    def test_recurrence(self):
        scores = score_prefixes(
            np.array([BASE]),
            self.make_views(),
            daily_dark={0: np.array([BASE]), 1: np.array([]), 2: np.array([BASE])},
        )
        assert scores.recurrence[0] == pytest.approx(2 / 3)

    def test_volume_margin(self):
        quiet = [make_view([{"dst_ip": ip(BASE), "packets": 1}], day=0)]
        busy = [make_view([{"dst_ip": ip(BASE), "packets": 600}], day=0)]
        config = PipelineConfig(volume_threshold_pkts_day=700.0)
        margin_quiet = score_prefixes(
            np.array([BASE]), quiet, {0: np.array([BASE])}, config=config
        ).margin[0]
        margin_busy = score_prefixes(
            np.array([BASE]), busy, {0: np.array([BASE])}, config=config
        ).margin[0]
        assert margin_quiet > margin_busy
        assert 0.0 <= margin_busy < margin_quiet <= 1.0

    def test_scores_bounded(self):
        scores = score_prefixes(
            np.array([BASE, BASE + 1]),
            self.make_views(),
            daily_dark={0: np.array([BASE])},
        )
        assert ((scores.score >= 0) & (scores.score <= 1)).all()

    def test_above_threshold(self):
        scores = score_prefixes(
            np.array([BASE, BASE + 1]),
            self.make_views(),
            daily_dark={0: np.array([BASE, BASE + 1])},
        )
        strong = scores.above(0.8)
        assert BASE in strong
        assert BASE + 1 not in strong

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            ConfidenceWeights(0.0, 0.0, 0.0).normalised()

    def test_weights_normalised(self):
        weights = ConfidenceWeights(2.0, 1.0, 1.0).normalised()
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] == pytest.approx(0.5)


class TestAsDarkShare:
    def make_routing(self):
        return RoutingTable(
            [
                Announcement(Prefix.parse("20.0.0.0/16"), 65001),
                Announcement(Prefix.parse("21.0.0.0/15"), 65002),
            ]
        )

    def test_shares(self):
        routing = self.make_routing()
        pfx2as = PrefixToAsMap.from_routing_table(routing)
        dark = np.arange(BASE, BASE + 64)  # 64 of AS 65001's 256 blocks
        shares = dark_share_by_as(dark, routing, pfx2as)
        assert len(shares) == 1
        assert shares[0].asn == 65001
        assert shares[0].dark_blocks == 64
        assert shares[0].share == pytest.approx(64 / 256)

    def test_sorted_by_footprint(self):
        routing = self.make_routing()
        pfx2as = PrefixToAsMap.from_routing_table(routing)
        dark = np.concatenate(
            [
                np.arange(BASE, BASE + 4),
                np.arange(parse_ip("21.0.0.0") >> 8, (parse_ip("21.0.0.0") >> 8) + 40),
            ]
        )
        shares = dark_share_by_as(dark, routing, pfx2as)
        assert [s.asn for s in shares] == [65002, 65001]

    def test_unmapped_blocks_skipped(self):
        routing = self.make_routing()
        pfx2as = PrefixToAsMap.from_routing_table(routing)
        shares = dark_share_by_as(
            np.array([parse_ip("99.0.0.0") >> 8]), routing, pfx2as
        )
        assert shares == []

    def test_org_rollup(self):
        routing = self.make_routing()
        pfx2as = PrefixToAsMap.from_routing_table(routing)
        dark = np.arange(BASE, BASE + 8)
        shares = dark_share_by_as(dark, routing, pfx2as)
        top = top_dark_organizations(shares, count=5)
        assert top == [("AS65001", 8)]
