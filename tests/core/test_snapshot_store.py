"""Delta persistence: cheap appends, bit-identical reconstruction.

The store's contract is exact: every retained version reconstructs to
the snapshot that was appended — columns, day, version, provenance —
whether the store instance is the one that wrote it or a fresh reopen
over the same directory.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.snapshot import (
    ClassificationSnapshot,
    VERDICT_DARK,
    VERDICT_GRAY,
)
from repro.core.snapshot_store import SnapshotDeltaStore, SnapshotStoreError


def snap(version: int, size: int = 80, lo: int = 0) -> ClassificationSnapshot:
    """A stamped snapshot whose non-verdict columns are stable per
    block, so consecutive versions differ only where we make them."""
    blocks = np.arange(lo, lo + size, dtype=np.int64)
    return ClassificationSnapshot(
        day=100 + version,
        version=version,
        blocks=blocks,
        verdicts=np.where(
            blocks % 3 == 0, VERDICT_DARK, VERDICT_GRAY
        ).astype(np.uint8),
        confidence=(blocks % 7 + 1) / 8.0,
        since_day=(blocks % 5).astype(np.int32),
        asns=(blocks % 11).astype(np.int32),
        countries=np.full(size, b"AA", dtype="S2"),
        provenance={"v": version},
    )


def flip(
    snapshot: ClassificationSnapshot, version: int, every: int = 9
) -> ClassificationSnapshot:
    """The next version: a few verdicts toggled, metadata restamped."""
    verdicts = np.array(snapshot.verdicts)
    idx = np.arange(0, len(verdicts), every)
    verdicts[idx] = np.where(
        verdicts[idx] == VERDICT_DARK, VERDICT_GRAY, VERDICT_DARK
    )
    return dataclasses.replace(
        snapshot,
        version=version,
        day=100 + version,
        verdicts=verdicts,
        provenance={"v": version},
    )


def test_first_append_writes_base(tmp_path):
    store = SnapshotDeltaStore(tmp_path)
    first = snap(1)
    store.append(first)
    assert store.versions() == [1]
    assert store.load().identical_to(first)
    assert store.load(1).identical_to(first)


def test_every_version_reconstructs_bit_identically(tmp_path):
    store = SnapshotDeltaStore(tmp_path, compact_threshold=None)
    published = [snap(1)]
    for version in range(2, 7):
        published.append(flip(published[-1], version))
    # v4 also grows and shrinks the block universe, not just verdicts.
    grown = published[3]
    keep = np.ones(len(grown.blocks), dtype=bool)
    keep[::17] = False
    published[3] = dataclasses.replace(
        grown,
        blocks=np.concatenate(
            [grown.blocks[keep], grown.blocks[-1:] + 1000]
        ),
        verdicts=np.concatenate(
            [grown.verdicts[keep], np.array([VERDICT_DARK], np.uint8)]
        ),
        confidence=np.concatenate([grown.confidence[keep], [0.5]]),
        since_day=np.concatenate(
            [grown.since_day[keep], np.array([7], np.int32)]
        ),
        asns=np.concatenate([grown.asns[keep], np.array([9], np.int32)]),
        countries=np.concatenate(
            [grown.countries[keep], np.array([b"ZZ"], "S2")]
        ),
    )
    published[4] = flip(published[3], 5)
    published[5] = flip(published[4], 6)
    for snapshot in published:
        store.append(snapshot)
    assert store.versions() == [1, 2, 3, 4, 5, 6]
    for snapshot in published:
        assert store.load(snapshot.version).identical_to(snapshot)


def test_reopen_reconstructs_from_disk(tmp_path):
    store = SnapshotDeltaStore(tmp_path)
    published = [snap(1)]
    store.append(published[0])
    for version in (2, 3):
        published.append(flip(published[-1], version))
        store.append(published[-1])
    reopened = SnapshotDeltaStore(tmp_path)
    assert reopened.versions() == [1, 2, 3]
    for snapshot in published:
        assert reopened.load(snapshot.version).identical_to(snapshot)
    # And the reopened store can keep appending where the old one left.
    fourth = flip(published[-1], 4)
    reopened.append(fourth)
    assert reopened.load(4).identical_to(fourth)


def test_identical_republish_is_a_zero_row_delta(tmp_path):
    store = SnapshotDeltaStore(tmp_path)
    first = snap(1)
    store.append(first)
    bytes_before = store.total_bytes()
    restamp = dataclasses.replace(
        first, version=2, day=first.day, provenance=dict(first.provenance)
    )
    store.append(restamp)
    assert store.versions() == [1, 2]
    assert store.load(2).identical_to(restamp)
    assert store.describe()["delta_rows"] == 0
    # No delta archive was even created for a content-identical publish.
    assert store.total_bytes() == bytes_before


def test_append_requires_monotone_versions(tmp_path):
    store = SnapshotDeltaStore(tmp_path)
    store.append(snap(3))
    with pytest.raises(SnapshotStoreError):
        store.append(snap(3))
    with pytest.raises(SnapshotStoreError):
        store.append(snap(2))
    with pytest.raises(SnapshotStoreError):
        store.append(snap(0))  # unstamped


def test_compaction_narrows_retention_and_keeps_latest(tmp_path):
    store = SnapshotDeltaStore(tmp_path, compact_threshold=0.5)
    published = [snap(1, size=40)]
    store.append(published[0])
    for version in range(2, 8):
        published.append(flip(published[-1], version, every=2))
        store.append(published[-1])
    assert store.compactions >= 1
    retained = store.versions()
    assert retained[-1] == 7
    assert len(retained) < 7  # the deep past was folded into the base
    assert store.load().identical_to(published[-1])
    for version in retained:
        assert store.load(version).identical_to(published[version - 1])
    with pytest.raises(SnapshotStoreError):
        store.load(1)


def test_load_unknown_version_or_empty_store_raises(tmp_path):
    store = SnapshotDeltaStore(tmp_path)
    with pytest.raises(SnapshotStoreError):
        store.load()
    assert store.versions() == []
    store.append(snap(1))
    with pytest.raises(SnapshotStoreError):
        store.load(99)


def test_delta_store_is_smaller_than_full_snapshots(tmp_path):
    store = SnapshotDeltaStore(tmp_path / "store")
    published = [snap(1, size=400)]
    store.append(published[0])
    full_bytes = 0
    for version in range(2, 21):
        published.append(flip(published[-1], version, every=40))
        store.append(published[-1])
    for snapshot in published:
        path = tmp_path / f"full-{snapshot.version}.fpk"
        snapshot.save(path)
        full_bytes += path.stat().st_size
    assert store.versions() == list(range(1, 21))
    assert store.total_bytes() <= 0.25 * full_bytes
