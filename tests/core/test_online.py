"""Tests for the online (rolling-window) meta-telescope."""

import numpy as np
import pytest

from repro.bgp.rib import Announcement, RouteViewsCollector
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.net.ipv4 import Prefix, parse_ip

from _factories import ip, make_view

BASE = parse_ip("20.0.0.0") >> 8


def make_online(**overrides):
    collector = RouteViewsCollector(
        [Announcement(Prefix.parse("20.0.0.0/8"), 65001)]
    )
    telescope = MetaTelescope(collector=collector)
    defaults = dict(
        telescope=telescope,
        window_days=3,
        min_stable_days=2,
        use_spoofing_tolerance=False,
    )
    defaults.update(overrides)
    return OnlineMetaTelescope(**defaults)


def day_views(day, blocks=(BASE,), sources=()):
    rows = [{"dst_ip": ip(b)} for b in blocks]
    rows.extend(
        {"src_ip": ip(b, 9), "dst_ip": parse_ip("30.0.0.1"), "packets": 5}
        for b in sources
    )
    return [make_view(rows, vantage="V", day=day)]


class TestOnline:
    def test_first_day_not_yet_stable(self):
        online = make_online()
        update = online.update(0, day_views(0))
        # min_stable_days=2 but only one day seen: required is clamped
        # to the days available, so the block serves immediately.
        assert update.serving_size == 1
        assert BASE in online.current_prefixes()

    def test_stability_requirement(self):
        online = make_online(min_stable_days=2)
        online.update(0, day_views(0, blocks=(BASE,)))
        update = online.update(1, day_views(1, blocks=(BASE, BASE + 1)))
        # BASE seen on both days -> served; BASE+1 on one of two -> not.
        assert BASE in online.current_prefixes()
        assert BASE + 1 not in online.current_prefixes()
        assert update.serving_size == 1

    def test_block_becomes_stable(self):
        online = make_online(min_stable_days=2)
        online.update(0, day_views(0, blocks=(BASE, BASE + 1)))
        update = online.update(1, day_views(1, blocks=(BASE, BASE + 1)))
        assert BASE + 1 in online.current_prefixes()
        assert update.serving_size == 2

    def test_source_sighting_removes_block(self):
        online = make_online(min_stable_days=1)
        online.update(0, day_views(0))
        assert BASE in online.current_prefixes()
        update = online.update(1, day_views(1, sources=(BASE,)))
        # The pooled window now contains a source sighting for BASE.
        assert BASE not in online.current_prefixes()
        assert BASE in update.removed_blocks

    def test_window_slides(self):
        online = make_online(window_days=2, min_stable_days=1)
        online.update(0, day_views(0, sources=(BASE,)))
        online.update(1, day_views(1))
        assert BASE not in online.current_prefixes()  # day-0 sighting in window
        online.update(2, day_views(2))
        # The polluted day slid out of the 2-day window.
        assert BASE in online.current_prefixes()
        assert online.days_in_window() == [1, 2]

    def test_churn_reporting(self):
        online = make_online(min_stable_days=1)
        first = online.update(0, day_views(0, blocks=(BASE,)))
        assert first.added_blocks.tolist() == [BASE]
        second = online.update(1, day_views(1, blocks=(BASE + 1,)))
        assert BASE + 1 in second.added_blocks
        assert second.churn() == len(second.added_blocks) + len(
            second.removed_blocks
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_online(window_days=0)
        with pytest.raises(ValueError):
            make_online(min_stable_days=5, window_days=3)
        online = make_online()
        with pytest.raises(ValueError):
            online.update(0, [])

    def test_on_world_views(self, integration_world, integration_observatory):
        world = integration_world
        telescope = MetaTelescope(
            collector=world.collector,
            liveness=world.datasets.liveness,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        online = OnlineMetaTelescope(
            telescope=telescope, window_days=3, min_stable_days=2
        )
        sizes = []
        for day in range(4):
            views = list(integration_observatory.day(day).ixp_views.values())
            update = online.update(day, views)
            sizes.append(update.serving_size)
        assert sizes[-1] > 0
        assert online.days_in_window() == [1, 2, 3]
