"""Tests for the flowpack binary columnar archive format.

Three claims are load-bearing and proved here:

1. **Round-trip identity** — any FlowTable survives
   CSV ↔ flowpack ↔ FlowTable conversion bit-identically, at any
   segment size, including the ``spoofed=None`` sentinel, empty and
   single-row tables (property-tested with hypothesis);
2. **Damage behaves like CSV damage** — corrupted or truncated
   archives surface through the same lenient-mode
   :class:`~repro.io.ParseReport` / strict-raise contract the CSV
   reader honours, never as bare numpy errors;
3. **Archive-fed inference is bit-identical** — chunked accumulation
   straight off the memmap equals the in-memory batch fold at every
   chunk size and worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accum import accumulate_views
from repro.core.parallel import (
    parallel_accumulate_views,
    partial_states_identical,
    shard_views,
)
from repro.flowpack import (
    FlowpackArchive,
    FlowpackError,
    FlowpackWriter,
    append_flows_archive,
    archive_meta,
    is_flowpack,
    iter_flows_archive,
    read_flows_archive,
    read_flows_archive_lenient,
    scan_archive,
    write_flows_archive,
)
from repro.io import (
    convert_flows,
    read_flows,
    sniff_flow_format,
    write_flows,
    write_flows_csv,
)
from repro.traffic.flows import FLOW_COLUMNS, FlowTable
from repro.vantage.archive import ArchiveDayView, ArchiveSlice, export_view
from repro.vantage.sampling import VantageDayView

from _factories import make_flows


def tables_equal(a: FlowTable, b: FlowTable) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in FLOW_COLUMNS
    )


def random_flows(rng: np.random.Generator, rows: int) -> FlowTable:
    return FlowTable(
        src_ip=rng.integers(0, 2**32, rows, dtype=np.uint32),
        dst_ip=rng.integers(0, 2**32, rows, dtype=np.uint32),
        proto=rng.integers(0, 256, rows, dtype=np.uint8),
        dport=rng.integers(0, 2**16, rows, dtype=np.uint16),
        packets=rng.integers(0, 2**40, rows, dtype=np.int64),
        bytes=rng.integers(0, 2**45, rows, dtype=np.int64),
        sender_asn=rng.integers(-1, 2**31 - 1, rows, dtype=np.int32),
        dst_asn=rng.integers(-1, 2**31 - 1, rows, dtype=np.int32),
        spoofed=rng.integers(0, 2, rows).astype(bool),
    )


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=0, max_value=200),
        chunk_rows=st.one_of(
            st.none(), st.integers(min_value=1, max_value=64)
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_flowpack_roundtrip_any_segmentation(
        self, tmp_path_factory, rows, chunk_rows, seed
    ):
        tmp = tmp_path_factory.mktemp("fp")
        flows = random_flows(np.random.default_rng(seed), rows)
        path = tmp / "t.fpk"
        write_flows_archive(flows, path, chunk_rows=chunk_rows)
        assert tables_equal(read_flows_archive(path), flows)

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_csv_flowpack_csv_identical(self, tmp_path_factory, rows, seed):
        tmp = tmp_path_factory.mktemp("conv")
        flows = random_flows(np.random.default_rng(seed), rows)
        csv_a, fpk, csv_b = tmp / "a.csv", tmp / "t.fpk", tmp / "b.csv"
        write_flows_csv(flows, csv_a)
        convert_flows(csv_a, fpk, to="flowpack", chunk_rows=37)
        convert_flows(fpk, csv_b, to="csv", chunk_rows=19)
        assert csv_a.read_bytes() == csv_b.read_bytes()
        assert tables_equal(read_flows_archive(fpk), flows)

    def test_spoofed_none_sentinel(self, tmp_path):
        flows = FlowTable(
            src_ip=np.array([1, 2], dtype=np.uint32),
            dst_ip=np.array([3, 4], dtype=np.uint32),
            proto=np.array([6, 17], dtype=np.uint8),
            dport=np.array([80, 53], dtype=np.uint16),
            packets=np.array([5, 6], dtype=np.int64),
            bytes=np.array([200, 240], dtype=np.int64),
            sender_asn=np.array([1, 2], dtype=np.int32),
            dst_asn=np.array([3, 4], dtype=np.int32),
            spoofed=None,
        )
        path = tmp_path / "t.fpk"
        write_flows_archive(flows, path)
        loaded = read_flows_archive(path)
        assert loaded.spoofed.dtype == bool
        assert not loaded.spoofed.any()
        assert tables_equal(loaded, flows)

    def test_empty_and_single_row(self, tmp_path):
        for rows in ([], [{"packets": 9, "spoofed": True}]):
            flows = make_flows(rows)
            path = tmp_path / f"t{len(rows)}.fpk"
            write_flows_archive(flows, path)
            assert tables_equal(read_flows_archive(path), flows)
            assert len(FlowpackArchive(path)) == len(rows)

    def test_append_extends_archive(self, tmp_path):
        path = tmp_path / "t.fpk"
        a = make_flows([{"packets": 1}, {"packets": 2}])
        b = make_flows([{"packets": 3}])
        write_flows_archive(a, path)
        append_flows_archive(b, path)
        assert read_flows_archive(path).packets.tolist() == [1, 2, 3]

    def test_iter_matches_batch(self, tmp_path):
        flows = random_flows(np.random.default_rng(0), 500)
        path = tmp_path / "t.fpk"
        write_flows_archive(flows, path, chunk_rows=117)
        for chunk_rows in (1, 50, 117, 499, 5000):
            chunks = list(iter_flows_archive(path, chunk_rows=chunk_rows))
            assert sum(len(c) for c in chunks) == 500
            assert all(len(c) <= chunk_rows for c in chunks)
            joined = FlowTable(
                **{
                    name: np.concatenate(
                        [getattr(c, name) for c in chunks]
                    )
                    for name in FLOW_COLUMNS
                }
            )
            assert tables_equal(joined, flows)

    def test_zero_copy_views(self, tmp_path):
        flows = random_flows(np.random.default_rng(1), 64)
        path = tmp_path / "t.fpk"
        write_flows_archive(flows, path)
        segment = FlowpackArchive(path).segment_flows(0)
        assert segment.src_ip.base is not None

    def test_read_rows_spans_segments(self, tmp_path):
        flows = random_flows(np.random.default_rng(2), 300)
        path = tmp_path / "t.fpk"
        write_flows_archive(flows, path, chunk_rows=100)
        window = FlowpackArchive(path).read_rows(150, 250)
        assert window.packets.tolist() == flows.packets[150:250].tolist()

    def test_meta_travels_with_archive(self, tmp_path):
        path = tmp_path / "t.fpk"
        write_flows_archive(
            make_flows([{}]), path, meta={"vantage": "CE1", "day": 3}
        )
        meta = archive_meta(path)
        assert meta["vantage"] == "CE1" and meta["day"] == 3

    def test_sniffing(self, tmp_path):
        csvp, fpk = tmp_path / "a.csv", tmp_path / "a.fpk"
        flows = make_flows([{"packets": 4}])
        write_flows(flows, csvp, format="csv")
        write_flows(flows, fpk, format="flowpack")
        assert sniff_flow_format(csvp) == "csv"
        assert sniff_flow_format(fpk) == "flowpack"
        assert is_flowpack(fpk) and not is_flowpack(csvp)
        assert tables_equal(read_flows(csvp), read_flows(fpk))


class TestDamage:
    """Corruption surfaces like CSV damage: ParseReport, not numpy."""

    def _archive(self, tmp_path, segments=3, rows=100):
        flows = random_flows(np.random.default_rng(9), segments * rows)
        path = tmp_path / "t.fpk"
        write_flows_archive(flows, path, chunk_rows=rows)
        return path, flows

    def test_checksum_damage_quarantines_segment(self, tmp_path):
        path, flows = self._archive(tmp_path)
        _, segments, _ = scan_archive(path)
        data = bytearray(path.read_bytes())
        data[segments[1].offsets[0] + 4] ^= 0xFF
        path.write_bytes(bytes(data))

        with pytest.raises(FlowpackError, match="checksum"):
            read_flows_archive(path)
        salvaged, report = read_flows_archive_lenient(path)
        assert len(salvaged) == 200
        assert not report.ok()
        assert [error.line for error in report.errors] == [2]
        assert salvaged.packets.tolist() == (
            flows.packets[:100].tolist() + flows.packets[200:].tolist()
        )

    def test_truncated_tail_reported(self, tmp_path):
        path, flows = self._archive(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data) // 3])

        with pytest.raises(FlowpackError):
            read_flows_archive(path)
        salvaged, report = read_flows_archive_lenient(path)
        assert len(salvaged) in (100, 200)
        assert not report.ok()
        assert salvaged.packets.tolist() == (
            flows.packets[: len(salvaged)].tolist()
        )

    def test_segment_header_damage_resyncs(self, tmp_path):
        path, flows = self._archive(tmp_path)
        _, segments, _ = scan_archive(path)
        data = bytearray(path.read_bytes())
        base = bytes(data).rfind(b"SEGM", 0, segments[1].offsets[0])
        data[base : base + 4] = b"XXXX"
        path.write_bytes(bytes(data))

        salvaged, report = read_flows_archive_lenient(path)
        assert not report.ok()
        assert len(salvaged) == 200
        assert salvaged.packets.tolist() == (
            flows.packets[:100].tolist() + flows.packets[200:].tolist()
        )

    def test_corrupt_file_header_always_fatal(self, tmp_path):
        path, _ = self._archive(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(FlowpackError):
            read_flows_archive(path)
        with pytest.raises(FlowpackError):
            read_flows_archive_lenient(path)

    def test_strict_error_names_file_and_segment(self, tmp_path):
        path, _ = self._archive(tmp_path)
        _, segments, _ = scan_archive(path)
        data = bytearray(path.read_bytes())
        data[segments[0].offsets[3] + 1] ^= 0x55
        path.write_bytes(bytes(data))
        with pytest.raises(FlowpackError, match=r"t\.fpk.*segment 0"):
            read_flows_archive(path)


def _views_pair(tmp_path, num_views=3, rows=400):
    """Matched (in-memory, archive-backed) view lists over random flows."""
    rng = np.random.default_rng(77)
    memory, archived = [], []
    for index in range(num_views):
        flows = random_flows(rng, rows)
        flows = FlowTable(
            **{
                **{name: getattr(flows, name) for name in FLOW_COLUMNS},
                "sender_asn": np.abs(flows.sender_asn),
                "dst_asn": np.abs(flows.dst_asn),
            }
        )
        view = VantageDayView(
            vantage=f"VP{index}", day=index % 2, flows=flows,
            sampling_factor=1.0 + index,
        )
        memory.append(view)
        archived.append(
            export_view(view, tmp_path / f"v{index}.fpk", chunk_rows=113)
        )
    return memory, archived


class TestArchiveFedInference:
    def test_archive_chunked_equals_batch(self, tmp_path):
        memory, archived = _views_pair(tmp_path)
        batch = accumulate_views(memory)
        for chunk_size in (1, 97, 113, 10_000, None, "auto"):
            streamed = accumulate_views(archived, chunk_size=chunk_size)
            assert partial_states_identical(batch, streamed), chunk_size

    def test_archive_parallel_equals_serial(self, tmp_path):
        memory, archived = _views_pair(tmp_path)
        serial = accumulate_views(memory)
        for workers in (2, 3):
            merged, stats = parallel_accumulate_views(
                archived, workers=workers
            )
            assert partial_states_identical(serial, merged), workers
        merged, _ = parallel_accumulate_views(
            archived, workers=2, max_shard_rows=101
        )
        assert partial_states_identical(serial, merged)

    def test_mixed_memory_and_archive_views(self, tmp_path):
        memory, archived = _views_pair(tmp_path)
        mixed = [memory[0], archived[1], memory[2]]
        assert partial_states_identical(
            accumulate_views(memory), accumulate_views(mixed)
        )

    def test_shard_views_uses_headers_only(self, tmp_path):
        _, archived = _views_pair(tmp_path, num_views=1)
        view = ArchiveDayView.open(archived[0].path)
        shard_views([view], workers=4, max_shard_rows=50)
        assert view._flows is None

    def test_archive_view_pickles_as_descriptor(self, tmp_path):
        import pickle

        _, archived = _views_pair(tmp_path, num_views=1)
        view = ArchiveDayView.open(archived[0].path)
        view.flows  # materialise, then prove pickling drops the pages
        clone = pickle.loads(pickle.dumps(view))
        assert clone._flows is None and clone._archive is None
        assert tables_equal(clone.flows, view.flows)
        ref = view.slice_ref(10, 60)
        assert isinstance(ref, ArchiveSlice)
        loaded = pickle.loads(pickle.dumps(ref)).load()
        assert tables_equal(loaded, view.read_rows(10, 60))

    def test_open_requires_vantage_metadata(self, tmp_path):
        path = tmp_path / "bare.fpk"
        write_flows_archive(make_flows([{}]), path)
        with pytest.raises(ValueError, match="vantage"):
            ArchiveDayView.open(path)

    def test_export_preserves_view_identity(self, tmp_path):
        view = VantageDayView(
            vantage="CE1", day=4,
            flows=make_flows([{"packets": 2}, {"packets": 5}]),
            sampling_factor=250.0,
        )
        reopened = ArchiveDayView.open(
            export_view(view, tmp_path / "v.fpk").path
        )
        assert (reopened.vantage, reopened.day) == ("CE1", 4)
        assert reopened.sampling_factor == 250.0
        assert reopened.num_rows == 2
        assert tables_equal(reopened.flows, view.flows)

    def test_writer_context_manager_single_segments(self, tmp_path):
        path = tmp_path / "s.fpk"
        with FlowpackWriter(path, meta={"vantage": "X", "day": 0}) as writer:
            writer.write(make_flows([{"packets": 1}]))
            writer.write(make_flows([]))  # empty chunk: no segment
            writer.write(make_flows([{"packets": 2}]))
            assert writer.rows_written == 2
        _, segments, _ = scan_archive(path)
        assert len(segments) == 2
        assert read_flows_archive(path).packets.tolist() == [1, 2]


class TestGenericTables:
    """The generic (non-flow) table layer under snapshot archives."""

    COLUMNS = {"ids": np.int64, "score": np.float64, "tag": "S2"}

    def arrays(self, rows=5):
        return {
            "ids": np.arange(rows, dtype=np.int64),
            "score": np.linspace(0.0, 1.0, rows),
            "tag": np.full(rows, b"ok", dtype="S2"),
        }

    def test_table_round_trip(self, tmp_path):
        from repro.flowpack import open_table_archive, write_table_archive

        path = tmp_path / "t.fpk"
        arrays = self.arrays()
        write_table_archive(arrays, path, meta={"kind": "test-table"})
        archive = open_table_archive(path)
        assert archive.meta["kind"] == "test-table"
        assert archive.num_rows == 5
        back = archive.read_arrays()
        for name, expect in arrays.items():
            np.testing.assert_array_equal(back[name], expect)

    def test_table_writer_multi_segment(self, tmp_path):
        from repro.flowpack import TableWriter, open_table_archive

        path = tmp_path / "t.fpk"
        with TableWriter(path, self.COLUMNS, meta={"kind": "k"}) as writer:
            writer.write_columns(self.arrays(3))
            writer.write_columns(self.arrays(2))
            assert writer.rows_written == 5
        archive = open_table_archive(path)
        assert len(archive.segments) == 2
        assert archive.read_column("ids").tolist() == [0, 1, 2, 0, 1]

    def test_ragged_columns_rejected(self, tmp_path):
        from repro.flowpack import TableWriter

        with TableWriter(tmp_path / "t.fpk", self.COLUMNS) as writer:
            bad = self.arrays(3)
            bad["score"] = bad["score"][:2]
            with pytest.raises(ValueError):
                writer.write_columns(bad)

    def test_expected_columns_enforced(self, tmp_path):
        from repro.flowpack import open_table_archive, write_table_archive

        path = tmp_path / "t.fpk"
        write_table_archive(self.arrays(), path)
        with pytest.raises(FlowpackError):
            open_table_archive(
                path, expected_columns={"other": np.int32}
            )

    def test_flows_reader_rejects_generic_table(self, tmp_path):
        from repro.flowpack import write_table_archive

        path = tmp_path / "t.fpk"
        write_table_archive(self.arrays(), path)
        with pytest.raises(FlowpackError):
            read_flows_archive(path)

    def test_generic_checksum_verification(self, tmp_path):
        from repro.flowpack import open_table_archive, write_table_archive

        path = tmp_path / "t.fpk"
        write_table_archive(self.arrays(64), path)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # flip a bit inside the last column buffer
        path.write_bytes(bytes(data))
        archive = open_table_archive(path)
        with pytest.raises(FlowpackError):
            archive.read_arrays()
