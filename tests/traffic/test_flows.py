"""Tests for the columnar flow table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.flows import FlowTable, aggregate_sums, weighted_median
from repro.traffic.packets import PROTO_TCP, PROTO_UDP

from _factories import ip, make_flows


class TestConstruction:
    def test_empty(self):
        table = FlowTable.empty()
        assert len(table) == 0
        assert table.total_packets() == 0

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(
                src_ip=np.zeros(2, dtype=np.uint32),
                dst_ip=np.zeros(1, dtype=np.uint32),
                proto=np.zeros(2, dtype=np.uint8),
                dport=np.zeros(2, dtype=np.uint16),
                packets=np.ones(2, dtype=np.int64),
                bytes=np.full(2, 40, dtype=np.int64),
                sender_asn=np.ones(2, dtype=np.int32),
                dst_asn=np.ones(2, dtype=np.int32),
            )

    def test_spoofed_defaults_false(self):
        table = make_flows([{}])
        assert not table.spoofed[0]

    def test_dtype_coercion(self):
        table = FlowTable(
            src_ip=np.array([1]),
            dst_ip=np.array([2]),
            proto=np.array([6]),
            dport=np.array([80]),
            packets=np.array([1]),
            bytes=np.array([40]),
            sender_asn=np.array([1]),
            dst_asn=np.array([1]),
        )
        assert table.src_ip.dtype == np.uint32

    def test_concat(self):
        a = make_flows([{"packets": 1}])
        b = make_flows([{"packets": 2}, {"packets": 3}])
        merged = FlowTable.concat([a, b])
        assert len(merged) == 3
        assert merged.total_packets() == 6

    def test_concat_skips_empty(self):
        merged = FlowTable.concat([FlowTable.empty(), make_flows([{}])])
        assert len(merged) == 1

    def test_concat_nothing(self):
        assert len(FlowTable.concat([])) == 0


class TestSelection:
    def test_tcp_filter(self):
        table = make_flows([{"proto": PROTO_TCP}, {"proto": PROTO_UDP}])
        assert len(table.tcp()) == 1

    def test_toward_blocks(self):
        table = make_flows(
            [{"dst_ip": ip(100)}, {"dst_ip": ip(200)}, {"dst_ip": ip(100, 9)}]
        )
        subset = table.toward_blocks(np.array([100]))
        assert len(subset) == 2

    def test_from_blocks(self):
        table = make_flows([{"src_ip": ip(5)}, {"src_ip": ip(6)}])
        assert len(table.from_blocks(np.array([6]))) == 1

    def test_block_columns(self):
        table = make_flows([{"src_ip": ip(7, 3), "dst_ip": ip(9, 4)}])
        assert table.src_blocks()[0] == 7
        assert table.dst_blocks()[0] == 9


class TestThinning:
    def test_probability_one_identity(self, rng):
        table = make_flows([{"packets": 5}])
        assert table.thin(1.0, rng) is table

    def test_probability_zero_empty(self, rng):
        table = make_flows([{"packets": 5}])
        assert len(table.thin(0.0, rng)) == 0

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            make_flows([{}]).thin(1.5, rng)

    def test_thinning_reduces_packets(self, rng):
        table = make_flows([{"packets": 1000, "bytes": 40000}])
        thinned = table.thin(0.1, rng)
        assert 0 < thinned.total_packets() < 1000

    def test_thinned_bytes_scaled(self, rng):
        table = make_flows([{"packets": 1000, "bytes": 1000 * 100}])
        thinned = table.thin(0.5, rng)
        per_packet = thinned.bytes[0] / thinned.packets[0]
        assert per_packet == pytest.approx(100, rel=0.05)

    def test_thinned_bytes_at_least_header(self, rng):
        table = make_flows([{"packets": 4, "bytes": 160}])
        thinned = table.thin(0.5, rng)
        if len(thinned):
            assert (thinned.bytes >= thinned.packets * 20).all()

    def test_decimate_matches_thin_semantics(self, rng):
        table = make_flows([{"packets": 10000}])
        decimated = table.decimate(10, rng)
        assert decimated.total_packets() == pytest.approx(1000, rel=0.2)

    def test_decimate_validates_factor(self, rng):
        with pytest.raises(ValueError):
            make_flows([{}]).decimate(0, rng)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20)
    def test_thinning_unbiased(self, probability):
        rng = np.random.default_rng(5)
        table = make_flows([{"packets": 2000}] * 50)
        thinned = table.thin(probability, rng)
        expected = 2000 * 50 * probability
        assert thinned.total_packets() == pytest.approx(expected, rel=0.1)


class TestAggregations:
    def test_aggregate_sums(self):
        keys = np.array([3, 1, 3, 1, 2])
        values = np.array([10, 1, 10, 1, 5])
        unique, (sums,) = aggregate_sums(keys, values)
        assert unique.tolist() == [1, 2, 3]
        assert sums.tolist() == [2, 5, 20]

    def test_aggregate_multiple_columns(self):
        keys = np.array([1, 1])
        unique, (a, b) = aggregate_sums(keys, np.array([1, 2]), np.array([10, 20]))
        assert a.tolist() == [3]
        assert b.tolist() == [30]

    def test_weighted_median_simple(self):
        values = np.array([40.0, 1500.0])
        weights = np.array([9.0, 1.0])
        assert weighted_median(values, weights) == 40.0

    def test_weighted_median_balanced(self):
        values = np.array([40.0, 100.0])
        weights = np.array([1.0, 1.0])
        assert weighted_median(values, weights) in (40.0, 100.0)

    def test_weighted_median_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_median(np.array([]), np.array([]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1e4),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_weighted_median_is_in_sample(self, pairs):
        values = np.array([v for v, _ in pairs])
        weights = np.array([w for _, w in pairs])
        median = weighted_median(values, weights)
        assert median in values
