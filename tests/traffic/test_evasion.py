"""Tests for the padded-evasive scanner and the epidemic outbreak actor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import read_flows, write_flows
from repro.traffic.epidemic import EpidemicOutbreakActor
from repro.traffic.evasion import (
    MIN_PADDED_SIZE,
    PaddedEvasiveScanner,
    padded_probe_size_model,
)
from repro.traffic.packets import (
    PROTO_TCP,
    TCP_SYN_ONE_OPTION_SIZE,
    PacketSizeModel,
)
from repro.traffic.scanners import ScanSource


def sources(count=4):
    return [ScanSource(ip=0x0A000001 + i, asn=100 + i) for i in range(count)]


def scanner(**overrides):
    defaults = dict(
        sources=sources(),
        target_blocks=np.arange(2000, 2032, dtype=np.int64),
        pkts_per_block_day=50.0,
    )
    defaults.update(overrides)
    return PaddedEvasiveScanner(**defaults)


class TestPaddedEvasiveScanner:
    def test_size_model_exceeds_per_ip_slack(self):
        model = padded_probe_size_model()
        assert min(model.sizes) >= MIN_PADDED_SIZE
        assert MIN_PADDED_SIZE > TCP_SYN_ONE_OPTION_SIZE

    def test_rejects_unpadded_size_model(self):
        with pytest.raises(ValueError):
            scanner(
                size_model=PacketSizeModel(sizes=(40, 60), weights=(0.5, 0.5))
            )

    def test_flows_are_tcp_toward_targets(self):
        actor = scanner()
        flows = actor.generate(0, np.random.default_rng(1))
        assert len(flows) > 0
        assert (flows.proto == PROTO_TCP).all()
        assert np.isin(flows.dst_ip >> 8, actor.target_blocks).all()

    @settings(max_examples=20, deadline=None)
    @given(day=st.integers(0, 6), seed=st.integers(0, 2**31 - 1))
    def test_every_flow_exceeds_the_size_fingerprint(self, day, seed):
        """No padded flow can ever look like bare SYN radiation: the
        per-flow mean packet size always clears the 44-byte average
        threshold AND the 48-byte per-IP slack."""
        flows = scanner().generate(day, np.random.default_rng(seed))
        assert len(flows) > 0
        mean_size = flows.bytes / flows.packets
        assert (mean_size >= MIN_PADDED_SIZE).all()
        assert (mean_size > TCP_SYN_ONE_OPTION_SIZE).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_padding_survives_csv_flowpack_round_trip(self, seed, tmp_path_factory):
        """Serialisation must not shave the padding off: after a
        CSV→flowpack→memory round trip every flow still exceeds the
        fingerprint."""
        tmp_path = tmp_path_factory.mktemp("evasion")
        flows = scanner().generate(0, np.random.default_rng(seed))
        csv_path = tmp_path / "padded.csv"
        pack_path = tmp_path / "padded.fp"
        write_flows(flows, str(csv_path), format="csv")
        from_csv = read_flows(str(csv_path))
        write_flows(from_csv, str(pack_path), format="flowpack")
        restored = read_flows(str(pack_path))
        assert np.array_equal(restored.bytes, flows.bytes)
        assert np.array_equal(restored.packets, flows.packets)
        assert (restored.bytes / restored.packets >= MIN_PADDED_SIZE).all()


class TestEpidemicOutbreakActor:
    def epidemic(self, **overrides):
        defaults = dict(
            bot_pool=sources(40),
            target_blocks=np.arange(3000, 3064, dtype=np.int64),
            pkts_per_bot_day=30.0,
            start_day=0,
            midpoint_day=2.0,
        )
        defaults.update(overrides)
        return EpidemicOutbreakActor(**defaults)

    def test_logistic_growth_is_monotone_to_capacity(self):
        actor = self.epidemic()
        counts = [actor.infected_on(day) for day in range(8)]
        assert counts == sorted(counts)
        assert counts[0] >= 1
        assert counts[-1] == len(actor.bot_pool)

    def test_silent_before_start_day(self):
        actor = self.epidemic(start_day=3)
        assert actor.infected_on(1) == 0
        assert len(actor.generate(1, np.random.default_rng(0))) == 0
        assert len(actor.generate(3, np.random.default_rng(0))) > 0

    def test_traffic_scales_with_infection(self):
        actor = self.epidemic()
        early = actor.generate(0, np.random.default_rng(5))
        late = actor.generate(5, np.random.default_rng(5))
        assert late.packets.sum() > early.packets.sum()

    def test_telnet_dominates_the_port_mix(self):
        flows = self.epidemic().generate(6, np.random.default_rng(2))
        telnet_share = (flows.dport == 23).mean()
        assert telnet_share > 0.6
