"""Tests for traffic actors: scanners, backscatter, spoofing, noise."""

import numpy as np
import pytest

from repro.traffic.backscatter import BackscatterActor, Victim
from repro.traffic.flows import FlowTable
from repro.traffic.mix import (
    DailyTrafficMix,
    MisconfigurationNoise,
    UdpRadiationActor,
)
from repro.traffic.packets import PROTO_TCP, PROTO_UDP
from repro.traffic.scanners import ScanCampaign, ScanSource, make_sources
from repro.traffic.spoofing import SpoofedFloodActor


def campaign(**overrides):
    defaults = dict(
        name="test",
        sources=[ScanSource(ip=0x01010101, asn=10)],
        ports=(23,),
        port_weights=(1.0,),
        target_blocks=np.arange(100, 200),
        target_weights=None,
        probes_per_day=300,
    )
    defaults.update(overrides)
    return ScanCampaign(**defaults)


class TestScanCampaign:
    def test_generates_tcp_probes(self, rng):
        flows = campaign().generate(0, rng)
        assert len(flows) > 0
        assert (flows.proto == PROTO_TCP).all()
        assert set(flows.dport.tolist()) == {23}

    def test_budget_respected(self, rng):
        flows = campaign(probes_per_day=600).generate(0, rng)
        assert flows.total_packets() == pytest.approx(600, rel=0.25)

    def test_targets_inside_universe(self, rng):
        flows = campaign().generate(0, rng)
        assert ((flows.dst_blocks() >= 100) & (flows.dst_blocks() < 200)).all()

    def test_weights_bias_targets(self, rng):
        weights = np.zeros(100)
        weights[:10] = 1.0
        flows = campaign(target_weights=weights).generate(0, rng)
        assert (flows.dst_blocks() < 110).all()

    def test_blacklist_respected(self, rng):
        avoid = np.arange(100, 190)
        flows = campaign(avoid_blocks=avoid).generate(0, rng)
        assert (flows.dst_blocks() >= 190).all()

    def test_weekday_profile_zero_day(self, rng):
        flows = campaign(weekday_profile=(0.0,) + (1.0,) * 6).generate(0, rng)
        assert len(flows) == 0

    def test_sources_required(self):
        with pytest.raises(ValueError):
            campaign(sources=[])

    def test_port_weight_mismatch(self):
        with pytest.raises(ValueError):
            campaign(ports=(23, 80), port_weights=(1.0,))

    def test_sender_asn_propagated(self, rng):
        flows = campaign(sources=[ScanSource(ip=1, asn=777)]).generate(0, rng)
        assert (flows.sender_asn == 777).all()

    def test_empty_targets(self, rng):
        flows = campaign(
            target_blocks=np.array([150]), avoid_blocks=np.array([150])
        ).generate(0, rng)
        assert len(flows) == 0


class TestMakeSources:
    def test_sources_in_blocks(self, rng):
        sources = make_sources(
            np.array([5, 6]), np.array([50, 60]), count=20, rng=rng
        )
        assert len(sources) == 20
        for source in sources:
            assert source.ip >> 8 in (5, 6)
            assert source.asn in (50, 60)

    def test_asn_matches_block(self, rng):
        sources = make_sources(np.array([5]), np.array([50]), count=5, rng=rng)
        assert all(s.asn == 50 for s in sources)

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            make_sources(np.array([]), np.array([]), count=1, rng=rng)


class TestBackscatter:
    def test_small_tcp_packets(self, rng):
        actor = BackscatterActor(
            victims=[Victim(ip=1, asn=2, service_port=80)], packets_per_day=500
        )
        flows = actor.generate(0, rng)
        assert (flows.proto == PROTO_TCP).all()
        sizes = flows.bytes / flows.packets
        assert sizes.max() <= 48

    def test_restricted_destinations(self, rng):
        actor = BackscatterActor(
            victims=[Victim(ip=1, asn=2, service_port=80)],
            packets_per_day=500,
            dst_blocks=np.array([42]),
        )
        flows = actor.generate(0, rng)
        assert (flows.dst_blocks() == 42).all()

    def test_active_days_gating(self, rng):
        actor = BackscatterActor(
            victims=[Victim(ip=1, asn=2, service_port=80)],
            packets_per_day=500,
            active_days=frozenset({0}),
        )
        assert len(actor.generate(0, rng)) > 0
        assert len(actor.generate(1, rng)) == 0

    def test_needs_victims(self):
        with pytest.raises(ValueError):
            BackscatterActor(victims=[], packets_per_day=10)


class TestSpoofing:
    def make_actor(self, **overrides):
        defaults = dict(
            attacker_asns=np.array([9]),
            victim_ips=np.array([0x0A000001], dtype=np.uint32),
            victim_asns=np.array([77], dtype=np.int32),
            uniform_source_blocks=np.arange(1000, 2000),
            uniform_packets_per_day=2000,
            subnet_anchors=np.array([7]),
            floods_per_day=0,
        )
        defaults.update(overrides)
        return SpoofedFloodActor(**defaults)

    def test_sources_inside_space(self, rng):
        flows = self.make_actor().generate(0, rng)
        assert ((flows.src_blocks() >= 1000) & (flows.src_blocks() < 2000)).all()

    def test_all_marked_spoofed(self, rng):
        flows = self.make_actor().generate(0, rng)
        assert flows.spoofed.all()

    def test_destinations_are_victims(self, rng):
        flows = self.make_actor().generate(0, rng)
        assert set(flows.dst_ip.tolist()) == {0x0A000001}

    def test_subnet_flood_concentrates(self, rng):
        actor = self.make_actor(
            uniform_packets_per_day=0, floods_per_day=2,
            flood_pkts_per_block=100,
        )
        flows = actor.generate(0, rng)
        # All flood sources sit inside the anchored /16.
        assert set((flows.src_blocks() >> 8).tolist()) == {7}
        # Intensity per /24 is far above any tolerance.
        per_block = flows.packets.sum() / 256
        assert per_block >= 100

    def test_flood_covers_whole_slash16(self, rng):
        actor = self.make_actor(
            uniform_packets_per_day=0, floods_per_day=1,
            flood_pkts_per_block=100,
        )
        flows = actor.generate(0, rng)
        assert len(np.unique(flows.src_blocks())) == 256

    def test_daily_profile_scales(self, rng):
        actor = self.make_actor(daily_profile=(1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0))
        assert len(actor.generate(1, rng)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_actor(victim_ips=np.array([], dtype=np.uint32),
                            victim_asns=np.array([], dtype=np.int32))
        with pytest.raises(ValueError):
            self.make_actor(uniform_source_blocks=np.array([]))
        with pytest.raises(ValueError):
            self.make_actor(floods_per_day=1, subnet_anchors=np.array([]))


class TestNoiseActors:
    def test_udp_actor_udp_only(self, rng):
        actor = UdpRadiationActor(
            target_blocks=np.array([7]),
            source_ips=np.array([1], dtype=np.uint32),
            source_asns=np.array([1], dtype=np.int32),
            packets_per_day=100,
        )
        flows = actor.generate(0, rng)
        assert (flows.proto == PROTO_UDP).all()
        assert (flows.dst_blocks() == 7).all()

    def test_misconfig_large_mean(self, rng):
        actor = MisconfigurationNoise(
            target_blocks=np.array([7]),
            source_ips=np.array([1], dtype=np.uint32),
            source_asns=np.array([1], dtype=np.int32),
        )
        flows = actor.generate(0, rng)
        tcp = flows.tcp()
        assert tcp.total_bytes() / tcp.total_packets() > 44

    def test_mix_concatenates(self, rng):
        mix = DailyTrafficMix()
        mix.add(
            UdpRadiationActor(
                target_blocks=np.array([7]),
                source_ips=np.array([1], dtype=np.uint32),
                source_asns=np.array([1], dtype=np.int32),
                packets_per_day=50,
            )
        )
        mix.add(
            BackscatterActor(
                victims=[Victim(ip=1, asn=2, service_port=80)], packets_per_day=50
            )
        )
        flows = mix.generate_day(0, rng)
        assert isinstance(flows, FlowTable)
        assert len(flows) > 0
        assert set(np.unique(flows.proto)) == {PROTO_TCP, PROTO_UDP}
