"""Tests for packet size models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.packets import (
    PacketSizeModel,
    backscatter_size_model,
    dirty_dark_size_model,
    ibr_tcp_size_model,
    production_size_model,
    udp_ibr_size_model,
)


class TestPacketSizeModel:
    def test_mean(self):
        model = PacketSizeModel(sizes=(40, 60), weights=(0.5, 0.5))
        assert model.mean_size() == pytest.approx(50.0)

    def test_probabilities_normalised(self):
        model = PacketSizeModel(sizes=(40, 60), weights=(2.0, 2.0))
        assert model.probabilities().tolist() == [0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSizeModel(sizes=(40,), weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            PacketSizeModel(sizes=(), weights=())
        with pytest.raises(ValueError):
            PacketSizeModel(sizes=(40,), weights=(0.0,))

    def test_sample_sizes_in_support(self, rng):
        model = ibr_tcp_size_model()
        sizes = model.sample_sizes(500, rng)
        assert set(sizes.tolist()) <= set(model.sizes)

    def test_sample_totals_bounds(self, rng):
        model = PacketSizeModel(sizes=(40, 1500), weights=(0.9, 0.1))
        counts = np.array([1, 10, 100])
        totals = model.sample_totals(counts, rng)
        assert (totals >= counts * 40).all()
        assert (totals <= counts * 1500).all()

    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=20)
    def test_sample_totals_mean_consistent(self, packets):
        rng = np.random.default_rng(0)
        model = ibr_tcp_size_model()
        totals = model.sample_totals(np.full(200, packets), rng)
        mean = totals.mean() / packets
        assert abs(mean - model.mean_size()) < 2.0


class TestCalibratedModels:
    def test_ibr_mean_close_to_table2(self):
        # Table 2 reports ~40.6-40.8 bytes mean TCP size at telescopes.
        assert 40.4 <= ibr_tcp_size_model().mean_size() <= 41.0

    def test_ibr_dominated_by_bare_syns(self):
        model = ibr_tcp_size_model()
        probs = dict(zip(model.sizes, model.probabilities()))
        assert probs[40] >= 0.93

    def test_production_mean_exceeds_threshold(self):
        # Any realistic data share pushes the mean above 44 bytes.
        for ack in (0.0, 0.3, 0.6):
            assert production_size_model(ack).mean_size() > 44.0

    def test_production_pure_ack_below_threshold(self):
        assert production_size_model(0.97).mean_size() < 44.0

    def test_production_rejects_bad_share(self):
        with pytest.raises(ValueError):
            production_size_model(1.0)
        with pytest.raises(ValueError):
            production_size_model(-0.1)

    def test_backscatter_small(self):
        assert backscatter_size_model().mean_size() < 44.0

    def test_dirty_dark_exceeds_threshold(self):
        assert dirty_dark_size_model().mean_size() > 44.0

    def test_udp_sizes_above_tcp_minimum(self):
        assert min(udp_ibr_size_model().sizes) > 40
