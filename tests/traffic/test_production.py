"""Tests for production traffic and the CDN ACK sink."""

import numpy as np
import pytest

from repro.traffic.production import CdnAckSink, ProductionTraffic
from repro.traffic.packets import PROTO_TCP


def make_production(**overrides):
    count = overrides.pop("count", 3)
    defaults = dict(
        blocks=np.arange(10, 10 + count),
        asns=np.full(count, 5),
        inbound_pkts_per_day=np.full(count, 480),
        outbound_pkts_per_day=np.full(count, 240),
        ack_share=np.full(count, 0.3),
        weekend_factor=np.full(count, 0.1),
        remote_ips=np.array([0x08080808, 0x08080809], dtype=np.uint32),
        remote_asns=np.array([15, 15], dtype=np.int32),
    )
    defaults.update(overrides)
    return ProductionTraffic(**defaults)


class TestProductionTraffic:
    def test_bidirectional(self, rng):
        flows = make_production().generate(0, rng)
        blocks = set(range(10, 13))
        src_hits = set(flows.src_blocks().tolist()) & blocks
        dst_hits = set(flows.dst_blocks().tolist()) & blocks
        assert src_hits and dst_hits

    def test_volume_approximates_budget(self, rng):
        flows = make_production(count=20).generate(0, rng)
        expected = 20 * (480 + 240)
        assert flows.total_packets() == pytest.approx(expected, rel=0.4)

    def test_inbound_mean_size_exceeds_threshold(self, rng):
        flows = make_production(count=20).generate(0, rng)
        inbound = flows.toward_blocks(np.arange(10, 30)).tcp()
        assert inbound.total_bytes() / inbound.total_packets() > 44

    def test_pure_ack_blocks_stay_small(self, rng):
        flows = make_production(count=20, ack_share=np.full(20, 0.97)).generate(0, rng)
        inbound = flows.toward_blocks(np.arange(10, 30)).tcp()
        assert inbound.total_bytes() / inbound.total_packets() <= 44

    def test_weekend_quiet(self, rng):
        actor = make_production(count=20)
        weekday = actor.generate(0, np.random.default_rng(1)).total_packets()
        weekend = actor.generate(5, np.random.default_rng(1)).total_packets()
        assert weekend < weekday * 0.3

    def test_zero_inbound_generates_no_inbound(self, rng):
        actor = make_production(inbound_pkts_per_day=np.zeros(3, dtype=np.int64))
        flows = actor.generate(0, rng)
        inbound = flows.toward_blocks(np.arange(10, 13))
        assert len(inbound) == 0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            make_production(asns=np.array([1]))

    def test_remote_pool_required(self):
        with pytest.raises(ValueError):
            make_production(
                remote_ips=np.array([], dtype=np.uint32),
                remote_asns=np.array([], dtype=np.int32),
            )

    def test_empty_blocks_ok(self, rng):
        actor = make_production(
            count=0,
            blocks=np.array([], dtype=np.int64),
            asns=np.array([], dtype=np.int32),
            inbound_pkts_per_day=np.array([], dtype=np.int64),
            outbound_pkts_per_day=np.array([], dtype=np.int64),
            ack_share=np.array([]),
            weekend_factor=np.array([]),
        )
        assert len(actor.generate(0, rng)) == 0


class TestCdnAckSink:
    def make_sink(self, inbound=4000):
        return CdnAckSink(
            blocks=np.array([99]),
            asns=np.array([12], dtype=np.int32),
            inbound_pkts_per_day=np.array([inbound], dtype=np.int64),
            client_ips=np.array([0x0B0B0B0B], dtype=np.uint32),
            client_asns=np.array([30], dtype=np.int32),
        )

    def test_pure_acks(self, rng):
        flows = self.make_sink().generate(0, rng)
        assert (flows.proto == PROTO_TCP).all()
        assert flows.total_bytes() / flows.total_packets() <= 44

    def test_high_volume(self, rng):
        flows = self.make_sink().generate(0, rng)
        assert flows.total_packets() == pytest.approx(4000, rel=0.4)

    def test_no_outbound(self, rng):
        flows = self.make_sink().generate(0, rng)
        assert 99 not in set(flows.src_blocks().tolist())

    def test_sender_is_client(self, rng):
        flows = self.make_sink().generate(0, rng)
        assert (flows.sender_asn == 30).all()
        assert (flows.dst_asn == 12).all()
