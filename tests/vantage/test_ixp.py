"""Tests for the IXP fabric: engagement, assignment, sampling."""

import numpy as np
import pytest

from repro.bgp.topology import AsTopology
from repro.vantage.ixp import Ixp, IxpFabric

from _factories import make_flows


def small_fabric(customer_engagement=0.5, continent_of_asn=None):
    topology = AsTopology.build_hierarchy(
        tier1=[1], mid_tier={2: [1]}, stubs={3: [2], 4: [2]}
    )
    ixps = [
        Ixp(
            code="X1",
            region="CE",
            member_asns=frozenset({1, 2}),
            capture_share=0.5,
            sampling_factor=1.0,
            customer_engagement=customer_engagement,
            home_continents=frozenset({"EU"}) if continent_of_asn else frozenset(),
        ),
        Ixp(
            code="X2",
            region="NA",
            member_asns=frozenset({1}),
            capture_share=0.3,
            sampling_factor=2.0,
        ),
    ]
    return IxpFabric(ixps, topology, max_asn=4, continent_of_asn=continent_of_asn)


class TestConstruction:
    def test_duplicate_codes_rejected(self):
        topology = AsTopology()
        ixp = Ixp("X", "CE", frozenset({1}), 0.5, 1.0)
        with pytest.raises(ValueError):
            IxpFabric([ixp, ixp], topology, max_asn=1)

    def test_needs_ixps(self):
        with pytest.raises(ValueError):
            IxpFabric([], AsTopology(), max_asn=1)

    def test_capture_share_validated(self):
        with pytest.raises(ValueError):
            Ixp("X", "CE", frozenset(), 0.0, 1.0)

    def test_sampling_factor_validated(self):
        with pytest.raises(ValueError):
            Ixp("X", "CE", frozenset(), 0.5, 0.5)


class TestEngagement:
    def test_members_fully_engaged(self):
        fabric = small_fabric()
        assert fabric.engagement_of("X1", 1) == 1.0
        assert fabric.engagement_of("X1", 2) == 1.0

    def test_customers_partially_engaged(self):
        fabric = small_fabric()
        assert fabric.engagement_of("X1", 3) == 0.5

    def test_unknown_asn_zero(self):
        fabric = small_fabric()
        assert fabric.engagement_of("X1", 99) == 0.0

    def test_continent_gating(self):
        continents = {1: "EU", 2: "EU", 3: "NA", 4: "EU"}
        fabric = small_fabric(continent_of_asn=continents)
        # AS3 is a NA customer: it engages at the remote discount only.
        remote = fabric.ixps[0].remote_customer_engagement
        assert fabric.engagement_of("X1", 3) == pytest.approx(remote)
        assert fabric.engagement_of("X1", 4) == 0.5

    def test_excluded_asns(self):
        topology = AsTopology.build_hierarchy(
            tier1=[1], mid_tier={2: [1]}, stubs={3: [2]}
        )
        ixp = Ixp(
            code="X1",
            region="CE",
            member_asns=frozenset({1, 2}),
            capture_share=0.5,
            sampling_factor=1.0,
            excluded_asns=frozenset({2}),
        )
        fabric = IxpFabric([ixp], topology, max_asn=3)
        assert fabric.engagement_of("X1", 2) == 0.0


class TestAssignment:
    def test_unknown_asns_never_cross(self, rng):
        fabric = small_fabric()
        flows = make_flows([{"sender_asn": -1, "dst_asn": 1}] * 50)
        assignment = fabric.assign_flows(flows, rng)
        assert (assignment == -1).all()

    def test_fully_engaged_pairs_cross_sometimes(self, rng):
        fabric = small_fabric()
        flows = make_flows([{"sender_asn": 1, "dst_asn": 2}] * 2000)
        assignment = fabric.assign_flows(flows, rng)
        crossing = (assignment >= 0).mean()
        # X1 score 0.5; X2 needs dst engagement (asn 2 not member,
        # customer of member 1) so some flows land there too.
        assert 0.3 < crossing < 0.95

    def test_assignment_respects_scores(self, rng):
        fabric = small_fabric()
        flows = make_flows([{"sender_asn": 1, "dst_asn": 2}] * 5000)
        assignment = fabric.assign_flows(flows, rng)
        x1_share = (assignment == 0).mean()
        x2_share = (assignment == 1).mean()
        assert x1_share > x2_share

    def test_empty_flows(self, rng):
        fabric = small_fabric()
        assert len(fabric.assign_flows(make_flows([]), rng)) == 0


class TestViews:
    def test_views_for_day_structure(self, rng):
        fabric = small_fabric()
        flows = make_flows([{"sender_asn": 1, "dst_asn": 2, "packets": 4}] * 500)
        views = fabric.views_for_day(flows, day=3, rng=rng)
        assert set(views) == {"X1", "X2"}
        assert views["X1"].day == 3
        assert views["X2"].sampling_factor == 2.0

    def test_views_disjoint_flows(self, rng):
        # A packet crosses at most one IXP: totals never exceed ground.
        fabric = small_fabric()
        flows = make_flows([{"sender_asn": 1, "dst_asn": 2, "packets": 4}] * 500)
        views = fabric.views_for_day(flows, day=0, rng=rng)
        estimated = sum(
            v.flows.total_packets() * v.sampling_factor for v in views.values()
        )
        assert estimated < flows.total_packets() * 1.5
