"""Tests for the IPFIX (RFC 7011) codec."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.flows import FlowTable
from repro.vantage.ipfix import (
    FLOW_TEMPLATE_ID,
    IPFIX_VERSION,
    IpfixError,
    decode_ipfix,
    encode_ipfix,
)

from _factories import ip, make_flows


class TestRoundtrip:
    def test_basic_roundtrip(self):
        flows = make_flows(
            [
                {"src_ip": ip(5, 1), "dst_ip": ip(9, 2), "dport": 23,
                 "packets": 3, "bytes": 120, "sender_asn": 42, "dst_asn": 7},
                {"proto": 17, "dport": 53},
            ]
        )
        messages = encode_ipfix(flows, observation_domain=9, export_time=1234)
        decoded, infos = decode_ipfix(messages)
        assert len(decoded) == 2
        assert decoded.src_ip.tolist() == flows.src_ip.tolist()
        assert decoded.dst_ip.tolist() == flows.dst_ip.tolist()
        assert decoded.dport.tolist() == flows.dport.tolist()
        assert decoded.packets.tolist() == flows.packets.tolist()
        assert decoded.bytes.tolist() == flows.bytes.tolist()
        assert decoded.sender_asn.tolist() == flows.sender_asn.tolist()
        assert infos[0].observation_domain == 9
        assert infos[0].export_time == 1234
        assert infos[0].num_records == 2

    def test_unknown_asn_roundtrips_as_minus_one(self):
        flows = make_flows([{"sender_asn": -1, "dst_asn": -1}])
        decoded, _ = decode_ipfix(encode_ipfix(flows))
        assert decoded.sender_asn[0] == -1
        assert decoded.dst_asn[0] == -1

    def test_spoofed_flag_not_exported(self):
        flows = make_flows([{"spoofed": True}])
        decoded, _ = decode_ipfix(encode_ipfix(flows))
        assert not decoded.spoofed[0]

    def test_empty_table(self):
        messages = encode_ipfix(FlowTable.empty())
        assert len(messages) == 1
        decoded, infos = decode_ipfix(messages)
        assert len(decoded) == 0
        assert infos[0].num_records == 0

    def test_large_table_splits_messages(self):
        flows = make_flows([{"packets": 1}] * 5000)
        messages = encode_ipfix(flows)
        assert len(messages) >= 2
        assert all(len(m) <= 65535 for m in messages)
        decoded, infos = decode_ipfix(messages)
        assert len(decoded) == 5000
        # Sequence numbers accumulate record counts (RFC 7011 §3.1).
        assert infos[1].sequence == infos[0].num_records

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0))
    @settings(max_examples=25)
    def test_roundtrip_property(self, count, seed):
        rng = np.random.default_rng(seed)
        flows = make_flows(
            [
                {
                    "src_ip": int(rng.integers(0, 2**32)),
                    "dst_ip": int(rng.integers(0, 2**32)),
                    "proto": int(rng.integers(0, 256)),
                    "dport": int(rng.integers(0, 65536)),
                    "packets": int(rng.integers(1, 10**6)),
                    "bytes": int(rng.integers(20, 10**9)),
                    "sender_asn": int(rng.integers(1, 2**31 - 1)),
                    "dst_asn": int(rng.integers(1, 2**31 - 1)),
                }
                for _ in range(count)
            ]
        )
        decoded, _ = decode_ipfix(encode_ipfix(flows))
        for column in ("src_ip", "dst_ip", "proto", "dport", "packets",
                       "bytes", "sender_asn", "dst_asn"):
            assert getattr(decoded, column).tolist() == getattr(
                flows, column
            ).tolist(), column


class TestWireFormat:
    def test_message_header(self):
        message = encode_ipfix(make_flows([{}]))[0]
        version, length, _, _, _ = struct.unpack("!HHIII", message[:16])
        assert version == IPFIX_VERSION
        assert length == len(message)

    def test_template_set_first(self):
        message = encode_ipfix(make_flows([{}]))[0]
        set_id, _ = struct.unpack("!HH", message[16:20])
        assert set_id == 2  # template set

    def test_rejects_wrong_version(self):
        message = bytearray(encode_ipfix(make_flows([{}]))[0])
        message[0:2] = (9).to_bytes(2, "big")
        with pytest.raises(IpfixError):
            decode_ipfix([bytes(message)])

    def test_rejects_truncation(self):
        message = encode_ipfix(make_flows([{}]))[0]
        with pytest.raises(IpfixError):
            decode_ipfix([message[:10]])
        with pytest.raises(IpfixError):
            decode_ipfix([message[:-3]])

    def test_rejects_unknown_template_data(self):
        message = encode_ipfix(make_flows([{}]))[0]
        # Strip the template set: header(16) + template set, data set.
        template_length = struct.unpack("!HH", message[16:20])[1]
        data_only = message[:16] + message[16 + template_length:]
        patched = bytearray(data_only)
        patched[2:4] = len(data_only).to_bytes(2, "big")
        with pytest.raises(IpfixError):
            decode_ipfix([bytes(patched)])

    def test_rejects_unsupported_set_id(self):
        message = bytearray(encode_ipfix(make_flows([{}]))[0])
        # Rewrite the data set id (offset 16 + template set length).
        template_length = struct.unpack("!HH", bytes(message[16:20]))[1]
        offset = 16 + template_length
        message[offset : offset + 2] = (FLOW_TEMPLATE_ID + 7).to_bytes(2, "big")
        with pytest.raises(IpfixError):
            decode_ipfix([bytes(message)])

    def test_view_level_roundtrip(self, day0):
        """A real IXP view survives the wire format."""
        flows = day0.ixp_views["CE1"].flows
        decoded, _ = decode_ipfix(encode_ipfix(flows))
        assert len(decoded) == len(flows)
        assert decoded.total_packets() == flows.total_packets()
        assert decoded.dst_blocks().tolist() == flows.dst_blocks().tolist()
