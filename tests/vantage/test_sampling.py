"""Tests for vantage-day views and block aggregation."""

import numpy as np
import pytest

from repro.traffic.packets import PROTO_TCP, PROTO_UDP
from repro.vantage.sampling import VantageDayView, compute_block_aggregates

from _factories import ip, make_flows, make_view


class TestBlockAggregates:
    def test_tcp_udp_split(self):
        flows = make_flows(
            [
                {"dst_ip": ip(5), "proto": PROTO_TCP, "packets": 3, "bytes": 120},
                {"dst_ip": ip(5, 2), "proto": PROTO_UDP, "packets": 2, "bytes": 200},
            ]
        )
        agg = compute_block_aggregates(flows)
        assert agg.blocks.tolist() == [5]
        assert agg.tcp_packets.tolist() == [3]
        assert agg.udp_packets.tolist() == [2]
        assert agg.total_packets().tolist() == [5]

    def test_per_ip_stats(self):
        flows = make_flows(
            [
                {"dst_ip": ip(5, 1), "packets": 1, "bytes": 40},
                {"dst_ip": ip(5, 1), "packets": 1, "bytes": 48},
                {"dst_ip": ip(5, 2), "packets": 2, "bytes": 80},
            ]
        )
        agg = compute_block_aggregates(flows)
        assert agg.dst_ips.tolist() == [ip(5, 1), ip(5, 2)]
        assert agg.dst_ip_tcp_packets.tolist() == [2, 2]
        assert agg.dst_ip_tcp_bytes.tolist() == [88, 80]
        assert agg.distinct_dst_ips.tolist() == [2]

    def test_source_stats(self):
        flows = make_flows(
            [
                {"src_ip": ip(9, 1), "packets": 4},
                {"src_ip": ip(9, 2), "packets": 1},
                {"src_ip": ip(8, 1), "packets": 2},
            ]
        )
        agg = compute_block_aggregates(flows)
        assert agg.src_blocks.tolist() == [8, 9]
        assert agg.src_packets.tolist() == [2, 5]
        assert agg.src_distinct_ips.tolist() == [1, 2]
        assert agg.src_ips.tolist() == [ip(8, 1), ip(9, 1), ip(9, 2)]
        assert agg.src_ip_packets.tolist() == [2, 4, 1]

    def test_multiple_blocks_sorted(self):
        flows = make_flows([{"dst_ip": ip(20)}, {"dst_ip": ip(3)}])
        agg = compute_block_aggregates(flows)
        assert agg.blocks.tolist() == [3, 20]

    def test_empty_flows(self):
        agg = compute_block_aggregates(make_flows([]))
        assert len(agg.blocks) == 0
        assert len(agg.src_blocks) == 0


class TestVantageDayView:
    def test_aggregates_cached(self):
        view = make_view([{"dst_ip": ip(5)}])
        assert view.aggregates() is view.aggregates()

    def test_decimated_scales_factor(self, rng):
        view = make_view([{"packets": 1000}], sampling_factor=4.0)
        decimated = view.decimated(2, rng)
        assert decimated.sampling_factor == 8.0
        assert decimated.day == view.day
        assert decimated.vantage == view.vantage

    def test_decimated_thins(self, rng):
        view = make_view([{"packets": 10000}])
        decimated = view.decimated(10, rng)
        assert decimated.flows.total_packets() == pytest.approx(1000, rel=0.2)

    def test_default_sampling_factor(self):
        assert make_view([{}]).sampling_factor == 1.0
