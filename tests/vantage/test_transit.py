"""Tests for the transit-ISP vantage point (Section 9 extension)."""

import numpy as np
import pytest

from repro.bgp.rib import Announcement, RoutingTable
from repro.bgp.topology import AsTopology
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import Prefix, parse_ip
from repro.vantage.transit import TransitIspVantage

from _factories import make_flows


def make_vantage(**overrides):
    # AS1 (transit) -> AS2, AS3 customers; AS9 is outside the cone.
    topology = AsTopology()
    topology.add_provider_customer(1, 2)
    topology.add_provider_customer(1, 3)
    topology.add_as(9)
    pfx2as = PrefixToAsMap.from_routing_table(
        RoutingTable(
            [
                Announcement(Prefix.parse("20.0.0.0/8"), 2),
                Announcement(Prefix.parse("30.0.0.0/8"), 3),
                Announcement(Prefix.parse("90.0.0.0/8"), 9),
            ]
        )
    )
    defaults = dict(
        code="T1",
        asn=1,
        topology=topology,
        pfx2as=pfx2as,
        sampling_factor=1.0,
    )
    defaults.update(overrides)
    return TransitIspVantage(**defaults)


class TestCapture:
    def test_cone(self):
        assert make_vantage().cone == frozenset({1, 2, 3})

    def test_in_cone_traffic_captured(self, rng):
        vantage = make_vantage()
        flows = make_flows(
            [
                {"src_ip": parse_ip("20.0.0.1"), "sender_asn": 2, "dst_asn": 9},
                {"src_ip": parse_ip("90.0.0.1"), "sender_asn": 9, "dst_asn": 3},
            ]
        )
        view = vantage.capture(flows, day=0, rng=rng)
        assert len(view.flows) == 2
        assert view.sampling_factor == 1.0

    def test_unrelated_traffic_invisible(self, rng):
        vantage = make_vantage()
        flows = make_flows(
            [{"src_ip": parse_ip("90.0.0.1"), "sender_asn": 9, "dst_asn": 9}]
        )
        assert len(vantage.capture(flows, day=0, rng=rng).flows) == 0

    def test_bcp38_drops_in_cone_spoofing(self, rng):
        vantage = make_vantage()
        flows = make_flows(
            [
                # customer AS2 spoofing an out-of-cone source: dropped
                {"src_ip": parse_ip("90.0.0.1"), "sender_asn": 2, "dst_asn": 9,
                 "spoofed": True},
                # outside attacker spoofing toward a customer: passes
                {"src_ip": parse_ip("90.0.0.1"), "sender_asn": 9, "dst_asn": 2,
                 "spoofed": True},
            ]
        )
        view = vantage.capture(flows, day=0, rng=rng)
        assert len(view.flows) == 1
        assert view.flows.sender_asn[0] == 9

    def test_no_bcp38_keeps_spoofing(self, rng):
        vantage = make_vantage(bcp38_at_edge=False)
        flows = make_flows(
            [{"src_ip": parse_ip("90.0.0.1"), "sender_asn": 2, "dst_asn": 9,
              "spoofed": True}]
        )
        assert len(vantage.capture(flows, day=0, rng=rng).flows) == 1

    def test_sampling_applied(self, rng):
        vantage = make_vantage(sampling_factor=10.0)
        flows = make_flows(
            [{"src_ip": parse_ip("20.0.0.1"), "sender_asn": 2, "dst_asn": 9,
              "packets": 10000}]
        )
        view = vantage.capture(flows, day=0, rng=rng)
        assert view.flows.total_packets() == pytest.approx(1000, rel=0.2)
        assert view.sampling_factor == 10.0

    def test_validates_sampling(self):
        with pytest.raises(ValueError):
            make_vantage(sampling_factor=0.5)


class TestAsMetaTelescopeVantage:
    def test_pipeline_runs_on_transit_view(
        self, integration_world, integration_observatory
    ):
        """The Section 9 future-work scenario: infer from ISP flows."""
        from repro.core import MetaTelescope
        from repro.core.pipeline import PipelineConfig

        world = integration_world
        tier1 = world.topology.tier1_asns()[0]
        vantage = TransitIspVantage(
            code="TR1",
            asn=tier1,
            topology=world.topology,
            pfx2as=world.datasets.pfx2as,
            sampling_factor=4.0,
        )
        rng = np.random.default_rng(3)
        # Rebuild one ground-truth day (the observatory drops it).
        traffic_rng = world.config.child_rng("traffic-day-0")
        ground = world.annotate_dst_asn(world.mix.generate_day(0, traffic_rng))
        view = vantage.capture(ground, day=0, rng=rng)
        telescope = MetaTelescope(
            collector=world.collector,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        result = telescope.infer([view], use_spoofing_tolerance=True)
        assert result.num_prefixes() > 0
