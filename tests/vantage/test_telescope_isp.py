"""Tests for telescope and ISP vantage points."""

import numpy as np
import pytest

from repro.traffic.packets import PROTO_TCP, PROTO_UDP
from repro.vantage.isp import IspVantage
from repro.vantage.telescope import Telescope

from _factories import ip, make_flows


class TestTelescope:
    def test_capture_restricts_to_blocks(self):
        telescope = Telescope(code="T", region="NA", blocks=np.array([5, 6]))
        flows = make_flows([{"dst_ip": ip(5)}, {"dst_ip": ip(9)}])
        view = telescope.capture(flows, day=0)
        assert view.flows.dst_blocks().tolist() == [5]
        assert view.sampling_factor == 1.0

    def test_blocked_ports_filtered(self):
        telescope = Telescope(
            code="T", region="CE", blocks=np.array([5]),
            blocked_ports=frozenset({23, 445}),
        )
        flows = make_flows(
            [{"dst_ip": ip(5), "dport": 23}, {"dst_ip": ip(5), "dport": 80}]
        )
        view = telescope.capture(flows, day=0)
        assert view.flows.dport.tolist() == [80]

    def test_lent_blocks_not_dark(self):
        telescope = Telescope(
            code="T", region="CE", blocks=np.array([5, 6, 7]),
            lent_blocks_by_day={0: np.array([6])},
        )
        assert telescope.dark_blocks_on(0).tolist() == [5, 7]
        assert telescope.dark_blocks_on(1).tolist() == [5, 6, 7]

    def test_needs_blocks(self):
        with pytest.raises(ValueError):
            Telescope(code="T", region="NA", blocks=np.array([]))

    def test_blocks_deduplicated(self):
        telescope = Telescope(code="T", region="NA", blocks=np.array([5, 5, 6]))
        assert telescope.size() == 2

    def test_daily_stats(self):
        telescope = Telescope(code="T", region="NA", blocks=np.array([5]))
        flows = make_flows(
            [
                {"dst_ip": ip(5), "proto": PROTO_TCP, "packets": 9, "bytes": 9 * 40},
                {"dst_ip": ip(5), "proto": PROTO_UDP, "packets": 1, "bytes": 100},
            ]
        )
        stats = telescope.daily_stats(telescope.capture(flows, day=0))
        assert stats.size_blocks == 1
        assert stats.packets_per_block == 10
        assert stats.tcp_share == pytest.approx(0.9)
        assert stats.avg_tcp_packet_size == pytest.approx(40.0)


class TestIspVantage:
    def test_capture_both_directions(self):
        isp = IspVantage(code="ISP", asn=7, blocks=np.array([5]))
        flows = make_flows(
            [
                {"dst_ip": ip(5), "src_ip": ip(9)},                    # inbound
                {"src_ip": ip(5), "dst_ip": ip(9), "sender_asn": 7},   # outbound
                {"src_ip": ip(8), "dst_ip": ip(9)},                    # unrelated
            ]
        )
        view = isp.capture(flows, day=0)
        assert len(view.flows) == 2

    def test_inbound_outbound_split(self):
        isp = IspVantage(code="ISP", asn=7, blocks=np.array([5]))
        flows = make_flows(
            [
                {"dst_ip": ip(5), "src_ip": ip(9)},
                {"src_ip": ip(5, 3), "dst_ip": ip(9), "sender_asn": 7},
            ]
        )
        view = isp.capture(flows, day=0)
        assert len(isp.inbound(view)) == 1
        assert len(isp.outbound(view)) == 1

    def test_spoofed_claims_dropped_at_border(self):
        # Packets merely *claiming* ISP sources never cross the border
        # (spoofed elsewhere), and inbound packets with internal
        # sources are dropped by uRPF.
        isp = IspVantage(code="ISP", asn=7, blocks=np.array([5]))
        flows = make_flows(
            [
                # spoofed toward a third party: not on the ISP's path
                {"src_ip": ip(5, 9), "dst_ip": ip(99), "sender_asn": 3,
                 "spoofed": True},
                # spoofed toward the ISP itself: dropped by uRPF
                {"src_ip": ip(5, 9), "dst_ip": ip(5, 1), "sender_asn": 3,
                 "spoofed": True},
            ]
        )
        view = isp.capture(flows, day=0)
        assert len(view.flows) == 0

    def test_lent_telescope_blocks_not_captured(self):
        from repro.vantage.telescope import Telescope as _T
        telescope = _T(
            code="T", region="CE", blocks=np.array([5, 6]),
            lent_blocks_by_day={0: np.array([6])},
        )
        flows = make_flows([{"dst_ip": ip(5)}, {"dst_ip": ip(6)}])
        view = telescope.capture(flows, day=0)
        assert view.flows.dst_blocks().tolist() == [5]

    def test_needs_blocks(self):
        with pytest.raises(ValueError):
            IspVantage(code="ISP", asn=7, blocks=np.array([]))
