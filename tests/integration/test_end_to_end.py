"""End-to-end integration tests on the small world.

These exercise the same paths as the paper's evaluation: a full
observation campaign, single- and multi-day inference, spoofing
tolerance, telescope coverage, refinement, and the headline analyses.
They assert *shape* properties (orderings, monotone trends), not exact
counts.
"""

import numpy as np
import pytest

from repro.analysis.ports import port_packet_counts, top_ports
from repro.analysis.sampling_study import sampling_sweep
from repro.analysis.variability import daily_series
from repro.core import MetaTelescope
from repro.core.evaluation import confusion_against_truth, telescope_coverage
from repro.core.pipeline import PipelineConfig
from repro.world.ground_truth import BlockState


@pytest.fixture(scope="module")
def telescope(integration_world):
    world = integration_world
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


@pytest.fixture(scope="module")
def day1_result(integration_observatory, telescope):
    views = integration_observatory.all_ixp_views(num_days=1)
    return telescope.infer(views, use_spoofing_tolerance=True)


@pytest.fixture(scope="module")
def week_result(integration_observatory, telescope):
    views = integration_observatory.all_ixp_views(num_days=7)
    return telescope.infer(views, use_spoofing_tolerance=True)


class TestInferenceQuality:
    def test_substantial_dark_space_found(self, day1_result, integration_world):
        truly_dark = len(integration_world.index.truly_dark_blocks())
        assert day1_result.num_prefixes() > truly_dark * 0.15

    def test_low_false_positive_rate(self, day1_result, integration_world):
        confusion = confusion_against_truth(
            day1_result.prefixes, integration_world.index
        )
        assert confusion.false_positive_rate_of_inferred() < 0.08

    def test_week_false_positives_low(self, week_result, integration_world):
        confusion = confusion_against_truth(
            week_result.prefixes, integration_world.index
        )
        assert confusion.false_positive_rate_of_inferred() < 0.08

    def test_funnel_monotone(self, day1_result):
        counts = [c for _, c in day1_result.pipeline.funnel.as_rows()]
        assert counts == sorted(counts, reverse=True)

    def test_gray_dominates_unclean(self, day1_result):
        # Lightly-used space with visible outbound dominates the
        # non-dark classes (the paper's 3.8M graynets).
        assert len(day1_result.pipeline.gray_blocks) > len(
            day1_result.pipeline.unclean_blocks
        )

    def test_classes_disjoint(self, day1_result):
        pipeline = day1_result.pipeline
        dark = set(pipeline.dark_blocks.tolist())
        gray = set(pipeline.gray_blocks.tolist())
        unclean = set(pipeline.unclean_blocks.tolist())
        assert not (dark & gray or dark & unclean or gray & unclean)


class TestTelescopeCoverage:
    def test_tus1_coverage_grows_with_days(
        self, integration_world, day1_result, week_result
    ):
        tus1 = integration_world.telescopes["TUS1"]
        one = telescope_coverage(day1_result.prefixes, tus1, day=0)
        week = telescope_coverage(week_result.prefixes, tus1)
        # At the small scale the week's accumulated spoofed pollution
        # offsets part of the observation gain; substantial coverage
        # must remain on both windows (the paper-scale bench asserts
        # the strict 1d < 7d growth).
        assert week.inferred_inside >= 0.4 * one.inferred_inside
        assert week.coverage() > 0.2
        assert one.coverage() > 0.2

    def test_teu2_blocked_on_day0_by_volume(
        self, integration_world, day1_result
    ):
        teu2 = integration_world.telescopes["TEU2"]
        row = telescope_coverage(day1_result.prefixes, teu2, day=0)
        assert row.inferred_inside == 0
        # and the volume filter is the responsible step
        assert np.isin(
            teu2.blocks, day1_result.pipeline.volume_filtered_blocks
        ).any()

    def test_teu2_recovered_over_week(self, integration_world, week_result):
        teu2 = integration_world.telescopes["TEU2"]
        row = telescope_coverage(week_result.prefixes, teu2)
        assert row.inferred_inside >= 2

    def test_tus1_invisible_at_ce1(
        self, integration_world, integration_observatory, telescope
    ):
        views = integration_observatory.ixp_views("CE1", num_days=1)
        result = telescope.infer(views, use_spoofing_tolerance=True)
        tus1 = integration_world.telescopes["TUS1"]
        assert telescope_coverage(result.prefixes, tus1).inferred_inside == 0


class TestSpoofing:
    def test_spoofing_reduces_weekly_inference(
        self, integration_observatory, telescope
    ):
        views = integration_observatory.all_ixp_views(num_days=7)
        without = telescope.infer(views, use_spoofing_tolerance=False)
        with_tol = telescope.infer(views, use_spoofing_tolerance=True)
        assert with_tol.pipeline.num_dark() > without.pipeline.num_dark()

    def test_cumulative_days_shrink_without_tolerance(
        self, integration_observatory, telescope
    ):
        one = telescope.infer(integration_observatory.all_ixp_views(num_days=1))
        week = telescope.infer(integration_observatory.all_ixp_views(num_days=7))
        assert week.pipeline.num_dark() < one.pipeline.num_dark()

    def test_tolerances_small_integers(
        self, integration_observatory, telescope
    ):
        views = integration_observatory.all_ixp_views(num_days=1)
        result = telescope.infer(views, use_spoofing_tolerance=True)
        values = list(result.pipeline.applied_tolerances.values())
        assert all(0 <= v <= 10 for v in values)
        assert min(values) <= 2


class TestCdnProtection:
    def test_cdn_blocks_never_inferred(self, integration_world, week_result):
        cdn = integration_world.index.blocks_in_state(BlockState.CDN_SINK)
        assert not np.isin(cdn, week_result.prefixes).any()

    def test_cdn_blocks_volume_filtered(self, integration_world, day1_result):
        cdn = integration_world.index.blocks_in_state(BlockState.CDN_SINK)
        filtered = np.isin(cdn, day1_result.pipeline.volume_filtered_blocks)
        assert filtered.mean() > 0.5


class TestAnalyses:
    def test_port23_dominates_captured_traffic(
        self, integration_observatory, telescope, day1_result
    ):
        views = integration_observatory.all_ixp_views(num_days=1)
        captured = telescope.captured_traffic(views, day1_result)
        ranked = top_ports(captured, count=3)
        assert ranked[0] == 23

    def test_telescope_port_rankings_share_core(
        self, integration_observatory
    ):
        day = integration_observatory.day(0)
        tus1 = top_ports(day.telescope_views["TUS1"].flows, count=10)
        teu2 = top_ports(day.telescope_views["TEU2"].flows, count=10)
        assert set(tus1[:6]) & set(teu2[:10])

    def test_teu1_misses_blocked_ports(self, integration_observatory):
        day = integration_observatory.day(0)
        counts = port_packet_counts(day.telescope_views["TEU1"].flows)
        assert counts.share_of(23) == 0.0
        assert counts.share_of(445) == 0.0

    def test_daily_variability_series(
        self, integration_observatory, telescope
    ):
        views_by_day = {
            day: list(integration_observatory.day(day).ixp_views.values())
            for day in range(7)
        }
        series = daily_series("All", views_by_day, telescope)
        assert len(series.counts) == 7
        assert min(series.counts) > 0
        # Quiet weekends push the inferred count up.
        assert series.weekend_uplift() > 1.0

    def test_sampling_sweep_shape(
        self, integration_observatory, telescope, integration_world
    ):
        views = integration_observatory.all_ixp_views(num_days=1)
        points = sampling_sweep(
            views,
            telescope,
            integration_world.index,
            factors=(1, 4, 64, 512),
        )
        # Inference collapses as sub-sampling deepens.
        assert points[-1].inferred < points[0].inferred
        assert points[-1].sampled_packets < points[0].sampled_packets


class TestDeterminism:
    def test_same_seed_same_inference(self, integration_world, telescope):
        from repro.world.observe import Observatory

        views_a = Observatory(integration_world).all_ixp_views(num_days=1)
        views_b = Observatory(integration_world).all_ixp_views(num_days=1)
        result_a = telescope.infer(views_a)
        result_b = telescope.infer(views_b)
        assert np.array_equal(result_a.prefixes, result_b.prefixes)
