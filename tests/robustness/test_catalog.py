"""Tests for the adversarial scenario catalog's structure and seeds."""

import numpy as np
import pytest

from repro.robustness import EvaluationSettings, standard_catalog
from repro.robustness.catalog import (
    build_padded_evasive,
    build_targeted_spoof_flip,
)
from repro.world.config import micro_config
from repro.world.ground_truth import BlockState

EXPECTED_NAMES = [
    "padded-evasive",
    "targeted-spoof-flip",
    "epidemic-outbreak",
    "route-leak",
    "flash-reactivation",
]


@pytest.fixture(scope="module")
def settings():
    return EvaluationSettings(days=3, workers=2)


class TestCatalogStructure:
    def test_catalog_covers_the_required_scenarios(self):
        catalog = standard_catalog(micro_config(7))
        assert [scenario.name for scenario in catalog] == EXPECTED_NAMES

    def test_targeted_scenarios_carry_a_miss_bound(self):
        catalog = {s.name: s for s in standard_catalog(micro_config(7))}
        for name in ("padded-evasive", "targeted-spoof-flip",
                     "flash-reactivation"):
            assert catalog[name].envelope.target_miss_rate is not None
        for name in ("epidemic-outbreak", "route-leak"):
            assert catalog[name].envelope.target_miss_rate is None

    def test_padded_evasive_miss_bound_has_teeth(self):
        """The lower bound is the regression gate: a weakened size
        filter drops the miss rate far below it."""
        catalog = {s.name: s for s in standard_catalog(micro_config(7))}
        bounds = catalog["padded-evasive"].envelope.target_miss_rate
        assert bounds.lo is not None and bounds.lo >= 0.9


class TestGroundTruthSeeds:
    def test_target_pools_are_seed_stable(self, settings):
        """Two generations with the same seed pin identical ground
        truth — targets are a pure function of the world seed."""
        config = micro_config(7)
        first = build_padded_evasive(config, settings)
        second = build_padded_evasive(config, settings)
        assert np.array_equal(first.target_blocks, second.target_blocks)

    def test_different_seed_moves_the_targets(self, settings):
        one = build_padded_evasive(micro_config(7), settings)
        two = build_padded_evasive(micro_config(11), settings)
        assert not np.array_equal(one.target_blocks, two.target_blocks)

    def test_targets_are_dark_and_off_telescope(self, settings):
        built = build_targeted_spoof_flip(micro_config(7), settings)
        index = built.world.index
        dark = index.blocks_in_state(BlockState.DARK)
        telescope_space = index.blocks_in_state(BlockState.TELESCOPE)
        assert np.isin(built.target_blocks, dark).all()
        assert not np.isin(built.target_blocks, telescope_space).any()

    def test_scenario_actors_append_after_the_baseline_mix(self, settings):
        """Scenario worlds extend the actor ensemble at the end, so the
        baseline actors' shared-RNG draws stay bit-identical — the
        invariant differential envelope scoring rests on."""
        from repro.world.builder import build_world

        config = micro_config(7)
        clean = build_world(config)
        built = build_padded_evasive(config, settings)
        base_flows = clean.mix.generate_day(0, config.child_rng("traffic-day-0"))
        scenario_flows = built.world.mix.generate_day(
            0, config.child_rng("traffic-day-0")
        )
        assert len(scenario_flows) > len(base_flows)
        prefix = len(base_flows)
        assert np.array_equal(
            scenario_flows.src_ip[:prefix], base_flows.src_ip
        )
        assert np.array_equal(
            scenario_flows.bytes[:prefix], base_flows.bytes
        )
