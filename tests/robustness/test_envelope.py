"""Tests for envelope bounds, scenario scoring and the regression gate."""

import numpy as np
import pytest

import repro.robustness.envelope as envelope_module
from repro.core.metatelescope import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.robustness import (
    Bounds,
    Envelope,
    EvaluationSettings,
    composition_fault_plan,
    evaluate_scenario,
    standard_catalog,
)
from repro.robustness.envelope import _run_paths, _score
from repro.world.builder import build_world
from repro.world.config import micro_config


class TestBounds:
    def test_two_sided_containment(self):
        bounds = Bounds(-0.1, 0.2)
        assert bounds.contains(0.0)
        assert bounds.contains(-0.1) and bounds.contains(0.2)
        assert not bounds.contains(-0.11)
        assert not bounds.contains(0.21)

    def test_open_sides(self):
        assert Bounds(None, 0.5).contains(-100.0)
        assert Bounds(0.5, None).contains(100.0)
        assert Bounds().contains(42.0)

    def test_describe(self):
        assert Bounds(-0.1, 0.2).describe() == "[-0.100, +0.200]"
        assert "inf" in Bounds().describe()


class TestEnvelope:
    def test_metrics_exclude_absent_miss_bound(self):
        assert "target_miss_rate" not in Envelope().metrics()
        assert "target_miss_rate" in Envelope(
            target_miss_rate=Bounds(0.9, 1.0)
        ).metrics()
        assert set(Envelope().metrics()) == {
            "fpr_delta", "fnr_delta", "coverage_delta"
        }


class TestScoring:
    def test_active_overrides_shrink_the_dark_denominator(self, world):
        """Flash-reactivated blocks leave the FNR denominator: dropping
        them is correct, not a miss."""
        dark = world.index.truly_dark_blocks()
        served = dark[: len(dark) // 2]
        overrides = dark[len(dark) // 2:][:10]
        plain = _score(served, world, "parallel", None, None)
        adjusted = _score(served, world, "parallel", overrides, None)
        assert adjusted.fnr < plain.fnr

    def test_target_miss_rate(self, world):
        dark = world.index.truly_dark_blocks()
        targets = dark[:10]
        all_served = _score(dark, world, "online", None, targets)
        none_served = _score(dark[10:], world, "online", None, targets)
        assert all_served.target_miss_rate == 0.0
        assert none_served.target_miss_rate == 1.0


class TestFaultComposition:
    def test_canonical_plan_is_order_deterministic(self):
        plan = composition_fault_plan(EvaluationSettings(days=3))
        names = [injector.name for injector in plan.ordered_injectors()]
        assert names == sorted(names)
        assert len(names) == 2


@pytest.fixture(scope="module")
def settings():
    return EvaluationSettings(days=3, workers=2)


@pytest.fixture(scope="module")
def baseline(settings):
    config = micro_config(7)
    scores, _ = _run_paths(build_world(config), settings, None, None, None, None)
    return scores


class TestRegressionGate:
    def test_healthy_pipeline_stays_in_envelope(self, settings, baseline):
        catalog = {s.name: s for s in standard_catalog(micro_config(7))}
        verdict = evaluate_scenario(
            catalog["padded-evasive"], baseline, settings
        )
        assert verdict.ok(), [c.describe() for c in verdict.violations()]
        by_path = {score.path: score for score in verdict.observed}
        assert set(by_path) == {"parallel", "online"}
        assert by_path["parallel"].target_miss_rate >= 0.9
        assert by_path["online"].target_miss_rate >= 0.9
        assert verdict.online_health.startswith("[padded-evasive]")

    def test_weakened_size_filter_trips_the_gate(
        self, settings, baseline, monkeypatch
    ):
        """The acceptance tooth: weaken the packet-size filter (both
        the 44-byte block average and the 48-byte per-IP slack) and the
        padded blocks stay served — the miss-rate lower bound fails on
        both engine paths."""

        def weakened(world):
            return MetaTelescope(
                collector=world.collector,
                liveness=world.datasets.liveness,
                unrouted_baseline=world.unrouted_baseline_blocks,
                config=PipelineConfig(
                    avg_size_threshold=68.0,
                    ip_size_threshold=72.0,
                    volume_threshold_pkts_day=(
                        world.config.volume_threshold_pkts_day
                    ),
                ),
            )

        monkeypatch.setattr(envelope_module, "_make_telescope", weakened)
        catalog = {s.name: s for s in standard_catalog(micro_config(7))}
        verdict = evaluate_scenario(
            catalog["padded-evasive"], baseline, settings
        )
        assert not verdict.ok()
        violated = {
            (check.path, check.metric) for check in verdict.violations()
        }
        assert ("parallel", "target_miss_rate") in violated
        assert ("online", "target_miss_rate") in violated

    def test_verdict_json_is_ci_consumable(self, settings, baseline):
        import json

        catalog = {s.name: s for s in standard_catalog(micro_config(7))}
        verdict = evaluate_scenario(
            catalog["padded-evasive"], baseline, settings
        )
        payload = json.loads(json.dumps(verdict.to_json()))
        assert payload["scenario"] == "padded-evasive"
        assert payload["ok"] is True
        assert {c["metric"] for c in payload["checks"]} == {
            "fpr_delta", "fnr_delta", "coverage_delta", "target_miss_rate"
        }


class TestServicePath:
    def test_service_path_scores_identically_to_online(self):
        """Publishing through the snapshot/service layer must not move
        a single metric: the served answers ARE the engine's answers."""
        service_settings = EvaluationSettings(
            days=3, workers=2, service_path=True
        )
        config = micro_config(7)
        scores, _ = _run_paths(
            build_world(config), service_settings, None, None, None, None
        )
        by_path = {score.path: score for score in scores}
        assert set(by_path) == {"parallel", "online", "service"}
        online, service = by_path["online"], by_path["service"]
        assert service.fpr == online.fpr
        assert service.fnr == online.fnr
        assert service.coverage == online.coverage
