"""The ``scenarios`` CLI: catalog listing and the full regression gate."""

import json

from repro.cli import main


class TestScenariosList:
    def test_lists_the_catalog(self, capsys):
        assert main(["scenarios", "list", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        for name in ("padded-evasive", "targeted-spoof-flip",
                     "epidemic-outbreak", "route-leak",
                     "flash-reactivation"):
            assert name in out


class TestScenariosRun:
    def test_full_catalog_gate_passes_and_traces(self, capsys, tmp_path):
        """The acceptance run: the whole catalog through both engine
        paths (workers >= 2), every metric within its envelope, one
        traced verdict per scenario."""
        trace = tmp_path / "scenarios.jsonl"
        code = main([
            "scenarios", "run", "--scale", "micro",
            "--workers", "2", "--trace", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "scenario gate: PASS" in out
        assert "VIOLATION" not in out

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        scenario_events = [e for e in events if e.get("kind") == "scenario"]
        names = [e["name"] for e in scenario_events]
        assert names == [
            "baseline", "padded-evasive", "targeted-spoof-flip",
            "epidemic-outbreak", "route-leak", "flash-reactivation",
        ]
        for event in scenario_events[1:]:
            observed = event["meta"]["observed"]
            assert {score["path"] for score in observed} == {
                "parallel", "online"
            }
            assert event["meta"]["ok"] is True
