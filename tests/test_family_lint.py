"""Lint: block arithmetic lives in ``repro.net``, nowhere else.

The address-family refactor replaced every scattered ``ip >> 8`` /
``ip // 256`` with :meth:`AddressFamily.block_of` and friends.  This
test keeps it that way: outside ``src/repro/net`` no source line may
shift or divide addresses into blocks with a raw literal.

The one legitimate remaining shape is *block -> /16 anchor* grouping
(``blocks >> 8``, ``dark >> 8``): those operate on already-derived
block ids, not addresses, and the /16 anchor is a world/robustness
modelling choice rather than family arithmetic.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

FORBIDDEN = re.compile(r">>\s*(?:np\.uint(?:32|64)\()?\s*8\b|//\s*256\b")
#: Block -> /16 anchor grouping of already-derived block ids.
BLOCK_ANCHOR = re.compile(r"\b(?:blocks?|dark)\b")
ADDRESS_LIKE = re.compile(r"\bip", re.IGNORECASE)


def offending_lines():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if SRC / "net" in path.parents:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            if not FORBIDDEN.search(stripped):
                continue
            if BLOCK_ANCHOR.search(stripped) and not ADDRESS_LIKE.search(
                stripped
            ):
                continue  # blocks >> 8: /16 anchor of block ids
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {stripped}")
    return offenders


def test_no_raw_block_shift_literals_outside_repro_net():
    offenders = offending_lines()
    assert not offenders, (
        "address -> block arithmetic must go through "
        "repro.net.family (AddressFamily.block_of / block_of_key):\n"
        + "\n".join(offenders)
    )


def test_lint_actually_catches_an_offender(tmp_path):
    # Guard the guard: the forbidden pattern must match the historical
    # idioms this repo used to contain.
    for bad in (
        "mask = np.isin(agg.dst_ips >> 8, blocks)",
        "block = ip // 256",
        "keys >> np.uint32(8)",
    ):
        assert FORBIDDEN.search(bad), bad
    assert BLOCK_ANCHOR.search("anchors = np.unique(blocks >> 8)")
