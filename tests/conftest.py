"""Shared fixtures: cached micro/small worlds and observatories.

World construction is deterministic and cached per process (see
``repro.world.scenarios``), so the suite builds each scale once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.scenarios import (
    micro_observatory,
    micro_world,
    small_observatory,
    small_world,
)


@pytest.fixture(scope="session")
def world():
    """Micro-scale world for unit tests."""
    return micro_world()


@pytest.fixture(scope="session")
def observatory():
    """Observation cache over the micro world."""
    return micro_observatory()


@pytest.fixture(scope="session")
def day0(observatory):
    """The first observed day of the micro world."""
    return observatory.day(0)


@pytest.fixture(scope="session")
def integration_world():
    """Small-scale world for integration tests."""
    return small_world()


@pytest.fixture(scope="session")
def integration_observatory():
    """Observation cache over the small world."""
    return small_observatory()


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
