"""Doctest execution and cross-seed robustness of the world generator."""

import doctest

import numpy as np
import pytest

import repro.net.ipv4
import repro.net.hilbert
from repro.core import MetaTelescope
from repro.core.evaluation import confusion_against_truth
from repro.core.pipeline import PipelineConfig
from repro.world.builder import build_world
from repro.world.config import micro_config
from repro.world.observe import Observatory


class TestDoctests:
    @pytest.mark.parametrize(
        "module", [repro.net.ipv4], ids=lambda m: m.__name__
    )
    def test_module_doctests(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


@pytest.mark.parametrize("seed", [7, 11, 23, 101])
class TestSeedRobustness:
    """Shape invariants must hold for any seed, not just the default."""

    @pytest.fixture()
    def inference(self, seed):
        world = build_world(micro_config(seed=seed))
        observatory = Observatory(world)
        telescope = MetaTelescope(
            collector=world.collector,
            liveness=world.datasets.liveness,
            unrouted_baseline=world.unrouted_baseline_blocks,
            config=PipelineConfig(
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
            ),
        )
        views = observatory.all_ixp_views(num_days=1)
        return world, telescope.infer(views, use_spoofing_tolerance=True)

    def test_substantial_inference(self, inference, seed):
        world, result = inference
        truly_dark = len(world.index.truly_dark_blocks())
        assert result.num_prefixes() > 0.2 * truly_dark

    def test_low_false_positives(self, inference, seed):
        world, result = inference
        confusion = confusion_against_truth(result.prefixes, world.index)
        assert confusion.false_positive_rate_of_inferred() < 0.1

    def test_funnel_monotone(self, inference, seed):
        _, result = inference
        counts = [count for _, count in result.pipeline.funnel.as_rows()]
        assert counts == sorted(counts, reverse=True)

    def test_classes_partition(self, inference, seed):
        _, result = inference
        pipeline = result.pipeline
        total = (
            len(pipeline.dark_blocks)
            + len(pipeline.unclean_blocks)
            + len(pipeline.gray_blocks)
        )
        assert total == pipeline.funnel.after_volume

    def test_telescope_blocks_never_sourced(self, inference, seed):
        world, result = inference
        # Telescope space must never classify gray from genuine traffic
        # (only spoofed claims could, and the tolerance forgives most).
        tus1 = world.telescopes["TUS1"].blocks
        gray = np.isin(tus1, result.pipeline.gray_blocks).mean()
        assert gray < 0.5
