"""Address-space substrate: IPv4 arithmetic, special-purpose registries,
Hilbert-curve indexing of the /24 space, and a longest-prefix-match trie.

The rest of the library represents a /24 subnet as its *block id*: the
24 most significant bits of its network address, i.e. ``int(ip) >> 8``.
Block ids are plain ints (or numpy integer arrays), which keeps the
inference pipeline vectorisable.
"""

from repro.net.ipv4 import (
    MAX_IPV4,
    NUM_BLOCKS,
    Prefix,
    block_of_ip,
    block_to_network_ip,
    block_to_prefix,
    blocks_of_prefix,
    format_ip,
    ip_in_prefix,
    parse_ip,
)
from repro.net.ipv6 import (
    MAX_IPV6,
    Ipv6Prefix,
    format_ip6,
    parse_ip6,
    site_of_ip6,
)
from repro.net.family import (
    IPV4,
    IPV6,
    AddressFamily,
    family,
    family_names,
    family_of_prefix,
)
from repro.net.special import (
    SPECIAL_PURPOSE_REGISTRY,
    SPECIAL_PURPOSE_REGISTRY_V6,
    SpecialPurposeRegistry,
)
from repro.net.hilbert import HilbertCurve
from repro.net.trie import PrefixTrie

__all__ = [
    "MAX_IPV4",
    "MAX_IPV6",
    "NUM_BLOCKS",
    "Prefix",
    "Ipv6Prefix",
    "AddressFamily",
    "IPV4",
    "IPV6",
    "family",
    "family_names",
    "family_of_prefix",
    "block_of_ip",
    "block_to_network_ip",
    "block_to_prefix",
    "blocks_of_prefix",
    "format_ip",
    "format_ip6",
    "ip_in_prefix",
    "parse_ip",
    "parse_ip6",
    "site_of_ip6",
    "SPECIAL_PURPOSE_REGISTRY",
    "SPECIAL_PURPOSE_REGISTRY_V6",
    "SpecialPurposeRegistry",
    "HilbertCurve",
    "PrefixTrie",
]
