"""IPv6 addresses and prefixes (groundwork for the paper's future work).

Section 9 defers IPv6 meta-telescopes to future work: the space is too
vast to enumerate, assignment practices vary, and hitlists are
incomplete.  This module provides the address plumbing that work needs
— parsing/formatting per RFC 4291 with RFC 5952 canonical output, and
prefix arithmetic — plus the *site block* notion (/48) that plays the
role the /24 plays in IPv4: ``site_of_ip6(ip) == int(ip) >> 80``.

The candidate-enumeration prototype lives in
:mod:`repro.core.ipv6_candidates`.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_IPV6 = 2**128 - 1
#: Bits below a /48 site prefix.
SITE_SHIFT = 128 - 48


class Ipv6Error(ValueError):
    """Raised for malformed IPv6 addresses or prefixes."""


def parse_ip6(text: str) -> int:
    """Parse an IPv6 address (RFC 4291 text forms) to a 128-bit int.

    Supports full form, ``::`` compression and the embedded-IPv4 tail
    (``::ffff:192.0.2.1``).
    """
    text = text.strip()
    if not text:
        raise Ipv6Error("empty address")
    if text.count("::") > 1:
        raise Ipv6Error(f"multiple '::' in {text!r}")

    # Embedded IPv4 tail.
    v4_value = None
    if "." in text:
        head, _, tail = text.rpartition(":")
        if not head:
            raise Ipv6Error(f"malformed embedded IPv4 in {text!r}")
        v4_value = _parse_v4_tail(tail)
        # Replace the IPv4 part with two hextets' worth of groups.
        text = head + ":" + f"{v4_value >> 16:x}:{v4_value & 0xFFFF:x}"
        if head.endswith(":") and not head.endswith("::"):
            raise Ipv6Error(f"malformed embedded IPv4 in {text!r}")

    if "::" in text:
        left_text, right_text = text.split("::", 1)
        left = _parse_groups(left_text)
        right = _parse_groups(right_text)
        missing = 8 - len(left) - len(right)
        if missing < 1:
            raise Ipv6Error(f"'::' compresses nothing in {text!r}")
        groups = left + [0] * missing + right
    else:
        groups = _parse_groups(text)
        if len(groups) != 8:
            raise Ipv6Error(f"need 8 groups in {text!r}")
    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def _parse_groups(text: str) -> list[int]:
    if not text:
        return []
    groups = []
    for part in text.split(":"):
        if not part or len(part) > 4:
            raise Ipv6Error(f"bad group {part!r}")
        try:
            groups.append(int(part, 16))
        except ValueError as error:
            raise Ipv6Error(f"bad group {part!r}") from error
    return groups


def _parse_v4_tail(tail: str) -> int:
    octets = tail.split(".")
    if len(octets) != 4:
        raise Ipv6Error(f"bad embedded IPv4 {tail!r}")
    value = 0
    for octet_text in octets:
        try:
            octet = int(octet_text)
        except ValueError as error:
            raise Ipv6Error(f"bad embedded IPv4 {tail!r}") from error
        if not 0 <= octet <= 255:
            raise Ipv6Error(f"bad embedded IPv4 {tail!r}")
        value = (value << 8) | octet
    return value


def format_ip6(value: int) -> str:
    """RFC 5952 canonical text: lowercase, longest zero run as ``::``."""
    if not 0 <= value <= MAX_IPV6:
        raise Ipv6Error(f"not a 128-bit address: {value!r}")
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]

    # Longest run of zero groups (length >= 2), leftmost on ties.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups + [-1]):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 0
            run_len += 1
        else:
            if run_len > best_len:
                best_start, best_len = run_start, run_len
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    left = ":".join(f"{g:x}" for g in groups[:best_start])
    right = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{left}::{right}"


def site_of_ip6(value: int) -> int:
    """The /48 site-block id containing an address."""
    return value >> SITE_SHIFT


@dataclass(frozen=True, slots=True)
class Ipv6Prefix:
    """An IPv6 prefix with zeroed host bits."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise Ipv6Error(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= MAX_IPV6:
            raise Ipv6Error("network out of range")
        if self.network & self.hostmask():
            raise Ipv6Error("host bits set")

    @classmethod
    def parse(cls, text: str) -> "Ipv6Prefix":
        """Parse ``addr/len``."""
        address_text, _, length_text = text.partition("/")
        if not length_text:
            raise Ipv6Error(f"missing prefix length in {text!r}")
        return cls(parse_ip6(address_text), int(length_text))

    @classmethod
    def from_ip(cls, ip: int, length: int) -> "Ipv6Prefix":
        """Build the length-``length`` prefix covering ``ip``."""
        if not 0 <= length <= 128:
            raise Ipv6Error(f"prefix length out of range: {length}")
        mask = 0 if length == 0 else (MAX_IPV6 << (128 - length)) & MAX_IPV6
        return cls(ip & mask, length)

    def netmask(self) -> int:
        """The network mask."""
        if self.length == 0:
            return 0
        return (MAX_IPV6 << (128 - self.length)) & MAX_IPV6

    def hostmask(self) -> int:
        """The host mask."""
        return MAX_IPV6 ^ self.netmask()

    def contains_ip(self, value: int) -> bool:
        """True when the address falls inside the prefix."""
        return (value & self.netmask()) == self.network

    def contains_site(self, site: int) -> bool:
        """True when /48 ``site`` lies entirely inside the prefix."""
        if self.length > 48:
            return False
        return (site >> (48 - self.length)) == (self.network >> (128 - self.length))

    def num_sites(self) -> int:
        """Number of /48 site blocks covered (0 for longer prefixes)."""
        if self.length > 48:
            return 0
        return 1 << (48 - self.length)

    def first_site(self) -> int:
        """The first /48 site id inside the prefix."""
        return self.network >> SITE_SHIFT

    def last_ip(self) -> int:
        """The highest address inside the prefix."""
        return self.network | self.hostmask()

    # Block-space aliases so v4 Prefix and Ipv6Prefix share one duck
    # interface (blocks are /48 sites here, /24s for IPv4).

    def contains_block(self, block: int) -> bool:
        """Alias of :meth:`contains_site` for the generic prefix duck."""
        return self.contains_site(block)

    def num_blocks(self) -> int:
        """Alias of :meth:`num_sites` for the generic prefix duck."""
        return self.num_sites()

    def first_block(self) -> int:
        """Alias of :meth:`first_site` for the generic prefix duck."""
        return self.first_site()

    def blocks(self) -> range:
        """Range of /48 site ids covered (empty for longer prefixes)."""
        if self.length > 48:
            return range(0)
        start = self.first_site()
        return range(start, start + self.num_sites())

    def __str__(self) -> str:
        return f"{format_ip6(self.network)}/{self.length}"
