"""IPv4 address and prefix arithmetic.

Addresses are unsigned 32-bit integers; /24 subnets are *block ids*
(``ip >> 8``).  We deliberately avoid :mod:`ipaddress` in hot paths: the
inference pipeline handles millions of blocks and needs integer/numpy
arithmetic, not per-object allocation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = 2**32 - 1
#: Number of /24 blocks in the full IPv4 space.
NUM_BLOCKS = 2**24

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> parse_ip("192.0.2.1")
    3221225985
    """
    match = _DOTTED_QUAD.match(text.strip())
    if match is None:
        raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise AddressError(f"octet out of range in {text!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def format_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_ip(3221225985)
    '192.0.2.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"not a 32-bit address: {value!r}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def block_of_ip(ip: int) -> int:
    """Return the /24 block id containing ``ip``."""
    return ip >> 8


def block_to_network_ip(block: int) -> int:
    """Return the network address (first IP) of /24 block ``block``."""
    return block << 8


@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 prefix, canonicalised so host bits are zero.

    ``Prefix(0xC0000200, 24)`` is ``192.0.2.0/24``.  Instances are
    hashable and ordered by (network, length), so more-specifics of the
    same network sort after their covering prefix.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & (self.hostmask()):
            raise AddressError(
                f"host bits set in {format_ip(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"``; host bits must be zero.

        >>> Prefix.parse("10.0.0.0/8")
        Prefix.parse('10.0.0.0/8')
        """
        network_text, _, length_text = text.partition("/")
        if not length_text:
            raise AddressError(f"missing prefix length in {text!r}")
        return cls(parse_ip(network_text), int(length_text))

    @classmethod
    def from_ip(cls, ip: int, length: int) -> "Prefix":
        """Build the length-``length`` prefix covering ``ip``."""
        mask = _netmask(length)
        return cls(ip & mask, length)

    def netmask(self) -> int:
        """The network mask as a 32-bit integer."""
        return _netmask(self.length)

    def hostmask(self) -> int:
        """The host mask (inverse of the netmask)."""
        return MAX_IPV4 ^ _netmask(self.length)

    def first_ip(self) -> int:
        """The lowest address inside the prefix."""
        return self.network

    def last_ip(self) -> int:
        """The highest address inside the prefix."""
        return self.network | self.hostmask()

    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def num_blocks(self) -> int:
        """Number of whole /24 blocks covered (0 for prefixes longer than /24)."""
        if self.length > 24:
            return 0
        return 1 << (24 - self.length)

    def first_block(self) -> int:
        """The first /24 block id inside the prefix."""
        return self.network >> 8

    def contains_ip(self, ip: int) -> bool:
        """True if ``ip`` falls inside this prefix."""
        return (ip & self.netmask()) == self.network

    def contains_block(self, block: int) -> bool:
        """True if /24 block ``block`` is entirely inside this prefix."""
        if self.length > 24:
            return False
        return (block >> (24 - self.length)) == (self.network >> (32 - self.length))

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or a more-specific of this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    def blocks(self) -> range:
        """Range of /24 block ids covered (empty for prefixes longer than /24)."""
        if self.length > 24:
            return range(0)
        start = self.first_block()
        return range(start, start + self.num_blocks())

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield all sub-prefixes of the given (longer) length, in order."""
        if length < self.length:
            raise AddressError(
                f"cannot split /{self.length} into shorter /{length}"
            )
        step = 1 << (32 - length)
        for network in range(self.network, self.last_ip() + 1, step):
            yield Prefix(network, length)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix.parse({str(self)!r})"

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)


def _netmask(length: int) -> int:
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


def block_to_prefix(block: int) -> Prefix:
    """Return the /24 :class:`Prefix` for a block id."""
    return Prefix(block << 8, 24)


def blocks_of_prefix(prefix: Prefix) -> range:
    """Convenience alias for :meth:`Prefix.blocks`."""
    return prefix.blocks()


def ip_in_prefix(ip: int, prefix: Prefix) -> bool:
    """Convenience alias for :meth:`Prefix.contains_ip`."""
    return prefix.contains_ip(ip)
