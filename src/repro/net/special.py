"""Special-purpose IPv4 address registry (RFC 6890 and successors).

Pipeline step 4 ("Private / Multicast / Reserved") must drop any /24
block that is not usable on the public Internet.  This module carries
the full special-purpose registry and answers block-level membership
queries, including vectorised numpy queries over block-id arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.net.ipv4 import Prefix


@dataclass(frozen=True, slots=True)
class SpecialPurposeEntry:
    """One row of the special-purpose registry."""

    prefix: Prefix
    name: str
    #: True if the block may appear as a source on the public Internet
    #: (e.g. shared address space can leak); irrelevant to filtering but
    #: kept for fidelity with RFC 6890's attribute table.
    globally_reachable: bool


#: RFC 6890 special-purpose IPv4 registry (plus multicast and class E).
_REGISTRY_ROWS: Sequence[tuple[str, str, bool]] = (
    ("0.0.0.0/8", "this host on this network", False),
    ("10.0.0.0/8", "private-use", False),
    ("100.64.0.0/10", "shared address space (CGN)", False),
    ("127.0.0.0/8", "loopback", False),
    ("169.254.0.0/16", "link local", False),
    ("172.16.0.0/12", "private-use", False),
    ("192.0.0.0/24", "IETF protocol assignments", False),
    ("192.0.2.0/24", "documentation (TEST-NET-1)", False),
    ("192.88.99.0/24", "6to4 relay anycast (deprecated)", True),
    ("192.168.0.0/16", "private-use", False),
    ("198.18.0.0/15", "benchmarking", False),
    ("198.51.100.0/24", "documentation (TEST-NET-2)", False),
    ("203.0.113.0/24", "documentation (TEST-NET-3)", False),
    ("224.0.0.0/4", "multicast", False),
    ("240.0.0.0/4", "reserved (class E)", False),
    ("255.255.255.255/32", "limited broadcast", False),
)


class SpecialPurposeRegistry:
    """Answers "is this address/block special-purpose?" queries.

    The default instance, :data:`SPECIAL_PURPOSE_REGISTRY`, contains the
    RFC 6890 table.  A custom registry can be built for tests.
    """

    def __init__(self, entries: Iterable[SpecialPurposeEntry]) -> None:
        self.entries: tuple[SpecialPurposeEntry, ...] = tuple(entries)
        # Precompute /24-block interval list [(first_block, last_block)].
        intervals = []
        for entry in self.entries:
            prefix = entry.prefix
            if prefix.length > 24:
                # A /32 or similar taints its whole containing /24: the
                # pipeline works at /24 granularity and must not select a
                # block that overlaps reserved space at all.
                first = prefix.network >> 8
                last = prefix.last_ip() >> 8
            else:
                first = prefix.first_block()
                last = first + prefix.num_blocks() - 1
            intervals.append((first, last))
        intervals.sort()
        self._starts = np.array([lo for lo, _ in intervals], dtype=np.int64)
        self._ends = np.array([hi for _, hi in intervals], dtype=np.int64)

    @classmethod
    def default(cls) -> "SpecialPurposeRegistry":
        """The RFC 6890 registry."""
        return cls(
            SpecialPurposeEntry(Prefix.parse(text), name, reachable)
            for text, name, reachable in _REGISTRY_ROWS
        )

    def is_special_block(self, block: int) -> bool:
        """True if /24 ``block`` overlaps any special-purpose prefix."""
        idx = int(np.searchsorted(self._starts, block, side="right")) - 1
        if idx < 0:
            return False
        return block <= int(self._ends[idx])

    def is_special_ip(self, ip: int) -> bool:
        """True if address ``ip`` lies in special-purpose space."""
        return self.is_special_block(ip >> 8)

    def special_mask(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_special_block` over an int array.

        Returns a boolean array, True where the block is special-purpose.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        idx = np.searchsorted(self._starts, blocks, side="right") - 1
        valid = idx >= 0
        result = np.zeros(blocks.shape, dtype=bool)
        if valid.any():
            clamped = np.where(valid, idx, 0)
            result = valid & (blocks <= self._ends[clamped])
        return result

    def describe(self, block: int) -> str | None:
        """Name of the registry entry covering ``block``, or None."""
        for entry in self.entries:
            prefix = entry.prefix
            lo = prefix.network >> 8
            hi = prefix.last_ip() >> 8
            if lo <= block <= hi:
                return entry.name
        return None


#: Module-level default registry (RFC 6890).
SPECIAL_PURPOSE_REGISTRY = SpecialPurposeRegistry.default()
