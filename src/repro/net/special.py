"""Special-purpose address registries (RFC 6890 / IANA, both families).

Pipeline step 4 ("Private / Multicast / Reserved") must drop any block
that is not usable on the public Internet.  This module carries the
full special-purpose registries — the RFC 6890 IPv4 table and the IANA
IPv6 special-purpose table — and answers block-level membership queries,
including vectorised numpy queries over block-id arrays.  Blocks are
/24s for IPv4 and /48 sites for IPv6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.net.family import IPV4, IPV6, AddressFamily
from repro.net.ipv4 import Prefix
from repro.net.ipv6 import Ipv6Prefix


@dataclass(frozen=True, slots=True)
class SpecialPurposeEntry:
    """One row of a special-purpose registry."""

    prefix: Prefix | Ipv6Prefix
    name: str
    #: True if the block may appear as a source on the public Internet
    #: (e.g. shared address space can leak); irrelevant to filtering but
    #: kept for fidelity with RFC 6890's attribute table.
    globally_reachable: bool


#: RFC 6890 special-purpose IPv4 registry (plus multicast and class E).
_REGISTRY_ROWS: Sequence[tuple[str, str, bool]] = (
    ("0.0.0.0/8", "this host on this network", False),
    ("10.0.0.0/8", "private-use", False),
    ("100.64.0.0/10", "shared address space (CGN)", False),
    ("127.0.0.0/8", "loopback", False),
    ("169.254.0.0/16", "link local", False),
    ("172.16.0.0/12", "private-use", False),
    ("192.0.0.0/24", "IETF protocol assignments", False),
    ("192.0.2.0/24", "documentation (TEST-NET-1)", False),
    ("192.88.99.0/24", "6to4 relay anycast (deprecated)", True),
    ("192.168.0.0/16", "private-use", False),
    ("198.18.0.0/15", "benchmarking", False),
    ("198.51.100.0/24", "documentation (TEST-NET-2)", False),
    ("203.0.113.0/24", "documentation (TEST-NET-3)", False),
    ("224.0.0.0/4", "multicast", False),
    ("240.0.0.0/4", "reserved (class E)", False),
    ("255.255.255.255/32", "limited broadcast", False),
)

#: IANA IPv6 special-purpose registry (condensed to the filtering-relevant
#: rows; everything outside 2000::/3 is non-global anyway, but the
#: pipeline checks membership explicitly rather than assuming).
_REGISTRY_ROWS_V6: Sequence[tuple[str, str, bool]] = (
    ("::/128", "unspecified", False),
    ("::1/128", "loopback", False),
    ("::ffff:0:0/96", "IPv4-mapped", False),
    ("64:ff9b::/96", "NAT64 well-known prefix", True),
    ("100::/64", "discard-only", False),
    ("2001::/23", "IETF protocol assignments", False),
    ("2001:db8::/32", "documentation", False),
    ("2002::/16", "6to4", True),
    ("3fff::/20", "documentation (extended)", False),
    ("fc00::/7", "unique-local", False),
    ("fe80::/10", "link local", False),
    ("ff00::/8", "multicast", False),
)


class SpecialPurposeRegistry:
    """Answers "is this address/block special-purpose?" queries.

    The default instances, :data:`SPECIAL_PURPOSE_REGISTRY` (RFC 6890
    IPv4) and :data:`SPECIAL_PURPOSE_REGISTRY_V6` (IANA IPv6), cover the
    public tables.  A custom registry can be built for tests.
    """

    def __init__(
        self,
        entries: Iterable[SpecialPurposeEntry],
        family: AddressFamily = IPV4,
    ) -> None:
        self.family = family
        self.entries: tuple[SpecialPurposeEntry, ...] = tuple(entries)
        block_length = family.block_prefix_length
        shift = family.ip_block_shift
        # Precompute block interval list [(first_block, last_block)].
        intervals = []
        for entry in self.entries:
            prefix = entry.prefix
            if prefix.length > block_length:
                # A host route or similar taints its whole containing
                # block: the pipeline works at block granularity and must
                # not select a block that overlaps reserved space at all.
                first = prefix.network >> shift
                last = prefix.last_ip() >> shift
            else:
                first = prefix.first_block()
                last = first + prefix.num_blocks() - 1
            intervals.append((first, last))
        intervals.sort()
        self._starts = np.array([lo for lo, _ in intervals], dtype=np.int64)
        self._ends = np.array([hi for _, hi in intervals], dtype=np.int64)
        if len(self._ends):
            # Cumulative-max so nested entries don't shadow a wider one.
            self._ends = np.maximum.accumulate(self._ends)

    @classmethod
    def default(cls) -> "SpecialPurposeRegistry":
        """The RFC 6890 IPv4 registry."""
        return cls(
            (
                SpecialPurposeEntry(Prefix.parse(text), name, reachable)
                for text, name, reachable in _REGISTRY_ROWS
            ),
            family=IPV4,
        )

    @classmethod
    def default_v6(cls) -> "SpecialPurposeRegistry":
        """The IANA IPv6 special-purpose registry."""
        return cls(
            (
                SpecialPurposeEntry(Ipv6Prefix.parse(text), name, reachable)
                for text, name, reachable in _REGISTRY_ROWS_V6
            ),
            family=IPV6,
        )

    def is_special_block(self, block: int) -> bool:
        """True if ``block`` overlaps any special-purpose prefix."""
        idx = int(np.searchsorted(self._starts, block, side="right")) - 1
        if idx < 0:
            return False
        return block <= int(self._ends[idx])

    def is_special_ip(self, ip: int) -> bool:
        """True if address ``ip`` lies in special-purpose space."""
        return self.is_special_block(self.family.block_of_ip(ip))

    def special_mask(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_special_block` over an int array.

        Returns a boolean array, True where the block is special-purpose.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        idx = np.searchsorted(self._starts, blocks, side="right") - 1
        valid = idx >= 0
        result = np.zeros(blocks.shape, dtype=bool)
        if valid.any():
            clamped = np.where(valid, idx, 0)
            result = valid & (blocks <= self._ends[clamped])
        return result

    def describe(self, block: int) -> str | None:
        """Name of the registry entry covering ``block``, or None."""
        shift = self.family.ip_block_shift
        for entry in self.entries:
            prefix = entry.prefix
            lo = prefix.network >> shift
            hi = prefix.last_ip() >> shift
            if lo <= block <= hi:
                return entry.name
        return None


#: Module-level default registries.
SPECIAL_PURPOSE_REGISTRY = SpecialPurposeRegistry.default()
SPECIAL_PURPOSE_REGISTRY_V6 = SpecialPurposeRegistry.default_v6()
