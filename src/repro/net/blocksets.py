"""Block sets and CIDR aggregation.

Operators do not ship 300 k-line /24 lists to routers: contiguous runs
of meta-telescope /24s (whole dark /9s, telescope ranges) aggregate
into a handful of covering prefixes.  This module provides the minimal
CIDR cover of a /24 block set and the set algebra operators a serving
pipeline needs.
"""

from __future__ import annotations

import numpy as np

from repro.net.family import IPV4, AddressFamily
from repro.net.ipv4 import Prefix


def aggregate_blocks(
    blocks: np.ndarray, family: AddressFamily = IPV4
) -> list[Prefix]:
    """Minimal CIDR cover of a set of block ids.

    Returns the unique list of prefixes (each at the family's block
    length or shorter) that covers exactly the given blocks — the
    standard greedy alignment walk: at each position emit the largest
    aligned prefix that fits inside the remaining run.
    """
    unique = np.unique(np.asarray(blocks, dtype=np.int64))
    if len(unique) == 0:
        return []
    block_length = family.block_prefix_length
    shift = family.ip_block_shift
    prefix_type = family.prefix_type
    prefixes: list = []
    # Split into maximal contiguous runs.
    boundaries = np.flatnonzero(np.diff(unique) != 1)
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries, [len(unique) - 1]])
    for start_index, end_index in zip(starts, ends):
        position = int(unique[start_index])
        remaining = int(unique[end_index]) - position + 1
        while remaining > 0:
            # Largest power-of-two size that is aligned and fits.
            align = position & -position if position else remaining
            size = min(_floor_pow2(remaining), align if align else remaining)
            length = block_length - size.bit_length() + 1
            prefixes.append(prefix_type(position << shift, length))
            position += size
            remaining -= size
    return prefixes


def expand_prefixes(
    prefixes: list[Prefix], family: AddressFamily = IPV4
) -> np.ndarray:
    """Inverse of :func:`aggregate_blocks`: all covered block ids."""
    if not prefixes:
        return np.empty(0, dtype=np.int64)
    block_length = family.block_prefix_length
    parts = [
        np.arange(p.first_block(), p.first_block() + p.num_blocks(), dtype=np.int64)
        for p in prefixes
        if p.length <= block_length
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def sorted_member_mask(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Per-element membership of ``values`` in a **sorted** ``table``.

    Equivalent to ``np.isin(values, table)`` but probes the table with
    one ``searchsorted`` instead of hashing both sides — much faster on
    the pipeline's hot path, where every id table (unique IPs, blocks)
    is already sorted.  ``values`` may be unsorted and carry duplicates.
    """
    values = np.asarray(values)
    if len(table) == 0 or len(values) == 0:
        return np.zeros(values.shape, dtype=bool)
    index = np.searchsorted(table, values)
    index[index == len(table)] = 0
    return table[index] == values


def _floor_pow2(value: int) -> int:
    return 1 << (value.bit_length() - 1)


class BlockSet:
    """An immutable set of blocks with set algebra and CIDR export."""

    def __init__(self, blocks: np.ndarray, family: AddressFamily = IPV4) -> None:
        self._blocks = np.unique(np.asarray(blocks, dtype=np.int64))
        self.family = family

    @classmethod
    def from_prefixes(
        cls, prefixes: list[Prefix], family: AddressFamily = IPV4
    ) -> "BlockSet":
        """Build from covering prefixes."""
        return cls(expand_prefixes(prefixes, family), family)

    @property
    def blocks(self) -> np.ndarray:
        """The sorted block ids."""
        return self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: int) -> bool:
        index = int(np.searchsorted(self._blocks, block))
        return index < len(self._blocks) and self._blocks[index] == block

    def union(self, other: "BlockSet") -> "BlockSet":
        """Set union."""
        return BlockSet(np.union1d(self._blocks, other._blocks), self.family)

    def intersection(self, other: "BlockSet") -> "BlockSet":
        """Set intersection."""
        return BlockSet(np.intersect1d(self._blocks, other._blocks), self.family)

    def difference(self, other: "BlockSet") -> "BlockSet":
        """Set difference (blocks in self but not other)."""
        return BlockSet(np.setdiff1d(self._blocks, other._blocks), self.family)

    def jaccard(self, other: "BlockSet") -> float:
        """Jaccard similarity (for day-over-day stability metrics)."""
        union = len(np.union1d(self._blocks, other._blocks))
        if union == 0:
            return 1.0
        return len(np.intersect1d(self._blocks, other._blocks)) / union

    def to_cidrs(self) -> list[Prefix]:
        """Minimal CIDR cover."""
        return aggregate_blocks(self._blocks, self.family)
