"""Binary (Patricia-style) prefix trie with longest-prefix match.

Used by the BGP RIB (is this block inside any announced prefix? which is
the most-specific covering announcement?) and by the prefix-to-AS and
geolocation datasets.  Besides per-address lookups it offers a
vectorised block matcher built on sorted interval tables, which is what
the pipeline's step 5 ("Globally Routed") uses at scale.

The trie is address-family generic: it defaults to IPv4 (/24 blocks,
32-bit walks) and accepts ``family=IPV6`` for 128-bit prefixes over /48
site blocks.  A single trie holds prefixes of one family only.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

import numpy as np

from repro.net.family import IPV4, AddressFamily

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list["_Node[V] | None"] = [None, None]
        self.value: V | None = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps prefix keys to values with longest-prefix-match lookup."""

    def __init__(self, family: AddressFamily = IPV4) -> None:
        self.family = family
        self._bits = family.ip_bits
        self._block_length = family.block_prefix_length
        self._root: _Node[V] = _Node()
        self._size = 0
        self._interval_cache: tuple[np.ndarray, np.ndarray, list[V]] | None = None

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for bit in self._prefix_bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        self._interval_cache = None

    def exact(self, prefix) -> V | None:
        """Value stored exactly at ``prefix``, or None."""
        node = self._root
        for bit in self._prefix_bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def longest_match(self, ip: int):
        """Most-specific stored prefix covering ``ip``, with its value."""
        node = self._root
        best: tuple[int, V] | None = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        top = self._bits - 1
        for depth in range(self._bits):
            bit = (ip >> (top - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        return self.family.prefix_from_ip(ip, length), value

    def covers_ip(self, ip: int) -> bool:
        """True if any stored prefix covers ``ip``."""
        return self.longest_match(ip) is not None

    def covers_block(self, block: int) -> bool:
        """True if ``block`` is entirely inside some stored prefix.

        A block is covered iff a prefix no longer than the block length
        covers its network address (longer stored prefixes cover only
        part of the block).
        """
        ip = self.family.block_to_ip(block)
        match = self.longest_match(ip)
        if match is None:
            return False
        prefix, _ = match
        if prefix.length <= self._block_length:
            return True
        # The LPM hit a more-specific longer than the block length; a
        # shorter covering prefix may still exist above it on the walk.
        return self._has_short_cover(ip)

    def _has_short_cover(self, ip: int) -> bool:
        node = self._root
        if node.has_value:
            return True
        top = self._bits - 1
        for depth in range(self._block_length):
            bit = (ip >> (top - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            node = child
            if node.has_value:
                return True
        return False

    def items(self) -> Iterator[tuple[object, V]]:
        """Yield (prefix, value) pairs in address order."""
        prefix_type = self.family.prefix_type
        top = self._bits - 1

        def walk(node: _Node[V], network: int, depth: int):
            if node.has_value:
                yield prefix_type(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(
                        child, network | (bit << (top - depth)), depth + 1
                    )

        yield from walk(self._root, 0, 0)

    # -- vectorised block coverage -------------------------------------

    def _intervals(self) -> tuple[np.ndarray, np.ndarray, list[V]]:
        """Merged, sorted (start, end) block intervals of block-or-shorter prefixes."""
        if self._interval_cache is not None:
            return self._interval_cache
        spans: list[tuple[int, int, V]] = []
        for prefix, value in self.items():
            if prefix.length > self._block_length:
                continue
            first = prefix.first_block()
            spans.append((first, first + prefix.num_blocks() - 1, value))
        spans.sort(key=lambda item: (item[0], item[1]))
        starts = np.array([lo for lo, _, _ in spans], dtype=np.int64)
        ends = np.array([hi for _, hi, _ in spans], dtype=np.int64)
        values = [value for _, _, value in spans]
        # Make ends cumulative-max so nested prefixes don't shadow their
        # covering prefix during the searchsorted probe.
        if len(ends):
            ends = np.maximum.accumulate(ends)
        self._interval_cache = (starts, ends, values)
        return self._interval_cache

    def block_intervals(self) -> tuple[np.ndarray, np.ndarray]:
        """The sorted ``(starts, ends)`` block interval table.

        Consumers that outlive the trie (e.g. a frozen
        :class:`~repro.bgp.rib.RoutingTable`) can hold this table once
        and probe it with :func:`interval_covered_mask` forever, instead
        of re-deriving it through the trie's invalidation-aware cache.
        """
        starts, ends, _ = self._intervals()
        return starts, ends

    def covered_mask(self, blocks: np.ndarray, kernel=None) -> np.ndarray:
        """Vectorised :meth:`covers_block` over an array of block ids.

        ``kernel`` (a :mod:`repro.core.kernels` backend) runs the probe
        natively; ``None`` keeps the reference numpy scan.
        """
        starts, ends, _ = self._intervals()
        if kernel is not None:
            return kernel.interval_covered_mask(starts, ends, blocks)
        return interval_covered_mask(starts, ends, blocks)

    def _prefix_bits(self, prefix) -> Iterator[int]:
        top = self._bits - 1
        for depth in range(prefix.length):
            yield (prefix.network >> (top - depth)) & 1


def interval_covered_mask(
    starts: np.ndarray, ends: np.ndarray, blocks: np.ndarray
) -> np.ndarray:
    """Which ``blocks`` fall inside the sorted, cumulative-max intervals."""
    blocks = np.asarray(blocks, dtype=np.int64)
    if len(starts) == 0:
        return np.zeros(blocks.shape, dtype=bool)
    idx = np.searchsorted(starts, blocks, side="right") - 1
    valid = idx >= 0
    clamped = np.where(valid, idx, 0)
    return valid & (blocks <= ends[clamped])
