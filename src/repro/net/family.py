"""Address families: the one place block-space arithmetic lives.

The engine classifies *blocks* — /24s for IPv4, /48 sites for IPv6 —
and everything between ingest and the service speaks block ids (plain
int64).  An :class:`AddressFamily` bundles the per-family constants and
conversions so the pipeline never hardcodes ``>> 8`` or ``np.uint32``:

* **Engine key.**  Flow columns hold one unsigned integer per address —
  the full 32 bits for IPv4, the *upper 64 bits* (the /64 id) for IPv6.
  The low 64 bits of a v6 address never influence classification (the
  block is a /48), so :class:`~repro.traffic.flows.FlowTable` keeps them
  in optional ``*_ip_lo`` side columns for fidelity only.
* **Block id.**  ``block_of(keys)`` maps engine keys to int64 block ids
  with the family's key shift (8 for v4, 16 for v6).  This is the single
  named home of the former ``ip >> 8`` literals.
* **Text.**  ``parse_ip``/``format_ip``/``parse_prefix``/``format_block``
  round-trip the family's textual forms, and ``block_to_prefix`` gives
  the canonical prefix object for a block.

IPv6 caveat: block ids and engine keys are consumed as signed int64 by
the numpy pipeline, so v6 addresses must sit below ``8000::`` — true for
all currently allocated global unicast space (``2000::/3``), and
enforced by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.net.ipv4 import (
    AddressError,
    Prefix,
    format_ip,
    parse_ip,
)
from repro.net.ipv6 import (
    Ipv6Prefix,
    format_ip6,
    parse_ip6,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.special import SpecialPurposeRegistry

FAMILY_IPV4 = "ipv4"
FAMILY_IPV6 = "ipv6"


@dataclass(frozen=True, slots=True)
class AddressFamily:
    """Constants and conversions for one address family's block space.

    ``ip_*`` values describe full addresses; ``key_*`` values describe
    the engine key actually stored in flow columns (identical for v4,
    the upper 64 bits for v6).
    """

    name: str
    ip_bits: int
    key_bits: int
    block_prefix_length: int
    key_dtype: np.dtype

    @property
    def ip_block_shift(self) -> int:
        """Right-shift from a full address to its block id."""
        return self.ip_bits - self.block_prefix_length

    @property
    def key_block_shift(self) -> int:
        """Right-shift from an engine key to its block id."""
        return self.ip_block_shift - (self.ip_bits - self.key_bits)

    @property
    def num_blocks(self) -> int:
        """Size of the family's block-id space."""
        return 1 << self.block_prefix_length

    # -- array-side arithmetic (the hot-path contract) -----------------

    def block_of(self, keys: np.ndarray) -> np.ndarray:
        """Map an array of engine keys to int64 block ids.

        The single named home of the former ``ip >> 8`` literals.
        """
        keys = np.asarray(keys)
        shift = keys.dtype.type(self.key_block_shift)
        return (keys >> shift).astype(np.int64)

    def blocks_to_keys(self, blocks: np.ndarray) -> np.ndarray:
        """First engine key of each block, in the family's key dtype."""
        blocks = np.asarray(blocks, dtype=np.int64)
        return (blocks << np.int64(self.key_block_shift)).astype(self.key_dtype)

    # -- scalar conversions --------------------------------------------

    def key_of_ip(self, ip: int) -> int:
        """Engine key for a full address."""
        return ip >> (self.ip_bits - self.key_bits)

    def lo_of_ip(self, ip: int) -> int:
        """The address bits *below* the engine key (0 for IPv4)."""
        if self.ip_bits == self.key_bits:
            return 0
        return ip & ((1 << (self.ip_bits - self.key_bits)) - 1)

    def block_of_ip(self, ip: int) -> int:
        """Block id containing a full address."""
        return ip >> self.ip_block_shift

    def block_of_key(self, key: int) -> int:
        """Block id containing an engine key."""
        return key >> self.key_block_shift

    def block_to_ip(self, block: int) -> int:
        """Network (first) address of a block."""
        return block << self.ip_block_shift

    # -- text ----------------------------------------------------------

    def parse_ip(self, text: str) -> int:
        """Parse the family's textual address form to an integer."""
        if self.name == FAMILY_IPV4:
            return parse_ip(text)
        return parse_ip6(text)

    def format_ip(self, value: int) -> str:
        """Format an integer address in the family's canonical text."""
        if self.name == FAMILY_IPV4:
            return format_ip(value)
        return format_ip6(value)

    def parse_prefix(self, text: str) -> Prefix | Ipv6Prefix:
        """Parse ``addr/len`` into the family's prefix type."""
        return self.prefix_type.parse(text)

    def prefix_from_ip(self, ip: int, length: int) -> Prefix | Ipv6Prefix:
        """The length-``length`` prefix covering ``ip``."""
        return self.prefix_type.from_ip(ip, length)

    def block_to_prefix(self, block: int) -> Prefix | Ipv6Prefix:
        """Canonical prefix object for a block id."""
        return self.prefix_type(self.block_to_ip(block), self.block_prefix_length)

    def format_block(self, block: int) -> str:
        """Canonical ``addr/len`` text for a block id."""
        return str(self.block_to_prefix(block))

    @property
    def prefix_type(self) -> type:
        """The family's prefix class."""
        return Prefix if self.name == FAMILY_IPV4 else Ipv6Prefix

    def special_registry(self) -> "SpecialPurposeRegistry":
        """The family's default special-purpose (IANA) registry."""
        from repro.net import special

        if self.name == FAMILY_IPV4:
            return special.SPECIAL_PURPOSE_REGISTRY
        return special.SPECIAL_PURPOSE_REGISTRY_V6


IPV4 = AddressFamily(
    name=FAMILY_IPV4,
    ip_bits=32,
    key_bits=32,
    block_prefix_length=24,
    key_dtype=np.dtype(np.uint32),
)

IPV6 = AddressFamily(
    name=FAMILY_IPV6,
    ip_bits=128,
    key_bits=64,
    block_prefix_length=48,
    key_dtype=np.dtype(np.uint64),
)

_FAMILIES = {IPV4.name: IPV4, IPV6.name: IPV6}


def family(name: str) -> AddressFamily:
    """Look up an address family by name (``"ipv4"`` / ``"ipv6"``)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise AddressError(f"unknown address family: {name!r}") from None


def family_names() -> Iterable[str]:
    """The known family names, v4 first."""
    return tuple(_FAMILIES)


def family_of_prefix(prefix: Prefix | Ipv6Prefix) -> AddressFamily:
    """The family a prefix object belongs to."""
    return IPV6 if isinstance(prefix, Ipv6Prefix) else IPV4
