"""Hilbert-curve indexing of IPv4 /24 space.

The paper's Figures 3, 5 and 6 plot /24 blocks on Hilbert maps, the
standard visualisation for IPv4 space: consecutive addresses stay close
on the plane, so contiguous telescopes appear as solid rectangles.

A curve of *order* n maps the integers ``0 .. 4**n - 1`` onto an
``2**n x 2**n`` grid.  A /8 contains ``2**16`` /24 blocks, hence order 8
(256 x 256 pixels, one per /24); the whole IPv4 space needs order 12.
"""

from __future__ import annotations

import numpy as np

from repro.net.ipv4 import Prefix


class HilbertCurve:
    """A Hilbert curve of the given order, with vectorised conversions."""

    def __init__(self, order: int) -> None:
        if not 1 <= order <= 16:
            raise ValueError(f"unsupported Hilbert order: {order}")
        self.order = order
        self.side = 1 << order
        self.length = self.side * self.side

    @classmethod
    def for_prefix(cls, prefix: Prefix) -> "HilbertCurve":
        """Curve sized so each /24 inside ``prefix`` is one cell.

        ``prefix`` must be /24 or shorter and cover a power-of-4 number
        of blocks (i.e. have even ``24 - length``), which holds for the
        /8 and /16 views used in the paper.
        """
        bits = 24 - prefix.length
        if bits < 0 or bits % 2:
            raise ValueError(
                f"prefix /{prefix.length} does not map onto a square grid"
            )
        return cls(bits // 2)

    def d2xy(self, distance: int) -> tuple[int, int]:
        """Map a curve distance to (x, y) grid coordinates."""
        x, y = self.d2xy_array(np.array([distance], dtype=np.int64))
        return int(x[0]), int(y[0])

    def xy2d(self, x: int, y: int) -> int:
        """Map (x, y) grid coordinates to a curve distance."""
        d = self.xy2d_array(
            np.array([x], dtype=np.int64), np.array([y], dtype=np.int64)
        )
        return int(d[0])

    def d2xy_array(self, distance: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised distance -> (x, y).  Classic bit-twiddling walk."""
        d = np.asarray(distance, dtype=np.int64)
        if (d < 0).any() or (d >= self.length).any():
            raise ValueError("distance out of range for this curve")
        x = np.zeros_like(d)
        y = np.zeros_like(d)
        t = d.copy()
        s = 1
        while s < self.side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = _rotate(s, x, y, rx, ry)
            x = x + s * rx
            y = y + s * ry
            t //= 4
            s *= 2
        return x, y

    def xy2d_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised (x, y) -> distance."""
        x = np.asarray(x, dtype=np.int64).copy()
        y = np.asarray(y, dtype=np.int64).copy()
        if (x < 0).any() or (x >= self.side).any():
            raise ValueError("x out of range for this curve")
        if (y < 0).any() or (y >= self.side).any():
            raise ValueError("y out of range for this curve")
        d = np.zeros_like(x)
        s = self.side // 2
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += s * s * ((3 * rx) ^ ry)
            x, y = _rotate(s, x, y, rx, ry)
            s //= 2
        return d

    def grid_for_blocks(
        self, base_block: int, blocks: np.ndarray, values: np.ndarray | None = None
    ) -> np.ndarray:
        """Rasterise /24 ``blocks`` (offsets from ``base_block``) onto the grid.

        Returns a ``(side, side)`` array; cells default to 0 and carry
        ``values`` (or 1) where a block is present.  ``blocks`` outside
        the curve's range raise.
        """
        offsets = np.asarray(blocks, dtype=np.int64) - base_block
        x, y = self.d2xy_array(offsets)
        grid = np.zeros((self.side, self.side), dtype=np.int64)
        fill = np.ones(len(offsets), dtype=np.int64) if values is None else values
        grid[y, x] = fill
        return grid


def _rotate(
    s: int, x: np.ndarray, y: np.ndarray, rx: np.ndarray, ry: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate/flip the quadrant as the Hilbert recursion requires."""
    swap = ry == 0
    flip = swap & (rx == 1)
    new_x = np.where(flip, s - 1 - x, x)
    new_y = np.where(flip, s - 1 - y, y)
    out_x = np.where(swap, new_y, new_x)
    out_y = np.where(swap, new_x, new_y)
    return out_x, out_y
