"""Geography substrate: countries, continents, and address-allocation weights."""

from repro.geo.countries import (
    CONTINENTS,
    COUNTRIES,
    Continent,
    Country,
    country_by_code,
)

__all__ = ["CONTINENTS", "COUNTRIES", "Continent", "Country", "country_by_code"]
