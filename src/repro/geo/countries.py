"""Country and continent registry used by the synthetic Internet.

Each country carries an *allocation weight* (its rough share of the
IPv4 space, heavily skewed toward the US because of legacy /8
allocations — the reason the paper finds the US dominating inferred
meta-telescope space) and a *legacy share* (how much of its space sits
in old, lightly used allocations).

The list is not the full ISO 3166 registry; it is a representative set
spanning all continents, including small countries that the paper
highlights as newly observable through a meta-telescope.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Continent(str, Enum):
    """World regions as used in the paper's tables and bean plots."""

    NORTH_AMERICA = "NA"
    SOUTH_AMERICA = "SA"
    EUROPE = "EU"
    ASIA = "AS"
    AFRICA = "AF"
    OCEANIA = "OC"
    INTERNATIONAL = "INT"


CONTINENTS: tuple[Continent, ...] = (
    Continent.NORTH_AMERICA,
    Continent.SOUTH_AMERICA,
    Continent.EUROPE,
    Continent.ASIA,
    Continent.AFRICA,
    Continent.OCEANIA,
    Continent.INTERNATIONAL,
)


@dataclass(frozen=True, slots=True)
class Country:
    """A country with its address-allocation characteristics.

    ``allocation_weight`` is proportional to the amount of announced
    IPv4 space; ``legacy_share`` is the fraction of that space in
    legacy (early, lightly used) allocations; ``dark_bias`` scales the
    base probability that a /24 in this country is unused.
    """

    code: str
    name: str
    continent: Continent
    allocation_weight: float
    legacy_share: float
    dark_bias: float


# Weights are coarse, hand-set to reproduce the paper's geography:
# the US dominates (legacy /8s), China is second, central Africa and
# North Korea are barely visible.
COUNTRIES: tuple[Country, ...] = (
    # North America
    Country("US", "United States", Continent.NORTH_AMERICA, 34.0, 0.55, 1.30),
    Country("CA", "Canada", Continent.NORTH_AMERICA, 2.4, 0.30, 1.00),
    Country("MX", "Mexico", Continent.NORTH_AMERICA, 1.0, 0.10, 0.90),
    Country("PA", "Panama", Continent.NORTH_AMERICA, 0.12, 0.05, 0.90),
    Country("CR", "Costa Rica", Continent.NORTH_AMERICA, 0.10, 0.05, 0.90),
    # South America
    Country("BR", "Brazil", Continent.SOUTH_AMERICA, 2.2, 0.10, 0.95),
    Country("AR", "Argentina", Continent.SOUTH_AMERICA, 0.9, 0.08, 0.95),
    Country("CL", "Chile", Continent.SOUTH_AMERICA, 0.4, 0.08, 0.90),
    Country("CO", "Colombia", Continent.SOUTH_AMERICA, 0.4, 0.05, 0.90),
    Country("PE", "Peru", Continent.SOUTH_AMERICA, 0.2, 0.05, 0.90),
    # Europe
    Country("DE", "Germany", Continent.EUROPE, 3.2, 0.20, 0.75),
    Country("GB", "United Kingdom", Continent.EUROPE, 2.8, 0.30, 0.80),
    Country("FR", "France", Continent.EUROPE, 2.2, 0.20, 0.75),
    Country("NL", "Netherlands", Continent.EUROPE, 1.4, 0.20, 0.75),
    Country("IT", "Italy", Continent.EUROPE, 1.3, 0.12, 0.75),
    Country("ES", "Spain", Continent.EUROPE, 1.0, 0.10, 0.75),
    Country("PL", "Poland", Continent.EUROPE, 0.8, 0.08, 0.75),
    Country("SE", "Sweden", Continent.EUROPE, 0.7, 0.20, 0.75),
    Country("CH", "Switzerland", Continent.EUROPE, 0.6, 0.20, 0.75),
    Country("RU", "Russia", Continent.EUROPE, 1.6, 0.10, 0.85),
    Country("UA", "Ukraine", Continent.EUROPE, 0.5, 0.08, 0.85),
    Country("GR", "Greece", Continent.EUROPE, 0.3, 0.08, 0.75),
    Country("PT", "Portugal", Continent.EUROPE, 0.3, 0.08, 0.75),
    # Asia
    Country("CN", "China", Continent.ASIA, 9.0, 0.18, 1.25),
    Country("JP", "Japan", Continent.ASIA, 5.0, 0.35, 1.00),
    Country("KR", "South Korea", Continent.ASIA, 3.0, 0.20, 0.95),
    Country("IN", "India", Continent.ASIA, 1.2, 0.05, 0.90),
    Country("ID", "Indonesia", Continent.ASIA, 0.6, 0.05, 0.90),
    Country("SG", "Singapore", Continent.ASIA, 0.5, 0.10, 0.85),
    Country("TW", "Taiwan", Continent.ASIA, 1.0, 0.20, 0.95),
    Country("VN", "Vietnam", Continent.ASIA, 0.5, 0.05, 0.90),
    Country("TH", "Thailand", Continent.ASIA, 0.5, 0.05, 0.90),
    Country("SA", "Saudi Arabia", Continent.ASIA, 0.3, 0.05, 0.80),
    Country("AE", "United Arab Emirates", Continent.ASIA, 0.3, 0.05, 0.80),
    Country("IR", "Iran", Continent.ASIA, 0.4, 0.05, 0.80),
    Country("KP", "North Korea", Continent.ASIA, 0.002, 0.00, 0.30),
    # Africa
    Country("ZA", "South Africa", Continent.AFRICA, 0.6, 0.10, 0.90),
    Country("EG", "Egypt", Continent.AFRICA, 0.3, 0.05, 0.85),
    Country("NG", "Nigeria", Continent.AFRICA, 0.15, 0.02, 0.85),
    Country("KE", "Kenya", Continent.AFRICA, 0.12, 0.02, 0.85),
    Country("MA", "Morocco", Continent.AFRICA, 0.12, 0.02, 0.85),
    Country("TN", "Tunisia", Continent.AFRICA, 0.08, 0.02, 0.85),
    Country("CD", "DR Congo", Continent.AFRICA, 0.01, 0.00, 0.50),
    Country("TD", "Chad", Continent.AFRICA, 0.005, 0.00, 0.50),
    # Oceania
    Country("AU", "Australia", Continent.OCEANIA, 1.8, 0.25, 1.00),
    Country("NZ", "New Zealand", Continent.OCEANIA, 0.4, 0.20, 0.95),
    Country("FJ", "Fiji", Continent.OCEANIA, 0.02, 0.02, 0.80),
    # International (anycast / multi-region organisations)
    Country("ZZ", "International", Continent.INTERNATIONAL, 0.15, 0.10, 0.80),
)

_BY_CODE = {country.code: country for country in COUNTRIES}


def country_by_code(code: str) -> Country:
    """Look up a country by its two-letter code.

    Raises :class:`KeyError` for unknown codes.
    """
    return _BY_CODE[code]


def countries_of_continent(continent: Continent) -> tuple[Country, ...]:
    """All registry countries in ``continent``."""
    return tuple(c for c in COUNTRIES if c.continent is continent)
