"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — build a world, run the inference, print the funnel
                  and headline numbers (the quickstart, as a command);
* ``infer``     — run the inference for one vantage (or all) and write
                  the prefix list to a file;
* ``funnel``    — print only the Figure-2 funnel;
* ``telescopes``— print telescope coverage (Table 4 style);
* ``ports``     — print the top targeted ports of the captured IBR;
* ``report``    — write the full markdown operator report;
* ``faults``    — run the online telescope through an injected fault
                  plan and print the degraded-operation log;
* ``scenarios`` — run the adversarial scenario catalog through both
                  engine paths and check every metric against its
                  expected-degradation envelope (``scenarios list``
                  prints the catalog; non-zero exit on violation —
                  the CI regression gate);
* ``plan``      — print the ExecutionPlan the engine would run for the
                  given views and knobs, without executing anything
                  (``infer --explain`` does the same);
* ``serve``     — run the meta-telescope-as-a-service daemon: fold days
                  through the online engine, publish immutable
                  classification snapshots behind an atomic-swap
                  handle, and answer point/range/AS/geo/diff queries
                  over HTTP/JSON (or serve a saved ``snapshot.fpk``);
                  ``--processes N`` boots an SO_REUSEPORT worker fleet
                  sharing one memory-mapped snapshot, and
                  ``--delta-archive DIR`` appends each publish to the
                  row-delta archive;
* ``query``     — query a running daemon from the command line;
* ``convert``   — convert a flow file between CSV and the flowpack
                  binary columnar archive format (format sniffed from
                  the input; no world is built).

World commands accept ``--scale {micro,small,paper,giant}``, ``--seed``,
``--days``, ``--vantage`` (an IXP code or ``All``), ``--chunk-size``
(rows per ingestion chunk, or ``auto``; classification is identical at
any value — the flag only bounds aggregation memory), ``--workers``
(process-pool fan-out of the aggregation; ``0`` = one per CPU; any
worker count classifies bit-identically), ``--capture-cache DIR``
(content-addressed cache of generated vantage-day captures: re-runs
with the same scale/seed serve days from flowpack archives instead of
regenerating them — bit-identical, just faster) and ``--trace PATH``
(append the run's structured execution events as JSONL — the engine's
observability spine).  Commands that run the pipeline print a
per-stage funnel timing table; parallel runs prepend per-worker, IPC
and merge rows.  All of it comes from one event stream, recorded by
the :class:`~repro.core.engine.RunContext` threaded through the run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.analysis.ports import top_ports
from repro.core import MetaTelescope
from repro.core.engine import JsonlSink, RunContext
from repro.core.evaluation import confusion_against_truth, telescope_coverage
from repro.core.online import OnlineMetaTelescope, POLICIES
from repro.core.pipeline import PipelineConfig
from repro.faults import STANDARD_FAULTS, FaultPlan, standard_injector
from repro.io import (
    FLOW_FORMATS,
    convert_flows,
    write_flows,
    write_prefix_list,
)
from repro.reporting.report import generate_report
from repro.reporting.tables import format_table
from repro.core.snapshot import ClassificationSnapshot
from repro.robustness import (
    EvaluationSettings,
    evaluate_catalog,
    standard_catalog,
)
from repro.core.snapshot_store import SnapshotDeltaStore
from repro.service import (
    BackgroundFolder,
    FleetSupervisor,
    MetaTelescopeService,
    QueryBudget,
    ServiceDaemon,
)
from repro.world.capture_cache import CaptureCache
from repro.world.config import (
    giant_config,
    micro_config,
    paper_config,
    small_config,
)
from repro.world.ipv6 import (
    giant_ipv6_world,
    ipv6_views,
    micro_ipv6_world,
    paper_ipv6_world,
    small_ipv6_world,
)
from repro.world.observe import Observatory
from repro.world.scenarios import (
    giant_world,
    micro_world,
    paper_world,
    small_world,
)

# ``giant`` (≥50 M rows/day) takes minutes to simulate and gigabytes to
# archive — pair it with ``--capture-cache`` so generation is paid once.
_SCALES = {
    "micro": micro_world,
    "small": small_world,
    "paper": paper_world,
    "giant": giant_world,
}
_CONFIGS = {
    "micro": micro_config,
    "small": small_config,
    "paper": paper_config,
    "giant": giant_config,
}
_IPV6_SCALES = {
    "micro": micro_ipv6_world,
    "small": small_ipv6_world,
    "paper": paper_ipv6_world,
    "giant": giant_ipv6_world,
}


def _context(args: argparse.Namespace) -> RunContext:
    """One RunContext per CLI invocation; ``--trace`` attaches a sink."""
    sinks = ()
    if getattr(args, "trace", None):
        sinks = (JsonlSink(args.trace),)
    return RunContext(sinks=sinks, seed=getattr(args, "seed", None))


def _build(args: argparse.Namespace):
    if getattr(args, "family", "ipv4") == "ipv6":
        raise SystemExit(
            f"--family ipv6 is supported by the infer and plan commands, "
            f"not {args.command}"
        )
    context = _context(args)
    world = _SCALES[args.scale](args.seed)
    cache = None
    if getattr(args, "capture_cache", None):
        cache = CaptureCache(args.capture_cache)
    observatory = Observatory(world, capture_cache=cache, context=context)
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )
    return world, observatory, telescope, context


def _views(world, observatory, args: argparse.Namespace):
    days = min(args.days, world.config.num_days)
    if args.vantage == "All":
        return observatory.all_ixp_views(num_days=days)
    codes = {ixp.code for ixp in world.fabric.ixps}
    if args.vantage not in codes:
        raise SystemExit(
            f"unknown vantage {args.vantage!r}; choose from All, "
            + ", ".join(sorted(codes))
        )
    return observatory.ixp_views(args.vantage, num_days=days)


def _infer(world, observatory, telescope, args: argparse.Namespace,
           context: RunContext | None = None):
    views = _views(world, observatory, args)
    return views, telescope.infer(
        views,
        use_spoofing_tolerance=not args.no_tolerance,
        chunk_size=args.chunk_size,
        workers=args.workers,
        kernel=args.kernel,
        context=context,
    )


def _print_plan(plan) -> None:
    print(format_table(["field", "value"], plan.describe_rows(),
                       title="execution plan"))


def _infer_ipv6(args: argparse.Namespace) -> int:
    """``infer --family ipv6``: the unchanged engine over the v6 world.

    Candidate /48 sites are enumerated from observed traffic (announced,
    not hitlisted, never sourcing), the seven-stage pipeline classifies
    them, and the served set is scored against the world's ground truth.
    """
    from repro.core.ipv6_telescope import infer_ipv6, ipv6_telescope
    from repro.net.family import IPV6
    from repro.traffic.flows import FlowTable

    if args.vantage not in ("All", "V6IX"):
        raise SystemExit(
            f"unknown vantage {args.vantage!r}; the ipv6 world has one "
            "vantage: V6IX (or All)"
        )
    context = _context(args)
    world = _IPV6_SCALES[args.scale](args.seed)
    views = ipv6_views(world, num_days=args.days)
    telescope = ipv6_telescope(world)
    if args.command == "plan" or getattr(args, "explain", False):
        plan = telescope.plan(
            views, chunk_size=args.chunk_size, workers=args.workers,
            kernel=args.kernel,
        )
        _print_plan(plan)
        context.close()
        return 0
    report = infer_ipv6(
        world,
        views,
        chunk_size=args.chunk_size,
        workers=args.workers,
        kernel=args.kernel,
        context=context,
    )
    print(
        format_table(
            ["step", "#/48s"],
            report.result.pipeline.funnel.as_rows("/48 sites"),
        )
    )
    candidates = report.candidates
    print(
        f"\ncandidate /48 sites: {candidates.observed:,} observed -> "
        f"{len(candidates.candidate_sites):,} "
        f"(dropped {candidates.dropped_unannounced} unannounced, "
        f"{candidates.dropped_hitlist} hitlisted, "
        f"{candidates.dropped_sources} sourcing)"
    )
    coverage = report.coverage
    print(
        f"served (engine-dark candidates): {coverage.served:,} /48 sites — "
        f"ground truth recall {coverage.recall():.1%}, "
        f"precision {coverage.precision():.1%}"
    )
    comment = (
        f"ipv6 meta-telescope /48 sites — scale={args.scale} "
        f"seed={args.seed} days={len(views)}"
    )
    write_prefix_list(
        report.served_sites, args.output, comment=comment,
        aggregate=args.aggregate, family=IPV6,
    )
    print(f"wrote {len(report.served_sites):,} /48 prefixes to {args.output}")
    if args.capture_output:
        captured = FlowTable.concat(
            view.flows.toward_blocks(report.served_sites) for view in views
        )
        write_flows(captured, args.capture_output, format=args.format)
        print(
            f"wrote {len(captured):,} captured flow records to "
            f"{args.capture_output} ({args.format})"
        )
    context.close()
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    if args.family == "ipv6":
        return _infer_ipv6(args)
    world, observatory, telescope, context = _build(args)
    views = _views(world, observatory, args)
    plan = telescope.plan(
        views, chunk_size=args.chunk_size, workers=args.workers,
        kernel=args.kernel,
    )
    _print_plan(plan)
    context.close()
    return 0


def _print_stage_timings(timings) -> None:
    if not timings:
        return
    rows = [
        (t.stage, f"{t.seconds * 1e3:.2f}", t.surviving) for t in timings
    ]
    print()
    print(format_table(["stage", "ms", "surviving"], rows))


def cmd_demo(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    views, result = _infer(world, observatory, telescope, args, context)
    print(format_table(["step", "#/24s"], result.pipeline.funnel.as_rows()))
    print(
        f"\ndark {len(result.pipeline.dark_blocks):,} / unclean "
        f"{len(result.pipeline.unclean_blocks):,} / gray "
        f"{len(result.pipeline.gray_blocks):,}"
    )
    print(f"final meta-telescope: {result.num_prefixes():,} /24 prefixes")
    confusion = confusion_against_truth(result.prefixes, world.index)
    print(
        f"ground truth: FP {confusion.false_positive_rate_of_inferred():.2%}, "
        f"recall {confusion.recall():.1%}"
    )
    _print_stage_timings(result.pipeline.stage_timings)
    context.close()
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    if args.family == "ipv6":
        return _infer_ipv6(args)
    world, observatory, telescope, context = _build(args)
    if args.explain:
        views = _views(world, observatory, args)
        plan = telescope.plan(
            views, chunk_size=args.chunk_size, workers=args.workers,
            kernel=args.kernel,
        )
        _print_plan(plan)
        context.close()
        return 0
    views, result = _infer(world, observatory, telescope, args, context)
    comment = (
        f"meta-telescope prefixes — scale={args.scale} seed={args.seed} "
        f"vantage={args.vantage} days={args.days}"
    )
    write_prefix_list(
        result.prefixes, args.output, comment=comment, aggregate=args.aggregate
    )
    print(f"wrote {result.num_prefixes():,} /24 prefixes to {args.output}")
    if args.capture_output:
        captured = telescope.captured_traffic(views, result)
        write_flows(captured, args.capture_output, format=args.format)
        print(
            f"wrote {len(captured):,} captured flow records to "
            f"{args.capture_output} ({args.format})"
        )
    context.close()
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    rows = convert_flows(
        args.input, args.output, to=args.to, chunk_rows=args.chunk_rows
    )
    print(f"converted {rows:,} flow records to {args.output} ({args.to})")
    return 0


def cmd_funnel(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    _, result = _infer(world, observatory, telescope, args, context)
    print(format_table(["step", "#/24s"], result.pipeline.funnel.as_rows()))
    _print_stage_timings(result.pipeline.stage_timings)
    context.close()
    return 0


def cmd_telescopes(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    _, result = _infer(world, observatory, telescope, args, context)
    rows = []
    for code, sensor in world.telescopes.items():
        row = telescope_coverage(
            result.prefixes, sensor, day=0 if args.days == 1 else None
        )
        rows.append((code, row.telescope_size, row.inferred_inside,
                     f"{row.coverage():.0%}"))
    print(format_table(["telescope", "size", "inferred", "coverage"], rows))
    context.close()
    return 0


def cmd_ports(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    views, result = _infer(world, observatory, telescope, args, context)
    captured = telescope.captured_traffic(views, result)
    ranked = top_ports(captured, count=args.count)
    print(
        format_table(
            ["rank", "port"], [(i + 1, port) for i, port in enumerate(ranked)]
        )
    )
    context.close()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    views, result = _infer(world, observatory, telescope, args, context)
    text = generate_report(
        telescope,
        views,
        result,
        geodb=world.datasets.geodb,
        pfx2as=world.datasets.pfx2as,
        title=f"Meta-telescope report — {args.vantage}, {args.days} day(s)",
    )
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote report to {args.output}")
    context.close()
    return 0


def _day_views(world, observatory, args: argparse.Namespace, day: int):
    observation = observatory.day(day)
    if args.vantage == "All":
        return list(observation.ixp_views.values())
    return [observation.ixp_views[args.vantage]]


def cmd_faults(args: argparse.Namespace) -> int:
    world, observatory, telescope, context = _build(args)
    days = min(args.days, world.config.num_days)
    fault_day = args.fault_day if args.fault_day is not None else days // 2
    chosen = args.fault or ["all"]
    names = list(STANDARD_FAULTS) if "all" in chosen else chosen
    plan = FaultPlan(seed=args.seed)
    for name in dict.fromkeys(names):
        if name == "none":
            continue
        plan.add(standard_injector(name, days=frozenset({fault_day})))
    telescope.replace_collector(plan.wrap_collector(telescope.collector))

    online = OnlineMetaTelescope(
        telescope=telescope,
        window_days=min(args.window, days),
        min_stable_days=min(2, min(args.window, days)),
        use_spoofing_tolerance=not args.no_tolerance,
        policy=args.policy,
        chunk_size=args.chunk_size,
        workers=args.workers,
        kernel=args.kernel,
        sinks=context.sinks,
    )
    rows = []
    events = []
    for day in range(days):
        faulted = plan.apply(day, _day_views(world, observatory, args, day))
        events.extend(faulted.events)
        update = online.update(day, list(faulted.views))
        confusion = confusion_against_truth(online.current_prefixes(), world.index)
        rows.append(
            (
                day,
                update.action,
                f"{update.quality.score:.2f}",
                len(faulted.views),
                update.serving_size,
                update.staleness,
                f"{1 - confusion.false_positive_rate_of_inferred():.1%}",
                f"{confusion.recall():.1%}",
            )
        )
    print(
        format_table(
            ["day", "action", "quality", "#views", "serving", "stale",
             "precision", "recall"],
            rows,
            title=f"degraded operation — policy={args.policy}, "
            f"faults on day {fault_day}: {', '.join(names)}",
        )
    )
    report = online.health_report()
    print(f"\n{report.summary()}")
    for record in report.records:
        for reason in record.reasons:
            print(f"  day {record.day}: {reason}")
    for event in events:
        print(f"  injected day {event.day} @ {event.vantage}: "
              f"{event.fault} ({event.detail})")
    _print_stage_timings(online.last_stage_timings())
    context.close()
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    config = _CONFIGS[args.scale](args.seed)
    catalog = standard_catalog(config)
    if args.action == "list":
        rows = [
            (
                scenario.name,
                scenario.summary,
                "yes" if scenario.envelope.target_miss_rate else "-",
            )
            for scenario in catalog
        ]
        print(
            format_table(
                ["scenario", "summary", "targeted"],
                rows,
                title=f"adversarial scenario catalog — scale={args.scale}",
            )
        )
        return 0

    context = _context(args)
    settings = EvaluationSettings(
        days=min(args.days, config.num_days),
        workers=args.workers if args.workers is not None else 2,
        chunk_size=args.chunk_size,
        kernel=args.kernel,
        compose_faults=args.with_faults,
        fault_seed=args.seed,
        service_path=args.service_path,
    )
    # close() in a finally: the JSONL trace artifact must be complete
    # (flushed) on failure verdicts and on crashes, not only on PASS —
    # CI reads it precisely when the gate trips.
    try:
        verdict = evaluate_catalog(catalog, config, settings, context=context)
        for scenario in verdict.verdicts:
            rows = [
                (
                    check.path,
                    check.metric,
                    f"{check.value:+.3f}",
                    check.bounds.describe(),
                    "ok" if check.ok else "VIOLATION",
                )
                for check in scenario.checks
            ]
            state = "within envelope" if scenario.ok() else "ENVELOPE VIOLATED"
            print(
                format_table(
                    ["path", "metric", "value", "envelope", "verdict"],
                    rows,
                    title=f"{scenario.scenario} — {state}",
                )
            )
            print(f"  {scenario.summary}")
            print(f"  online: {scenario.online_health}\n")
        faulted = " (faults composed)" if args.with_faults else ""
        if verdict.ok():
            print(
                f"scenario gate: PASS — {len(verdict.verdicts)} scenario(s) "
                f"within their envelopes{faulted}"
            )
            return 0
        failing = [v.scenario for v in verdict.verdicts if not v.ok()]
        print(
            f"scenario gate: FAIL — envelope violations in "
            f"{', '.join(failing)}{faulted}"
        )
        return 1
    finally:
        context.close()


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the query daemon (ROADMAP item 1's product surface)."""
    delta_store = (
        SnapshotDeltaStore(args.delta_archive) if args.delta_archive else None
    )
    if args.processes > 1:
        return _serve_fleet(args, delta_store)
    if args.snapshot:
        # Serve a saved snapshot.fpk directly — no world, no folding.
        context = _context(args)
        service = MetaTelescopeService(
            context=context,
            budget=QueryBudget(max_results=args.max_results),
            max_inflight=args.max_inflight,
            delta_store=delta_store,
        )
        snapshot = service.publish(ClassificationSnapshot.open(args.snapshot))
        folder = None
        print(
            f"serving {args.snapshot}: {len(snapshot):,} blocks, "
            f"day {snapshot.day}, version {snapshot.version}",
            flush=True,
        )
    else:
        world, observatory, telescope, context = _build(args)
        days = min(args.days, world.config.num_days)
        online = OnlineMetaTelescope(
            telescope=telescope,
            window_days=min(args.window, days),
            min_stable_days=min(2, min(args.window, days)),
            use_spoofing_tolerance=not args.no_tolerance,
            policy=args.policy,
            chunk_size=args.chunk_size,
            workers=args.workers,
            kernel=args.kernel,
            sinks=context.sinks,
        )
        service = MetaTelescopeService(
            pfx2as=world.datasets.pfx2as,
            geodb=world.datasets.geodb,
            context=context,
            budget=QueryBudget(max_results=args.max_results),
            max_inflight=args.max_inflight,
            delta_store=delta_store,
        )
        folder = BackgroundFolder(online, service)
        warm = days if args.warm_days is None else min(args.warm_days, days)
        for day in range(warm):
            snapshot = folder.fold(
                day, _day_views(world, observatory, args, day)
            )
            print(
                f"day {day}: published v{snapshot.version} "
                f"({len(snapshot.dark_blocks):,} dark of {len(snapshot):,})",
                flush=True,
            )
        if warm < days:
            # Remaining days fold in the background while we serve.
            folder.start(
                (day, _day_views(world, observatory, args, day))
                for day in range(warm, days)
            )
    if args.save_snapshot:
        service.handle.current().save(args.save_snapshot)
        print(f"wrote snapshot to {args.save_snapshot}", flush=True)

    daemon = ServiceDaemon(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await daemon.start()
        print(f"meta-telescope service on {daemon.base_url}", flush=True)
        if args.exit_after is not None:
            await asyncio.sleep(args.exit_after)
        else:
            await asyncio.Event().wait()
        await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        if folder is not None:
            folder.join(timeout=1.0)
        context.close()
    return 0


def _serve_fleet(args: argparse.Namespace, delta_store) -> int:
    """``serve --processes N``: the SO_REUSEPORT worker fleet.

    The supervisor process never serves HTTP itself — it folds (or
    opens) snapshots, persists each one to the fleet root, and bumps
    the version sentinel; N spawned workers share the one mapped
    ``snapshot.fpk`` and one kernel-balanced port.
    """
    root = args.fleet_root or tempfile.mkdtemp(prefix="meta-telescope-fleet-")
    if args.snapshot:
        context = _context(args)
        supervisor = FleetSupervisor(
            root,
            processes=args.processes,
            host=args.host,
            port=args.port,
            max_results=args.max_results,
            max_inflight=args.max_inflight,
            delta_store=delta_store,
        )
        snapshot = supervisor.publish(ClassificationSnapshot.open(args.snapshot))
        folder = None
        print(
            f"serving {args.snapshot}: {len(snapshot):,} blocks, "
            f"day {snapshot.day}, version {snapshot.version}",
            flush=True,
        )
    else:
        world, observatory, telescope, context = _build(args)
        days = min(args.days, world.config.num_days)
        online = OnlineMetaTelescope(
            telescope=telescope,
            window_days=min(args.window, days),
            min_stable_days=min(2, min(args.window, days)),
            use_spoofing_tolerance=not args.no_tolerance,
            policy=args.policy,
            chunk_size=args.chunk_size,
            workers=args.workers,
            kernel=args.kernel,
            sinks=context.sinks,
        )
        supervisor = FleetSupervisor(
            root,
            processes=args.processes,
            host=args.host,
            port=args.port,
            max_results=args.max_results,
            max_inflight=args.max_inflight,
            delta_store=delta_store,
            pfx2as=world.datasets.pfx2as,
            geodb=world.datasets.geodb,
        )
        folder = BackgroundFolder(online, supervisor)
        warm = days if args.warm_days is None else min(args.warm_days, days)
        for day in range(warm):
            snapshot = folder.fold(
                day, _day_views(world, observatory, args, day)
            )
            print(
                f"day {day}: published v{snapshot.version} "
                f"({len(snapshot.dark_blocks):,} dark of {len(snapshot):,})",
                flush=True,
            )
        if warm < days:
            folder.start(
                (day, _day_views(world, observatory, args, day))
                for day in range(warm, days)
            )
    if args.save_snapshot:
        supervisor.handle.current().save(args.save_snapshot)
        print(f"wrote snapshot to {args.save_snapshot}", flush=True)

    try:
        supervisor.start()
        supervisor.wait_ready()
        print(
            f"meta-telescope fleet: {args.processes} workers on "
            f"{supervisor.base_url} (root {supervisor.root})",
            flush=True,
        )
        deadline = (
            time.monotonic() + args.exit_after
            if args.exit_after is not None
            else None
        )
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.25)
            restarted = supervisor.ensure_alive()
            if restarted:
                print(f"restarted {restarted} worker(s)", flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
        if folder is not None:
            folder.join(timeout=1.0)
        context.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Query a running daemon (thin urllib client, JSON to stdout)."""
    paths = {
        "point": "/v1/point",
        "range": "/v1/range",
        "as": "/v1/as",
        "geo": "/v1/geo",
        "diff": "/v1/diff",
        "snapshot": "/v1/snapshot",
        "health": "/healthz",
    }
    params = {
        name: getattr(args, dest)
        for name, dest in (
            ("prefix", "prefix"),
            ("block", "block"),
            ("start", "start"),
            ("end", "end"),
            ("asn", "asn"),
            ("country", "country"),
            ("since", "since"),
            ("limit", "limit"),
        )
        if getattr(args, dest, None) is not None
    }
    url = args.url.rstrip("/") + paths[args.endpoint]
    if params:
        url += "?" + urllib.parse.urlencode(params)
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            body = json.load(response)
            status = response.status
    except urllib.error.HTTPError as error:
        status = error.code
        try:
            body = json.load(error)
        except json.JSONDecodeError:
            body = {"error": str(error)}
    except urllib.error.URLError as error:
        print(f"cannot reach {args.url}: {error.reason}", file=sys.stderr)
        return 1
    try:
        print(json.dumps(body, indent=2))
    except BrokenPipeError:  # e.g. piped through `head`
        pass
    return 0 if status == 200 else 1


def _chunk_size(value: str) -> int | str:
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_execution_options(p: argparse.ArgumentParser) -> None:
    """The engine-knob and observability flags every run-shaped command
    shares (one definition; these were copy-pasted per subcommand)."""
    p.add_argument(
        "--chunk-size", type=_chunk_size, default=None,
        help="rows per ingestion chunk, or 'auto' (bounds aggregation "
        "memory; classification is identical at any value)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool workers for the aggregation fan-out "
        "(default: serial; 0 = one per CPU; classification is "
        "bit-identical at any worker count)",
    )
    p.add_argument(
        "--kernel", choices=["auto", "numpy", "native"], default=None,
        help="aggregation kernel backend (default: auto — native when "
        "a compiled provider is available, else the numpy reference; "
        "classification is bit-identical on either backend)",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append the run's structured execution events (plan, "
        "chunks, workers, stages, cache) to PATH as JSONL",
    )


def _add_world_options(p: argparse.ArgumentParser) -> None:
    """The world-selection flags, plus the shared execution flags."""
    p.add_argument("--scale", choices=sorted(_SCALES), default="small")
    p.add_argument(
        "--family", choices=["ipv4", "ipv6"], default="ipv4",
        help="address family to operate in (ipv6: the /48-site world "
        "and candidate filter; infer and plan commands only)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--vantage", default="All")
    p.add_argument(
        "--no-tolerance", action="store_true",
        help="disable the spoofing tolerance",
    )
    p.add_argument(
        "--capture-cache", default=None, metavar="DIR",
        help="content-addressed capture cache directory: generated "
        "vantage-days are stored as flowpack archives and re-runs "
        "with the same world serve them from disk (bit-identical)",
    )
    _add_execution_options(p)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="operate a synthetic meta-telescope"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    commands = {
        "demo": cmd_demo,
        "infer": cmd_infer,
        "funnel": cmd_funnel,
        "telescopes": cmd_telescopes,
        "ports": cmd_ports,
        "report": cmd_report,
        "faults": cmd_faults,
        "scenarios": cmd_scenarios,
        "plan": cmd_plan,
        "serve": cmd_serve,
    }
    for name, handler in commands.items():
        p = sub.add_parser(name)
        _add_world_options(p)
        if name == "infer":
            p.add_argument(
                "--explain", action="store_true",
                help="print the execution plan the engine would run and "
                "exit without executing (same output as the plan command)",
            )
            p.add_argument("--output", default="meta-telescope-prefixes.txt")
            p.add_argument(
                "--aggregate", action="store_true",
                help="collapse contiguous /24s into their CIDR cover",
            )
            p.add_argument(
                "--capture-output", default=None, metavar="PATH",
                help="also write the traffic captured toward the final "
                "prefixes (the paper's second data product)",
            )
            p.add_argument(
                "--format", choices=FLOW_FORMATS, default="csv",
                help="flow file format for --capture-output "
                "(default: csv)",
            )
        if name == "ports":
            p.add_argument("--count", type=int, default=10)
        if name == "report":
            p.add_argument("--output", default="meta-telescope-report.md")
        if name == "faults":
            p.set_defaults(days=5)
            p.add_argument(
                "--fault", action="append",
                choices=sorted(STANDARD_FAULTS) + ["all", "none"],
                default=None,
                help="fault class to inject (repeatable; default: all)",
            )
            p.add_argument(
                "--fault-day", type=int, default=None,
                help="day the faults strike (default: the middle day)",
            )
            p.add_argument(
                "--policy", choices=POLICIES, default="carry",
                help="missing/degraded-day policy (default: carry)",
            )
            p.add_argument(
                "--window", type=int, default=3,
                help="rolling-window length in days",
            )
        if name == "scenarios":
            p.set_defaults(days=3)
            p.add_argument(
                "action", nargs="?", choices=("run", "list"), default="run",
                help="run the regression gate, or list the catalog",
            )
            p.add_argument(
                "--with-faults", action="store_true",
                help="compose the canonical transport-fault plan on top "
                "of every scenario (and the baseline)",
            )
            p.add_argument(
                "--service-path", action="store_true",
                help="also score the service path: the online state "
                "published as a snapshot and read back through the "
                "query service (must match the engine bit-for-bit)",
            )
        if name == "serve":
            p.set_defaults(days=3)
            p.add_argument("--host", default="127.0.0.1")
            p.add_argument("--port", type=int, default=8300)
            p.add_argument(
                "--window", type=int, default=3,
                help="online engine rolling-window length in days",
            )
            p.add_argument(
                "--policy", choices=POLICIES, default="carry",
                help="missing/degraded-day policy (default: carry)",
            )
            p.add_argument(
                "--warm-days", type=int, default=None, metavar="N",
                help="fold only the first N days before listening; the "
                "rest fold in the background while serving (default: "
                "fold all --days up front)",
            )
            p.add_argument(
                "--snapshot", default=None, metavar="PATH",
                help="serve a saved snapshot.fpk instead of building a "
                "world and folding days",
            )
            p.add_argument(
                "--save-snapshot", default=None, metavar="PATH",
                help="also write the served snapshot to PATH as "
                "snapshot.fpk",
            )
            p.add_argument(
                "--max-results", type=int, default=1000,
                help="per-query result budget for list answers",
            )
            p.add_argument(
                "--max-inflight", type=int, default=64,
                help="concurrent queries beyond this are shed with 503",
            )
            p.add_argument(
                "--exit-after", type=float, default=None, metavar="SECONDS",
                help="stop serving after this long (CI smoke; default: "
                "serve until interrupted)",
            )
            p.add_argument(
                "--processes", type=int, default=1, metavar="N",
                help="serve from N SO_REUSEPORT worker processes sharing "
                "one memory-mapped snapshot.fpk (default: 1, in-process "
                "daemon); size to the cores you can spare",
            )
            p.add_argument(
                "--fleet-root", default=None, metavar="DIR",
                help="directory for the fleet's shared snapshot.fpk and "
                "version sentinel (default: a fresh temp dir); only "
                "used with --processes > 1",
            )
            p.add_argument(
                "--delta-archive", default=None, metavar="DIR",
                help="also append each published snapshot's delta to a "
                "flowpack delta archive at DIR (O(changed /24s) bytes "
                "per publish; auto-compacts)",
            )
        p.set_defaults(handler=handler)

    query = sub.add_parser(
        "query",
        help="query a running meta-telescope service",
        description="Thin HTTP client for the serve daemon: prints the "
        "JSON answer and exits non-zero on any non-200 response.",
    )
    query.add_argument(
        "endpoint",
        choices=("point", "range", "as", "geo", "diff", "snapshot", "health"),
    )
    query.add_argument("--url", default="http://127.0.0.1:8300")
    query.add_argument("--prefix", default=None,
                       help="CIDR (point: a /24; range: any covering prefix)")
    query.add_argument("--block", type=int, default=None,
                       help="point lookup by /24 block id")
    query.add_argument("--start", type=int, default=None)
    query.add_argument("--end", type=int, default=None)
    query.add_argument("--asn", type=int, default=None)
    query.add_argument("--country", default=None)
    query.add_argument("--since", type=int, default=None,
                       help="diff feed base snapshot version")
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--timeout", type=float, default=10.0)
    query.set_defaults(handler=cmd_query)

    convert = sub.add_parser(
        "convert",
        help="convert a flow file between csv and flowpack",
        description="Convert flow records between the CSV interchange "
        "format and the flowpack binary columnar archive.  The input "
        "format is sniffed from the file itself; conversion streams in "
        "bounded chunks, so paper-scale files never load whole.",
    )
    convert.add_argument("input", help="source flow file (csv or flowpack)")
    convert.add_argument("output", help="destination path")
    convert.add_argument(
        "--to", choices=FLOW_FORMATS, default="flowpack",
        help="target format (default: flowpack)",
    )
    convert.add_argument(
        "--chunk-rows", type=int, default=65536,
        help="rows per streamed conversion chunk (default: 65536)",
    )
    convert.set_defaults(handler=cmd_convert)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
