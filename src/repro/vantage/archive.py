"""Archive-backed vantage-day views: flowpack export and replay.

A :class:`~repro.vantage.sampling.VantageDayView` holds its flows in
memory; an :class:`ArchiveDayView` holds a **path** to a flowpack
archive instead and memory-maps the flows on demand.  The archive's
header metadata carries the vantage code, day and sampling factor, so
one file is a complete, self-describing vantage-day export.

The class quacks like ``VantageDayView`` everywhere the aggregation
core cares (``vantage``/``day``/``sampling_factor``/``num_rows``/
``flows``/``iter_chunks``), so archives feed
:meth:`repro.core.metatelescope.MetaTelescope.accumulate`,
:func:`repro.core.accum.accumulate_views` and the parallel engine
unchanged — and because an ``ArchiveDayView`` pickles as its *path*
(never its mapped pages), parallel workers re-open the mmap in their
own process and fold their assigned row-ranges directly, with no
payload pickling even under ``spawn``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.flowpack import FlowpackArchive, FlowpackWriter
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


def export_view(
    view: VantageDayView, path: str | Path, chunk_rows: int | None = None
) -> "ArchiveDayView":
    """Write a vantage-day view as a self-describing flowpack archive.

    ``chunk_rows`` bounds each written segment (the shape a chunked
    capture stream produces); the returned :class:`ArchiveDayView`
    replays the export bit-identically.
    """
    with FlowpackWriter(
        path, meta=_view_meta(view), family=view.flows.family
    ) as writer:
        for chunk in view.flows.iter_chunks(chunk_rows):
            writer.write(chunk)
    return ArchiveDayView(
        vantage=view.vantage,
        day=view.day,
        path=Path(path),
        sampling_factor=view.sampling_factor,
    )


def export_view_chunks(
    vantage: str,
    day: int,
    chunks: Iterator[FlowTable],
    path: str | Path,
    sampling_factor: float = 1.0,
) -> "ArchiveDayView":
    """Stream a chunked capture straight to disk, one segment a chunk.

    The append-able writer means a ``capture_chunks`` /
    ``export_day_chunks`` stream lands on disk without the day ever
    being materialised in memory.
    """
    meta = {
        "vantage": vantage, "day": int(day),
        "sampling_factor": float(sampling_factor),
    }
    # The archive header needs the family before the first chunk lands,
    # so peek one; a stream with no chunks exports as IPv4.
    chunks = iter(chunks)
    first = next(chunks, None)
    family = first.family if first is not None else "ipv4"
    with FlowpackWriter(path, meta=meta, family=family) as writer:
        if first is not None:
            writer.write(first)
        for chunk in chunks:
            writer.write(chunk)
    return ArchiveDayView(
        vantage=vantage, day=day, path=Path(path),
        sampling_factor=sampling_factor,
    )


def _view_meta(view: VantageDayView) -> dict:
    return {
        "vantage": view.vantage,
        "day": int(view.day),
        "sampling_factor": float(view.sampling_factor),
    }


@dataclass
class ArchiveDayView:
    """A vantage-day whose flows live in a flowpack archive on disk."""

    #: Planner-visible storage class: rows stream off the memmap, so
    #: the planner's cache policy and peak estimate treat the view as
    #: paged, not resident.
    storage = "archive"

    vantage: str
    day: int
    path: Path
    #: 1 / sampling probability (see ``VantageDayView``).
    sampling_factor: float = 1.0
    _archive: FlowpackArchive | None = field(
        default=None, repr=False, compare=False
    )
    _flows: FlowTable | None = field(default=None, repr=False, compare=False)

    @classmethod
    def open(cls, path: str | Path) -> "ArchiveDayView":
        """Open an export written by :func:`export_view`.

        Vantage, day and sampling factor come from the archive's own
        metadata — the file is the complete interchange unit.
        """
        archive = FlowpackArchive(path)
        meta = archive.meta
        missing = {"vantage", "day"} - meta.keys()
        if missing:
            raise ValueError(
                f"{path}: archive metadata lacks {sorted(missing)}; "
                "not a vantage-day export"
            )
        view = cls(
            vantage=str(meta["vantage"]),
            day=int(meta["day"]),
            path=Path(path),
            sampling_factor=float(meta.get("sampling_factor", 1.0)),
        )
        view._archive = archive
        return view

    def archive(self) -> FlowpackArchive:
        """The underlying archive (opened lazily, once per process)."""
        if self._archive is None:
            self._archive = FlowpackArchive(self.path)
        return self._archive

    @property
    def num_rows(self) -> int:
        """Row count from segment headers — no column data touched."""
        return self.archive().num_rows

    @property
    def flows(self) -> FlowTable:
        """The full table (zero-copy for single-segment archives)."""
        if self._flows is None:
            self._flows = self.archive().read_all()
        return self._flows

    def iter_chunks(self, chunk_rows: int | None = None):
        """Bounded-size chunks straight off the memmap (zero-copy)."""
        return self.archive().iter_chunks(chunk_rows)

    def read_rows(self, start: int, stop: int) -> FlowTable:
        """Rows ``[start, stop)``, touching only the spanned segments."""
        return self.archive().read_rows(start, stop)

    def slice_ref(self, start: int, stop: int) -> "ArchiveSlice":
        """A picklable reference to rows ``[start, stop)``.

        This is what the parallel engine ships to workers instead of
        the rows themselves: the worker resolves it by opening the
        archive (its own mmap) and reading the range directly.
        """
        return ArchiveSlice(
            path=self.path, vantage=self.vantage, day=self.day,
            sampling_factor=self.sampling_factor, start=start, stop=stop,
        )

    def aggregates(self):
        """Per-/24 aggregates of the archived day (computed on demand)."""
        from repro.vantage.sampling import compute_block_aggregates

        return compute_block_aggregates(self.flows)

    def decimated(self, factor: int, rng) -> VantageDayView:
        """A further sub-sampled in-memory copy (Figure-10 operation)."""
        return VantageDayView(
            vantage=self.vantage,
            day=self.day,
            flows=self.flows.decimate(factor, rng),
            sampling_factor=self.sampling_factor * factor,
        )

    def estimated_packets(self) -> float:
        """Estimated true packets (streamed; never loads the day whole)."""
        sampled = sum(
            int(chunk.packets.sum()) for chunk in self.iter_chunks(None)
        )
        return float(sampled) * self.sampling_factor

    def with_flows(
        self, flows: FlowTable, sampling_factor: float | None = None
    ) -> VantageDayView:
        """An in-memory view carrying different flows (e.g. after a
        fault injector rewrote the records)."""
        return VantageDayView(
            vantage=self.vantage,
            day=self.day,
            flows=flows,
            sampling_factor=(
                self.sampling_factor
                if sampling_factor is None
                else sampling_factor
            ),
        )

    def materialize(self) -> VantageDayView:
        """A plain in-memory ``VantageDayView`` of the same data."""
        return self.with_flows(self.flows)

    def __getstate__(self):
        # Pickle the descriptor, never the mapped pages: a spawned
        # worker (or any unpickler) re-opens the archive itself.
        state = self.__dict__.copy()
        state["_archive"] = None
        state["_flows"] = None
        return state


@dataclass(frozen=True)
class ArchiveSlice:
    """Picklable (path, row-range) shard reference for workers."""

    path: Path
    vantage: str
    day: int
    sampling_factor: float
    start: int
    stop: int

    def load(self) -> FlowTable:
        """Open the archive in this process and read the range."""
        return FlowpackArchive(self.path).read_rows(self.start, self.stop)
