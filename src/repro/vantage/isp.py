"""ISP border-router NetFlow vantage.

The paper calibrates its dark/active fingerprint (Table 3) on NetFlow
from the ISP that hosts the TUS1 telescope: the ISP's space contains
both genuinely dark subnets (including the telescope) and active ones,
and the border routers see *both directions* of the ISP's traffic —
which is what makes labelling possible (a /24 that receives traffic
but never sends any all week is dark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


@dataclass(slots=True)
class IspVantage:
    """Border capture of everything entering or leaving the ISP."""

    code: str
    asn: int
    blocks: np.ndarray

    def __post_init__(self) -> None:
        self.blocks = np.unique(np.asarray(self.blocks, dtype=np.int64))
        if len(self.blocks) == 0:
            raise ValueError(f"ISP {self.code} owns no blocks")

    def capture(self, flows: FlowTable, day: int) -> VantageDayView:
        """Unsampled view of one day, both directions.

        Only flows that physically traverse the border are captured:
        inbound traffic to the ISP's space plus traffic the ISP itself
        emits.  Packets that merely *claim* an ISP source (spoofed
        elsewhere) never cross this border, and the border routers
        drop inbound packets carrying internal sources (uRPF) — so
        neither pollutes the origination statistics the labelling
        relies on.
        """
        dst_in = np.isin(flows.dst_blocks(), self.blocks)
        src_in = np.isin(flows.src_blocks(), self.blocks)
        emitted = flows.sender_asn == self.asn
        martian = src_in & ~emitted
        return VantageDayView(
            vantage=self.code,
            day=day,
            flows=flows.filter((dst_in | emitted) & ~martian),
            sampling_factor=1.0,
        )

    def capture_chunks(
        self, flows: FlowTable, day: int, chunk_rows: int = 250_000
    ):
        """Stream the border capture as bounded-size flow chunks.

        The border predicate of :meth:`capture` is row-local, so the
        chunked stream concatenates to exactly the one-shot capture
        without holding the full day in memory.
        """
        for chunk in flows.iter_chunks(chunk_rows):
            dst_in = np.isin(chunk.dst_blocks(), self.blocks)
            emitted = chunk.sender_asn == self.asn
            martian = np.isin(chunk.src_blocks(), self.blocks) & ~emitted
            mine = chunk.filter((dst_in | emitted) & ~martian)
            if len(mine):
                yield mine

    def inbound(self, view: VantageDayView) -> FlowTable:
        """Rows destined to the ISP's space."""
        return view.flows.filter(np.isin(view.flows.dst_blocks(), self.blocks))

    def outbound(self, view: VantageDayView) -> FlowTable:
        """Rows originated from the ISP's space."""
        return view.flows.filter(np.isin(view.flows.src_blocks(), self.blocks))
