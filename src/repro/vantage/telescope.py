"""Operational network telescopes (full-capture sensors on dark space).

The paper uses three telescopes — TUS1 (North America, 1,856 /24s),
TEU1 (Central Europe, 768 /24s, ports 23 and 445 blocked at ingress,
some blocks dynamically lent to end users) and TEU2 (Central Europe,
8 /24s, directly peering at ten of the IXPs) — to calibrate thresholds
(Table 2/3), compare port mixes (Table 5) and evaluate coverage
(Table 4).  A telescope capture is an *unsampled* flow table restricted
to the telescope's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP
from repro.vantage.sampling import VantageDayView


@dataclass(slots=True)
class Telescope:
    """A full-capture telescope over a set of /24 blocks."""

    code: str
    region: str
    blocks: np.ndarray
    #: TCP/UDP destination ports dropped by the ingress router (TEU1
    #: blocks 23 and 445).
    blocked_ports: frozenset[int] = frozenset()
    #: Blocks dynamically lent to end users on a given day are not dark
    #: that day; maps day -> array of lent-out blocks.
    lent_blocks_by_day: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.blocks = np.unique(np.asarray(self.blocks, dtype=np.int64))
        if len(self.blocks) == 0:
            raise ValueError(f"telescope {self.code} has no blocks")

    def size(self) -> int:
        """Number of /24 blocks in the telescope."""
        return len(self.blocks)

    def dark_blocks_on(self, day: int) -> np.ndarray:
        """Blocks actually dark on ``day`` (minus lent-out blocks)."""
        lent = self.lent_blocks_by_day.get(day)
        if lent is None or len(lent) == 0:
            return self.blocks
        return np.setdiff1d(self.blocks, np.asarray(lent, dtype=np.int64))

    def capture(self, flows: FlowTable, day: int) -> VantageDayView:
        """The telescope's unsampled view of one ground-truth day.

        Blocks lent out to end users that day are routed to the users,
        not to the sensor, so their traffic is not captured.
        """
        mine = flows.toward_blocks(self.dark_blocks_on(day))
        if self.blocked_ports:
            blocked = np.asarray(sorted(self.blocked_ports), dtype=np.uint16)
            mine = mine.filter(~np.isin(mine.dport, blocked))
        return VantageDayView(
            vantage=self.code, day=day, flows=mine, sampling_factor=1.0
        )

    def capture_chunks(
        self, flows: FlowTable, day: int, chunk_rows: int = 250_000
    ):
        """Stream the day's capture as bounded-size flow chunks.

        Every filter of :meth:`capture` is row-local, so filtering each
        input chunk independently yields exactly the same rows as the
        one-shot capture — without ever materialising the full
        captured table.  Empty chunks are skipped.
        """
        dark = self.dark_blocks_on(day)
        blocked = (
            np.asarray(sorted(self.blocked_ports), dtype=np.uint16)
            if self.blocked_ports
            else None
        )
        for chunk in flows.iter_chunks(chunk_rows):
            mine = chunk.toward_blocks(dark)
            if blocked is not None:
                mine = mine.filter(~np.isin(mine.dport, blocked))
            if len(mine):
                yield mine

    def daily_stats(self, view: VantageDayView) -> "TelescopeDailyStats":
        """Table-2 style statistics for one captured day."""
        flows = view.flows
        total_packets = flows.total_packets()
        tcp = flows.filter(flows.proto == PROTO_TCP)
        tcp_packets = tcp.total_packets()
        tcp_bytes = tcp.total_bytes()
        captured_blocks = len(self.dark_blocks_on(view.day))
        return TelescopeDailyStats(
            code=self.code,
            size_blocks=self.size(),
            packets_per_block=(
                total_packets / captured_blocks if captured_blocks else 0.0
            ),
            tcp_share=tcp_packets / total_packets if total_packets else 0.0,
            avg_tcp_packet_size=tcp_bytes / tcp_packets if tcp_packets else 0.0,
        )


@dataclass(frozen=True, slots=True)
class TelescopeDailyStats:
    """One telescope-day summary (a Table 2 row)."""

    code: str
    size_blocks: int
    packets_per_block: float
    tcp_share: float
    avg_tcp_packet_size: float
