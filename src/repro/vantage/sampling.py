"""Sampled per-day traffic views and their /24 aggregates.

A :class:`VantageDayView` wraps the flows one vantage point exported on
one day, together with the sampling factor needed to rescale counts to
estimates (IPFIX flows carry sampled packet counts; the paper's volume
filter reasons about estimated true packet counts).

The cached aggregate, :class:`BlockAggregates`, is the pipeline's
working set: per observed destination /24 it records TCP packet/byte
sums, packet totals per protocol, the number of distinct destination
IPs seen, how many of those IPs individually violate the size
fingerprint, and per *source* /24 the packets originated — everything
steps 1-7 of the inference need, in columnar form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums
from repro.traffic.packets import PROTO_TCP, PROTO_UDP


@dataclass(frozen=True, slots=True)
class BlockAggregates:
    """Columnar per-/24 statistics for one vantage-day.

    ``blocks`` is sorted ascending; all destination-side arrays align
    with it.  ``src_blocks``/``src_packets``/``src_distinct_ips`` are
    the source-side view (aligned with ``src_blocks``, sorted).
    Counts are *sampled* counts; multiply by the view's
    ``sampling_factor`` for estimates.
    """

    blocks: np.ndarray
    tcp_packets: np.ndarray
    tcp_bytes: np.ndarray
    udp_packets: np.ndarray
    other_packets: np.ndarray
    distinct_dst_ips: np.ndarray
    #: Per block: distinct dst IPs whose individual TCP mean size > threshold
    #: is *not* recorded here (threshold is a pipeline parameter); instead we
    #: keep per-IP sums so the pipeline can apply any threshold.
    dst_ips: np.ndarray
    dst_ip_tcp_packets: np.ndarray
    dst_ip_tcp_bytes: np.ndarray
    dst_ip_total_packets: np.ndarray
    src_blocks: np.ndarray
    src_packets: np.ndarray
    src_distinct_ips: np.ndarray
    src_ips: np.ndarray
    src_ip_packets: np.ndarray

    def total_packets(self) -> np.ndarray:
        """All-protocol sampled packets per destination block."""
        return self.tcp_packets + self.udp_packets + self.other_packets


@dataclass
class VantageDayView:
    """Flows one vantage point exported on one day."""

    #: Planner-visible storage class (archive views say ``"archive"``).
    storage = "memory"

    vantage: str
    day: int
    flows: FlowTable
    #: 1 / sampling probability: multiply sampled counts by this to
    #: estimate true counts.  Telescopes and the ISP use 1.0.
    sampling_factor: float = 1.0
    _aggregates: BlockAggregates | None = field(default=None, repr=False)

    def aggregates(self) -> BlockAggregates:
        """Compute (and cache) the per-/24 aggregates."""
        if self._aggregates is None:
            self._aggregates = compute_block_aggregates(self.flows)
        return self._aggregates

    @property
    def num_rows(self) -> int:
        """Flow-record count.

        Part of the duck interface shared with
        :class:`repro.vantage.archive.ArchiveDayView`, where it comes
        from segment headers without touching (or mapping) the column
        data — size-dependent decisions (chunk sizing, sharding) should
        ask this, not ``len(view.flows)``.
        """
        return len(self.flows)

    def iter_chunks(self, chunk_rows: int | None = None):
        """The view's flows as zero-copy bounded-size chunks.

        The streaming-ingestion entry point: feed each chunk to a
        :class:`repro.core.accum.PrefixAccumulator` with this view's
        vantage, day and sampling factor attached.
        """
        return self.flows.iter_chunks(chunk_rows)

    def decimated(self, factor: int, rng: np.random.Generator) -> "VantageDayView":
        """A further sub-sampled copy (the Figure-10 operation)."""
        return VantageDayView(
            vantage=self.vantage,
            day=self.day,
            flows=self.flows.decimate(factor, rng),
            sampling_factor=self.sampling_factor * factor,
        )

    def with_flows(
        self, flows: FlowTable, sampling_factor: float | None = None
    ) -> "VantageDayView":
        """A copy carrying different flows (aggregate cache reset).

        Fault injectors and replay tools rewrite a view's records; the
        cached :class:`BlockAggregates` would silently describe the old
        table, so a fresh view is the only safe way to swap flows.
        """
        return VantageDayView(
            vantage=self.vantage,
            day=self.day,
            flows=flows,
            sampling_factor=(
                self.sampling_factor if sampling_factor is None else sampling_factor
            ),
        )

    def estimated_packets(self) -> float:
        """Estimated true packet count (sampled count x sampling factor)."""
        return float(self.flows.packets.sum()) * self.sampling_factor


def compute_block_aggregates(flows: FlowTable) -> BlockAggregates:
    """Aggregate a flow table into :class:`BlockAggregates`."""
    dst_blocks_col = flows.dst_blocks()
    is_tcp = flows.proto == PROTO_TCP
    is_udp = flows.proto == PROTO_UDP
    packets = flows.packets

    blocks, (tcp_packets, tcp_bytes, udp_packets, other_packets) = aggregate_sums(
        dst_blocks_col,
        np.where(is_tcp, packets, 0),
        np.where(is_tcp, flows.bytes, 0),
        np.where(is_udp, packets, 0),
        np.where(~is_tcp & ~is_udp, packets, 0),
    )

    # Per destination IP (TCP size fingerprint is evaluated per IP).
    dst_ips, (ip_tcp_packets, ip_tcp_bytes, ip_total_packets) = aggregate_sums(
        flows.dst_ip.astype(np.int64),
        np.where(is_tcp, packets, 0),
        np.where(is_tcp, flows.bytes, 0),
        packets,
    )
    ip_blocks = flows.address_family.block_of(dst_ips)
    distinct_dst_ips = _count_per_group(ip_blocks, blocks)

    # Source side: packets originated per /24, per IP, and distinct IPs.
    src_blocks_col = flows.src_blocks()
    src_blocks, (src_packets,) = aggregate_sums(src_blocks_col, packets)
    src_ips, (src_ip_packets,) = aggregate_sums(
        flows.src_ip.astype(np.int64), packets
    )
    src_distinct_ips = _count_per_group(
        flows.address_family.block_of(src_ips), src_blocks
    )

    return BlockAggregates(
        blocks=blocks,
        tcp_packets=tcp_packets,
        tcp_bytes=tcp_bytes,
        udp_packets=udp_packets,
        other_packets=other_packets,
        distinct_dst_ips=distinct_dst_ips,
        dst_ips=dst_ips,
        dst_ip_tcp_packets=ip_tcp_packets,
        dst_ip_tcp_bytes=ip_tcp_bytes,
        dst_ip_total_packets=ip_total_packets,
        src_blocks=src_blocks,
        src_packets=src_packets,
        src_distinct_ips=src_distinct_ips,
        src_ips=src_ips,
        src_ip_packets=src_ip_packets,
    )


def _count_per_group(member_groups: np.ndarray, groups: np.ndarray) -> np.ndarray:
    """Count how many entries of ``member_groups`` fall in each of ``groups``.

    ``groups`` must be sorted unique values covering every member.
    """
    if len(member_groups) == 0:
        return np.zeros(len(groups), dtype=np.int64)
    index = np.searchsorted(groups, member_groups)
    return np.bincount(index, minlength=len(groups)).astype(np.int64)
