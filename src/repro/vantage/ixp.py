"""IXP vantage points: membership, visibility, flow export.

An IXP sees a flow only if the sender's route toward the destination
crosses its switching fabric.  We model this with per-AS *engagement*
coefficients (direct members engage fully, customers of members
partially via their provider's port, everyone else not at all) and
assign each ground-truth flow to at most one IXP — a packet traverses
at most one public peering point on its path — with probability
proportional to the product of sender-side and receiver-side
engagement and the IXP's capture share.

The exported data is IPFIX-like: packet-sampled flows without payload,
exactly the input the paper's methodology assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.topology import AsTopology
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView

_CHUNK_ROWS = 500_000


@dataclass(slots=True)
class Ixp:
    """One Internet exchange point."""

    code: str
    region: str
    member_asns: frozenset[int]
    #: Probability that a packet between two fully-engaged members
    #: actually crosses this fabric (route preference, capacity).
    capture_share: float
    #: 1 / sampling probability of the IPFIX export.
    sampling_factor: float
    #: Engagement granted to customers of members (remote peering /
    #: transit via a member).
    customer_engagement: float = 0.55
    #: Continent codes of the fabric's home region.  Customers of
    #: members from other continents still engage (transatlantic
    #: transit does cross the big European fabrics) but at a reduced
    #: coefficient, ``remote_customer_engagement``.
    home_continents: frozenset[str] = frozenset()
    remote_customer_engagement: float = 0.30
    #: ASes whose routes verifiably never cross this fabric (the paper
    #: cannot find TUS1's host at CE1 at all).
    excluded_asns: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 < self.capture_share <= 1.0:
            raise ValueError(f"capture_share out of range for {self.code}")
        if self.sampling_factor < 1.0:
            raise ValueError(f"sampling_factor must be >= 1 for {self.code}")


class IxpFabric:
    """All IXPs of a world plus the flow-assignment machinery."""

    def __init__(
        self,
        ixps: list[Ixp],
        topology: AsTopology,
        max_asn: int,
        continent_of_asn: dict[int, str] | None = None,
    ) -> None:
        if not ixps:
            raise ValueError("need at least one IXP")
        codes = [ixp.code for ixp in ixps]
        if len(set(codes)) != len(codes):
            raise ValueError("duplicate IXP codes")
        self.ixps = list(ixps)
        self._engagement = np.zeros((len(ixps), max_asn + 1), dtype=np.float32)
        for row, ixp in enumerate(self.ixps):
            for member in ixp.member_asns:
                if member <= max_asn:
                    self._engagement[row, member] = 1.0
            # Customers of members reach the fabric through their
            # provider; out-of-region customers engage at a discount.
            for member in ixp.member_asns:
                for customer in topology.customer_cone(member):
                    if customer > max_asn or self._engagement[row, customer] > 0.0:
                        continue
                    engagement = ixp.customer_engagement
                    if ixp.home_continents and continent_of_asn is not None:
                        continent = continent_of_asn.get(customer)
                        if continent not in ixp.home_continents:
                            engagement = ixp.remote_customer_engagement
                    self._engagement[row, customer] = engagement
            for excluded in ixp.excluded_asns:
                if excluded <= max_asn:
                    self._engagement[row, excluded] = 0.0

    def codes(self) -> list[str]:
        """IXP codes in declaration order."""
        return [ixp.code for ixp in self.ixps]

    def engagement_of(self, ixp_code: str, asn: int) -> float:
        """Engagement coefficient of ``asn`` at the named IXP."""
        row = self.codes().index(ixp_code)
        if asn < 0 or asn >= self._engagement.shape[1]:
            return 0.0
        return float(self._engagement[row, asn])

    def assign_flows(
        self, flows: FlowTable, rng: np.random.Generator
    ) -> np.ndarray:
        """Assign each flow to one IXP (or none).

        Returns an int array per row: the IXP index, or -1 when the
        flow crosses no modelled fabric.  Flows with unknown sender or
        destination AS (``-1``) never cross an IXP.
        """
        num_rows = len(flows)
        result = np.full(num_rows, -1, dtype=np.int32)
        if num_rows == 0:
            return result
        shares = np.array(
            [ixp.capture_share for ixp in self.ixps], dtype=np.float32
        )
        for start in range(0, num_rows, _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, num_rows)
            result[start:stop] = self._assign_chunk(
                flows.sender_asn[start:stop],
                flows.dst_asn[start:stop],
                shares,
                rng,
            )
        return result

    def _assign_chunk(
        self,
        sender_asn: np.ndarray,
        dst_asn: np.ndarray,
        shares: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        num_rows = len(sender_asn)
        max_asn = self._engagement.shape[1] - 1
        sender = np.clip(sender_asn.astype(np.int64), 0, max_asn)
        dst = np.clip(dst_asn.astype(np.int64), 0, max_asn)
        known = (sender_asn >= 0) & (dst_asn >= 0)
        # (rows, ixps) score matrix.
        send_eng = self._engagement[:, sender].T
        recv_eng = self._engagement[:, dst].T
        scores = send_eng * recv_eng * shares[np.newaxis, :]
        scores[~known, :] = 0.0
        totals = scores.sum(axis=1)
        # Cap the total crossing probability: private interconnects and
        # transit-only paths bypass every IXP.
        over = totals > 0.92
        if over.any():
            scores[over, :] *= (0.92 / totals[over])[:, np.newaxis]
        cumulative = np.cumsum(scores, axis=1)
        draw = rng.random(num_rows, dtype=np.float32)
        # For each row, pick the first IXP whose cumulative score
        # exceeds the draw; draws beyond the total fall off the end.
        chosen = (draw[:, np.newaxis] < cumulative).argmax(axis=1)
        missed = draw >= cumulative[:, -1]
        out = chosen.astype(np.int32)
        out[missed] = -1
        return out

    def views_for_day(
        self, flows: FlowTable, day: int, rng: np.random.Generator
    ) -> dict[str, VantageDayView]:
        """Split a ground-truth day into per-IXP sampled views."""
        assignment = self.assign_flows(flows, rng)
        views: dict[str, VantageDayView] = {}
        for index, ixp in enumerate(self.ixps):
            mine = flows.filter(assignment == index)
            sampled = mine.thin(1.0 / ixp.sampling_factor, rng)
            views[ixp.code] = VantageDayView(
                vantage=ixp.code,
                day=day,
                flows=sampled,
                sampling_factor=ixp.sampling_factor,
            )
        return views

    def export_day_chunks(
        self,
        flows: FlowTable,
        rng: np.random.Generator,
        chunk_rows: int = _CHUNK_ROWS,
    ):
        """Stream per-IXP sampled exports chunk by chunk.

        For each bounded-size ground-truth chunk, yields a mapping
        ``ixp code -> sampled flow chunk`` (codes with no rows in the
        chunk are omitted), never materialising a full per-IXP day
        table.  Assignment and thinning draw from ``rng`` per chunk,
        so the realisation differs from (but is distributed identically
        to) a one-shot :meth:`views_for_day` export.
        """
        shares = np.array(
            [ixp.capture_share for ixp in self.ixps], dtype=np.float32
        )
        for chunk in flows.iter_chunks(chunk_rows):
            assignment = np.empty(len(chunk), dtype=np.int32)
            assignment[:] = self._assign_chunk(
                chunk.sender_asn, chunk.dst_asn, shares, rng
            )
            exports: dict[str, FlowTable] = {}
            for index, ixp in enumerate(self.ixps):
                mine = chunk.filter(assignment == index)
                sampled = mine.thin(1.0 / ixp.sampling_factor, rng)
                if len(sampled):
                    exports[ixp.code] = sampled
            if exports:
                yield exports
