"""IPFIX (RFC 7011) encoding and decoding of flow tables.

The paper's IXP data "is exported through the Internet Protocol Flow
Information Export (IPFIX) protocol [RFC 7011] and contains aggregated
packet header information about network flows".  This module speaks
that wire format for the fields the methodology uses, so a view can be
shipped to (or ingested from) a real collector:

========================  ====  =====
Information Element         ID  bytes
========================  ====  =====
octetDeltaCount              1      8
packetDeltaCount             2      8
protocolIdentifier           4      1
sourceIPv4Address            8      4
destinationTransportPort    11      2
destinationIPv4Address      12      4
bgpSourceAsNumber           16      4
bgpDestinationAsNumber      17      4
========================  ====  =====

The ground-truth ``spoofed`` flag is deliberately *not* exported —
no collector can know it; decoding yields ``spoofed=False``, and
unknown AS numbers travel as 0 (the IPFIX convention) and decode back
to -1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable

IPFIX_VERSION = 10
TEMPLATE_SET_ID = 2
#: Our single template's id (must be >= 256).
FLOW_TEMPLATE_ID = 256

#: (information element id, length, FlowTable column), export order.
_FIELDS: tuple[tuple[int, int, str], ...] = (
    (1, 8, "bytes"),
    (2, 8, "packets"),
    (4, 1, "proto"),
    (8, 4, "src_ip"),
    (11, 2, "dport"),
    (12, 4, "dst_ip"),
    (16, 4, "sender_asn"),
    (17, 4, "dst_asn"),
)
_RECORD_LENGTH = sum(length for _, length, _ in _FIELDS)
_MESSAGE_HEADER = struct.Struct("!HHIII")
_SET_HEADER = struct.Struct("!HH")
_MAX_MESSAGE_LENGTH = 65_535


class IpfixError(ValueError):
    """Raised on malformed IPFIX bytes."""


@dataclass(frozen=True, slots=True)
class IpfixMessageInfo:
    """Parsed header of one IPFIX message."""

    export_time: int
    sequence: int
    observation_domain: int
    num_records: int


def _template_set() -> bytes:
    body = struct.pack("!HH", FLOW_TEMPLATE_ID, len(_FIELDS))
    for element_id, length, _ in _FIELDS:
        body += struct.pack("!HH", element_id, length)
    return _SET_HEADER.pack(TEMPLATE_SET_ID, _SET_HEADER.size + len(body)) + body


def _pack_records(flows: FlowTable, start: int, stop: int) -> bytes:
    chunks = []
    for i in range(start, stop):
        record = b""
        for element_id, length, column in _FIELDS:
            value = int(getattr(flows, column)[i])
            if column in ("sender_asn", "dst_asn") and value < 0:
                value = 0  # the IPFIX "unknown" convention
            record += value.to_bytes(length, "big")
        chunks.append(record)
    return b"".join(chunks)


def encode_ipfix(
    flows: FlowTable,
    observation_domain: int = 1,
    export_time: int = 0,
    first_sequence: int = 0,
) -> list[bytes]:
    """Encode a flow table as one or more IPFIX messages.

    Every message carries the template set followed by a data set, so
    each is independently decodable.  Messages never exceed the
    RFC 7011 length limit of 65,535 bytes.
    """
    template = _template_set()
    overhead = _MESSAGE_HEADER.size + len(template) + _SET_HEADER.size
    per_message = (_MAX_MESSAGE_LENGTH - overhead) // _RECORD_LENGTH
    messages = []
    sequence = first_sequence
    total = len(flows)
    start = 0
    while start < total or (total == 0 and not messages):
        stop = min(start + per_message, total)
        records = _pack_records(flows, start, stop)
        data_set = (
            _SET_HEADER.pack(FLOW_TEMPLATE_ID, _SET_HEADER.size + len(records))
            + records
        )
        length = _MESSAGE_HEADER.size + len(template) + len(data_set)
        header = _MESSAGE_HEADER.pack(
            IPFIX_VERSION, length, export_time, sequence, observation_domain
        )
        messages.append(header + template + data_set)
        sequence += stop - start
        start = stop
        if total == 0:
            break
    return messages


def decode_ipfix(messages: list[bytes]) -> tuple[FlowTable, list[IpfixMessageInfo]]:
    """Decode IPFIX messages back into a flow table (+ header info).

    Only the template of this module is understood; data sets that
    reference an unseen template id raise :class:`IpfixError`.
    """
    columns: dict[str, list[int]] = {column: [] for _, _, column in _FIELDS}
    infos = []
    known_templates: set[int] = set()
    for message in messages:
        if len(message) < _MESSAGE_HEADER.size:
            raise IpfixError("truncated message header")
        version, length, export_time, sequence, domain = _MESSAGE_HEADER.unpack(
            message[: _MESSAGE_HEADER.size]
        )
        if version != IPFIX_VERSION:
            raise IpfixError(f"not an IPFIX message (version {version})")
        if length != len(message):
            raise IpfixError("message length mismatch")
        offset = _MESSAGE_HEADER.size
        records_in_message = 0
        while offset < length:
            if length - offset < _SET_HEADER.size:
                raise IpfixError("truncated set header")
            set_id, set_length = _SET_HEADER.unpack(
                message[offset : offset + _SET_HEADER.size]
            )
            if set_length < _SET_HEADER.size or offset + set_length > length:
                raise IpfixError("bad set length")
            body = message[offset + _SET_HEADER.size : offset + set_length]
            if set_id == TEMPLATE_SET_ID:
                _check_template(body)
                known_templates.add(FLOW_TEMPLATE_ID)
            elif set_id == FLOW_TEMPLATE_ID:
                if set_id not in known_templates:
                    raise IpfixError(f"data set for unknown template {set_id}")
                records_in_message += _unpack_records(body, columns)
            else:
                raise IpfixError(f"unsupported set id {set_id}")
            offset += set_length
        infos.append(
            IpfixMessageInfo(
                export_time=export_time,
                sequence=sequence,
                observation_domain=domain,
                num_records=records_in_message,
            )
        )
    count = len(columns["src_ip"])
    sender = np.array(columns["sender_asn"], dtype=np.int64)
    dst_asn = np.array(columns["dst_asn"], dtype=np.int64)
    table = FlowTable(
        src_ip=np.array(columns["src_ip"], dtype=np.uint32),
        dst_ip=np.array(columns["dst_ip"], dtype=np.uint32),
        proto=np.array(columns["proto"], dtype=np.uint8),
        dport=np.array(columns["dport"], dtype=np.uint16),
        packets=np.array(columns["packets"], dtype=np.int64),
        bytes=np.array(columns["bytes"], dtype=np.int64),
        sender_asn=np.where(sender == 0, -1, sender).astype(np.int32),
        dst_asn=np.where(dst_asn == 0, -1, dst_asn).astype(np.int32),
        spoofed=np.zeros(count, dtype=bool),
    )
    return table, infos


def _check_template(body: bytes) -> None:
    if len(body) < 4:
        raise IpfixError("truncated template")
    template_id, field_count = struct.unpack("!HH", body[:4])
    if template_id != FLOW_TEMPLATE_ID or field_count != len(_FIELDS):
        raise IpfixError("unsupported template")
    expected = b"".join(
        struct.pack("!HH", element_id, length) for element_id, length, _ in _FIELDS
    )
    if body[4 : 4 + len(expected)] != expected:
        raise IpfixError("template field mismatch")


def _unpack_records(body: bytes, columns: dict[str, list[int]]) -> int:
    usable = len(body) - (len(body) % _RECORD_LENGTH)  # ignore padding
    count = 0
    for offset in range(0, usable, _RECORD_LENGTH):
        cursor = offset
        for _, length, column in _FIELDS:
            columns[column].append(
                int.from_bytes(body[cursor : cursor + length], "big")
            )
            cursor += length
        count += 1
    return count
