"""Vantage-point substrate: IXPs, operational telescopes, ISP NetFlow.

Every vantage point produces :class:`~repro.vantage.sampling.VantageDayView`
objects — one per (site, day) — which are the only traffic input the
inference pipeline ever sees.
"""

from repro.vantage.sampling import VantageDayView
from repro.vantage.ixp import Ixp, IxpFabric
from repro.vantage.telescope import Telescope
from repro.vantage.isp import IspVantage
from repro.vantage.transit import TransitIspVantage

__all__ = [
    "VantageDayView",
    "Ixp",
    "IxpFabric",
    "Telescope",
    "IspVantage",
    "TransitIspVantage",
]
