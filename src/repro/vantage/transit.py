"""Transit-ISP vantage point (paper Section 9, "The Vantage Point Effect").

The paper's future work: apply the methodology to flows captured at a
large transit ISP instead of an IXP.  The discussion names three
advantages, all modelled here:

* **no asymmetric routing** — a transit provider sees both directions
  of its customers' traffic, so there is no CDN-ACK-style blind spot;
* **BCP 38 at the edge** — customer-facing interfaces validate source
  addresses, so spoofed packets claiming in-cone sources never enter
  (packets from *outside* the cone can still carry arbitrary spoofed
  sources, exactly like at an IXP);
* **higher sampling rates** — NetFlow at 1/100-1/1000 rather than the
  IXPs' 1/10k-class sampling.

The vantage captures every flow whose sender or destination lies in
the provider's customer cone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.topology import AsTopology
from repro.datasets.pfx2as import PrefixToAsMap
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


@dataclass
class TransitIspVantage:
    """Flow capture at a transit provider's border routers."""

    code: str
    asn: int
    topology: AsTopology
    pfx2as: PrefixToAsMap
    #: NetFlow sampling: 1 / sampling probability (ISPs sample lightly).
    sampling_factor: float = 4.0
    #: Whether customer-facing interfaces enforce BCP 38.
    bcp38_at_edge: bool = True
    _cone: frozenset[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.sampling_factor < 1.0:
            raise ValueError("sampling_factor must be >= 1")
        self._cone = self.topology.customer_cone(self.asn)

    @property
    def cone(self) -> frozenset[int]:
        """The provider's customer cone (itself included)."""
        return self._cone

    def _cone_mask(self, asns: np.ndarray) -> np.ndarray:
        cone = np.fromiter(self._cone, dtype=np.int64)
        return np.isin(asns.astype(np.int64), cone)

    def capture(
        self, flows: FlowTable, day: int, rng: np.random.Generator
    ) -> VantageDayView:
        """The transit provider's sampled view of one ground-truth day.

        A flow traverses the provider iff its (actual) sender or its
        destination sits inside the cone.  With BCP 38 at the edge,
        in-cone senders cannot emit packets claiming out-of-cone
        sources, so such flows are dropped before export; spoofed
        traffic *entering* from outside is untouched.
        """
        sender_in = self._cone_mask(flows.sender_asn)
        dst_in = self._cone_mask(flows.dst_asn)
        traverses = sender_in | dst_in
        if self.bcp38_at_edge:
            claimed = self.pfx2as.asns_of_blocks(flows.src_blocks())
            claimed_in = self._cone_mask(claimed)
            # In-cone senders claiming an out-of-cone source are
            # dropped at the customer edge.
            martian = sender_in & ~claimed_in
            traverses &= ~martian
        mine = flows.filter(traverses)
        sampled = mine.thin(1.0 / self.sampling_factor, rng)
        return VantageDayView(
            vantage=self.code,
            day=day,
            flows=sampled,
            sampling_factor=self.sampling_factor,
        )
