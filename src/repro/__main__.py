"""``python -m repro`` dispatches to the CLI.

The ``__main__`` guard is load-bearing: ``serve --processes N`` spawns
worker processes, and the ``spawn`` start method re-imports the parent's
main module in each child — without the guard every worker would re-run
the CLI instead of its worker loop.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
