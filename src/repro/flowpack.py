"""Flowpack: binary columnar archives (flows, and generic tables).

Row-oriented CSV is untenable at replay scale — a multi-GB vantage-day
costs one Python ``int()`` call per cell in both directions.  Flowpack
stores columnar data the way the pipeline already holds it: **per-column
contiguous numpy buffers**, so reading a day back is an ``np.memmap``
plus a handful of zero-copy views instead of millions of string
conversions.

The container is schema-generic: the header JSON names the columns and
their dtypes, and two archive *kinds* are built on it —

* **flow archives** (:class:`FlowpackArchive`, the original kind): the
  per-family column schema (:func:`repro.traffic.flows.flow_columns`)
  of a :class:`~repro.traffic.flows.FlowTable` — the nine IPv4 columns,
  or the IPv6 schema with its uint64 keys and ``*_ip_lo`` columns;
* **table archives** (:class:`TableArchive` / :class:`TableWriter`):
  any caller-declared column set.  This is what
  :mod:`repro.core.snapshot` uses for ``snapshot.fpk`` files — the
  immutable classification snapshots the query service memory-maps.

Layout (all integers little-endian)::

    file   := magic header segment*
    magic  := b"FLOWPACK"                            (8 bytes)
    header := u32 version, u32 json_len,
              json_len bytes of UTF-8 JSON, pad8
              -- JSON: {"columns": [[name, dtype], ...], "meta": {...}}
    segment:= b"SEGM", u64 rows,
              (u64 nbytes, u32 crc32) per column, pad8,
              column buffers (each padded to 8 bytes), in header order

Design properties:

* **Append-able** — a segment is self-describing, so a chunked vantage
  capture streams straight to disk: every
  :meth:`TableWriter.write_columns` call appends one segment and
  nothing is ever rewritten.
* **Zero-copy reads** — readers return numpy views into one shared
  ``np.memmap``; slicing chunks out of them never copies a row.  All
  offsets are 8-byte aligned by construction, and opening an archive is
  O(header): column payloads are touched only when read.
* **Per-column checksums** — every buffer carries a CRC-32.  Strict
  readers raise :class:`FlowpackError` naming the file, segment and
  column; the lenient reader degrades exactly like damaged CSV does,
  skipping the bad segment and collecting a
  :class:`~repro.io.ParseReport` (the quarantine path
  :mod:`repro.faults` policies key on).
* **Self-describing metadata** — the header JSON carries an arbitrary
  ``meta`` mapping, which vantage exports use to store the vantage
  code, day and sampling factor (:mod:`repro.vantage.archive`), and
  snapshots use for their provenance record.

The public flow entry points mirror the CSV ones re-exported from
:mod:`repro.io`: :func:`write_flows_archive`, :func:`read_flows_archive`,
:func:`read_flows_archive_lenient` and :func:`iter_flows_archive` are
drop-in for their ``*_csv`` counterparts.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.net.family import FAMILY_IPV4, FAMILY_IPV6
from repro.traffic.flows import FlowTable, flow_columns

#: File magic; also what :func:`is_flowpack` sniffs.
MAGIC = b"FLOWPACK"
#: Format version written by this module.
FLOWPACK_VERSION = 1
#: Per-segment marker.
_SEGMENT_MAGIC = b"SEGM"

_FILE_HEADER = struct.Struct("<II")  # version, json_len
_SEGMENT_HEADER = struct.Struct("<Q")  # rows
_COLUMN_HEADER = struct.Struct("<QI")  # nbytes, crc32


class FlowpackError(ValueError):
    """Structural damage in a flowpack file (bad header, checksum,
    truncation).  A ``ValueError`` so strict callers that already catch
    CSV parse errors catch flowpack damage the same way."""


def _pad8(n: int) -> int:
    """Bytes of padding that align ``n`` up to an 8-byte boundary."""
    return (-n) % 8


def _spec_of(columns: Mapping[str, Any]) -> list[list[str]]:
    """The header-JSON form of a ``name -> dtype`` column schema."""
    return [[name, np.dtype(dtype).str] for name, dtype in columns.items()]


def _column_spec(family: str = FAMILY_IPV4) -> list[list[str]]:
    return _spec_of(flow_columns(family))


def _flow_family_of_spec(spec: list[list[str]], path) -> str:
    """The address family whose flow schema matches a header spec."""
    for name in (FAMILY_IPV4, FAMILY_IPV6):
        if spec == _column_spec(name):
            return name
    raise FlowpackError(f"{path}: not a flow archive schema: {spec}")


@dataclass(frozen=True, slots=True)
class SegmentInfo:
    """Location of one segment's buffers inside the file."""

    index: int
    #: First global row of this segment (segments concatenate in order).
    start_row: int
    rows: int
    #: Absolute byte offset of each column buffer, in column order.
    offsets: tuple[int, ...]
    nbytes: tuple[int, ...]
    checksums: tuple[int, ...]

    @property
    def stop_row(self) -> int:
        return self.start_row + self.rows


# -- writing ------------------------------------------------------------


class TableWriter:
    """Append-able writer for a generic columnar archive.

    ``columns`` declares the schema (``name -> dtype``); every
    :meth:`write_columns` call appends one self-describing segment.
    ``append=True`` re-opens an existing archive, validates its header
    against the declared schema, and appends after the last intact
    segment.  Use as a context manager; an empty write is a no-op
    (segments always hold at least one row).
    """

    def __init__(
        self,
        path: str | Path,
        columns: Mapping[str, Any],
        meta: Mapping[str, Any] | None = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self.columns = {
            name: np.dtype(dtype) for name, dtype in columns.items()
        }
        if not self.columns:
            raise ValueError("an archive needs at least one column")
        self._rows = 0
        if append and self.path.exists() and self.path.stat().st_size > 0:
            _, _, segments, _ = _scan_table(
                self.path, strict=True, expected=_spec_of(self.columns)
            )
            self._rows = segments[-1].stop_row if segments else 0
            self._handle = open(self.path, "ab")
        else:
            self._handle = open(self.path, "wb")
            payload = json.dumps(
                {"columns": _spec_of(self.columns), "meta": dict(meta or {})},
                sort_keys=True,
            ).encode()
            self._handle.write(MAGIC)
            self._handle.write(_FILE_HEADER.pack(FLOWPACK_VERSION, len(payload)))
            self._handle.write(payload)
            self._handle.write(b"\x00" * _pad8(len(payload)))

    @property
    def rows_written(self) -> int:
        """Total rows in the archive, appended-to segments included."""
        return self._rows

    def write_columns(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Append one segment holding ``arrays`` (no-op when empty).

        Every schema column must be present, and all arrays must share
        one length.
        """
        missing = set(self.columns) - set(arrays)
        if missing:
            raise ValueError(f"segment lacks columns: {sorted(missing)}")
        lengths = {len(arrays[name]) for name in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged segment columns: lengths {lengths}")
        rows = lengths.pop()
        if rows == 0:
            return
        buffers = []
        for name, dtype in self.columns.items():
            column = np.ascontiguousarray(arrays[name], dtype=dtype)
            buffers.append(column.tobytes())
        header = [_SEGMENT_MAGIC, _SEGMENT_HEADER.pack(rows)]
        for buffer in buffers:
            header.append(
                _COLUMN_HEADER.pack(len(buffer), zlib.crc32(buffer))
            )
        header_bytes = b"".join(header)
        self._handle.write(header_bytes)
        self._handle.write(b"\x00" * _pad8(len(header_bytes)))
        for buffer in buffers:
            self._handle.write(buffer)
            self._handle.write(b"\x00" * _pad8(len(buffer)))
        self._rows += rows

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FlowpackWriter(TableWriter):
    """Append-able flow-archive writer (one segment per :meth:`write`).

    ``family`` picks the flow schema (``"ipv4"`` default).  Appending
    to an existing archive adopts *its* family; passing a conflicting
    one raises.
    """

    def __init__(
        self,
        path: str | Path,
        meta: Mapping[str, Any] | None = None,
        append: bool = False,
        family: str | None = None,
    ) -> None:
        target = Path(path)
        if append and target.exists() and target.stat().st_size > 0:
            _, spec, _, _ = _scan_table(target, strict=True)
            existing = _flow_family_of_spec(spec, target)
            if family is not None and family != existing:
                raise FlowpackError(
                    f"{target}: cannot append {family} flows to an "
                    f"{existing} archive"
                )
            family = existing
        self.family = family if family is not None else FAMILY_IPV4
        super().__init__(
            path, flow_columns(self.family), meta=meta, append=append
        )

    def write(self, flows: FlowTable) -> None:
        """Append one segment holding ``flows`` (no-op when empty)."""
        if flows.family != self.family:
            if len(flows) == 0:
                return
            raise FlowpackError(
                f"{self.path}: cannot write {flows.family} flows to an "
                f"{self.family} archive"
            )
        self.write_columns(
            {name: getattr(flows, name) for name in self.columns}
        )


def write_flows_archive(
    flows: FlowTable,
    path: str | Path,
    meta: Mapping[str, Any] | None = None,
    chunk_rows: int | None = None,
) -> None:
    """Write a flow table as a flowpack archive.

    ``chunk_rows`` splits the table into multiple segments (the shape a
    chunked capture stream would have produced); ``None`` writes one
    segment.  An empty table yields a valid zero-segment archive (whose
    header still records the table's family).
    """
    with FlowpackWriter(path, meta=meta, family=flows.family) as writer:
        for chunk in flows.iter_chunks(chunk_rows):
            writer.write(chunk)


def append_flows_archive(flows: FlowTable, path: str | Path) -> None:
    """Append ``flows`` as one new segment to an existing archive."""
    with FlowpackWriter(path, append=True, family=flows.family) as writer:
        writer.write(flows)


def write_table_archive(
    arrays: Mapping[str, np.ndarray],
    path: str | Path,
    meta: Mapping[str, Any] | None = None,
) -> None:
    """Write aligned arrays as a one-segment generic table archive.

    The schema is taken from the arrays themselves (name and dtype, in
    mapping order).  Empty arrays yield a valid zero-segment archive
    that still carries the schema and ``meta``.
    """
    columns = {name: array.dtype for name, array in arrays.items()}
    with TableWriter(path, columns, meta=meta) as writer:
        writer.write_columns(arrays)


def append_table_columns(
    arrays: Mapping[str, np.ndarray], path: str | Path
) -> None:
    """Append aligned arrays as one new segment to an existing generic
    table archive (the schema comes from the archive's own header; an
    empty append is a no-op, exactly like :meth:`TableWriter.write_columns`).

    This is how the snapshot delta store grows its ``deltas.fpk``: one
    self-describing segment per publish, nothing ever rewritten.
    """
    _, spec, _, _ = _scan_table(path, strict=True)
    columns = {name: np.dtype(dtype) for name, dtype in spec}
    with TableWriter(path, columns, append=True) as writer:
        writer.write_columns(arrays)


# -- scanning -----------------------------------------------------------


def is_flowpack(path: str | Path) -> bool:
    """Whether ``path`` starts with the flowpack magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _scan_table(
    path: str | Path,
    strict: bool = True,
    expected: list[list[str]] | None = None,
):
    """Walk an archive's headers without touching the column data.

    Returns ``(meta, columns_spec, segments, report)`` where
    ``columns_spec`` is the header's ``[[name, dtype], ...]`` schema.
    With ``expected`` the header schema must match it exactly —
    structural damage before the first segment (bad magic, header,
    schema) is always fatal, exactly like a wrong CSV header.  A
    truncated or malformed *segment* is fatal in strict mode; lenient
    mode stops at the damage and records it in the report (everything
    after a truncation point is unreadable).

    Checksums are **not** verified here — scanning must stay O(header)
    so an ``np.memmap`` open of a multi-GB archive is instant;
    per-segment verification happens on first read.
    """
    from repro.io import ParseReport, RowError  # local: io imports us

    path = Path(path)
    report = ParseReport(path=str(path))
    size = path.stat().st_size
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _FILE_HEADER.size)
        if len(prefix) < len(MAGIC) + _FILE_HEADER.size or not prefix.startswith(
            MAGIC
        ):
            raise FlowpackError(f"{path}: not a flowpack file")
        version, json_len = _FILE_HEADER.unpack_from(prefix, len(MAGIC))
        if version != FLOWPACK_VERSION:
            raise FlowpackError(
                f"{path}: unsupported flowpack version {version}"
            )
        payload = handle.read(json_len)
        if len(payload) < json_len:
            raise FlowpackError(f"{path}: truncated header")
        try:
            header = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FlowpackError(f"{path}: corrupt header JSON: {error}") from None
        spec = header.get("columns")
        if expected is not None and spec != expected:
            raise FlowpackError(
                f"{path}: unexpected flowpack schema: {spec}"
            )
        if (
            not isinstance(spec, list)
            or not spec
            or not all(
                isinstance(col, list) and len(col) == 2 for col in spec
            )
        ):
            raise FlowpackError(f"{path}: malformed column schema: {spec}")
        try:
            itemsizes = [np.dtype(dtype).itemsize for _, dtype in spec]
        except TypeError as error:
            raise FlowpackError(
                f"{path}: unreadable column dtype: {error}"
            ) from None
        meta = header.get("meta", {})
        ncols = len(spec)
        handle.seek(_pad8(json_len), 1)

        segments: list[SegmentInfo] = []
        start_row = 0
        seg_header_size = (
            len(_SEGMENT_MAGIC) + _SEGMENT_HEADER.size
            + ncols * _COLUMN_HEADER.size
        )
        seg_header_size += _pad8(seg_header_size)
        while True:
            base = handle.tell()
            if base >= size:
                break
            raw = handle.read(seg_header_size)
            damage = None
            if len(raw) < seg_header_size or not raw.startswith(_SEGMENT_MAGIC):
                damage = "truncated or corrupt segment header"
                rows = 0
            else:
                (rows,) = _SEGMENT_HEADER.unpack_from(raw, len(_SEGMENT_MAGIC))
                offsets, nbytes, checksums = [], [], []
                cursor = base + seg_header_size
                pos = len(_SEGMENT_MAGIC) + _SEGMENT_HEADER.size
                for (name, _), itemsize in zip(spec, itemsizes):
                    length, crc = _COLUMN_HEADER.unpack_from(raw, pos)
                    pos += _COLUMN_HEADER.size
                    if length != rows * itemsize:
                        damage = (
                            f"column {name!r} holds {length} bytes, "
                            f"expected {rows * itemsize}"
                        )
                        break
                    offsets.append(cursor)
                    nbytes.append(length)
                    checksums.append(crc)
                    cursor += length + _pad8(length)
                if damage is None and cursor > size:
                    damage = (
                        f"segment data runs past end of file "
                        f"({cursor} > {size} bytes)"
                    )
                if damage is None and rows == 0:
                    damage = "segment with zero rows"
            if damage is not None:
                message = f"segment {len(segments)}: {damage}"
                if strict:
                    raise FlowpackError(f"{path}: {message}")
                report.errors.append(
                    RowError(
                        line=len(segments) + 1, message=message,
                        text=f"byte offset {base}",
                    )
                )
                # Resync: scan forward for the next segment magic, so a
                # single damaged header loses one segment, not the rest
                # of the archive.  (A 4-byte magic plus per-column exact
                # length checks makes a false resync vanishingly
                # unlikely.)  No magic ahead = a truncated tail; stop.
                handle.seek(base + 1)
                rest = handle.read()
                resync = rest.find(_SEGMENT_MAGIC)
                if resync < 0:
                    break
                handle.seek(base + 1 + resync)
                continue
            segments.append(
                SegmentInfo(
                    index=len(segments),
                    start_row=start_row,
                    rows=rows,
                    offsets=tuple(offsets),
                    nbytes=tuple(nbytes),
                    checksums=tuple(checksums),
                )
            )
            report.total_rows += rows
            report.good_rows += rows
            start_row += rows
            handle.seek(cursor)
    return meta, spec, segments, report


def scan_archive(
    path: str | Path, strict: bool = True
):
    """Walk a *flow* archive's headers without touching column data.

    Returns ``(meta, segments, report)``; the schema must be one of the
    per-family flow schemas (:func:`repro.traffic.flows.flow_columns`).
    See :func:`_scan_table` for the strict/lenient damage semantics.
    """
    meta, spec, segments, report = _scan_table(path, strict=strict)
    _flow_family_of_spec(spec, path)
    return meta, segments, report


# -- reading ------------------------------------------------------------


class TableArchive:
    """A memory-mapped generic columnar archive.

    Column data is a single shared ``np.memmap``; every array this
    object hands out is a zero-copy (read-only) view into it.  Each
    segment's checksums are verified once, on first read; pass
    ``verify=False`` to skip (e.g. a worker re-reading a range the
    coordinator already verified).  ``expected_columns`` pins the
    schema (open fails on a mismatch); without it the archive's own
    header schema is served as-is.
    """

    def __init__(
        self,
        path: str | Path,
        expected_columns: Mapping[str, Any] | None = None,
        *,
        _scanned=None,
    ) -> None:
        self.path = Path(path)
        expected = (
            _spec_of(expected_columns) if expected_columns is not None else None
        )
        if _scanned is None:
            self.meta, spec, self.segments, _ = _scan_table(
                self.path, strict=True, expected=expected
            )
        else:  # pre-scanned (the lenient reader's salvage path)
            self.meta, spec, self.segments = _scanned
        #: The archive's schema, as ``name -> np.dtype``.
        self.columns: dict[str, np.dtype] = {
            name: np.dtype(dtype) for name, dtype in spec
        }
        self.num_rows = (
            self.segments[-1].stop_row if self.segments else 0
        )
        self._mmap: np.ndarray | None = None
        self._verified = [False] * len(self.segments)

    def _data(self) -> np.ndarray:
        if self._mmap is None:
            self._mmap = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mmap

    def verify_segment(self, index: int) -> None:
        """Check one segment's per-column CRC-32s (idempotent)."""
        if self._verified[index]:
            return
        segment = self.segments[index]
        data = self._data()
        for name, offset, nbytes, expected in zip(
            self.columns, segment.offsets, segment.nbytes,
            segment.checksums,
        ):
            actual = zlib.crc32(data[offset:offset + nbytes])
            if actual != expected:
                raise FlowpackError(
                    f"{self.path}: segment {index}: column {name!r} "
                    f"checksum mismatch (stored {expected:#010x}, "
                    f"computed {actual:#010x})"
                )
        self._verified[index] = True

    def segment_arrays(
        self, index: int, verify: bool = True
    ) -> dict[str, np.ndarray]:
        """One segment as zero-copy memmap-backed column arrays."""
        if verify:
            self.verify_segment(index)
        segment = self.segments[index]
        data = self._data()
        arrays = {}
        for (name, dtype), offset, nbytes in zip(
            self.columns.items(), segment.offsets, segment.nbytes
        ):
            arrays[name] = data[offset:offset + nbytes].view(dtype)
        return arrays

    def read_arrays(self, verify: bool = True) -> dict[str, np.ndarray]:
        """All columns, concatenated (zero-copy iff one segment)."""
        if not self.segments:
            return {
                name: np.empty(0, dtype=dtype)
                for name, dtype in self.columns.items()
            }
        if len(self.segments) == 1:
            return self.segment_arrays(0, verify=verify)
        parts = [
            self.segment_arrays(i, verify=verify)
            for i in range(len(self.segments))
        ]
        return {
            name: np.concatenate([part[name] for part in parts])
            for name in self.columns
        }

    def read_column(self, name: str, verify: bool = True) -> np.ndarray:
        """One column, concatenated across segments."""
        if name not in self.columns:
            raise KeyError(f"{self.path}: no column {name!r}")
        return self.read_arrays(verify=verify)[name]

    def __len__(self) -> int:
        return self.num_rows


def open_table_archive(
    path: str | Path, expected_columns: Mapping[str, Any] | None = None
) -> TableArchive:
    """Open (and structurally validate) a generic table archive."""
    return TableArchive(path, expected_columns=expected_columns)


class FlowpackArchive(TableArchive):
    """A memory-mapped *flow* archive (schema pinned per family).

    The header schema must be one of the per-family flow schemas; the
    resolved family is exposed as :attr:`family` and stamped on every
    table handed out.  Every :class:`~repro.traffic.flows.FlowTable`
    this object returns holds zero-copy (read-only) views into one
    shared ``np.memmap``.
    """

    def __init__(self, path: str | Path, *, _scanned=None) -> None:
        if _scanned is not None and len(_scanned) == 2:
            # legacy (meta, segments) form: IPv4 by definition
            meta, segments = _scanned
            _scanned = (meta, _column_spec(), segments)
        super().__init__(path, _scanned=_scanned)
        #: Address family name resolved from the header schema.
        self.family = _flow_family_of_spec(
            _spec_of(self.columns), self.path
        )

    def segment_flows(self, index: int, verify: bool = True) -> FlowTable:
        """One segment as a zero-copy memmap-backed flow table."""
        return FlowTable(
            **self.segment_arrays(index, verify=verify), family=self.family
        )

    def read_rows(
        self, start: int, stop: int, verify: bool = True
    ) -> FlowTable:
        """Rows ``[start, stop)`` of the whole archive.

        Touches only the segments the range spans; a range inside one
        segment stays zero-copy, a spanning range concatenates the
        spanned slices (bounded by the range size, never the file).
        """
        start = max(0, start)
        stop = min(self.num_rows, stop)
        if stop <= start:
            return FlowTable.empty(self.family)
        parts = []
        for index, segment in enumerate(self.segments):
            if segment.stop_row <= start:
                continue
            if segment.start_row >= stop:
                break
            table = self.segment_flows(index, verify=verify)
            lo = max(0, start - segment.start_row)
            hi = min(segment.rows, stop - segment.start_row)
            if lo > 0 or hi < segment.rows:
                table = table.slice_rows(lo, hi)
            parts.append(table)
        return FlowTable.concat(parts)

    def iter_chunks(
        self, chunk_rows: int | None = None, verify: bool = True
    ) -> Iterator[FlowTable]:
        """Bounded-size chunks over the archive, zero-copy per segment.

        Chunks never cross a segment boundary (each is a slice of one
        segment's memmap views), so they concatenate to exactly the
        full table; ``chunk_rows=None`` yields one chunk per segment.
        """
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for index in range(len(self.segments)):
            yield from self.segment_flows(index, verify=verify).iter_chunks(
                chunk_rows
            )

    def read_all(self, verify: bool = True) -> FlowTable:
        """The whole archive as one table (zero-copy iff one segment)."""
        if not self.segments:
            return FlowTable.empty(self.family)
        if len(self.segments) == 1:
            return self.segment_flows(0, verify=verify)
        return FlowTable.concat(
            self.segment_flows(i, verify=verify)
            for i in range(len(self.segments))
        )


def open_flows_archive(path: str | Path) -> FlowpackArchive:
    """Open (and structurally validate) an archive for random access."""
    return FlowpackArchive(path)


def iter_flows_archive(
    path: str | Path, chunk_rows: int = 65536
) -> Iterator[FlowTable]:
    """Stream an archive as bounded-size flow chunks.

    Drop-in for :func:`repro.io.iter_flows_csv` wherever chunks feed a
    :class:`repro.core.accum.PrefixAccumulator`: strict (checksum or
    structural damage raises :class:`FlowpackError` naming the file and
    segment), zero-copy, and chunks concatenate to exactly the one-shot
    read.
    """
    archive = FlowpackArchive(path)
    yield from archive.iter_chunks(chunk_rows)


def read_flows_archive(path: str | Path) -> FlowTable:
    """Read a whole archive (strict; verifies every checksum)."""
    return FlowpackArchive(path).read_all()


def read_flows_archive_lenient(path: str | Path):
    """Like :func:`read_flows_archive`, but damage is collected.

    The flowpack analogue of :func:`repro.io.read_flows_csv_lenient`:
    segments that fail their checksum are skipped and recorded (one
    :class:`~repro.io.RowError` per segment, ``line`` = 1-based segment
    ordinal, ``total_rows`` counting the lost rows), and a truncated
    tail is reported the same way — so a mostly-good archive survives
    disk damage through the identical ``ParseReport``/quarantine path
    CSV damage uses.  A corrupt file header stays fatal in both modes.
    """
    from repro.io import RowError

    path = Path(path)
    meta, spec, segments, report = _scan_table(path, strict=False)
    family = _flow_family_of_spec(spec, path)
    archive: FlowpackArchive | None = None
    good: list[FlowTable] = []
    if segments:
        archive = FlowpackArchive(path, _scanned=(meta, spec, segments))
    report.good_rows = 0
    for segment in segments:
        try:
            good.append(archive.segment_flows(segment.index, verify=True))
            report.good_rows += segment.rows
        except FlowpackError as error:
            report.errors.append(
                RowError(
                    line=segment.index + 1,
                    message=str(error).split(": ", 1)[-1],
                    text=f"segment {segment.index} "
                    f"({segment.rows} row(s) lost)",
                )
            )
    report.errors.sort(key=lambda error: error.line)
    if not good:
        return FlowTable.empty(family), report
    return FlowTable.concat(good), report


def archive_meta(path: str | Path) -> dict:
    """The header ``meta`` mapping (without touching column data)."""
    meta, _, _, _ = _scan_table(path, strict=True)
    return dict(meta)
