"""Flowpack: a binary columnar flow-archive format.

Row-oriented CSV is untenable at replay scale — a multi-GB vantage-day
costs one Python ``int()`` call per cell in both directions.  Flowpack
stores a :class:`~repro.traffic.flows.FlowTable` the way the pipeline
already holds it: **per-column contiguous numpy buffers**, so reading a
day back is an ``np.memmap`` plus nine zero-copy views instead of
millions of string conversions.

Layout (all integers little-endian)::

    file   := magic header segment*
    magic  := b"FLOWPACK"                            (8 bytes)
    header := u32 version, u32 json_len,
              json_len bytes of UTF-8 JSON, pad8
              -- JSON: {"columns": [[name, dtype], ...], "meta": {...}}
    segment:= b"SEGM", u64 rows,
              (u64 nbytes, u32 crc32) per column, pad8,
              column buffers (each padded to 8 bytes), in header order

Design properties:

* **Append-able** — a segment is self-describing, so a chunked vantage
  capture streams straight to disk: every
  :meth:`FlowpackWriter.write` call appends one segment and nothing is
  ever rewritten.
* **Zero-copy reads** — :meth:`FlowpackArchive.segment_flows` returns
  a :class:`~repro.traffic.flows.FlowTable` whose columns are views
  into one shared ``np.memmap``; slicing chunks out of it never copies
  a row.  All offsets are 8-byte aligned by construction.
* **Per-column checksums** — every buffer carries a CRC-32.  Strict
  readers raise :class:`FlowpackError` naming the file, segment and
  column; the lenient reader degrades exactly like damaged CSV does,
  skipping the bad segment and collecting a
  :class:`~repro.io.ParseReport` (the quarantine path
  :mod:`repro.faults` policies key on).
* **Self-describing metadata** — the header JSON carries an arbitrary
  ``meta`` mapping, which vantage exports use to store the vantage
  code, day and sampling factor, making an archive a complete
  vantage-day on its own (:mod:`repro.vantage.archive`).

The public entry points mirror the CSV ones re-exported from
:mod:`repro.io`: :func:`write_flows_archive`, :func:`read_flows_archive`,
:func:`read_flows_archive_lenient` and :func:`iter_flows_archive` are
drop-in for their ``*_csv`` counterparts.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.traffic.flows import FLOW_COLUMNS, FlowTable

#: File magic; also what :func:`is_flowpack` sniffs.
MAGIC = b"FLOWPACK"
#: Format version written by this module.
FLOWPACK_VERSION = 1
#: Per-segment marker.
_SEGMENT_MAGIC = b"SEGM"

_FILE_HEADER = struct.Struct("<II")  # version, json_len
_SEGMENT_HEADER = struct.Struct("<Q")  # rows
_COLUMN_HEADER = struct.Struct("<QI")  # nbytes, crc32


class FlowpackError(ValueError):
    """Structural damage in a flowpack file (bad header, checksum,
    truncation).  A ``ValueError`` so strict callers that already catch
    CSV parse errors catch flowpack damage the same way."""


def _pad8(n: int) -> int:
    """Bytes of padding that align ``n`` up to an 8-byte boundary."""
    return (-n) % 8


def _column_spec() -> list[list[str]]:
    return [[name, np.dtype(dtype).str] for name, dtype in FLOW_COLUMNS.items()]


@dataclass(frozen=True, slots=True)
class SegmentInfo:
    """Location of one segment's buffers inside the file."""

    index: int
    #: First global row of this segment (segments concatenate in order).
    start_row: int
    rows: int
    #: Absolute byte offset of each column buffer, in column order.
    offsets: tuple[int, ...]
    nbytes: tuple[int, ...]
    checksums: tuple[int, ...]

    @property
    def stop_row(self) -> int:
        return self.start_row + self.rows


# -- writing ------------------------------------------------------------


class FlowpackWriter:
    """Append-able flowpack writer (one segment per :meth:`write`).

    ``append=True`` re-opens an existing archive, validates its header
    against the current schema, and appends after the last intact
    segment.  Use as a context manager; an empty ``write`` is a no-op
    (segments always hold at least one row).
    """

    def __init__(
        self,
        path: str | Path,
        meta: Mapping[str, Any] | None = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self._rows = 0
        if append and self.path.exists() and self.path.stat().st_size > 0:
            _, segments, _ = scan_archive(self.path, strict=True)
            self._rows = segments[-1].stop_row if segments else 0
            self._handle = open(self.path, "ab")
        else:
            self._handle = open(self.path, "wb")
            payload = json.dumps(
                {"columns": _column_spec(), "meta": dict(meta or {})},
                sort_keys=True,
            ).encode()
            self._handle.write(MAGIC)
            self._handle.write(_FILE_HEADER.pack(FLOWPACK_VERSION, len(payload)))
            self._handle.write(payload)
            self._handle.write(b"\x00" * _pad8(len(payload)))

    @property
    def rows_written(self) -> int:
        """Total rows in the archive, appended-to segments included."""
        return self._rows

    def write(self, flows: FlowTable) -> None:
        """Append one segment holding ``flows`` (no-op when empty)."""
        if len(flows) == 0:
            return
        buffers = []
        for name, dtype in FLOW_COLUMNS.items():
            column = np.ascontiguousarray(getattr(flows, name), dtype=dtype)
            buffers.append(column.tobytes())
        header = [_SEGMENT_MAGIC, _SEGMENT_HEADER.pack(len(flows))]
        for buffer in buffers:
            header.append(
                _COLUMN_HEADER.pack(len(buffer), zlib.crc32(buffer))
            )
        header_bytes = b"".join(header)
        self._handle.write(header_bytes)
        self._handle.write(b"\x00" * _pad8(len(header_bytes)))
        for buffer in buffers:
            self._handle.write(buffer)
            self._handle.write(b"\x00" * _pad8(len(buffer)))
        self._rows += len(flows)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "FlowpackWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_flows_archive(
    flows: FlowTable,
    path: str | Path,
    meta: Mapping[str, Any] | None = None,
    chunk_rows: int | None = None,
) -> None:
    """Write a flow table as a flowpack archive.

    ``chunk_rows`` splits the table into multiple segments (the shape a
    chunked capture stream would have produced); ``None`` writes one
    segment.  An empty table yields a valid zero-segment archive.
    """
    with FlowpackWriter(path, meta=meta) as writer:
        for chunk in flows.iter_chunks(chunk_rows):
            writer.write(chunk)


def append_flows_archive(flows: FlowTable, path: str | Path) -> None:
    """Append ``flows`` as one new segment to an existing archive."""
    with FlowpackWriter(path, append=True) as writer:
        writer.write(flows)


# -- scanning -----------------------------------------------------------


def is_flowpack(path: str | Path) -> bool:
    """Whether ``path`` starts with the flowpack magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def scan_archive(
    path: str | Path, strict: bool = True
):
    """Walk an archive's headers without touching the column data.

    Returns ``(meta, segments, report)``.  Structural damage before the
    first segment (bad magic, header, schema) is always fatal — then
    nothing about the file can be trusted, exactly like a wrong CSV
    header.  A truncated or malformed *segment* is fatal in strict
    mode; lenient mode stops at the damage and records it in the
    report (everything after a truncation point is unreadable).

    Checksums are **not** verified here — scanning must stay O(header)
    so an ``np.memmap`` open of a multi-GB day is instant; per-segment
    verification happens on first read.
    """
    from repro.io import ParseReport, RowError  # local: io imports us

    path = Path(path)
    report = ParseReport(path=str(path))
    size = path.stat().st_size
    ncols = len(FLOW_COLUMNS)
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _FILE_HEADER.size)
        if len(prefix) < len(MAGIC) + _FILE_HEADER.size or not prefix.startswith(
            MAGIC
        ):
            raise FlowpackError(f"{path}: not a flowpack file")
        version, json_len = _FILE_HEADER.unpack_from(prefix, len(MAGIC))
        if version != FLOWPACK_VERSION:
            raise FlowpackError(
                f"{path}: unsupported flowpack version {version}"
            )
        payload = handle.read(json_len)
        if len(payload) < json_len:
            raise FlowpackError(f"{path}: truncated header")
        try:
            header = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FlowpackError(f"{path}: corrupt header JSON: {error}") from None
        if header.get("columns") != _column_spec():
            raise FlowpackError(
                f"{path}: unexpected flowpack schema: {header.get('columns')}"
            )
        meta = header.get("meta", {})
        handle.seek(_pad8(json_len), 1)

        segments: list[SegmentInfo] = []
        start_row = 0
        seg_header_size = (
            len(_SEGMENT_MAGIC) + _SEGMENT_HEADER.size
            + ncols * _COLUMN_HEADER.size
        )
        seg_header_size += _pad8(seg_header_size)
        while True:
            base = handle.tell()
            if base >= size:
                break
            raw = handle.read(seg_header_size)
            damage = None
            if len(raw) < seg_header_size or not raw.startswith(_SEGMENT_MAGIC):
                damage = "truncated or corrupt segment header"
                rows = 0
            else:
                (rows,) = _SEGMENT_HEADER.unpack_from(raw, len(_SEGMENT_MAGIC))
                offsets, nbytes, checksums = [], [], []
                cursor = base + seg_header_size
                pos = len(_SEGMENT_MAGIC) + _SEGMENT_HEADER.size
                for name, dtype in FLOW_COLUMNS.items():
                    length, crc = _COLUMN_HEADER.unpack_from(raw, pos)
                    pos += _COLUMN_HEADER.size
                    if length != rows * np.dtype(dtype).itemsize:
                        damage = (
                            f"column {name!r} holds {length} bytes, "
                            f"expected {rows * np.dtype(dtype).itemsize}"
                        )
                        break
                    offsets.append(cursor)
                    nbytes.append(length)
                    checksums.append(crc)
                    cursor += length + _pad8(length)
                if damage is None and cursor > size:
                    damage = (
                        f"segment data runs past end of file "
                        f"({cursor} > {size} bytes)"
                    )
                if damage is None and rows == 0:
                    damage = "segment with zero rows"
            if damage is not None:
                message = f"segment {len(segments)}: {damage}"
                if strict:
                    raise FlowpackError(f"{path}: {message}")
                report.errors.append(
                    RowError(
                        line=len(segments) + 1, message=message,
                        text=f"byte offset {base}",
                    )
                )
                # Resync: scan forward for the next segment magic, so a
                # single damaged header loses one segment, not the rest
                # of the archive.  (A 4-byte magic plus nine exact
                # column-length checks makes a false resync vanishingly
                # unlikely.)  No magic ahead = a truncated tail; stop.
                handle.seek(base + 1)
                rest = handle.read()
                resync = rest.find(_SEGMENT_MAGIC)
                if resync < 0:
                    break
                handle.seek(base + 1 + resync)
                continue
            segments.append(
                SegmentInfo(
                    index=len(segments),
                    start_row=start_row,
                    rows=rows,
                    offsets=tuple(offsets),
                    nbytes=tuple(nbytes),
                    checksums=tuple(checksums),
                )
            )
            report.total_rows += rows
            report.good_rows += rows
            start_row += rows
            handle.seek(cursor)
    return meta, segments, report


# -- reading ------------------------------------------------------------


class FlowpackArchive:
    """A memory-mapped flowpack archive.

    Column data is a single shared ``np.memmap``; every
    :class:`~repro.traffic.flows.FlowTable` this object hands out holds
    zero-copy (read-only) views into it.  Each segment's checksums are
    verified once, on first read; pass ``verify=False`` to skip (e.g.
    a worker re-reading a range the coordinator already verified).
    """

    def __init__(self, path: str | Path, *, _scanned=None) -> None:
        self.path = Path(path)
        if _scanned is None:
            self.meta, self.segments, _ = scan_archive(self.path, strict=True)
        else:  # pre-scanned (the lenient reader's salvage path)
            self.meta, self.segments = _scanned
        self.num_rows = (
            self.segments[-1].stop_row if self.segments else 0
        )
        self._mmap: np.ndarray | None = None
        self._verified = [False] * len(self.segments)

    def _data(self) -> np.ndarray:
        if self._mmap is None:
            self._mmap = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mmap

    def verify_segment(self, index: int) -> None:
        """Check one segment's per-column CRC-32s (idempotent)."""
        if self._verified[index]:
            return
        segment = self.segments[index]
        data = self._data()
        for (name, _), offset, nbytes, expected in zip(
            FLOW_COLUMNS.items(), segment.offsets, segment.nbytes,
            segment.checksums,
        ):
            actual = zlib.crc32(data[offset:offset + nbytes])
            if actual != expected:
                raise FlowpackError(
                    f"{self.path}: segment {index}: column {name!r} "
                    f"checksum mismatch (stored {expected:#010x}, "
                    f"computed {actual:#010x})"
                )
        self._verified[index] = True

    def segment_flows(self, index: int, verify: bool = True) -> FlowTable:
        """One segment as a zero-copy memmap-backed flow table."""
        if verify:
            self.verify_segment(index)
        segment = self.segments[index]
        data = self._data()
        columns = {}
        for (name, dtype), offset, nbytes in zip(
            FLOW_COLUMNS.items(), segment.offsets, segment.nbytes
        ):
            columns[name] = data[offset:offset + nbytes].view(dtype)
        return FlowTable(**columns)

    def read_rows(
        self, start: int, stop: int, verify: bool = True
    ) -> FlowTable:
        """Rows ``[start, stop)`` of the whole archive.

        Touches only the segments the range spans; a range inside one
        segment stays zero-copy, a spanning range concatenates the
        spanned slices (bounded by the range size, never the file).
        """
        start = max(0, start)
        stop = min(self.num_rows, stop)
        if stop <= start:
            return FlowTable.empty()
        parts = []
        for index, segment in enumerate(self.segments):
            if segment.stop_row <= start:
                continue
            if segment.start_row >= stop:
                break
            table = self.segment_flows(index, verify=verify)
            lo = max(0, start - segment.start_row)
            hi = min(segment.rows, stop - segment.start_row)
            if lo > 0 or hi < segment.rows:
                table = FlowTable(
                    **{
                        name: getattr(table, name)[lo:hi]
                        for name in FLOW_COLUMNS
                    }
                )
            parts.append(table)
        return FlowTable.concat(parts)

    def iter_chunks(
        self, chunk_rows: int | None = None, verify: bool = True
    ) -> Iterator[FlowTable]:
        """Bounded-size chunks over the archive, zero-copy per segment.

        Chunks never cross a segment boundary (each is a slice of one
        segment's memmap views), so they concatenate to exactly the
        full table; ``chunk_rows=None`` yields one chunk per segment.
        """
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for index in range(len(self.segments)):
            yield from self.segment_flows(index, verify=verify).iter_chunks(
                chunk_rows
            )

    def read_all(self, verify: bool = True) -> FlowTable:
        """The whole archive as one table (zero-copy iff one segment)."""
        if len(self.segments) == 1:
            return self.segment_flows(0, verify=verify)
        return FlowTable.concat(
            self.segment_flows(i, verify=verify)
            for i in range(len(self.segments))
        )

    def __len__(self) -> int:
        return self.num_rows


def open_flows_archive(path: str | Path) -> FlowpackArchive:
    """Open (and structurally validate) an archive for random access."""
    return FlowpackArchive(path)


def iter_flows_archive(
    path: str | Path, chunk_rows: int = 65536
) -> Iterator[FlowTable]:
    """Stream an archive as bounded-size flow chunks.

    Drop-in for :func:`repro.io.iter_flows_csv` wherever chunks feed a
    :class:`repro.core.accum.PrefixAccumulator`: strict (checksum or
    structural damage raises :class:`FlowpackError` naming the file and
    segment), zero-copy, and chunks concatenate to exactly the one-shot
    read.
    """
    archive = FlowpackArchive(path)
    yield from archive.iter_chunks(chunk_rows)


def read_flows_archive(path: str | Path) -> FlowTable:
    """Read a whole archive (strict; verifies every checksum)."""
    return FlowpackArchive(path).read_all()


def read_flows_archive_lenient(path: str | Path):
    """Like :func:`read_flows_archive`, but damage is collected.

    The flowpack analogue of :func:`repro.io.read_flows_csv_lenient`:
    segments that fail their checksum are skipped and recorded (one
    :class:`~repro.io.RowError` per segment, ``line`` = 1-based segment
    ordinal, ``total_rows`` counting the lost rows), and a truncated
    tail is reported the same way — so a mostly-good archive survives
    disk damage through the identical ``ParseReport``/quarantine path
    CSV damage uses.  A corrupt file header stays fatal in both modes.
    """
    from repro.io import RowError

    path = Path(path)
    meta, segments, report = scan_archive(path, strict=False)
    archive: FlowpackArchive | None = None
    good: list[FlowTable] = []
    if segments:
        archive = FlowpackArchive(path, _scanned=(meta, segments))
    report.good_rows = 0
    for segment in segments:
        try:
            good.append(archive.segment_flows(segment.index, verify=True))
            report.good_rows += segment.rows
        except FlowpackError as error:
            report.errors.append(
                RowError(
                    line=segment.index + 1,
                    message=str(error).split(": ", 1)[-1],
                    text=f"segment {segment.index} "
                    f"({segment.rows} row(s) lost)",
                )
            )
    report.errors.sort(key=lambda error: error.line)
    return FlowTable.concat(good), report


def archive_meta(path: str | Path) -> dict:
    """The header ``meta`` mapping (without touching column data)."""
    meta, _, _ = scan_archive(path, strict=True)
    return dict(meta)
