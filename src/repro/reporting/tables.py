"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned; everything else left-aligned.  Floats
    are shown with up to four significant decimals.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    numeric = [
        all(_is_number(row[i]) for row in rendered_rows) if rendered_rows else False
        for i in range(columns)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.replace(",", ""))
    except ValueError:
        return False
    return True
