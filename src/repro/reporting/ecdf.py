"""Empirical CDFs (Figures 7, 16, 17)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical distribution over a 1-D sample."""

    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.sort(np.asarray(self.values, dtype=np.float64))
        )

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if len(self.values) == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right") / len(self.values))

    def quantile(self, q: float) -> float:
        """Inverse CDF."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if len(self.values) == 0:
            raise ValueError("empty ECDF")
        return float(np.quantile(self.values, q))

    def survival(self, x: float) -> float:
        """P(X > x) — the paper's "share of prefixes above 5 % dark"."""
        return 1.0 - self.at(x)

    def sample_points(
        self, grid: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs for plotting or printing."""
        if grid is None:
            grid = np.unique(self.values)
        grid = np.asarray(grid, dtype=np.float64)
        y = np.searchsorted(self.values, grid, side="right") / max(len(self.values), 1)
        return grid, y


def render_ecdf_rows(
    ecdfs: dict[str, Ecdf], grid: np.ndarray, value_format: str = "{:.3f}"
) -> list[list[object]]:
    """Table rows: one per grid point, one column per ECDF."""
    rows: list[list[object]] = []
    for x in grid:
        row: list[object] = [float(x)]
        for label in ecdfs:
            row.append(value_format.format(ecdfs[label].at(float(x))))
        rows.append(row)
    return rows
