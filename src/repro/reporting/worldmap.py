"""Text stand-in for the world-map figures (Figures 4, 13-15).

The paper colours countries by log10 of their meta-telescope /24
count; the text rendering prints the same logarithmic scale as bars
per country, grouped by continent.
"""

from __future__ import annotations

import math

from repro.geo.countries import country_by_code


def render_country_bars(
    counts: dict[str, int], top: int | None = None, width: int = 40
) -> str:
    """Log-scaled horizontal bars, most-covered country first."""
    items = sorted(counts.items(), key=lambda item: -item[1])
    if top is not None:
        items = items[:top]
    if not items:
        return "(no data)"
    peak = math.log10(max(count for _, count in items) + 1)
    lines = []
    for code, count in items:
        country = country_by_code(code)
        magnitude = math.log10(count + 1)
        filled = int(round(magnitude / peak * width)) if peak else 0
        lines.append(
            f"{code} {country.continent.value:>3} {'█' * filled:<{width}} {count:>8,}"
        )
    return "\n".join(lines)
