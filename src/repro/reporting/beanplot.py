"""Text rendering of bean-plot data (Figures 11, 12, 18-20).

A bean plot compares one value (port activity share) across groups;
in text form each port becomes a row of horizontal bars, one per group,
scaled to the maximum share in the matrix.
"""

from __future__ import annotations

import numpy as np

_BAR = "▁▂▃▄▅▆▇█"


def render_bean_rows(
    ports: list[int],
    groups: list[str],
    matrix: np.ndarray,
    width: int = 12,
) -> str:
    """Render a port x group share matrix as aligned bar rows."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (len(ports), len(groups)):
        raise ValueError("matrix shape must be (ports, groups)")
    peak = matrix.max() if matrix.size else 1.0
    if peak <= 0:
        peak = 1.0
    lines = [
        "port".rjust(6)
        + "  "
        + "  ".join(group.center(width) for group in groups)
    ]
    for row, port in enumerate(ports):
        cells = []
        for column in range(len(groups)):
            share = matrix[row, column]
            filled = int(round(share / peak * width))
            bar = ("█" * filled).ljust(width)
            cells.append(bar)
        lines.append(f"{port:>6}  " + "  ".join(cells))
    return "\n".join(lines)


def render_share_table(
    ports: list[int], groups: list[str], matrix: np.ndarray
) -> list[list[object]]:
    """The same data as numeric table rows (port + one share per group)."""
    rows: list[list[object]] = []
    for row, port in enumerate(ports):
        rows.append(
            [port, *(float(matrix[row, column]) for column in range(len(groups)))]
        )
    return rows
