"""Presentation helpers: ASCII tables, ECDFs, bean plots, world maps.

Everything renders to plain text so benches can print the same rows
and series the paper's tables and figures report.
"""

from repro.reporting.tables import format_table
from repro.reporting.ecdf import Ecdf
from repro.reporting.beanplot import render_bean_rows
from repro.reporting.worldmap import render_country_bars

__all__ = ["format_table", "Ecdf", "render_bean_rows", "render_country_bars"]
