"""Full operator report: one markdown document per inference run.

Bundles the artifacts an operator (or a CERT recipient) needs from one
measurement window: the funnel, the headline counts, geographic and
network-type breakdowns, top targeted ports, the largest dark
footprints per AS, and the threat summaries — rendered as markdown so
it drops straight into a ticket or wiki.
"""

from __future__ import annotations

from repro.analysis.as_dark_share import dark_share_by_as
from repro.analysis.backscatter_analysis import detect_victims
from repro.analysis.geo_dist import country_counts
from repro.analysis.ports import top_ports
from repro.analysis.scanners_analysis import campaign_summary, detect_scanners
from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.datasets.geodb import GeoDatabase
from repro.datasets.pfx2as import PrefixToAsMap
from repro.net.ipv4 import format_ip
from repro.vantage.sampling import VantageDayView


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    )
    return "\n".join(lines)


def generate_report(
    telescope: MetaTelescope,
    views: list[VantageDayView],
    result: MetaTelescopeResult,
    geodb: GeoDatabase | None = None,
    pfx2as: PrefixToAsMap | None = None,
    title: str = "Meta-telescope report",
) -> str:
    """Render the full markdown report for one inference run."""
    sections = [f"# {title}", ""]
    days = sorted({view.day for view in views})
    vantages = sorted({view.vantage for view in views})
    sections.append(
        f"Window: day {days[0]}–{days[-1]}; vantage points: "
        f"{', '.join(vantages)}."
    )

    # -- funnel and classes -------------------------------------------
    sections.append("\n## Inference")
    sections.append(
        _md_table(
            ["step", "#/24 blocks"],
            [list(row) for row in result.pipeline.funnel.as_rows()],
        )
    )
    sections.append(
        f"\nClasses: **{len(result.pipeline.dark_blocks):,} dark**, "
        f"{len(result.pipeline.unclean_blocks):,} unclean, "
        f"{len(result.pipeline.gray_blocks):,} gray; liveness refinement "
        f"removed {len(result.refinement.removed_blocks):,} "
        f"({result.refinement.removed_fraction():.1%}).  Serving "
        f"**{result.num_prefixes():,} meta-telescope /24 prefixes**."
    )
    if result.pipeline.applied_tolerances:
        busiest = sorted(
            result.pipeline.applied_tolerances.items(), key=lambda kv: -kv[1]
        )[:5]
        sections.append(
            "\nSpoofing tolerances (top vantages): "
            + ", ".join(f"{code}={value:g}" for code, value in busiest)
        )

    # -- geography ------------------------------------------------------
    if geodb is not None:
        sections.append("\n## Geography (top countries)")
        counts = country_counts(result.prefixes, geodb)
        rows = [[code, count] for code, count in list(counts.items())[:10]]
        sections.append(_md_table(["country", "#/24s"], rows))

    # -- per-AS footprints ------------------------------------------------
    if pfx2as is not None:
        sections.append("\n## Largest dark footprints per AS")
        routing = telescope.routing_for_days(days)
        shares = dark_share_by_as(result.prefixes, routing, pfx2as)[:10]
        rows = [
            [f"AS{s.asn}", s.dark_blocks, f"{s.share:.1%}"] for s in shares
        ]
        sections.append(_md_table(["ASN", "dark /24s", "share of its space"], rows))

    # -- captured traffic -------------------------------------------------
    captured = telescope.captured_traffic(views, result)
    sections.append("\n## Traffic toward the meta-telescope")
    sections.append(
        f"{len(captured):,} flows / {captured.total_packets():,} sampled "
        f"packets captured."
    )
    ranked = top_ports(captured, count=10)
    sections.append(
        _md_table(
            ["rank", "TCP port"],
            [[i + 1, port] for i, port in enumerate(ranked)],
        )
    )

    # -- threat summaries --------------------------------------------------
    scanners = detect_scanners(captured, min_footprint_blocks=5)
    sections.append("\n## Threat summary")
    if scanners:
        campaigns = campaign_summary(scanners)
        sections.append(
            _md_table(
                ["campaign", "#scanners"],
                [[family, count] for family, count in campaigns.items()],
            )
        )
        widest = scanners[0]
        sections.append(
            f"\nWidest scanner: {format_ip(widest.source_ip)} "
            f"(AS{widest.sender_asn}) probing "
            f"{widest.footprint_blocks:,} /24s on ports "
            f"{', '.join(map(str, widest.ports[:4]))}."
        )
    else:
        sections.append("No qualifying scanning sources.")
    victims = detect_victims(captured, min_spread_blocks=3, min_packets=3)
    if victims.victims:
        sections.append(
            f"\nBackscatter: {victims.backscatter_share():.1%} of packets; "
            f"{len(victims.victims)} inferred DDoS victims, led by "
            + ", ".join(
                format_ip(v.victim_ip) for v in victims.victims[:3]
            )
            + "."
        )
    else:
        sections.append("\nNo qualifying backscatter victims.")
    return "\n".join(sections) + "\n"
