"""Scanning actors: the dominant component of IBR.

A :class:`ScanCampaign` models one coherent scanning activity — a
research scanner sweeping port 443, a Mirai variant hunting port 23, a
Redis campaign against one region.  Campaigns differ in their source
pool, port mix, target weighting over /24 blocks, intensity, and
whether they avoid well-known (blacklisted) telescope space, which is
how the paper explains meta-telescopes resisting blacklisting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import (
    PROTO_TCP,
    PacketSizeModel,
    ibr_tcp_size_model,
)


@dataclass(frozen=True, slots=True)
class ScanSource:
    """One scanning host: its address and the AS that emits its packets."""

    ip: int
    asn: int


@dataclass(slots=True)
class ScanCampaign:
    """A scanning campaign over the /24 universe.

    ``target_blocks``/``target_weights`` define where probes land
    (weights need not be normalised); ``ports``/``port_weights`` define
    the service mix; ``probes_per_day`` is the total packet budget.
    ``avoid_blocks`` (sorted array) models scanner blacklists.
    """

    name: str
    sources: list[ScanSource]
    ports: tuple[int, ...]
    port_weights: tuple[float, ...]
    target_blocks: np.ndarray
    target_weights: np.ndarray | None
    probes_per_day: int
    proto: int = PROTO_TCP
    size_model: PacketSizeModel = field(default_factory=ibr_tcp_size_model)
    avoid_blocks: np.ndarray | None = None
    #: Multiplies the daily budget per weekday (Mon=0..Sun=6); lets a
    #: campaign surge on weekends etc.
    weekday_profile: tuple[float, ...] = (1.0,) * 7

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError(f"campaign {self.name!r} has no sources")
        if len(self.ports) != len(self.port_weights):
            raise ValueError("ports and port_weights must align")
        if len(self.weekday_profile) != 7:
            raise ValueError("weekday_profile needs 7 entries")
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        if self.target_weights is not None:
            self.target_weights = np.asarray(self.target_weights, dtype=np.float64)
            if len(self.target_weights) != len(self.target_blocks):
                raise ValueError("target_weights must align with target_blocks")

    def _effective_targets(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Target universe minus the campaign's blacklist."""
        if self.avoid_blocks is None or len(self.avoid_blocks) == 0:
            return self.target_blocks, self.target_weights
        keep = ~np.isin(self.target_blocks, self.avoid_blocks)
        weights = None if self.target_weights is None else self.target_weights[keep]
        return self.target_blocks[keep], weights

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Emit the campaign's flows for ``day`` (0-based; day % 7 = weekday)."""
        budget = int(round(self.probes_per_day * self.weekday_profile[day % 7]))
        if budget <= 0:
            return FlowTable.empty()
        blocks, weights = self._effective_targets()
        if len(blocks) == 0:
            return FlowTable.empty()

        # Probes arrive in small flows of 1-3 packets (SYN retries).
        mean_flow_packets = 1.5
        num_flows = max(1, int(budget / mean_flow_packets))
        probabilities = None
        if weights is not None:
            total = weights.sum()
            if total <= 0:
                return FlowTable.empty()
            probabilities = weights / total
        chosen = rng.choice(blocks, size=num_flows, replace=True, p=probabilities)
        dst_ip = (chosen.astype(np.uint32) << np.uint32(8)) | rng.integers(
            0, 256, size=num_flows, dtype=np.uint32
        )
        packets = rng.choice(
            np.array([1, 2, 3], dtype=np.int64),
            size=num_flows,
            p=np.array([0.62, 0.26, 0.12]),
        )
        port_probs = np.asarray(self.port_weights, dtype=np.float64)
        port_probs = port_probs / port_probs.sum()
        dport = rng.choice(
            np.asarray(self.ports, dtype=np.uint16), size=num_flows, p=port_probs
        )
        source_index = rng.integers(0, len(self.sources), size=num_flows)
        src_ip = np.array([s.ip for s in self.sources], dtype=np.uint32)[source_index]
        sender_asn = np.array([s.asn for s in self.sources], dtype=np.int32)[
            source_index
        ]
        total_bytes = self.size_model.sample_totals(packets, rng)
        return FlowTable(
            src_ip=src_ip,
            dst_ip=dst_ip,
            proto=np.full(num_flows, self.proto, dtype=np.uint8),
            dport=dport,
            packets=packets,
            bytes=total_bytes,
            sender_asn=sender_asn,
            dst_asn=np.full(num_flows, -1, dtype=np.int32),
            spoofed=np.zeros(num_flows, dtype=bool),
        )


def make_sources(
    blocks: np.ndarray,
    asns: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> list[ScanSource]:
    """Draw ``count`` scanner hosts from candidate source blocks.

    ``blocks`` and ``asns`` are aligned arrays of active /24 blocks and
    their origin ASes; each source gets a random host address inside
    its block.
    """
    if len(blocks) == 0:
        raise ValueError("no candidate source blocks")
    index = rng.integers(0, len(blocks), size=count)
    ips = (np.asarray(blocks, dtype=np.uint32)[index] << np.uint32(8)) | rng.integers(
        0, 256, size=count, dtype=np.uint32
    )
    chosen_asns = np.asarray(asns, dtype=np.int32)[index]
    return [
        ScanSource(ip=int(ip), asn=int(asn)) for ip, asn in zip(ips, chosen_asns)
    ]
