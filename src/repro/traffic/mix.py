"""Assembly of one simulated day of Internet traffic.

A :class:`DailyTrafficMix` owns every actor (scanners, botnets,
backscatter, spoofers, production, CDN sinks, misconfigurations) and
concatenates their flows into the day's ground-truth table, from which
the vantage points then derive their sampled views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import (
    PROTO_TCP,
    PROTO_UDP,
    dirty_dark_size_model,
    udp_ibr_size_model,
)


class TrafficActor(Protocol):
    """Anything that can emit flows for a given day."""

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Flows emitted by this actor on ``day``."""
        ...


@dataclass(slots=True)
class MisconfigurationNoise:
    """Persistent misdirected traffic toward a sticky set of dark blocks.

    Leaked syslog exporters, stale configuration, and byte-heavy
    probes: the reason a small share of genuinely dark space fails the
    packet-size filter (the false-negative rows of Table 3).
    """

    target_blocks: np.ndarray
    source_ips: np.ndarray
    source_asns: np.ndarray
    packets_per_block_day: int = 12

    def __post_init__(self) -> None:
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        self.source_ips = np.asarray(self.source_ips, dtype=np.uint32)
        self.source_asns = np.asarray(self.source_asns, dtype=np.int32)

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Junk flows for one day (stationary across days)."""
        del day
        if len(self.target_blocks) == 0 or len(self.source_ips) == 0:
            return FlowTable.empty()
        flows_per_block = max(1, self.packets_per_block_day // 4)
        total = flows_per_block * len(self.target_blocks)
        block_index = np.repeat(np.arange(len(self.target_blocks)), flows_per_block)
        dst_ip = (
            self.target_blocks[block_index].astype(np.uint32) << np.uint32(8)
        ) | rng.integers(0, 256, size=total, dtype=np.uint32)
        pick = rng.integers(0, len(self.source_ips), size=total)
        packets = rng.integers(2, 7, size=total).astype(np.int64)
        tcp_mask = rng.random(total) < 0.7
        tcp_bytes = dirty_dark_size_model().sample_totals(packets, rng)
        udp_bytes = udp_ibr_size_model().sample_totals(packets, rng)
        return FlowTable(
            src_ip=self.source_ips[pick],
            dst_ip=dst_ip,
            proto=np.where(tcp_mask, PROTO_TCP, PROTO_UDP).astype(np.uint8),
            dport=rng.choice(
                np.array([514, 161, 5060, 443], dtype=np.uint16), size=total
            ),
            packets=packets,
            bytes=np.where(tcp_mask, tcp_bytes, udp_bytes),
            sender_asn=self.source_asns[pick],
            dst_asn=np.full(total, -1, dtype=np.int32),
            spoofed=np.zeros(total, dtype=bool),
        )


@dataclass(slots=True)
class UdpRadiationActor:
    """UDP background radiation (SSDP/DNS amplification probes).

    The pipeline's step 1 drops blocks that receive *no* TCP, and UDP
    is "very noisy" per the paper — this actor supplies that noise.
    """

    target_blocks: np.ndarray
    source_ips: np.ndarray
    source_asns: np.ndarray
    packets_per_day: int

    def __post_init__(self) -> None:
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        self.source_ips = np.asarray(self.source_ips, dtype=np.uint32)
        self.source_asns = np.asarray(self.source_asns, dtype=np.int32)

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """UDP probe flows for one day."""
        del day
        if self.packets_per_day <= 0 or len(self.target_blocks) == 0:
            return FlowTable.empty()
        total = max(1, self.packets_per_day // 2)
        blocks = rng.choice(self.target_blocks, size=total, replace=True)
        dst_ip = (blocks.astype(np.uint32) << np.uint32(8)) | rng.integers(
            0, 256, size=total, dtype=np.uint32
        )
        pick = rng.integers(0, len(self.source_ips), size=total)
        packets = rng.integers(1, 4, size=total).astype(np.int64)
        return FlowTable(
            src_ip=self.source_ips[pick],
            dst_ip=dst_ip,
            proto=np.full(total, PROTO_UDP, dtype=np.uint8),
            dport=rng.choice(
                np.array([1900, 53, 123, 11211, 5353], dtype=np.uint16), size=total
            ),
            packets=packets,
            bytes=udp_ibr_size_model().sample_totals(packets, rng),
            sender_asn=self.source_asns[pick],
            dst_asn=np.full(total, -1, dtype=np.int32),
            spoofed=np.zeros(total, dtype=bool),
        )


@dataclass(slots=True)
class DailyTrafficMix:
    """The full actor ensemble for a world."""

    actors: list[TrafficActor] = field(default_factory=list)

    def add(self, actor: TrafficActor) -> None:
        """Register an actor."""
        self.actors.append(actor)

    def generate_day(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Ground-truth flow table for one day (all actors)."""
        tables = [actor.generate(day, rng) for actor in self.actors]
        return FlowTable.concat(tables)
