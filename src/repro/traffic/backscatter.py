"""DDoS backscatter: responses from attacked servers to spoofed sources.

Victims of randomly-spoofed floods answer the fake sources, so their
SYN-ACK / RST replies spray uniformly over the whole IPv4 space —
including dark space, where telescopes observe them as "backscatter"
(Moore et al., 2001).  For the inference pipeline this is additional
small-packet TCP traffic toward candidate dark blocks and another
source of legitimate activity from the victims' own blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP, PacketSizeModel, backscatter_size_model


@dataclass(frozen=True, slots=True)
class Victim:
    """An attacked server emitting backscatter."""

    ip: int
    asn: int
    service_port: int


@dataclass(slots=True)
class BackscatterActor:
    """Backscatter from a set of concurrently attacked victims.

    ``packets_per_day`` is the total backscatter budget across victims;
    destinations are uniform over the full 32-bit space (spoofers pick
    sources uniformly), so most of it lands on space that is irrelevant
    to the pipeline — just like in reality.
    """

    victims: list[Victim]
    packets_per_day: int
    size_model: PacketSizeModel = field(default_factory=backscatter_size_model)
    #: Restrict destinations to these /24 blocks (None = uniform over
    #: the full space).  Mirrors floods that spoof within a subnet,
    #: concentrating backscatter.
    dst_blocks: np.ndarray | None = None
    #: Days on which the event is active (None = every day).  Used for
    #: one-off DDoS events such as the day-0 burst near TEU2.
    active_days: frozenset[int] | None = None
    #: IP protocol of the backscatter (UDP for reflection/amplification
    #: responses, TCP for SYN-ACK/RST backscatter).
    proto: int = PROTO_TCP

    def __post_init__(self) -> None:
        if not self.victims:
            raise ValueError("backscatter needs at least one victim")
        if self.dst_blocks is not None:
            self.dst_blocks = np.asarray(self.dst_blocks, dtype=np.int64)

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Backscatter flows for one day."""
        if self.active_days is not None and day not in self.active_days:
            return FlowTable.empty()
        if self.packets_per_day <= 0:
            return FlowTable.empty()
        num_flows = max(1, self.packets_per_day // 2)
        if self.dst_blocks is None:
            dst_ip = rng.integers(0, 2**32, size=num_flows, dtype=np.uint32)
        else:
            blocks = rng.choice(self.dst_blocks, size=num_flows, replace=True)
            dst_ip = (blocks.astype(np.uint32) << np.uint32(8)) | rng.integers(
                0, 256, size=num_flows, dtype=np.uint32
            )
        victim_index = rng.integers(0, len(self.victims), size=num_flows)
        src_ip = np.array([v.ip for v in self.victims], dtype=np.uint32)[victim_index]
        sender_asn = np.array([v.asn for v in self.victims], dtype=np.int32)[
            victim_index
        ]
        packets = rng.choice(
            np.array([1, 2, 3, 4], dtype=np.int64),
            size=num_flows,
            p=np.array([0.5, 0.25, 0.15, 0.10]),
        )
        # Backscatter arrives at the *ephemeral* port the spoofer used.
        dport = rng.integers(1024, 65536, size=num_flows, dtype=np.uint16)
        return FlowTable(
            src_ip=src_ip,
            dst_ip=dst_ip,
            proto=np.full(num_flows, self.proto, dtype=np.uint8),
            dport=dport,
            packets=packets,
            bytes=self.size_model.sample_totals(packets, rng),
            sender_asn=sender_asn,
            dst_asn=np.full(num_flows, -1, dtype=np.int32),
            spoofed=np.zeros(num_flows, dtype=bool),
        )
