"""Production (legitimate) traffic: what keeps active space out of the
meta-telescope.

Active /24 blocks both *originate* packets (caught by pipeline step 3)
and *receive* data-bearing TCP (caught by the average-packet-size
filter, step 2).  Two wrinkles from the paper are modelled explicitly:

* **Weekday patterns.**  Enterprise and education space goes quiet on
  weekends; the paper attributes the weekend surge of inferred
  prefixes (Figure 8) to exactly this.
* **CDN ACK asymmetry.**  Content networks receive torrents of bare
  40-byte ACKs through the IXP while their data rides private paths
  invisible to the vantage point, so by packet size alone they look
  dark; only the volume filter (step 6) rescues them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import (
    PROTO_TCP,
    PROTO_UDP,
    PacketSizeModel,
    production_size_model,
)

#: Mean packets per production flow (long-lived connections).
_PACKETS_PER_FLOW = 24

_SERVICE_PORTS = np.array([443, 80, 22, 25, 3306, 8443, 53], dtype=np.uint16)
_SERVICE_PORT_WEIGHTS = np.array([0.48, 0.27, 0.06, 0.05, 0.04, 0.05, 0.05])


@dataclass(slots=True)
class ProductionTraffic:
    """Generator of legitimate bidirectional traffic for active space.

    All arrays are aligned per active /24 block.  ``weekend_factor``
    scales a block's weekend activity (1.0 = flat, 0.2 = office hours
    only).  ``ack_share`` parameterises the inbound TCP size mix per
    block, the quantity Table 3's median-vs-mean contrast hinges on.
    """

    blocks: np.ndarray
    asns: np.ndarray
    inbound_pkts_per_day: np.ndarray
    outbound_pkts_per_day: np.ndarray
    ack_share: np.ndarray
    weekend_factor: np.ndarray
    #: Pool of remote hosts acting as the "other end" of connections.
    remote_ips: np.ndarray
    remote_asns: np.ndarray
    #: Per-block size of bare-ACK packets (40, or 44 for hosts whose
    #: ACK stream carries an extra option — the Table 3 "mid" class).
    ack_packet_size: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.blocks = np.asarray(self.blocks, dtype=np.int64)
        self.asns = np.asarray(self.asns, dtype=np.int32)
        self.inbound_pkts_per_day = np.asarray(self.inbound_pkts_per_day, dtype=np.int64)
        self.outbound_pkts_per_day = np.asarray(
            self.outbound_pkts_per_day, dtype=np.int64
        )
        self.ack_share = np.asarray(self.ack_share, dtype=np.float64)
        self.weekend_factor = np.asarray(self.weekend_factor, dtype=np.float64)
        self.remote_ips = np.asarray(self.remote_ips, dtype=np.uint32)
        self.remote_asns = np.asarray(self.remote_asns, dtype=np.int32)
        if self.ack_packet_size is None:
            self.ack_packet_size = np.full(len(self.blocks), 40, dtype=np.int64)
        else:
            self.ack_packet_size = np.asarray(self.ack_packet_size, dtype=np.int64)
        lengths = {
            len(self.blocks),
            len(self.asns),
            len(self.inbound_pkts_per_day),
            len(self.outbound_pkts_per_day),
            len(self.ack_share),
            len(self.weekend_factor),
            len(self.ack_packet_size),
        }
        if len(lengths) > 1:
            raise ValueError("per-block arrays must align")
        if len(self.remote_ips) != len(self.remote_asns):
            raise ValueError("remote pools must align")
        if len(self.remote_ips) == 0:
            raise ValueError("production traffic needs remote peers")

    def _daily_scale(self, day: int) -> np.ndarray:
        """Per-block activity multiplier for ``day`` (Sat/Sun = 5/6)."""
        if day % 7 in (5, 6):
            return self.weekend_factor
        return np.ones(len(self.blocks))

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Inbound plus outbound production flows for one day."""
        if len(self.blocks) == 0:
            return FlowTable.empty()
        scale = self._daily_scale(day)
        inbound_budget = (self.inbound_pkts_per_day * scale).astype(np.int64)
        # Inbound splits into pure-ACK flows (download return traffic)
        # and data-bearing flows; the split is what separates the
        # median and mean packet-size features in Table 3.
        ack_budget = (inbound_budget * self.ack_share).astype(np.int64)
        data_budget = inbound_budget - ack_budget
        ack_rows = self._direction(ack_budget, "ack", rng)
        data_rows = self._direction(data_budget, "data", rng)
        outbound = self._direction(
            (self.outbound_pkts_per_day * scale).astype(np.int64), "out", rng
        )
        return FlowTable.concat([ack_rows, data_rows, outbound])

    def _direction(
        self, day_pkts: np.ndarray, kind: str, rng: np.random.Generator
    ) -> FlowTable:
        flows_per_block = np.maximum(
            (day_pkts / _PACKETS_PER_FLOW).astype(np.int64), (day_pkts > 0)
        )
        total_flows = int(flows_per_block.sum())
        if total_flows == 0:
            return FlowTable.empty()
        block_index = np.repeat(np.arange(len(self.blocks)), flows_per_block)
        local_ip = (
            self.blocks[block_index].astype(np.uint32) << np.uint32(8)
        ) | rng.integers(0, 256, size=total_flows, dtype=np.uint32)
        remote_pick = rng.integers(0, len(self.remote_ips), size=total_flows)
        remote_ip = self.remote_ips[remote_pick]
        remote_asn = self.remote_asns[remote_pick]
        local_asn = self.asns[block_index]

        # Split each block's packet budget over its flows.
        packets = _split_budget(day_pkts, flows_per_block, rng)
        if kind == "ack":
            total_bytes = packets * self.ack_packet_size[block_index]
            src_ip, dst_ip = remote_ip, local_ip
            sender_asn, dst_asn = remote_asn, local_asn
        elif kind == "data":
            model = production_size_model(ack_share=0.05)
            total_bytes = model.sample_totals(packets, rng)
            # Pure-ACK hosts (keepalive/telemetry endpoints) exchange
            # only small control segments even in their "data" flows —
            # their block mean must stay under the 44 B threshold.
            pure = self.ack_share[block_index] >= 0.9
            if pure.any():
                light = PacketSizeModel(sizes=(52, 120), weights=(0.6, 0.4))
                total_bytes[pure] = light.sample_totals(packets[pure], rng)
            src_ip, dst_ip = remote_ip, local_ip
            sender_asn, dst_asn = remote_asn, local_asn
        else:
            model = production_size_model(ack_share=0.35)
            total_bytes = model.sample_totals(packets, rng)
            src_ip, dst_ip = local_ip, remote_ip
            sender_asn, dst_asn = local_asn, remote_asn
        proto = np.where(rng.random(total_flows) < 0.93, PROTO_TCP, PROTO_UDP).astype(
            np.uint8
        )
        if kind == "ack":
            proto = np.full(total_flows, PROTO_TCP, dtype=np.uint8)
        dport = rng.choice(
            _SERVICE_PORTS, size=total_flows, p=_SERVICE_PORT_WEIGHTS
        )
        return FlowTable(
            src_ip=src_ip,
            dst_ip=dst_ip,
            proto=proto,
            dport=dport,
            packets=packets,
            bytes=total_bytes,
            sender_asn=sender_asn,
            dst_asn=dst_asn,
            spoofed=np.zeros(total_flows, dtype=bool),
        )


@dataclass(slots=True)
class CdnAckSink:
    """ACK-only inbound traffic toward CDN blocks (no visible reverse).

    Volumes sit above the pipeline's volume threshold so step 6 can
    catch these blocks; packet sizes alone would classify them dark.
    """

    blocks: np.ndarray
    asns: np.ndarray
    inbound_pkts_per_day: np.ndarray
    client_ips: np.ndarray
    client_asns: np.ndarray

    def __post_init__(self) -> None:
        self.blocks = np.asarray(self.blocks, dtype=np.int64)
        self.asns = np.asarray(self.asns, dtype=np.int32)
        self.inbound_pkts_per_day = np.asarray(
            self.inbound_pkts_per_day, dtype=np.int64
        )
        self.client_ips = np.asarray(self.client_ips, dtype=np.uint32)
        self.client_asns = np.asarray(self.client_asns, dtype=np.int32)

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Pure-ACK upstream flows toward the CDN for one day."""
        del day
        if len(self.blocks) == 0 or len(self.client_ips) == 0:
            return FlowTable.empty()
        flows_per_block = np.maximum(
            self.inbound_pkts_per_day // (_PACKETS_PER_FLOW * 4), 1
        )
        total_flows = int(flows_per_block.sum())
        block_index = np.repeat(np.arange(len(self.blocks)), flows_per_block)
        dst_ip = (
            self.blocks[block_index].astype(np.uint32) << np.uint32(8)
        ) | rng.integers(0, 256, size=total_flows, dtype=np.uint32)
        pick = rng.integers(0, len(self.client_ips), size=total_flows)
        packets = _split_budget(self.inbound_pkts_per_day, flows_per_block, rng)
        ack_model = PacketSizeModel(sizes=(40, 52), weights=(0.96, 0.04))
        return FlowTable(
            src_ip=self.client_ips[pick],
            dst_ip=dst_ip,
            proto=np.full(total_flows, PROTO_TCP, dtype=np.uint8),
            dport=np.full(total_flows, 443, dtype=np.uint16),
            packets=packets,
            bytes=ack_model.sample_totals(packets, rng),
            sender_asn=self.client_asns[pick],
            dst_asn=self.asns[block_index],
            spoofed=np.zeros(total_flows, dtype=bool),
        )


def _split_budget(
    day_pkts: np.ndarray, flows_per_block: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Distribute each block's packet budget across its flows (>=1 each)."""
    base = np.repeat(
        np.where(flows_per_block > 0, day_pkts // np.maximum(flows_per_block, 1), 0),
        flows_per_block,
    )
    jitter = rng.poisson(np.maximum(base * 0.25, 0.5))
    packets = np.maximum(base + jitter - (base // 4), 1)
    return packets.astype(np.int64)


