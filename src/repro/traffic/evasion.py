"""Evasive scanning: probes padded above the packet-size fingerprint.

The pipeline's step 2 keeps a /24 dark only while its average inbound
TCP packet stays at or below 44 bytes (SYNs with up to one option), with
per-IP slack to 48 bytes.  A scanner that knows this can pad every probe
— extra TCP options, a junk payload byte or two — so the blocks it
sweeps *fail* the size filter and fall out of the inferred dark set.
:class:`PaddedEvasiveScanner` models exactly that adversary: a targeted
campaign whose every packet is strictly larger than the per-IP slack,
so no mixture of evasive probes can ever look like bare SYN radiation.

The actor is the teeth of the padded-evasive robustness scenario: under
a correct size filter the padded blocks *must* disappear from the dark
set (an expected, bounded degradation); if a regression weakens the
filter they stay, and the scenario's envelope gate catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP, TCP_SYN_ONE_OPTION_SIZE, PacketSizeModel
from repro.traffic.scanners import ScanCampaign, ScanSource

#: Smallest padded probe: strictly above the 48-byte per-IP slack, so
#: even an all-minimum-size campaign defeats the size fingerprint.
MIN_PADDED_SIZE = TCP_SYN_ONE_OPTION_SIZE + 4


def padded_probe_size_model() -> PacketSizeModel:
    """Sizes of padded evasive probes (all above the per-IP slack).

    SYNs stuffed with extra options (52-64 B): small enough to stay
    cheap for the scanner, large enough that every per-packet size —
    not just the mean — clears both the 44-byte average threshold and
    the 48-byte per-IP allowance.
    """
    return PacketSizeModel(
        sizes=(MIN_PADDED_SIZE, 56, 60, 64),
        weights=(0.40, 0.30, 0.20, 0.10),
    )


@dataclass(slots=True)
class PaddedEvasiveScanner:
    """A scan campaign that pads every probe above the size fingerprint.

    ``target_blocks`` are the /24s the adversary wants removed from the
    meta-telescope; ``pkts_per_block_day`` is the ground-truth padding
    intensity per target (it must dominate the ~34 pkts/day of ordinary
    bare-SYN radiation for the blended mean to clear the threshold).
    """

    sources: list[ScanSource]
    target_blocks: np.ndarray
    pkts_per_block_day: float = 140.0
    ports: tuple[int, ...] = (443, 80, 8080)
    port_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    size_model: PacketSizeModel = field(default_factory=padded_probe_size_model)
    _campaign: ScanCampaign | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        if len(self.target_blocks) == 0:
            raise ValueError("evasive scanner needs target blocks")
        if min(self.size_model.sizes) <= TCP_SYN_ONE_OPTION_SIZE:
            raise ValueError(
                "padded probes must all exceed the per-IP size slack "
                f"({TCP_SYN_ONE_OPTION_SIZE} B); got {self.size_model.sizes}"
            )
        self._campaign = ScanCampaign(
            name="padded-evasive",
            sources=self.sources,
            ports=self.ports,
            port_weights=self.port_weights,
            target_blocks=self.target_blocks,
            target_weights=None,
            probes_per_day=int(
                round(self.pkts_per_block_day * len(self.target_blocks))
            ),
            size_model=self.size_model,
        )

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Padded probe flows for one day."""
        return self._campaign.generate(day, rng)
