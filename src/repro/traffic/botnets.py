"""Catalog of scanning/botnet campaigns with the paper's port structure.

The regional and per-network-type port mixes reported by the paper
(Table 5, Figures 11-12 and 18-20) are *inputs* to this reproduction:
they describe the behaviour of real-world actors during the measurement
week.  Each :class:`CampaignSpec` encodes one actor family — ports,
relative intensity, and destination biases by continent and network
type.  :mod:`repro.world.scenarios` turns specs into concrete
:class:`~repro.traffic.scanners.ScanCampaign` instances over the
generated address space.

Key actors encoded below:

* Mirai-style telnet/IoT botnets (ports 23, 2222, 5555, 60023) —
  globally dominant, the reason port 23 tops every ranking;
* Satori (Mirai variant) on ports 37215 and 52869, strongly biased
  toward African destination space;
* web-infrastructure scanning (8080 first, then 80 / 443 / 8443 / 81)
  with port 80 favouring data-center and education space;
* RDP (3389) reconnaissance biased to ISP/enterprise space;
* the database campaigns (6379 Redis, 5038, 3306) with their regional
  quirks, including the Redis campaign that targets North America and
  one European telescope's region but not the other's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.countries import Continent
from repro.bgp.asinfo import ASType


@dataclass(frozen=True, slots=True)
class CampaignSpec:
    """Declarative description of a scanning actor family.

    ``intensity`` is the campaign's share of the total daily scan
    budget (arbitrary units, normalised by the scenario builder).
    ``region_bias``/``type_bias`` multiply the weight of destination
    blocks in matching continents / network types (default 1.0).
    ``locality`` optionally restricts targets to a named scope the
    scenario resolves (e.g. a telescope's surrounding region).
    """

    name: str
    ports: tuple[int, ...]
    port_weights: tuple[float, ...]
    intensity: float
    num_sources: int = 24
    source_continent: Continent | None = None
    region_bias: dict[Continent, float] = field(default_factory=dict)
    type_bias: dict[ASType, float] = field(default_factory=dict)
    locality: str | None = None
    respects_blacklist: bool = False
    weekday_profile: tuple[float, ...] = (1.0,) * 7


def standard_campaign_specs() -> list[CampaignSpec]:
    """The measurement-week actor catalog.

    Intensities are tuned so the aggregate port ranking reproduces
    Figure 11 (23 first by a wide margin, then 37215, 8080, 22, 3389,
    80, 8443, 443, 5555, 2222, 5038, 445, 3306, 6001, 7001, 52869).
    """
    specs = [
        # -- IoT / Mirai family ---------------------------------------
        CampaignSpec(
            name="mirai-telnet",
            ports=(23, 2222, 60023),
            port_weights=(0.82, 0.10, 0.08),
            intensity=30.0,
            num_sources=160,
            region_bias={Continent.OCEANIA: 0.35, Continent.AFRICA: 0.45},
        ),
        CampaignSpec(
            name="mirai-adb",
            ports=(5555,),
            port_weights=(1.0,),
            intensity=3.2,
            num_sources=60,
        ),
        CampaignSpec(
            name="satori",
            ports=(37215, 52869),
            port_weights=(0.78, 0.22),
            intensity=7.5,
            num_sources=90,
            region_bias={
                Continent.AFRICA: 9.0,
                Continent.EUROPE: 0.8,
                Continent.NORTH_AMERICA: 0.5,
                Continent.ASIA: 0.7,
            },
        ),
        # -- web infrastructure ---------------------------------------
        CampaignSpec(
            name="web-alt-http",
            ports=(8080, 8443, 81, 8090),
            port_weights=(0.72, 0.17, 0.06, 0.05),
            intensity=9.0,
            num_sources=70,
        ),
        CampaignSpec(
            name="web-http",
            ports=(80, 443),
            port_weights=(0.55, 0.45),
            intensity=9.5,
            num_sources=70,
            type_bias={ASType.DATA_CENTER: 1.9, ASType.EDUCATION: 1.8},
        ),
        CampaignSpec(
            name="research-scanners",
            ports=(80, 443, 22, 8080),
            port_weights=(0.3, 0.3, 0.2, 0.2),
            intensity=2.4,
            num_sources=10,
            respects_blacklist=True,
        ),
        # -- remote access ---------------------------------------------
        CampaignSpec(
            name="ssh-bruteforce",
            ports=(22,),
            port_weights=(1.0,),
            intensity=7.0,
            num_sources=120,
        ),
        CampaignSpec(
            name="rdp-recon",
            ports=(3389,),
            port_weights=(1.0,),
            intensity=6.2,
            num_sources=80,
            type_bias={ASType.ISP: 1.6, ASType.ENTERPRISE: 1.6},
        ),
        CampaignSpec(
            name="smb-worms",
            ports=(445,),
            port_weights=(1.0,),
            intensity=2.0,
            num_sources=60,
        ),
        # -- databases and app servers ---------------------------------
        CampaignSpec(
            name="redis-campaign",
            ports=(6379,),
            port_weights=(1.0,),
            intensity=2.6,
            num_sources=30,
            locality="redis-footprint",
        ),
        CampaignSpec(
            name="asterisk-ami",
            ports=(5038,),
            port_weights=(1.0,),
            intensity=2.2,
            num_sources=25,
            type_bias={ASType.DATA_CENTER: 3.0},
        ),
        CampaignSpec(
            name="mysql-probing",
            ports=(3306,),
            port_weights=(1.0,),
            intensity=1.6,
            num_sources=25,
            region_bias={Continent.AFRICA: 3.0, Continent.NORTH_AMERICA: 1.8},
        ),
        CampaignSpec(
            name="x11-sweep",
            ports=(6001,),
            port_weights=(1.0,),
            intensity=1.2,
            num_sources=15,
            region_bias={Continent.OCEANIA: 6.0},
        ),
        CampaignSpec(
            name="weblogic-t3",
            ports=(7001,),
            port_weights=(1.0,),
            intensity=1.3,
            num_sources=15,
            region_bias={Continent.NORTH_AMERICA: 4.0},
        ),
        CampaignSpec(
            name="docker-api",
            ports=(2375,),
            port_weights=(1.0,),
            intensity=0.9,
            num_sources=12,
            locality="teu1-region",
        ),
        CampaignSpec(
            name="minecraft-scan",
            ports=(25565,),
            port_weights=(1.0,),
            intensity=1.8,
            num_sources=20,
            locality="redis-footprint",
        ),
    ]
    return specs
