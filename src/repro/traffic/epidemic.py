"""Mirai-style epidemic outbreaks: IBR with infection dynamics.

Real darknet studies (the IoT-telescope literature) find that epidemic
botnets dominate observed radiation during an outbreak: the infected
population grows logistically as each bot scans for new victims, so the
telescope sees a characteristic S-curve of port-23/2323 probing that
can multiply total IBR within days.  For the inference this is *benign
but violent* input — the extra illumination covers more dark space, yet
a hot enough outbreak can push blocks over the volume threshold.

:class:`EpidemicOutbreakActor` models one outbreak: a susceptible pool
of bot hosts in active space, logistic growth of the infected share,
and per-bot telnet scanning sprayed uniformly over the target universe
(Mirai famously respected no blacklist).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import PacketSizeModel, ibr_tcp_size_model
from repro.traffic.scanners import ScanCampaign, ScanSource

#: The Mirai family service mix: telnet-dominated with IoT side ports.
MIRAI_PORTS: tuple[int, ...] = (23, 2323, 5555)
MIRAI_PORT_WEIGHTS: tuple[float, ...] = (0.78, 0.16, 0.06)


@dataclass(slots=True)
class EpidemicOutbreakActor:
    """One epidemic outbreak with logistic infection growth.

    ``bot_pool`` is the susceptible host population (drawn from active
    space); the infected count on day ``d`` follows
    ``K / (1 + exp(-growth_rate * (d - midpoint_day)))`` with carrying
    capacity ``K = len(bot_pool)``.  Each infected bot emits
    ``pkts_per_bot_day`` probe packets uniformly over ``target_blocks``.
    """

    bot_pool: list[ScanSource]
    target_blocks: np.ndarray
    pkts_per_bot_day: float = 120.0
    growth_rate: float = 2.2
    midpoint_day: float = 1.0
    start_day: int = 0
    size_model: PacketSizeModel = field(default_factory=ibr_tcp_size_model)

    def __post_init__(self) -> None:
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        if not self.bot_pool:
            raise ValueError("epidemic needs a susceptible bot pool")
        if len(self.target_blocks) == 0:
            raise ValueError("epidemic needs target blocks")
        if self.growth_rate <= 0:
            raise ValueError("growth_rate must be positive")

    def infected_on(self, day: int) -> int:
        """Infected bot count on ``day`` (0 before the outbreak starts)."""
        if day < self.start_day:
            return 0
        elapsed = day - self.start_day
        capacity = len(self.bot_pool)
        infected = capacity / (
            1.0 + np.exp(-self.growth_rate * (elapsed - self.midpoint_day))
        )
        return int(np.clip(round(infected), 1, capacity))

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """The outbreak's probe flows for one day."""
        infected = self.infected_on(day)
        if infected == 0:
            return FlowTable.empty()
        campaign = ScanCampaign(
            name="epidemic-outbreak",
            sources=self.bot_pool[:infected],
            ports=MIRAI_PORTS,
            port_weights=MIRAI_PORT_WEIGHTS,
            target_blocks=self.target_blocks,
            target_weights=None,
            probes_per_day=int(round(self.pkts_per_bot_day * infected)),
            size_model=self.size_model,
        )
        return campaign.generate(day, rng)
