"""Spoofed-source floods: the inference pipeline's main adversary.

A spoofed packet "from" a dark /24 makes the whole block look active
(pipeline step 3) or turns it into a graynet (step 7), so spoofing
directly destroys meta-telescope prefixes — the effect quantified in
the paper's Figure 9.  Spoofers draw fake sources from routed *and*
unrouted space, which is exactly what makes the unrouted-space
tolerance baseline possible (Section 7.2).

Two source strategies are modelled:

* ``uniform``: every packet picks an independent source across the
  effective space — thin uniform pollution, a handful of packets per
  /24 per day at most, which the percentile tolerance can forgive;
* ``subnet``: each flood spoofs heavily inside one /16 of *announced*
  space (impersonating legitimate networks defeats ingress ACLs) —
  a concentrated burst far above any tolerance, which is why the
  with-tolerance curve of Figure 9 still declines.

Uniform sources are importance-sampled from ``uniform_source_blocks``
— the announced space plus the never-announced baseline — because
spoofed packets "from" any other address can never influence the
pipeline or the tolerance calibration; this keeps the flow tables
small while preserving the per-/24 pollution rate of a full 2^32
uniform spoofer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP, PROTO_UDP


@dataclass(slots=True)
class SpoofedFloodActor:
    """Floods launched from networks without BCP 38 filtering.

    ``attacker_asns`` are the ASes physically emitting the packets
    (never spoof-filtered networks); ``victim_ips``/``victim_asns`` are
    flood destinations.
    """

    attacker_asns: np.ndarray
    victim_ips: np.ndarray
    victim_asns: np.ndarray
    #: Effective uniform-strategy source space (/24 block ids):
    #: announced space plus the unrouted tolerance-baseline blocks.
    uniform_source_blocks: np.ndarray
    #: Daily uniform-strategy packet budget.
    uniform_packets_per_day: int
    #: /16 anchors (as /16 indices = block >> 8) for subnet floods;
    #: typically the /16s covering announced space only.
    subnet_anchors: np.ndarray
    floods_per_day: int = 0
    flood_pkts_per_block: int = 400
    #: Row aggregation for flood traffic (spoofers recycle fake
    #: sources, so one row can carry many packets).
    flood_pkts_per_row: int = 400
    #: Day-to-day intensity multipliers (len 7); spoofing is bursty.
    daily_profile: tuple[float, ...] = (1.0, 0.8, 1.3, 0.9, 1.1, 0.7, 0.6)

    def __post_init__(self) -> None:
        self.attacker_asns = np.asarray(self.attacker_asns, dtype=np.int32)
        self.victim_ips = np.asarray(self.victim_ips, dtype=np.uint32)
        self.victim_asns = np.asarray(self.victim_asns, dtype=np.int32)
        self.uniform_source_blocks = np.asarray(
            self.uniform_source_blocks, dtype=np.int64
        )
        self.subnet_anchors = np.asarray(self.subnet_anchors, dtype=np.int64)
        if len(self.victim_ips) != len(self.victim_asns):
            raise ValueError("victim arrays must align")
        if len(self.victim_ips) == 0:
            raise ValueError("spoofing needs victims")
        if len(self.uniform_source_blocks) == 0:
            raise ValueError("spoofing needs a source space")
        if self.floods_per_day > 0 and len(self.subnet_anchors) == 0:
            raise ValueError("subnet floods need anchors")
        if len(self.daily_profile) != 7:
            raise ValueError("daily_profile needs 7 entries")

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Spoofed flows for one day (both strategies)."""
        scale = self.daily_profile[day % 7]
        tables = [
            self._uniform_flood(int(self.uniform_packets_per_day * scale), rng),
            self._subnet_floods(max(int(round(self.floods_per_day * scale)), 0), rng),
        ]
        return FlowTable.concat(tables)

    def _pick_victims(
        self, num_flows: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        index = rng.integers(0, len(self.victim_ips), size=num_flows)
        return self.victim_ips[index], self.victim_asns[index]

    def _flow_frame(
        self,
        src_ip: np.ndarray,
        packets: np.ndarray,
        rng: np.random.Generator,
    ) -> FlowTable:
        num_flows = len(src_ip)
        dst_ip, dst_asn = self._pick_victims(num_flows, rng)
        sender = rng.choice(self.attacker_asns, size=num_flows)
        proto = np.where(
            rng.random(num_flows) < 0.8, PROTO_TCP, PROTO_UDP
        ).astype(np.uint8)
        return FlowTable(
            src_ip=src_ip,
            dst_ip=dst_ip,
            proto=proto,
            dport=rng.choice(
                np.array([80, 443, 53, 123], dtype=np.uint16), size=num_flows
            ),
            packets=packets,
            bytes=packets * 40,
            sender_asn=sender.astype(np.int32),
            dst_asn=dst_asn,
            spoofed=np.ones(num_flows, dtype=bool),
        )

    def _uniform_flood(self, budget: int, rng: np.random.Generator) -> FlowTable:
        if budget <= 0:
            return FlowTable.empty()
        blocks = rng.choice(self.uniform_source_blocks, size=budget, replace=True)
        src_ip = (blocks.astype(np.uint32) << np.uint32(8)) | rng.integers(
            0, 256, size=budget, dtype=np.uint32
        )
        return self._flow_frame(src_ip, np.ones(budget, dtype=np.int64), rng)

    def _subnet_floods(
        self, num_floods: int, rng: np.random.Generator
    ) -> FlowTable:
        if num_floods <= 0:
            return FlowTable.empty()
        anchors = rng.choice(self.subnet_anchors, size=num_floods, replace=True)
        rows_per_block = max(1, self.flood_pkts_per_block // self.flood_pkts_per_row)
        total_rows = num_floods * 256 * rows_per_block
        anchor_of_row = np.repeat(anchors, 256 * rows_per_block)
        block_offset = np.tile(
            np.repeat(np.arange(256), rows_per_block), num_floods
        )
        src_block = (anchor_of_row << 8) | block_offset
        src_ip = (src_block.astype(np.uint32) << np.uint32(8)) | rng.integers(
            0, 256, size=total_rows, dtype=np.uint32
        )
        packets = np.full(
            total_rows,
            max(1, self.flood_pkts_per_block // rows_per_block),
            dtype=np.int64,
        )
        return self._flow_frame(src_ip, packets, rng)


@dataclass(slots=True)
class TargetedSpoofFlood:
    """A flood that impersonates *specific* /24s to flip them dark→gray.

    Where :class:`SpoofedFloodActor` sprays whole /16s, this adversary
    aims: it spoofs heavily from a chosen list of dark /24 blocks so the
    pipeline's source-seen test (step 3 / step 7) sees each of them
    "originate" traffic far above any spoofing tolerance, demoting the
    blocks from the dark set into the graynet.  It is the surgical
    version of the paper's Figure-9 attack, and the target list is
    exactly the scenario's ground truth: under a healthy pipeline every
    targeted block must leave the inferred dark set (bounded, expected
    degradation) — no more and not much less.
    """

    #: /24 blocks whose addresses the flood impersonates.
    target_blocks: np.ndarray
    #: ASes physically emitting the packets (spoof-capable networks).
    attacker_asns: np.ndarray
    victim_ips: np.ndarray
    victim_asns: np.ndarray
    #: Spoofed ground-truth packets per targeted /24 per day; must sit
    #: far above the unrouted-baseline tolerance (a few pkts/day).
    pkts_per_block_day: int = 400
    #: Rows per targeted block per day (spoofers recycle fake sources).
    rows_per_block: int = 8
    #: First day the flood runs (it persists from then on).
    start_day: int = 0

    def __post_init__(self) -> None:
        self.target_blocks = np.asarray(self.target_blocks, dtype=np.int64)
        self.attacker_asns = np.asarray(self.attacker_asns, dtype=np.int32)
        self.victim_ips = np.asarray(self.victim_ips, dtype=np.uint32)
        self.victim_asns = np.asarray(self.victim_asns, dtype=np.int32)
        if len(self.target_blocks) == 0:
            raise ValueError("targeted flood needs target blocks")
        if len(self.attacker_asns) == 0:
            raise ValueError("targeted flood needs attacker ASes")
        if len(self.victim_ips) != len(self.victim_asns) or len(self.victim_ips) == 0:
            raise ValueError("victim arrays must align and be non-empty")
        if self.rows_per_block < 1:
            raise ValueError("rows_per_block must be >= 1")

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Spoofed flows impersonating every targeted block, aggregated."""
        if day < self.start_day:
            return FlowTable.empty()
        total_rows = len(self.target_blocks) * self.rows_per_block
        block_of_row = np.repeat(self.target_blocks, self.rows_per_block)
        src_ip = (block_of_row.astype(np.uint32) << np.uint32(8)) | rng.integers(
            0, 256, size=total_rows, dtype=np.uint32
        )
        victim_pick = rng.integers(0, len(self.victim_ips), size=total_rows)
        packets = np.full(
            total_rows,
            max(1, self.pkts_per_block_day // self.rows_per_block),
            dtype=np.int64,
        )
        return FlowTable(
            src_ip=src_ip,
            dst_ip=self.victim_ips[victim_pick],
            proto=np.full(total_rows, PROTO_TCP, dtype=np.uint8),
            dport=rng.choice(
                np.array([80, 443, 53], dtype=np.uint16), size=total_rows
            ),
            packets=packets,
            bytes=packets * 40,
            sender_asn=rng.choice(self.attacker_asns, size=total_rows).astype(
                np.int32
            ),
            dst_asn=self.victim_asns[victim_pick],
            spoofed=np.ones(total_rows, dtype=bool),
        )
