"""Traffic substrate: flow records plus the actors that emit them.

The synthetic Internet's traffic for one day is assembled by
:mod:`repro.traffic.mix` from independent actors:

* scanners and botnets (:mod:`scanners`, :mod:`botnets`) — the IBR the
  meta-telescope is built to observe;
* DDoS backscatter (:mod:`backscatter`);
* spoofed-source floods (:mod:`spoofing`) — the main adversary of the
  inference pipeline;
* production traffic and CDN ACK asymmetry (:mod:`production`) — the
  "live" Internet the pipeline must not misclassify.
"""

from repro.traffic.packets import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PacketSizeModel,
    ibr_tcp_size_model,
    production_size_model,
)
from repro.traffic.flows import FlowTable

__all__ = [
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PacketSizeModel",
    "ibr_tcp_size_model",
    "production_size_model",
    "FlowTable",
]
