"""Packet-level constants and size models.

The paper's key fingerprint (Section 4.1) is the IP packet size of TCP
traffic: IBR is dominated by bare TCP-SYN packets of 40 bytes (20 B IP
header + 20 B TCP header), with a visible step at 48 bytes (one TCP
option, typically MSS) — at least 93 % of telescope TCP packets are
40 bytes.  Production traffic mixes 40-byte pure ACKs with large data
segments, so its *average* exceeds 44 bytes even when its *median* does
not.  These two models encode exactly that structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

#: Minimum IP packet size for a TCP segment (IP + TCP header, no options).
MIN_TCP_IP_SIZE = 40
#: TCP-SYN with a single option (e.g. MSS), the paper's "step at 48 bytes".
TCP_SYN_ONE_OPTION_SIZE = 48


@dataclass(frozen=True, slots=True)
class PacketSizeModel:
    """A discrete packet-size distribution.

    ``sizes`` and ``weights`` describe the support; :meth:`mean_size`
    gives the exact expectation and :meth:`sample_totals` draws the
    total byte count for a given number of packets without materialising
    per-packet sizes (multinomial over the support).
    """

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights):
            raise ValueError("sizes and weights must have equal length")
        if not self.sizes:
            raise ValueError("empty size model")
        total = float(sum(self.weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")

    def probabilities(self) -> np.ndarray:
        """Normalised weight vector."""
        weights = np.asarray(self.weights, dtype=np.float64)
        return weights / weights.sum()

    def mean_size(self) -> float:
        """Expected packet size in bytes."""
        return float(np.dot(self.probabilities(), np.asarray(self.sizes)))

    def sample_sizes(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` individual packet sizes."""
        return rng.choice(
            np.asarray(self.sizes, dtype=np.int64), size=count, p=self.probabilities()
        )

    def sample_totals(
        self, packet_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Total bytes for each entry of ``packet_counts``.

        Vectorised: draws a multinomial split of each flow's packets
        over the size support.  Exact for our purposes and far cheaper
        than sampling every packet of every flow.
        """
        counts = np.asarray(packet_counts, dtype=np.int64)
        probs = self.probabilities()
        sizes = np.asarray(self.sizes, dtype=np.int64)
        splits = rng.multinomial(counts, probs)
        return splits @ sizes


def ibr_tcp_size_model() -> PacketSizeModel:
    """TCP size mix at a telescope: ≥93 % bare SYNs, a step at 48 B.

    Calibrated so the mean is ~40.7 B (Table 2's TUS1 value).
    """
    return PacketSizeModel(
        sizes=(40, 44, 48, 52, 60),
        weights=(0.935, 0.015, 0.040, 0.007, 0.003),
    )


def backscatter_size_model() -> PacketSizeModel:
    """SYN-ACK / RST backscatter: headers only, occasionally an option."""
    return PacketSizeModel(sizes=(40, 44, 48), weights=(0.90, 0.04, 0.06))


def production_size_model(ack_share: float) -> PacketSizeModel:
    """Inbound TCP at an active subnet.

    ``ack_share`` is the fraction of bare 40-byte ACKs; the remainder is
    a mix of small requests and MTU-sized data segments.  With any
    realistic data share the mean exceeds 44 B, while the median stays
    at 40 B whenever ``ack_share`` > 0.5 — the exact asymmetry behind
    Table 3's mean-vs-median result.
    """
    if not 0.0 <= ack_share < 1.0:
        raise ValueError(f"ack_share out of range: {ack_share}")
    rest = 1.0 - ack_share
    if ack_share >= 0.9:
        # ACK/keepalive-only hosts: no data segments at all; the mean
        # stays below 44 B (Table 3's rare false-positive actives).
        return PacketSizeModel(
            sizes=(40, 44, 52, 120),
            weights=(ack_share, rest * 0.5, rest * 0.3, rest * 0.2),
        )
    return PacketSizeModel(
        sizes=(40, 44, 52, 120, 576, 1500),
        weights=(
            ack_share,
            rest * 0.18,
            rest * 0.20,
            rest * 0.17,
            rest * 0.12,
            rest * 0.33,
        ),
    )


def dirty_dark_size_model() -> PacketSizeModel:
    """TCP toward the minority of dark blocks that attract payloads.

    Misconfigured exporters and byte-heavy probes give a mean above the
    44 B threshold; these blocks are the pipeline's false negatives in
    Table 3 (dark classified active).
    """
    return PacketSizeModel(sizes=(40, 120, 576, 1500), weights=(0.35, 0.25, 0.2, 0.2))


def udp_ibr_size_model() -> PacketSizeModel:
    """UDP background radiation (SSDP / DNS / Memcached probes)."""
    return PacketSizeModel(sizes=(60, 78, 120, 300), weights=(0.4, 0.3, 0.2, 0.1))
