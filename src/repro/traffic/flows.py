"""Columnar flow table.

Flow records are what every vantage point in the paper exports (IPFIX
at the IXPs, NetFlow at the ISP, per-packet rows at the telescopes —
a telescope capture is simply an unsampled flow table).  The table is a
struct-of-arrays over numpy so the inference pipeline stays vectorised
at hundreds of thousands of blocks.

Tables carry an address family tag (:mod:`repro.net.family`).  For IPv4
the ``src_ip``/``dst_ip`` columns are full uint32 addresses.  For IPv6
they hold the *engine key* — the upper 64 bits (the /64 id) as uint64 —
and the low 64 bits travel in optional ``src_ip_lo``/``dst_ip_lo``
columns for fidelity only; the inference pipeline never reads them,
because classification happens at /48 site granularity.

Ground-truth columns (``sender_asn``, ``spoofed``) travel with each row
for evaluation purposes only; the inference code never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.net.family import FAMILY_IPV4, FAMILY_IPV6, family as _family
from repro.traffic.packets import PROTO_TCP

#: Column name -> dtype for an IPv4 flow table (the historical schema).
FLOW_COLUMNS: Mapping[str, np.dtype] = {
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "proto": np.dtype(np.uint8),
    "dport": np.dtype(np.uint16),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "sender_asn": np.dtype(np.int32),
    "dst_asn": np.dtype(np.int32),
    "spoofed": np.dtype(bool),
}

#: Column name -> dtype for an IPv6 flow table: uint64 engine keys plus
#: the low-64-bit side columns.
FLOW_COLUMNS_V6: Mapping[str, np.dtype] = {
    "src_ip": np.dtype(np.uint64),
    "dst_ip": np.dtype(np.uint64),
    "proto": np.dtype(np.uint8),
    "dport": np.dtype(np.uint16),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "sender_asn": np.dtype(np.int32),
    "dst_asn": np.dtype(np.int32),
    "spoofed": np.dtype(bool),
    "src_ip_lo": np.dtype(np.uint64),
    "dst_ip_lo": np.dtype(np.uint64),
}


def flow_columns(family_name: str) -> Mapping[str, np.dtype]:
    """The column schema for an address family name."""
    if family_name == FAMILY_IPV4:
        return FLOW_COLUMNS
    if family_name == FAMILY_IPV6:
        return FLOW_COLUMNS_V6
    raise ValueError(f"unknown address family: {family_name!r}")


@dataclass(frozen=True)
class FlowTable:
    """An immutable batch of flow records (struct of arrays)."""

    src_ip: np.ndarray
    dst_ip: np.ndarray
    proto: np.ndarray
    dport: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    sender_asn: np.ndarray
    dst_asn: np.ndarray
    #: Ground-truth flag; ``None`` is the "nothing spoofed" sentinel and
    #: materialises to an all-False array in ``__post_init__``.
    spoofed: np.ndarray | None = None
    #: Low 64 address bits (IPv6 only); ``None`` materialises to zeros.
    src_ip_lo: np.ndarray | None = None
    dst_ip_lo: np.ndarray | None = None
    #: Address family tag: ``"ipv4"`` (default) or ``"ipv6"``.
    family: str = FAMILY_IPV4

    def __post_init__(self) -> None:
        columns = flow_columns(self.family)
        if self.spoofed is None:
            object.__setattr__(
                self, "spoofed", np.zeros(len(self.src_ip), dtype=bool)
            )
        if self.family == FAMILY_IPV6:
            for name in ("src_ip_lo", "dst_ip_lo"):
                if getattr(self, name) is None:
                    object.__setattr__(
                        self, name, np.zeros(len(self.src_ip), dtype=np.uint64)
                    )
        else:
            for name in ("src_ip_lo", "dst_ip_lo"):
                if getattr(self, name) is not None:
                    raise ValueError(
                        f"{name} is an IPv6 column; this table is {self.family}"
                    )
        lengths = {name: len(getattr(self, name)) for name in columns}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged flow table: {lengths}")
        for name, dtype in columns.items():
            column = np.asarray(getattr(self, name))
            if column.dtype != dtype:
                object.__setattr__(self, name, column.astype(dtype))

    # -- schema ---------------------------------------------------------

    def columns(self) -> Mapping[str, np.dtype]:
        """This table's column schema (name -> dtype)."""
        return flow_columns(self.family)

    @property
    def address_family(self):
        """The :class:`~repro.net.family.AddressFamily` for this table."""
        return _family(self.family)

    # -- construction ---------------------------------------------------

    @classmethod
    def empty(cls, family: str = FAMILY_IPV4) -> "FlowTable":
        """A table with zero rows."""
        return cls(
            **{
                name: np.empty(0, dtype=dtype)
                for name, dtype in flow_columns(family).items()
            },
            family=family,
        )

    @classmethod
    def concat(cls, tables: Iterable["FlowTable"]) -> "FlowTable":
        """Concatenate tables (rows stacked in order; one family only)."""
        tables = [t for t in tables if len(t)]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        families = {t.family for t in tables}
        if len(families) > 1:
            raise ValueError(f"cannot concat mixed address families: {families}")
        head = tables[0]
        return cls(
            **{
                name: np.concatenate([getattr(t, name) for t in tables])
                for name in head.columns()
            },
            family=head.family,
        )

    def __len__(self) -> int:
        return len(self.src_ip)

    # -- chunked ingestion -------------------------------------------

    def slice_rows(self, start: int, stop: int) -> "FlowTable":
        """The half-open row range ``[start, stop)``, zero-copy."""
        return FlowTable(
            **{name: getattr(self, name)[start:stop] for name in self.columns()},
            family=self.family,
        )

    def iter_chunks(self, chunk_rows: int | None) -> Iterator["FlowTable"]:
        """Yield the table as bounded-size row chunks, zero-copy.

        Chunks are numpy slices of the parent columns — no row is ever
        copied, so a consumer that aggregates chunk-by-chunk holds at
        most O(chunk) fresh memory.  ``chunk_rows=None`` yields the
        whole table as a single chunk; an empty table yields nothing.
        ``FlowTable.concat(t.iter_chunks(n))`` round-trips for any n.
        """
        if len(self) == 0:
            return
        if chunk_rows is None:
            yield self
            return
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for start in range(0, len(self), chunk_rows):
            yield self.slice_rows(start, start + chunk_rows)

    # -- row selection ----------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowTable":
        """Rows where ``mask`` is True."""
        return FlowTable(
            **{name: getattr(self, name)[mask] for name in self.columns()},
            family=self.family,
        )

    def tcp(self) -> "FlowTable":
        """Only TCP rows."""
        return self.filter(self.proto == PROTO_TCP)

    def toward_blocks(self, blocks: np.ndarray) -> "FlowTable":
        """Rows whose destination block is in ``blocks`` (sorted or not)."""
        wanted = np.unique(np.asarray(blocks, dtype=np.int64))
        return self.filter(np.isin(self.dst_blocks(), wanted))

    def from_blocks(self, blocks: np.ndarray) -> "FlowTable":
        """Rows whose source block is in ``blocks``."""
        wanted = np.unique(np.asarray(blocks, dtype=np.int64))
        return self.filter(np.isin(self.src_blocks(), wanted))

    # -- derived columns ----------------------------------------------

    def src_blocks(self) -> np.ndarray:
        """Source block id per row (/24 for v4, /48 site for v6)."""
        return self.address_family.block_of(self.src_ip)

    def dst_blocks(self) -> np.ndarray:
        """Destination block id per row (/24 for v4, /48 site for v6)."""
        return self.address_family.block_of(self.dst_ip)

    def total_packets(self) -> int:
        """Sum of the packet column."""
        return int(self.packets.sum())

    def total_bytes(self) -> int:
        """Sum of the byte column."""
        return int(self.bytes.sum())

    # -- sampling ----------------------------------------------------

    def thin(self, probability: float, rng: np.random.Generator) -> "FlowTable":
        """Packet-sampled copy: keep each packet with ``probability``.

        Emulates the per-packet sampling that produces IPFIX records:
        each flow's packet count is binomially thinned, bytes are scaled
        by the surviving fraction (rounded), and empty flows disappear.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if probability == 1.0:
            return self
        if probability == 0.0 or len(self) == 0:
            return FlowTable.empty(self.family)
        kept = rng.binomial(self.packets, probability)
        mask = kept > 0
        if not mask.any():
            return FlowTable.empty(self.family)
        scale = kept[mask] / self.packets[mask]
        table = self.filter(mask)
        new_bytes = np.maximum(
            np.rint(table.bytes * scale).astype(np.int64), kept[mask] * 20
        )
        replaced = {name: getattr(table, name) for name in table.columns()}
        replaced["packets"] = kept[mask]
        replaced["bytes"] = new_bytes
        return FlowTable(**replaced, family=self.family)

    def decimate(self, factor: int, rng: np.random.Generator) -> "FlowTable":
        """Sub-sample by an integer factor (the Figure-10 operation)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return self.thin(1.0 / factor, rng)


def aggregate_sums(
    keys: np.ndarray, *value_columns: np.ndarray
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Group-by-sum: unique ``keys`` plus per-key sums of each column.

    Returns ``(unique_keys, (sum_0, sum_1, ...))`` with groups in
    ascending key order.
    """
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = tuple(
        np.bincount(inverse, weights=column, minlength=len(unique_keys)).astype(
            np.int64
        )
        for column in value_columns
    )
    return unique_keys, sums


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """Median of a weighted sample (packet-weighted flow sizes).

    Used to compute per-block *median packet size* from flow records:
    each flow contributes its mean packet size with multiplicity equal
    to its packet count.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(values) == 0 or weights.sum() <= 0:
        raise ValueError("cannot take the median of an empty sample")
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    midpoint = cumulative[-1] / 2.0
    index = int(np.searchsorted(cumulative, midpoint))
    return float(sorted_values[min(index, len(sorted_values) - 1)])
