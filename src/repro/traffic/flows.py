"""Columnar flow table.

Flow records are what every vantage point in the paper exports (IPFIX
at the IXPs, NetFlow at the ISP, per-packet rows at the telescopes —
a telescope capture is simply an unsampled flow table).  The table is a
struct-of-arrays over numpy so the inference pipeline stays vectorised
at hundreds of thousands of /24 blocks.

Ground-truth columns (``sender_asn``, ``spoofed``) travel with each row
for evaluation purposes only; the inference code never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.traffic.packets import PROTO_TCP

#: Column name -> dtype for a flow table.
FLOW_COLUMNS: Mapping[str, np.dtype] = {
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "proto": np.dtype(np.uint8),
    "dport": np.dtype(np.uint16),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "sender_asn": np.dtype(np.int32),
    "dst_asn": np.dtype(np.int32),
    "spoofed": np.dtype(bool),
}


@dataclass(frozen=True)
class FlowTable:
    """An immutable batch of flow records (struct of arrays)."""

    src_ip: np.ndarray
    dst_ip: np.ndarray
    proto: np.ndarray
    dport: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    sender_asn: np.ndarray
    dst_asn: np.ndarray
    #: Ground-truth flag; ``None`` is the "nothing spoofed" sentinel and
    #: materialises to an all-False array in ``__post_init__``.
    spoofed: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.spoofed is None:
            object.__setattr__(
                self, "spoofed", np.zeros(len(self.src_ip), dtype=bool)
            )
        lengths = {name: len(getattr(self, name)) for name in FLOW_COLUMNS}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged flow table: {lengths}")
        for name, dtype in FLOW_COLUMNS.items():
            column = np.asarray(getattr(self, name))
            if column.dtype != dtype:
                object.__setattr__(self, name, column.astype(dtype))

    # -- construction ---------------------------------------------------

    @classmethod
    def empty(cls) -> "FlowTable":
        """A table with zero rows."""
        return cls(
            **{
                name: np.empty(0, dtype=dtype)
                for name, dtype in FLOW_COLUMNS.items()
            }
        )

    @classmethod
    def concat(cls, tables: Iterable["FlowTable"]) -> "FlowTable":
        """Concatenate tables (rows stacked in order)."""
        tables = [t for t in tables if len(t)]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        return cls(
            **{
                name: np.concatenate([getattr(t, name) for t in tables])
                for name in FLOW_COLUMNS
            }
        )

    def __len__(self) -> int:
        return len(self.src_ip)

    # -- chunked ingestion -------------------------------------------

    def iter_chunks(self, chunk_rows: int | None) -> Iterator["FlowTable"]:
        """Yield the table as bounded-size row chunks, zero-copy.

        Chunks are numpy slices of the parent columns — no row is ever
        copied, so a consumer that aggregates chunk-by-chunk holds at
        most O(chunk) fresh memory.  ``chunk_rows=None`` yields the
        whole table as a single chunk; an empty table yields nothing.
        ``FlowTable.concat(t.iter_chunks(n))`` round-trips for any n.
        """
        if len(self) == 0:
            return
        if chunk_rows is None:
            yield self
            return
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for start in range(0, len(self), chunk_rows):
            stop = start + chunk_rows
            yield FlowTable(
                **{
                    name: getattr(self, name)[start:stop]
                    for name in FLOW_COLUMNS
                }
            )

    # -- row selection ----------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowTable":
        """Rows where ``mask`` is True."""
        return FlowTable(
            **{name: getattr(self, name)[mask] for name in FLOW_COLUMNS}
        )

    def tcp(self) -> "FlowTable":
        """Only TCP rows."""
        return self.filter(self.proto == PROTO_TCP)

    def toward_blocks(self, blocks: np.ndarray) -> "FlowTable":
        """Rows whose destination /24 is in ``blocks`` (sorted or not)."""
        wanted = np.unique(np.asarray(blocks, dtype=np.int64))
        return self.filter(np.isin(self.dst_blocks(), wanted))

    def from_blocks(self, blocks: np.ndarray) -> "FlowTable":
        """Rows whose source /24 is in ``blocks``."""
        wanted = np.unique(np.asarray(blocks, dtype=np.int64))
        return self.filter(np.isin(self.src_blocks(), wanted))

    # -- derived columns ----------------------------------------------

    def src_blocks(self) -> np.ndarray:
        """Source /24 block id per row."""
        return (self.src_ip >> np.uint32(8)).astype(np.int64)

    def dst_blocks(self) -> np.ndarray:
        """Destination /24 block id per row."""
        return (self.dst_ip >> np.uint32(8)).astype(np.int64)

    def total_packets(self) -> int:
        """Sum of the packet column."""
        return int(self.packets.sum())

    def total_bytes(self) -> int:
        """Sum of the byte column."""
        return int(self.bytes.sum())

    # -- sampling ----------------------------------------------------

    def thin(self, probability: float, rng: np.random.Generator) -> "FlowTable":
        """Packet-sampled copy: keep each packet with ``probability``.

        Emulates the per-packet sampling that produces IPFIX records:
        each flow's packet count is binomially thinned, bytes are scaled
        by the surviving fraction (rounded), and empty flows disappear.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if probability == 1.0:
            return self
        if probability == 0.0 or len(self) == 0:
            return FlowTable.empty()
        kept = rng.binomial(self.packets, probability)
        mask = kept > 0
        if not mask.any():
            return FlowTable.empty()
        scale = kept[mask] / self.packets[mask]
        table = self.filter(mask)
        new_bytes = np.maximum(
            np.rint(table.bytes * scale).astype(np.int64), kept[mask] * 20
        )
        return FlowTable(
            src_ip=table.src_ip,
            dst_ip=table.dst_ip,
            proto=table.proto,
            dport=table.dport,
            packets=kept[mask],
            bytes=new_bytes,
            sender_asn=table.sender_asn,
            dst_asn=table.dst_asn,
            spoofed=table.spoofed,
        )

    def decimate(self, factor: int, rng: np.random.Generator) -> "FlowTable":
        """Sub-sample by an integer factor (the Figure-10 operation)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return self.thin(1.0 / factor, rng)


def aggregate_sums(
    keys: np.ndarray, *value_columns: np.ndarray
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Group-by-sum: unique ``keys`` plus per-key sums of each column.

    Returns ``(unique_keys, (sum_0, sum_1, ...))`` with groups in
    ascending key order.
    """
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = tuple(
        np.bincount(inverse, weights=column, minlength=len(unique_keys)).astype(
            np.int64
        )
        for column in value_columns
    )
    return unique_keys, sums


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """Median of a weighted sample (packet-weighted flow sizes).

    Used to compute per-/24 *median packet size* from flow records:
    each flow contributes its mean packet size with multiplicity equal
    to its packet count.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(values) == 0 or weights.sum() <= 0:
        raise ValueError("cannot take the median of an empty sample")
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    midpoint = cumulative[-1] / 2.0
    index = int(np.searchsorted(cumulative, midpoint))
    return float(sorted_values[min(index, len(sorted_values) - 1)])
