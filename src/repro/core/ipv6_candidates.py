"""IPv6 meta-telescope candidates (prototype of the paper's future work).

Section 9: "Given the vastness of the IPv6 space, our filtering
pipeline would likely need adjustments.  The lack of complete and
reliable hit lists and archives of active measurements for IPv6
further complicate the detection."

Two of the IPv4 pipeline's ideas transfer directly and are prototyped
here at /48 (site) granularity:

* the candidate universe cannot be "all space" — it is the set of
  sites *observed receiving traffic* at the vantage point (the
  IPv4 pipeline's implicit step 0 becomes essential);
* activity evidence flips from an afterthought to a core filter:
  a site is a candidate only if it is observed, announced, absent
  from the (incomplete) hitlist, and never seen sourcing traffic.

What deliberately does **not** transfer: the 44-byte TCP fingerprint
(IPv6 headers are 40 bytes on their own, so the thresholds differ) and
the per-/24 volume threshold — both are marked as open parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ipv6 import Ipv6Prefix


@dataclass(frozen=True)
class Ipv6CandidateResult:
    """Outcome of the /48-granularity candidate enumeration."""

    candidate_sites: tuple[int, ...]
    observed: int
    dropped_unannounced: int
    dropped_hitlist: int
    dropped_sources: int


def ipv6_candidate_sites(
    observed_dst_sites: set[int],
    observed_src_sites: set[int],
    announced: list[Ipv6Prefix],
    hitlist_sites: set[int],
) -> Ipv6CandidateResult:
    """Enumerate /48 sites a future IPv6 meta-telescope could monitor.

    ``observed_dst_sites`` / ``observed_src_sites`` come from the
    vantage point's flow data (destination and source /48s);
    ``announced`` is the IPv6 RIB; ``hitlist_sites`` the /48s of known
    active addresses (Gasser-style hitlists — a lower bound, like the
    IPv4 liveness datasets).
    """
    dropped_unannounced = 0
    dropped_hitlist = 0
    dropped_sources = 0
    candidates = []
    for site in sorted(observed_dst_sites):
        if not any(prefix.contains_site(site) for prefix in announced):
            dropped_unannounced += 1
            continue
        if site in hitlist_sites:
            dropped_hitlist += 1
            continue
        if site in observed_src_sites:
            dropped_sources += 1
            continue
        candidates.append(site)
    return Ipv6CandidateResult(
        candidate_sites=tuple(candidates),
        observed=len(observed_dst_sites),
        dropped_unannounced=dropped_unannounced,
        dropped_hitlist=dropped_hitlist,
        dropped_sources=dropped_sources,
    )
