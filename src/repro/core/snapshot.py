"""Immutable, versioned classification snapshots.

The paper's end product is *operational*: an operator continuously
knows which /24s are dark and treats traffic toward them as IBR
(Section 9's "meta-telescope information as a service").  Until this
module, that knowledge only existed as the transient return values of
:meth:`~repro.core.metatelescope.MetaTelescope.infer` /
:meth:`~repro.core.online.OnlineMetaTelescope.update` — batch results
a caller had to hold onto and re-derive per question.

A :class:`ClassificationSnapshot` freezes one day's complete verdict
state into a first-class artifact:

* **per-/24 verdict** (dark / unclean / gray / candidate — see
  :data:`VERDICT_NAMES`), **confidence** and **since-day** (start of
  the latest consecutive dark streak), sorted by block id;
* optional **AS and country enrichment** so range/AS/geo queries need
  no datasets at query time;
* **provenance**: the world seed, the
  :class:`~repro.core.engine.ExecutionPlan` that produced it, and the
  producing engine's feed-quality/HealthReport summary;
* a **flowpack-backed on-disk form** (``snapshot.fpk``): the generic
  table-archive kind of :mod:`repro.flowpack`, so opening is an
  O(header) scan plus zero-copy ``np.memmap`` column views, with
  per-column CRC-32 verification;
* **O(log n) lookups**: point queries are one ``np.searchsorted``
  probe of the sorted block column, and dark-membership over arbitrary
  block arrays goes through the same sorted cumulative-max interval
  table the routing trie uses
  (:func:`repro.net.trie.interval_covered_mask`), built once per
  snapshot from the run-length-compressed dark set.

Snapshots are immutable and versioned: the serving layer
(:mod:`repro.service`) stamps a monotonically increasing ``version``
at publish time via :func:`dataclasses.replace` and swaps whole
snapshots atomically — readers never observe a partial state, and
:meth:`ClassificationSnapshot.diff` answers "what changed since
version/day N" between any two of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.flowpack import TableArchive, write_table_archive
from repro.net.family import FAMILY_IPV4, family as _family_of, family_of_prefix
from repro.net.trie import interval_covered_mask

#: Verdict codes stored in the snapshot's ``verdicts`` column.  Code 0
#: is reserved for "not in the snapshot" (an unobserved block) so a
#: failed lookup has a spelling.
VERDICT_UNKNOWN = 0
VERDICT_DARK = 1
VERDICT_UNCLEAN = 2
VERDICT_GRAY = 3
#: Inferred dark by the window inference but withheld from serving
#: (stability requirement not yet met, or quarantined) — the online
#: engine's "almost dark" state, so a snapshot distinguishes "served
#: dark" from "provisionally dark".
VERDICT_CANDIDATE = 4

VERDICT_NAMES = {
    VERDICT_UNKNOWN: "unknown",
    VERDICT_DARK: "dark",
    VERDICT_UNCLEAN: "unclean",
    VERDICT_GRAY: "gray",
    VERDICT_CANDIDATE: "candidate",
}

#: The on-disk column schema of a ``snapshot.fpk`` table archive.
SNAPSHOT_COLUMNS = {
    "blocks": np.dtype(np.int64),
    "verdicts": np.dtype(np.uint8),
    "confidence": np.dtype(np.float64),
    "since_day": np.dtype(np.int32),
    "asns": np.dtype(np.int32),
    "countries": np.dtype("S2"),
}

#: Archive-kind tag in the flowpack header meta.
SNAPSHOT_KIND = "classification-snapshot"

#: ``asns`` value for "not enriched / no covering announcement".
NO_ASN = -1
#: ``countries`` value for "not enriched / unknown".
NO_COUNTRY = b"??"


def _streak_confidence(streak_days: np.ndarray) -> np.ndarray:
    """Confidence from a consecutive-dark-day streak: ``s / (s + 1)``.

    Monotone in the streak, parameter-free, and deterministic — one
    day of evidence scores 0.5, and each further consecutive day
    closes half the remaining gap to 1.0 (the §7.1 multi-day
    confirmation recommendation as a number).
    """
    streak = np.asarray(streak_days, dtype=np.float64)
    return streak / (streak + 1.0)


@dataclass(frozen=True, slots=True)
class PointAnswer:
    """One block's full answer ("is 203.0.113.0/24 dark? since when?")."""

    block: int
    verdict: int
    confidence: float
    since_day: int
    asn: int
    country: str
    #: Address family the block id lives in ("ipv4" or "ipv6").
    family: str = FAMILY_IPV4

    @property
    def verdict_name(self) -> str:
        return VERDICT_NAMES[self.verdict]

    @property
    def dark(self) -> bool:
        return self.verdict == VERDICT_DARK

    @property
    def prefix(self):
        return _family_of(self.family).block_to_prefix(self.block)

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape the query service returns."""
        return {
            "prefix": str(self.prefix),
            "block": self.block,
            "verdict": self.verdict_name,
            "dark": self.dark,
            "confidence": round(self.confidence, 6),
            "since_day": self.since_day if self.verdict else None,
            "asn": self.asn if self.asn != NO_ASN else None,
            "country": self.country if self.country != "??" else None,
        }


@dataclass(frozen=True, slots=True)
class SnapshotDiff:
    """What changed between two snapshots of the same telescope."""

    base_version: int
    base_day: int
    version: int
    day: int
    #: Blocks newly served dark.
    added_dark: np.ndarray
    #: Blocks no longer served dark.
    removed_dark: np.ndarray
    #: Blocks present in both whose verdict changed (any direction).
    changed: np.ndarray
    #: Address family both snapshots live in.
    family: str = FAMILY_IPV4

    def is_empty(self) -> bool:
        return not (
            len(self.added_dark) or len(self.removed_dark) or len(self.changed)
        )

    def to_dict(self) -> dict[str, Any]:
        to_prefix = _family_of(self.family).block_to_prefix
        return {
            "base_version": self.base_version,
            "base_day": self.base_day,
            "version": self.version,
            "day": self.day,
            "added_dark": [str(to_prefix(int(b))) for b in self.added_dark],
            "removed_dark": [
                str(to_prefix(int(b))) for b in self.removed_dark
            ],
            "changed": [str(to_prefix(int(b))) for b in self.changed],
        }


def _dark_intervals(dark_blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length-compress sorted dark blocks into a sorted interval
    table (starts, cumulative-max ends) — the same shape
    :meth:`repro.net.trie.PrefixTrie.block_intervals` produces, so the
    trie's :func:`~repro.net.trie.interval_covered_mask` probes it
    directly."""
    if len(dark_blocks) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    breaks = np.flatnonzero(np.diff(dark_blocks) > 1)
    starts = dark_blocks[np.concatenate(([0], breaks + 1))]
    ends = dark_blocks[np.concatenate((breaks, [len(dark_blocks) - 1]))]
    # Disjoint by construction, so ends are already monotone; assert the
    # cumulative-max invariant interval_covered_mask relies on anyway.
    return starts, np.maximum.accumulate(ends)


@dataclass(frozen=True)
class ClassificationSnapshot:
    """One day's complete, immutable classification state.

    Columns are aligned, sorted by ``blocks``, and read-only; the
    snapshot as a whole is hashable-by-identity and safe to share
    across threads without locks (the serving layer's atomic-swap
    handle relies on exactly that).
    """

    #: Day the snapshot describes (the last folded vantage-day).
    day: int
    #: Sorted, unique /24 block ids of every classified block.
    blocks: np.ndarray
    #: Verdict code per block (see :data:`VERDICT_NAMES`; never 0).
    verdicts: np.ndarray
    #: Confidence in [0, 1] per block.
    confidence: np.ndarray
    #: First day of the latest consecutive streak of this verdict.
    since_day: np.ndarray
    #: Origin ASN per block (:data:`NO_ASN` when unenriched/unknown).
    asns: np.ndarray
    #: ISO country code per block (``"??"`` when unenriched/unknown).
    countries: np.ndarray
    #: Producer provenance: world seed, execution plan, health summary.
    provenance: Mapping[str, Any] = field(default_factory=dict)
    #: Monotone publish version; 0 until a handle publishes it.
    version: int = 0
    #: Address family of the block ids ("ipv4" /24s or "ipv6" /48s).
    family: str = FAMILY_IPV4

    def __post_init__(self) -> None:
        columns = {
            name: np.ascontiguousarray(getattr(self, name), dtype=dtype)
            for name, dtype in SNAPSHOT_COLUMNS.items()
        }
        lengths = {len(column) for column in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged snapshot columns: lengths {lengths}")
        blocks = columns["blocks"]
        if len(blocks) > 1 and not np.all(np.diff(blocks) > 0):
            raise ValueError("snapshot blocks must be sorted and unique")
        verdicts = columns["verdicts"]
        if len(verdicts) and (
            verdicts.min() < VERDICT_DARK or verdicts.max() > VERDICT_CANDIDATE
        ):
            raise ValueError("snapshot verdict codes out of range")
        for name, column in columns.items():
            try:
                column.setflags(write=False)
            except ValueError:  # memmap-backed views are already frozen
                pass
            object.__setattr__(self, name, column)

    # -- lookups -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def address_family(self):
        """The :class:`~repro.net.family.AddressFamily` of the blocks."""
        return _family_of(self.family)

    @cached_property
    def dark_blocks(self) -> np.ndarray:
        """Sorted blocks served dark (the meta-telescope prefix list)."""
        return self.blocks[self.verdicts == VERDICT_DARK]

    @cached_property
    def dark_intervals(self) -> tuple[np.ndarray, np.ndarray]:
        """The dark set as a sorted-interval trie table (starts, ends)."""
        return _dark_intervals(self.dark_blocks)

    def indices_of(self, blocks: np.ndarray) -> np.ndarray:
        """Row index per queried block (-1 where absent); O(log n) each."""
        blocks = np.asarray(blocks, dtype=np.int64)
        idx = np.searchsorted(self.blocks, blocks)
        idx = np.clip(idx, 0, max(len(self.blocks) - 1, 0))
        present = (
            (len(self.blocks) > 0) & (self.blocks[idx] == blocks)
            if len(self.blocks)
            else np.zeros(blocks.shape, dtype=bool)
        )
        return np.where(present, idx, -1)

    def is_dark(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised dark membership via the interval trie table."""
        starts, ends = self.dark_intervals
        return interval_covered_mask(starts, ends, blocks)

    def lookup(self, block: int) -> PointAnswer:
        """Full point answer for one /24 block."""
        idx = int(self.indices_of(np.array([block]))[0])
        if idx < 0:
            return PointAnswer(
                block=int(block),
                verdict=VERDICT_UNKNOWN,
                confidence=0.0,
                since_day=self.day,
                asn=NO_ASN,
                country="??",
                family=self.family,
            )
        return PointAnswer(
            block=int(block),
            verdict=int(self.verdicts[idx]),
            confidence=float(self.confidence[idx]),
            since_day=int(self.since_day[idx]),
            asn=int(self.asns[idx]),
            country=self.countries[idx].decode(),
            family=self.family,
        )

    def range(self, start_block: int, end_block: int) -> "ClassificationSnapshot":
        """The sub-snapshot covering ``[start_block, end_block]``.

        Two ``searchsorted`` probes; the returned snapshot's columns are
        zero-copy slices of this one's.
        """
        lo = int(np.searchsorted(self.blocks, start_block, side="left"))
        hi = int(np.searchsorted(self.blocks, end_block, side="right"))
        return self._sliced(slice(lo, hi))

    def within_prefix(self, prefix) -> "ClassificationSnapshot":
        """The sub-snapshot inside ``prefix``.

        The prefix must belong to the snapshot's family and be no more
        specific than the family's block length (/24 for IPv4, /48 for
        IPv6).
        """
        prefix_family = family_of_prefix(prefix)
        if prefix_family.name != self.family:
            raise ValueError(
                f"prefix {prefix} is {prefix_family.name}; this snapshot "
                f"holds {self.family} blocks"
            )
        block_length = self.address_family.block_prefix_length
        if prefix.length > block_length:
            raise ValueError(
                f"requested /{prefix.length} prefix {prefix} is more "
                f"specific than this {self.family} snapshot's "
                f"/{block_length} blocks"
            )
        first = prefix.first_block()
        return self.range(first, first + prefix.num_blocks() - 1)

    def where(self, mask: np.ndarray) -> "ClassificationSnapshot":
        """The sub-snapshot of rows selected by a boolean mask."""
        return self._sliced(np.flatnonzero(mask))

    def head(self, count: int) -> "ClassificationSnapshot":
        """The first ``count`` rows (a query budget's truncation)."""
        return self._sliced(slice(0, max(count, 0)))

    def _sliced(self, index) -> "ClassificationSnapshot":
        return replace(
            self,
            **{
                name: getattr(self, name)[index]
                for name in SNAPSHOT_COLUMNS
            },
        )

    def rows(self) -> list[PointAnswer]:
        """Every row as a :class:`PointAnswer` (small snapshots only)."""
        return [
            PointAnswer(
                block=int(self.blocks[i]),
                verdict=int(self.verdicts[i]),
                confidence=float(self.confidence[i]),
                since_day=int(self.since_day[i]),
                asn=int(self.asns[i]),
                country=self.countries[i].decode(),
                family=self.family,
            )
            for i in range(len(self.blocks))
        ]

    def verdict_counts(self) -> dict[str, int]:
        """How many blocks hold each verdict."""
        codes, counts = np.unique(self.verdicts, return_counts=True)
        return {
            VERDICT_NAMES[int(code)]: int(count)
            for code, count in zip(codes, counts)
        }

    def arrays(self) -> dict[str, np.ndarray]:
        """The column arrays, in schema order (the on-disk shape)."""
        return {name: getattr(self, name) for name in SNAPSHOT_COLUMNS}

    def identical_to(self, other: "ClassificationSnapshot") -> bool:
        """Bit-identity: same day, version, provenance and columns.

        This is the parity predicate the delta store and the serving
        fleet gate on — ``==`` would compare array identity, not
        content.
        """
        return (
            self.day == other.day
            and self.version == other.version
            and self.family == other.family
            and dict(self.provenance) == dict(other.provenance)
            and all(
                np.array_equal(getattr(self, name), getattr(other, name))
                for name in SNAPSHOT_COLUMNS
            )
        )

    # -- enrichment ----------------------------------------------------

    def enrich(self, pfx2as=None, geodb=None) -> "ClassificationSnapshot":
        """A copy with AS/geo columns filled from the datasets.

        ``pfx2as`` is a :class:`~repro.datasets.pfx2as.PrefixToAsMap`,
        ``geodb`` a :class:`~repro.datasets.geodb.GeoDatabase`; either
        may be None to leave that column as-is.
        """
        updates: dict[str, np.ndarray] = {}
        if pfx2as is not None and len(self.blocks):
            asns = pfx2as.asns_of_blocks(self.blocks)
            updates["asns"] = np.where(asns < 0, NO_ASN, asns)
        if geodb is not None and len(self.blocks):
            updates["countries"] = geodb.lookup(self.blocks)
        if not updates:
            return self
        return replace(self, **updates)

    # -- diffs ---------------------------------------------------------

    def diff(self, older: "ClassificationSnapshot") -> SnapshotDiff:
        """What changed from ``older`` to this snapshot."""
        if self.family != older.family:
            raise ValueError(
                f"cannot diff {self.family} snapshot against "
                f"{older.family} snapshot"
            )
        added = np.setdiff1d(self.dark_blocks, older.dark_blocks)
        removed = np.setdiff1d(older.dark_blocks, self.dark_blocks)
        common = np.intersect1d(self.blocks, older.blocks)
        new_idx = self.indices_of(common)
        old_idx = older.indices_of(common)
        changed = common[
            self.verdicts[new_idx] != older.verdicts[old_idx]
        ]
        return SnapshotDiff(
            base_version=older.version,
            base_day=older.day,
            version=self.version,
            day=self.day,
            added_dark=added,
            removed_dark=removed,
            changed=changed,
            family=self.family,
        )

    # -- persistence ---------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the ``snapshot.fpk`` on-disk form (flowpack table
        archive: O(header) open, memory-mapped columns, per-column
        CRC)."""
        write_table_archive(
            {name: getattr(self, name) for name in SNAPSHOT_COLUMNS},
            path,
            meta={
                "kind": SNAPSHOT_KIND,
                "day": int(self.day),
                "version": int(self.version),
                "family": self.family,
                "provenance": dict(self.provenance),
            },
        )

    @classmethod
    def open(
        cls, path: str | Path, verify: bool = True
    ) -> "ClassificationSnapshot":
        """Open a ``snapshot.fpk``: O(header) structural scan, zero-copy
        ``np.memmap`` column views, CRC verification (skippable)."""
        archive = TableArchive(path, expected_columns=SNAPSHOT_COLUMNS)
        meta = archive.meta
        if meta.get("kind") != SNAPSHOT_KIND:
            raise ValueError(
                f"{path}: not a classification snapshot "
                f"(kind={meta.get('kind')!r})"
            )
        arrays = archive.read_arrays(verify=verify)
        return cls(
            day=int(meta.get("day", 0)),
            provenance=meta.get("provenance", {}),
            version=int(meta.get("version", 0)),
            # Archives written before the family tag are IPv4.
            family=str(meta.get("family", FAMILY_IPV4)),
            **arrays,
        )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _since_days(
    blocks: np.ndarray,
    history: Sequence[tuple[int, np.ndarray]] | None,
    day: int,
) -> np.ndarray:
    """First day of each block's latest consecutive presence streak.

    ``history`` is ``[(day, present_blocks), ...]`` in day order (the
    online engine's window); a block absent from it is treated as first
    seen today.  "Consecutive" means consecutive *entries* — with a gap
    policy in play the engine may legitimately skip calendar days.
    """
    since = np.full(len(blocks), day, dtype=np.int32)
    if not history:
        return since
    alive = np.ones(len(blocks), dtype=bool)
    for streak_day, present in sorted(
        history, key=lambda item: item[0], reverse=True
    ):
        hit = alive & np.isin(blocks, present)
        since[hit] = streak_day
        alive = hit
        if not alive.any():
            break
    return since


def _streaks(
    blocks: np.ndarray,
    history: Sequence[tuple[int, np.ndarray]] | None,
) -> np.ndarray:
    """Length (in entries) of each block's latest consecutive streak.

    A block absent from the newest entry still scores 1: the caller is
    snapshotting it *because* today's inference holds it, so today is
    always evidence.
    """
    streaks = np.zeros(len(blocks), dtype=np.int64)
    alive = np.ones(len(blocks), dtype=bool)
    for _, present in sorted(
        history or (), key=lambda item: item[0], reverse=True
    ):
        hit = alive & np.isin(blocks, present)
        streaks[hit] += 1
        alive = hit
        if not alive.any():
            break
    return np.maximum(streaks, 1)


def build_snapshot(
    day: int,
    dark: np.ndarray,
    unclean: np.ndarray | None = None,
    gray: np.ndarray | None = None,
    candidate: np.ndarray | None = None,
    history: Sequence[tuple[int, np.ndarray]] | None = None,
    provenance: Mapping[str, Any] | None = None,
    family: str = FAMILY_IPV4,
) -> ClassificationSnapshot:
    """Assemble a snapshot from verdict sets.

    ``dark`` wins over ``candidate`` wins over ``gray`` wins over
    ``unclean`` when a block appears in several (it cannot, coming from
    the pipeline, but the builder is defensive).  ``history`` feeds the
    since-day and confidence columns; without it every verdict is
    one-day evidence (confidence 0.5, since-day = ``day``).
    """
    empty = np.empty(0, dtype=np.int64)
    sets = {
        VERDICT_UNCLEAN: np.unique(
            np.asarray(unclean if unclean is not None else empty, dtype=np.int64)
        ),
        VERDICT_GRAY: np.unique(
            np.asarray(gray if gray is not None else empty, dtype=np.int64)
        ),
        VERDICT_CANDIDATE: np.unique(
            np.asarray(
                candidate if candidate is not None else empty, dtype=np.int64
            )
        ),
        VERDICT_DARK: np.unique(np.asarray(dark, dtype=np.int64)),
    }
    all_blocks = np.unique(np.concatenate(list(sets.values())))
    verdicts = np.zeros(len(all_blocks), dtype=np.uint8)
    for code, members in sets.items():  # later wins: dict order ends dark
        verdicts[np.isin(all_blocks, members)] = code

    dark_like = (verdicts == VERDICT_DARK) | (verdicts == VERDICT_CANDIDATE)
    streaks = np.ones(len(all_blocks), dtype=np.int64)
    since = np.full(len(all_blocks), day, dtype=np.int32)
    if history and dark_like.any():
        streaks[dark_like] = _streaks(all_blocks[dark_like], history)
        since[dark_like] = _since_days(all_blocks[dark_like], history, day)
    confidence = _streak_confidence(streaks)
    # Unclean/gray verdicts rest on directly observed traffic (a live
    # source, payload-bearing flows) rather than inference; score them
    # as single-day certainty.
    confidence[~dark_like] = 1.0

    return ClassificationSnapshot(
        day=day,
        blocks=all_blocks,
        verdicts=verdicts,
        confidence=confidence,
        since_day=since,
        asns=np.full(len(all_blocks), NO_ASN, dtype=np.int32),
        countries=np.full(len(all_blocks), NO_COUNTRY, dtype="S2"),
        provenance=dict(provenance or {}),
        family=family,
    )


def empty_snapshot(
    day: int = 0,
    provenance: Mapping[str, Any] | None = None,
    family: str = FAMILY_IPV4,
) -> ClassificationSnapshot:
    """A valid zero-block snapshot (service boot state)."""
    return build_snapshot(
        day, np.empty(0, dtype=np.int64), provenance=provenance, family=family
    )
