"""Evaluation of the inference (paper Section 4.3), with the bonus the
simulator affords: exact ground truth instead of lower bounds."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vantage.telescope import Telescope
from repro.world.ground_truth import ACTIVE_STATES, BlockIndex, DARK_STATES


@dataclass(frozen=True, slots=True)
class CoverageRow:
    """One cell group of Table 4."""

    telescope: str
    telescope_size: int
    inferred_inside: int

    def coverage(self) -> float:
        """Fraction of the telescope's space inferred dark."""
        return self.inferred_inside / self.telescope_size if self.telescope_size else 0.0


def telescope_coverage(
    dark_blocks: np.ndarray, telescope: Telescope, day: int | None = None
) -> CoverageRow:
    """How much of an operational telescope the inference recovered.

    With ``day`` given, coverage is measured against the blocks that
    were actually dark that day (TEU1 lends some blocks out daily).
    """
    reference = telescope.blocks if day is None else telescope.dark_blocks_on(day)
    inside = np.intersect1d(np.asarray(dark_blocks, dtype=np.int64), reference)
    return CoverageRow(
        telescope=telescope.code,
        telescope_size=len(telescope.blocks),
        inferred_inside=len(inside),
    )


@dataclass(frozen=True, slots=True)
class TruthConfusion:
    """Inference vs ground truth over the announced space."""

    inferred_dark: int
    true_positives: int
    false_positives: int
    #: Truly dark announced blocks never inferred (false negatives).
    missed_dark: int
    total_true_dark: int

    def false_positive_rate_of_inferred(self) -> float:
        """Share of inferred-dark blocks that are actually active."""
        return self.false_positives / self.inferred_dark if self.inferred_dark else 0.0

    def recall(self) -> float:
        """Share of the truly dark announced space recovered."""
        return (
            self.true_positives / self.total_true_dark if self.total_true_dark else 0.0
        )


def confusion_against_truth(
    dark_blocks: np.ndarray,
    index: BlockIndex,
    day_active_overrides: np.ndarray | None = None,
) -> TruthConfusion:
    """Exact confusion of an inferred dark set against ground truth.

    ``day_active_overrides`` marks blocks that were active *that day*
    despite a dark ground-truth state (TEU1's lent blocks).
    """
    inferred = np.unique(np.asarray(dark_blocks, dtype=np.int64))
    states = index.state_of(inferred)
    dark_values = [int(s) for s in DARK_STATES]
    active_values = [int(s) for s in ACTIVE_STATES]
    is_true_dark = np.isin(states, dark_values)
    is_true_active = np.isin(states, active_values)
    if day_active_overrides is not None and len(day_active_overrides):
        overridden = np.isin(inferred, day_active_overrides)
        is_true_dark &= ~overridden
        is_true_active |= overridden
    # Unknown blocks (outside the index) count as neither.
    total_true_dark = len(index.truly_dark_blocks())
    true_positives = int(is_true_dark.sum())
    return TruthConfusion(
        inferred_dark=len(inferred),
        true_positives=true_positives,
        false_positives=int(is_true_active.sum()),
        missed_dark=total_true_dark - true_positives,
        total_true_dark=total_true_dark,
    )
