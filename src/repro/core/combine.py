"""Multi-day and multi-vantage composition helpers (paper Sections 6-7).

The pipeline itself pools arbitrary view sets; this module adds the
compositions the paper reports on: per-day series, cumulative-day
series (Figure 9), and the stability recommendation of Section 7.1
(trust a prefix only if it is inferred dark on several days).
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.core.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.vantage.sampling import VantageDayView


def per_day_results(
    views_by_day: dict[int, list[VantageDayView]],
    routing: RoutingTable,
    config: PipelineConfig | None = None,
) -> dict[int, PipelineResult]:
    """Independent single-day inferences (the Figure 8 series)."""
    return {
        day: run_pipeline(views, routing, config)
        for day, views in sorted(views_by_day.items())
    }


def cumulative_day_results(
    views_by_day: dict[int, list[VantageDayView]],
    routing: RoutingTable,
    config: PipelineConfig | None = None,
) -> dict[int, PipelineResult]:
    """Growing-window inferences: day 0, days 0-1, ... (Figure 9)."""
    results: dict[int, PipelineResult] = {}
    pooled: list[VantageDayView] = []
    for day in sorted(views_by_day):
        pooled = pooled + views_by_day[day]
        results[day] = run_pipeline(pooled, routing, config)
    return results


def stable_dark_blocks(
    daily: dict[int, "PipelineResult | np.ndarray"], min_days: int = 2
) -> np.ndarray:
    """Blocks inferred dark on at least ``min_days`` of the window.

    The paper's stability recommendation: prefer prefixes that recur
    across days over one-day sightings.  ``daily`` maps each day to a
    :class:`PipelineResult` or a bare array of dark block ids.
    """
    if min_days < 1:
        raise ValueError("min_days must be >= 1")
    arrays = [
        result.dark_blocks if hasattr(result, "dark_blocks") else result
        for result in daily.values()
    ]
    all_blocks = np.unique(
        np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
    )
    counts = np.zeros(len(all_blocks), dtype=np.int64)
    for dark in arrays:
        counts += np.isin(all_blocks, dark)
    return all_blocks[counts >= min_days]


def intersect_dark(results: list[PipelineResult]) -> np.ndarray:
    """Blocks dark in every result (the strictest composition)."""
    if not results:
        return np.empty(0, dtype=np.int64)
    return reduce(np.intersect1d, (r.dark_blocks for r in results))


def union_dark(results: list[PipelineResult]) -> np.ndarray:
    """Blocks dark in any result (the paper's "union data set")."""
    if not results:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([r.dark_blocks for r in results]))
