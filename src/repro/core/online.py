"""Online (rolling-window) operation of a meta-telescope.

Section 9 of the paper argues that "meta-telescope information as a
service" needs *regular* re-inference — daily runs over a sliding
window, with stability tracking, so the prefix list adapts to routing
changes and space being put into use.  This module packages that
operational loop:

* feed each day's views with :meth:`OnlineMetaTelescope.update`;
* the instance keeps the last ``window_days`` of views, re-runs the
  inference over the window, and tracks how many recent days each
  prefix was independently inferred dark;
* :meth:`current_prefixes` returns the serving list (window inference
  intersected with the stability requirement);
* churn between consecutive days is reported so the operator can see
  allocation changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.metatelescope import MetaTelescope
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class DayUpdate:
    """What changed when a day was folded in."""

    day: int
    serving_size: int
    added_blocks: np.ndarray
    removed_blocks: np.ndarray

    def churn(self) -> int:
        """Total blocks added plus removed vs the previous serving list."""
        return len(self.added_blocks) + len(self.removed_blocks)


@dataclass
class OnlineMetaTelescope:
    """A continuously operated meta-telescope."""

    telescope: MetaTelescope
    window_days: int = 7
    #: A prefix must be inferred dark on at least this many of the
    #: window's *individual* days to be served (paper §7.1).
    min_stable_days: int = 2
    use_spoofing_tolerance: bool = True
    _window: deque = field(default_factory=deque, repr=False)
    _daily_dark: deque = field(default_factory=deque, repr=False)
    _serving: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64), repr=False
    )

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValueError("window_days must be >= 1")
        if not 1 <= self.min_stable_days <= self.window_days:
            raise ValueError("min_stable_days must be in [1, window_days]")

    def update(self, day: int, views: list[VantageDayView]) -> DayUpdate:
        """Fold one day of views in and refresh the serving list."""
        if not views:
            raise ValueError("need views for the day")
        self._window.append((day, views))
        day_result = self.telescope.infer(
            views,
            use_spoofing_tolerance=self.use_spoofing_tolerance,
            refine=False,
        )
        self._daily_dark.append(day_result.pipeline.dark_blocks)
        while len(self._window) > self.window_days:
            self._window.popleft()
            self._daily_dark.popleft()

        pooled_views = [view for _, day_views in self._window for view in day_views]
        window_result = self.telescope.infer(
            pooled_views,
            use_spoofing_tolerance=self.use_spoofing_tolerance,
        )
        stable = self._stable_blocks()
        serving = np.intersect1d(window_result.prefixes, stable)

        added = np.setdiff1d(serving, self._serving)
        removed = np.setdiff1d(self._serving, serving)
        self._serving = serving
        return DayUpdate(
            day=day,
            serving_size=len(serving),
            added_blocks=added,
            removed_blocks=removed,
        )

    def _stable_blocks(self) -> np.ndarray:
        required = min(self.min_stable_days, len(self._daily_dark))
        union = (
            np.unique(np.concatenate(list(self._daily_dark)))
            if self._daily_dark
            else np.empty(0, dtype=np.int64)
        )
        counts = np.zeros(len(union), dtype=np.int64)
        for daily in self._daily_dark:
            counts += np.isin(union, daily)
        return union[counts >= required]

    def current_prefixes(self) -> np.ndarray:
        """The serving meta-telescope prefix list."""
        return self._serving

    def days_in_window(self) -> list[int]:
        """Days currently inside the rolling window."""
        return [day for day, _ in self._window]
