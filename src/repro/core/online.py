"""Online (rolling-window) operation of a meta-telescope.

Section 9 of the paper argues that "meta-telescope information as a
service" needs *regular* re-inference — daily runs over a sliding
window, with stability tracking, so the prefix list adapts to routing
changes and space being put into use.  This module packages that
operational loop:

* feed each day's views with :meth:`OnlineMetaTelescope.update`;
* the instance folds each day into a mergeable
  :class:`~repro.core.accum.PrefixAccumulator` and keeps the last
  ``window_days`` of *accumulators* (not raw views), so window
  re-inference is a cheap merge of per-day partial aggregates instead
  of a re-aggregation of every flow in the window;
* it re-runs the inference over the merged window and tracks how many
  recent days each prefix was independently inferred dark;
* :meth:`current_prefixes` returns the serving list (window inference
  intersected with the stability requirement);
* churn between consecutive days is reported so the operator can see
  allocation changes.

Because the feeds live on infrastructure the operator does not control,
the loop must *operate through failure*: every day is feed-quality
scored (:mod:`repro.faults.quality`), and a configurable policy decides
what a missing or degraded day does to the serving list:

* ``"strict"`` (default) — the historical behaviour: an empty day
  raises, degraded days are folded in unquestioned;
* ``"skip"`` — missing/degraded days are skipped and flagged; the
  window only ever contains clean days and the serving list carries
  forward with staleness accounting;
* ``"carry"`` — missing days carry the serving list forward; degraded
  days are still folded in, but prefixes that flap under degraded
  input are quarantined until they survive ``quarantine_days`` clean
  days.

:meth:`health_report` returns the structured operational record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import RunContext
from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.core.snapshot import ClassificationSnapshot, build_snapshot
from repro.core.stages import StageTiming
from repro.faults.quality import FeedQuality, score_feed
from repro.vantage.sampling import VantageDayView

#: Degraded-day policies accepted by :class:`OnlineMetaTelescope`.
POLICIES = ("strict", "skip", "carry")

#: How many clean-day volume totals the quality baseline remembers.
_VOLUME_HISTORY = 30


def _empty_blocks() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass(frozen=True, slots=True)
class DayUpdate:
    """What changed when a day was folded in."""

    day: int
    serving_size: int
    added_blocks: np.ndarray
    removed_blocks: np.ndarray
    #: ``"inferred"`` (clean fold), ``"degraded"`` (folded under a
    #: degraded feed), ``"skipped"`` (day dropped by policy), or
    #: ``"carried"`` (no data; serving list carried forward).
    action: str = "inferred"
    #: Days since the serving list last came out of a clean inference.
    staleness: int = 0
    quality: FeedQuality | None = None
    quarantined_blocks: np.ndarray = field(default_factory=_empty_blocks)

    def churn(self) -> int:
        """Total blocks added plus removed vs the previous serving list."""
        return len(self.added_blocks) + len(self.removed_blocks)


@dataclass(frozen=True, slots=True)
class DayRecord:
    """One line of the operational log."""

    day: int
    action: str
    score: float
    serving_size: int
    staleness: int
    num_quarantined: int
    reasons: tuple[str, ...]


@dataclass(frozen=True)
class HealthReport:
    """Structured health of a continuously operated meta-telescope."""

    records: tuple[DayRecord, ...]
    current_staleness: int
    quarantined_blocks: np.ndarray
    serving_size: int
    #: Robustness-scenario attribution: which adversarial scenario (if
    #: any) this operation was running under (:mod:`repro.robustness`).
    scenario: str | None = None

    def days_processed(self) -> int:
        """Total days fed to the instance."""
        return len(self.records)

    def days_by_action(self) -> dict[str, int]:
        """How many days ended in each action."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.action] = counts.get(record.action, 0) + 1
        return counts

    def max_staleness_seen(self) -> int:
        """Worst staleness over the whole operation."""
        return max((record.staleness for record in self.records), default=0)

    def ok(self) -> bool:
        """Fresh serving list and nothing in quarantine."""
        return self.current_staleness == 0 and len(self.quarantined_blocks) == 0

    def summary(self) -> str:
        """One-paragraph operator summary."""
        actions = ", ".join(
            f"{count} {action}" for action, count in sorted(self.days_by_action().items())
        )
        prefix = f"[{self.scenario}] " if self.scenario else ""
        return (
            f"{prefix}{self.days_processed()} day(s) processed ({actions}); "
            f"serving {self.serving_size:,} prefixes, "
            f"staleness {self.current_staleness} day(s), "
            f"{len(self.quarantined_blocks):,} quarantined"
        )


@dataclass
class OnlineMetaTelescope:
    """A continuously operated meta-telescope."""

    telescope: MetaTelescope
    window_days: int = 7
    #: A prefix must be inferred dark on at least this many of the
    #: window's *individual* days to be served (paper §7.1).
    min_stable_days: int = 2
    use_spoofing_tolerance: bool = True
    #: Missing/degraded-day policy; see the module docstring.
    policy: str = "strict"
    #: Quality score below which a day counts as degraded.
    min_quality: float = 0.5
    #: Clean days a flapping prefix sits out under the ``carry`` policy.
    quarantine_days: int = 2
    #: Feeds expected per day (None: learned as the max seen so far).
    expected_views: int | None = None
    #: With ``skip``/``carry``: staleness beyond which the carried
    #: serving list is considered expired and cleared (None: never).
    max_staleness: int | None = None
    #: Rows per ingestion chunk when folding a day's views into its
    #: accumulator (None: each view aggregated whole; ``"auto"`` picks a
    #: size from the view).  Classification is bit-identical either way;
    #: the chunk size only bounds memory.
    chunk_size: int | str | None = None
    #: Process-pool workers for each day's fold (None/1: serial,
    #: ``0``: one per CPU).  Any worker count classifies bit-identically.
    workers: int | None = None
    #: Fold kernel backend (``"numpy"``, ``"native"``, ``"auto"`` or
    #: None for the engine default).  Either backend classifies
    #: bit-identically; the knob only trades speed.
    kernel: str | None = None
    #: Extra trace sinks attached to every day's
    #: :class:`~repro.core.engine.RunContext` (e.g. a
    #: :class:`~repro.core.engine.JsonlSink` for a rolling trace file).
    sinks: tuple = ()
    #: Robustness-scenario attribution carried into every
    #: :class:`HealthReport` (None outside scenario evaluation).
    scenario: str | None = None
    #: Rolling window of ``(day, PrefixAccumulator)`` partial aggregates.
    _window: deque = field(default_factory=deque, repr=False)
    _daily_dark: deque = field(default_factory=deque, repr=False)
    _serving: np.ndarray = field(default_factory=_empty_blocks, repr=False)
    _last_day: int | None = field(default=None, repr=False)
    _staleness: int = field(default=0, repr=False)
    _quarantine: dict[int, int] = field(default_factory=dict, repr=False)
    _records: list[DayRecord] = field(default_factory=list, repr=False)
    _volume_history: list[float] = field(default_factory=list, repr=False)
    _typical_factors: dict[str, float] = field(default_factory=dict, repr=False)
    _views_seen_max: int = field(default=0, repr=False)
    _last_timings: tuple[StageTiming, ...] = field(default=(), repr=False)
    _last_context: RunContext | None = field(
        default=None, repr=False, compare=False
    )
    #: Latest window inference (the classification behind the serving
    #: list); retained so :meth:`snapshot` can publish full verdicts.
    _last_window_result: MetaTelescopeResult | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValueError("window_days must be >= 1")
        if not 1 <= self.min_stable_days <= self.window_days:
            raise ValueError("min_stable_days must be in [1, window_days]")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {', '.join(POLICIES)}"
            )
        if not 0.0 <= self.min_quality <= 1.0:
            raise ValueError(f"min_quality out of range: {self.min_quality}")
        if self.quarantine_days < 0:
            raise ValueError("quarantine_days must be >= 0")

    # -- the daily loop ------------------------------------------------

    def update(self, day: int, views: list[VantageDayView]) -> DayUpdate:
        """Fold one day of views in and refresh the serving list."""
        if self._last_day is not None and day <= self._last_day:
            raise ValueError(
                f"day {day} is not after the last fed day {self._last_day}; "
                "days must arrive strictly increasing (no duplicates, no replays)"
            )
        quality = self._score(day, views)
        degraded = quality.degraded(self.min_quality)

        if self.policy == "strict":
            if not views:
                raise ValueError("need views for the day")
            update = self._fold(day, views, quality, action="inferred")
        elif not views:
            action = "carried" if self.policy == "carry" else "skipped"
            update = self._hold(day, quality, action=action)
        elif degraded and self.policy == "skip":
            update = self._hold(day, quality, action="skipped")
        elif degraded and self.policy == "carry":
            update = self._fold(day, views, quality, action="degraded")
        else:
            update = self._fold(day, views, quality, action="inferred")

        self._last_day = day
        if views and not degraded:
            self._learn(views)
        self._records.append(
            DayRecord(
                day=day,
                action=update.action,
                score=quality.score,
                serving_size=update.serving_size,
                staleness=update.staleness,
                num_quarantined=len(self._quarantine),
                reasons=quality.reasons,
            )
        )
        return update

    # -- internals -----------------------------------------------------

    def _score(self, day: int, views: list[VantageDayView]) -> FeedQuality:
        expected = self.expected_views
        if expected is None and self._views_seen_max:
            expected = self._views_seen_max
        return score_feed(
            day,
            views,
            history_packets=self._volume_history,
            expected_views=expected,
            typical_factors=self._typical_factors,
        )

    def _learn(self, views: list[VantageDayView]) -> None:
        self._volume_history.append(
            sum(view.estimated_packets() for view in views)
        )
        del self._volume_history[:-_VOLUME_HISTORY]
        for view in views:
            self._typical_factors[view.vantage] = view.sampling_factor
        self._views_seen_max = max(self._views_seen_max, len(views))

    def _fold(
        self,
        day: int,
        views: list[VantageDayView],
        quality: FeedQuality,
        action: str,
    ) -> DayUpdate:
        previous_dark = self._daily_dark[-1] if self._daily_dark else None
        # One context per day: the fold, the per-day inference and the
        # window inference all land on the same event stream, separated
        # by scope labels.
        plan = self.telescope.plan(
            views, chunk_size=self.chunk_size, workers=self.workers,
            kernel=self.kernel,
        )
        context = RunContext(
            knobs=plan.knobs, plan=plan, sinks=self.sinks, scope="fold"
        )
        self._last_context = context
        day_accumulator = self.telescope.accumulate(
            views, context=context, plan=plan
        )
        self._window.append((day, day_accumulator))
        with context.scoped("day"):
            day_result = self.telescope.infer_accumulated(
                day_accumulator,
                use_spoofing_tolerance=self.use_spoofing_tolerance,
                refine=False,
                context=context,
            )
        day_dark = day_result.pipeline.dark_blocks
        self._daily_dark.append(day_dark)
        while len(self._window) > self.window_days:
            self._window.popleft()
            self._daily_dark.popleft()

        if action == "degraded":
            self._staleness += 1
            if previous_dark is not None and self.quarantine_days > 0:
                for block in np.setxor1d(day_dark, previous_dark):
                    self._quarantine[int(block)] = self.quarantine_days
        else:
            self._staleness = 0
            self._tick_quarantine()

        # Window inference is a merge of per-day partial aggregates: no
        # view in the window is ever re-aggregated.
        window_accumulator = self._window[0][1].copy()
        for _, accumulator in list(self._window)[1:]:
            window_accumulator.merge(accumulator)
        with context.scoped("window"):
            window_result = self.telescope.infer_accumulated(
                window_accumulator,
                use_spoofing_tolerance=self.use_spoofing_tolerance,
                context=context,
            )
        self._last_window_result = window_result
        # Fold rows (fan-out, if any) + window stage rows; the per-day
        # inference's rows stay trace-only, as before the engine.
        self._last_timings = context.stage_timings(scopes=("fold", "window"))
        context.emit(
            "quarantine",
            f"d{day}",
            quarantined=len(self._quarantine),
            meta={"action": action},
        )
        stable = self._stable_blocks()
        serving = np.intersect1d(window_result.prefixes, stable)
        quarantined = self.quarantined_blocks()
        if len(quarantined):
            serving = np.setdiff1d(serving, quarantined)

        added = np.setdiff1d(serving, self._serving)
        removed = np.setdiff1d(self._serving, serving)
        self._serving = serving
        return DayUpdate(
            day=day,
            serving_size=len(serving),
            added_blocks=added,
            removed_blocks=removed,
            action=action,
            staleness=self._staleness,
            quality=quality,
            quarantined_blocks=quarantined,
        )

    def _hold(self, day: int, quality: FeedQuality, action: str) -> DayUpdate:
        """Keep serving the current list; account for its staleness."""
        self._staleness += 1
        removed = _empty_blocks()
        if (
            self.max_staleness is not None
            and self._staleness > self.max_staleness
            and len(self._serving)
        ):
            removed = self._serving
            self._serving = _empty_blocks()
        return DayUpdate(
            day=day,
            serving_size=len(self._serving),
            added_blocks=_empty_blocks(),
            removed_blocks=removed,
            action=action,
            staleness=self._staleness,
            quality=quality,
            quarantined_blocks=self.quarantined_blocks(),
        )

    def _tick_quarantine(self) -> None:
        for block in list(self._quarantine):
            self._quarantine[block] -= 1
            if self._quarantine[block] <= 0:
                del self._quarantine[block]

    def _stable_blocks(self) -> np.ndarray:
        required = min(self.min_stable_days, len(self._daily_dark))
        union = (
            np.unique(np.concatenate(list(self._daily_dark)))
            if self._daily_dark
            else _empty_blocks()
        )
        counts = np.zeros(len(union), dtype=np.int64)
        for daily in self._daily_dark:
            counts += np.isin(union, daily)
        return union[counts >= required]

    # -- operator views ------------------------------------------------

    def current_prefixes(self) -> np.ndarray:
        """The serving meta-telescope prefix list."""
        return self._serving

    def days_in_window(self) -> list[int]:
        """Days currently inside the rolling window."""
        return [day for day, _ in self._window]

    def staleness(self) -> int:
        """Days since the serving list last came out of a clean fold."""
        return self._staleness

    def quarantined_blocks(self) -> np.ndarray:
        """Blocks currently excluded for flapping under degraded input."""
        return np.array(sorted(self._quarantine), dtype=np.int64)

    def last_stage_timings(self) -> tuple[StageTiming, ...]:
        """Per-stage wall times of the latest window inference."""
        return self._last_timings

    def last_run_context(self) -> RunContext | None:
        """RunContext of the latest folded day (full event stream)."""
        return self._last_context

    def snapshot(self, provenance=None) -> ClassificationSnapshot:
        """Freeze the current serving state into an immutable snapshot.

        The snapshot's dark set is exactly :meth:`current_prefixes`
        (what the operator actually serves); window-inferred dark
        blocks that are withheld — not yet stable, or quarantined —
        appear as ``candidate``, and the latest window inference's
        unclean/gray verdicts ride along.  Since-day and confidence
        come from the per-day dark history inside the rolling window,
        and provenance carries the health summary, so a consumer can
        judge the feed the snapshot was built under.
        """
        day = self._last_day if self._last_day is not None else 0
        history = list(zip(self.days_in_window(), self._daily_dark))
        result = self._last_window_result
        health = self.health_report()
        record = {
            "engine": "online",
            "policy": self.policy,
            "window_days": self.window_days,
            "min_stable_days": self.min_stable_days,
            "health": health.summary(),
            "health_ok": health.ok(),
            "staleness": self._staleness,
        }
        if self.scenario:
            record["scenario"] = self.scenario
        record.update(provenance or {})
        return build_snapshot(
            day=day,
            dark=self._serving,
            unclean=(
                result.pipeline.unclean_blocks if result is not None else None
            ),
            gray=(
                result.pipeline.gray_blocks if result is not None else None
            ),
            candidate=(
                np.setdiff1d(result.prefixes, self._serving)
                if result is not None
                else None
            ),
            history=history,
            provenance=record,
            family=(
                result.pipeline.family if result is not None else "ipv4"
            ),
        )

    def health_report(self) -> HealthReport:
        """The structured operational record so far."""
        return HealthReport(
            records=tuple(self._records),
            current_staleness=self._staleness,
            quarantined_blocks=self.quarantined_blocks(),
            serving_size=len(self._serving),
            scenario=self.scenario,
        )
