"""End-to-end IPv6 inference: the unchanged engine over /48 sites.

This is the tentpole payoff of the address-family refactor: nothing in
here re-implements classification.  :func:`infer_ipv6` builds a
standard :class:`~repro.core.metatelescope.MetaTelescope` over the v6
world's RIB feed and the IPv6 special-purpose registry, folds the v6
vantage-day views through the ordinary execution engine (batch,
chunked, parallel and online all work — the accumulator adopts the
``ipv6`` family from the first chunk), and runs the seven stages with
v6 thresholds.

What *is* v6-specific sits before and after the engine, exactly where
Section 9 predicts the differences live:

* thresholds — the 44/48-byte fingerprint does not transfer (an IPv6
  TCP SYN is 60 bytes bare), so the world carries its own pair;
* the candidate filter — the v6 universe cannot be enumerated, so the
  engine's dark set is intersected with
  :func:`~repro.core.ipv6_candidates.ipv6_candidate_sites` (announced,
  absent from the incomplete hitlist, never a source);
* scoring — the world's ground truth yields recall/precision of the
  served set, reported alongside the funnel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ipv6_candidates import Ipv6CandidateResult, ipv6_candidate_sites
from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.core.pipeline import PipelineConfig
from repro.core.snapshot import ClassificationSnapshot, build_snapshot
from repro.net.family import FAMILY_IPV6, IPV6
from repro.vantage.sampling import VantageDayView
from repro.world.ipv6 import Ipv6World

__all__ = ["Ipv6Coverage", "Ipv6InferenceReport", "ipv6_telescope", "infer_ipv6"]


@dataclass(frozen=True, slots=True)
class Ipv6Coverage:
    """Served /48s scored against the world's ground truth."""

    #: Truly dark sites of orgs announced by the last folded day.
    truth_dark: int
    served: int
    served_dark: int

    def recall(self) -> float:
        """Fraction of the dark ground truth the served set covers."""
        return self.served_dark / self.truth_dark if self.truth_dark else 0.0

    def precision(self) -> float:
        """Fraction of the served set that is truly dark."""
        return self.served_dark / self.served if self.served else 0.0


@dataclass(frozen=True)
class Ipv6InferenceReport:
    """Everything one v6 inference run produced."""

    result: MetaTelescopeResult
    candidates: Ipv6CandidateResult
    #: Engine-dark /48 sites that also survive the candidate filter —
    #: the set a v6 meta-telescope would actually monitor.
    served_sites: np.ndarray
    snapshot: ClassificationSnapshot
    coverage: Ipv6Coverage


def ipv6_telescope(world: Ipv6World) -> MetaTelescope:
    """The standard facade, configured for the v6 world.

    Same class, same engine — only the RIB feed, the special-purpose
    registry and the thresholds are v6.
    """
    config = world.config
    return MetaTelescope(
        collector=world.collector,
        special=IPV6.special_registry(),
        config=PipelineConfig(
            avg_size_threshold=config.avg_size_threshold,
            ip_size_threshold=config.ip_size_threshold,
            volume_threshold_pkts_day=config.volume_threshold_pkts_day,
        ),
    )


def infer_ipv6(
    world: Ipv6World,
    views: list[VantageDayView],
    chunk_size: int | str | None = None,
    workers: int | None = None,
    kernel: str | None = None,
    context=None,
) -> Ipv6InferenceReport:
    """Run the full v6 inference over ``views`` and score it.

    ``chunk_size`` / ``workers`` / ``kernel`` are the ordinary engine
    knobs — classification is bit-identical under any combination, v6
    included (the native kernel declines uint64 keys and the fold falls
    back to the numpy reference).
    """
    if not views:
        raise ValueError("need at least one vantage-day view")
    telescope = ipv6_telescope(world)
    accumulator = telescope.accumulate(
        views, chunk_size=chunk_size, workers=workers, kernel=kernel,
        context=context,
    )
    result = telescope.infer_accumulated(accumulator, context=context)
    if result.pipeline.family != FAMILY_IPV6:
        raise ValueError(
            f"expected an ipv6 fold, got {result.pipeline.family!r}"
        )

    last_day = max(view.day for view in views)
    routing = telescope.routing_for_days(accumulator.days())
    observed_dst = {int(b) for b in accumulator.observed_blocks()}
    observed_src: set[int] = set()
    for blocks, _ in accumulator.vantage_source_blocks().values():
        observed_src.update(int(b) for b in blocks)
    candidates = ipv6_candidate_sites(
        observed_dst,
        observed_src,
        [announcement.prefix for announcement in routing.announcements],
        set(world.hitlist_sites),
    )

    served = np.intersect1d(
        result.prefixes,
        np.asarray(candidates.candidate_sites, dtype=np.int64),
    )
    snapshot = build_snapshot(
        day=last_day,
        dark=served,
        unclean=result.pipeline.unclean_blocks,
        gray=result.pipeline.gray_blocks,
        candidate=np.setdiff1d(result.pipeline.dark_blocks, served),
        provenance={
            "engine": "ipv6",
            "hitlist_sites": len(world.hitlist_sites),
            "candidate_drops": {
                "unannounced": candidates.dropped_unannounced,
                "hitlist": candidates.dropped_hitlist,
                "sources": candidates.dropped_sources,
            },
        },
        family=FAMILY_IPV6,
    )

    truth = world.dark_sites(day=last_day)
    served_set = {int(b) for b in served}
    coverage = Ipv6Coverage(
        truth_dark=len(truth),
        served=len(served_set),
        served_dark=len(served_set & truth),
    )
    return Ipv6InferenceReport(
        result=result,
        candidates=candidates,
        served_sites=served,
        snapshot=snapshot,
        coverage=coverage,
    )
