"""Core: the meta-telescope inference methodology (the paper's Section 4).

* :mod:`repro.core.thresholds` — packet-size fingerprint tuning (Table 3);
* :mod:`repro.core.accum` — mergeable per-/24 streaming aggregation;
* :mod:`repro.core.parallel` — process-pool fan-out with bit-identical
  tree merge;
* :mod:`repro.core.engine` — execution planning (ExecutionPlan /
  RunContext) and the observability spine every frontend runs through;
* :mod:`repro.core.stages` — the funnel as explicit stage objects;
* :mod:`repro.core.pipeline` — the seven-step inference pipeline (Figure 2);
* :mod:`repro.core.spoofing_tolerance` — the unrouted-space tolerance (§7.2);
* :mod:`repro.core.combine` — multi-day / multi-vantage composition;
* :mod:`repro.core.refine` — liveness refinement and spoof-mitigation
  extensions (§4.3, §9);
* :mod:`repro.core.metatelescope` — the public facade;
* :mod:`repro.core.evaluation` — coverage and ground-truth metrics (§4.3).
"""

from repro.core.accum import (
    AUTO_CHUNK,
    FinalizedAggregates,
    PrefixAccumulator,
    accumulate_views,
    adaptive_chunk_rows,
)
from repro.core.engine import (
    ExecutionEvent,
    ExecutionKnobs,
    ExecutionPlan,
    ExecutionPlanner,
    JsonlSink,
    MemorySink,
    RunContext,
    TableSink,
    execute_plan,
    resolve_execution_knobs,
    validate_trace_event,
    validate_trace_file,
)
from repro.core.parallel import (
    ParallelStats,
    WorkerReport,
    parallel_accumulate_views,
    shard_views,
    tree_merge,
)
from repro.core.pipeline import (
    FunnelCounts,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
    run_pipeline_accumulated,
    run_pipeline_chunked,
)
from repro.core.stages import (
    DEFAULT_STAGES,
    Stage,
    StageEngine,
    StageTiming,
)
from repro.core.thresholds import (
    ClassifierEvaluation,
    evaluate_thresholds,
    label_isp_blocks,
)
from repro.core.spoofing_tolerance import (
    tolerance_for_view,
    tolerances_for_views,
    tolerances_from_accumulator,
)
from repro.core.combine import stable_dark_blocks
from repro.core.refine import refine_with_liveness
from repro.core.federation import (
    FederatedResult,
    MarkingRegistry,
    OperatorReport,
    QuorumError,
    ReportValidation,
    federate,
    validate_reports,
)
from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.core.snapshot import (
    SNAPSHOT_COLUMNS,
    VERDICT_CANDIDATE,
    VERDICT_DARK,
    VERDICT_GRAY,
    VERDICT_NAMES,
    VERDICT_UNCLEAN,
    VERDICT_UNKNOWN,
    ClassificationSnapshot,
    PointAnswer,
    SnapshotDiff,
    build_snapshot,
    empty_snapshot,
)
from repro.core.evaluation import telescope_coverage, confusion_against_truth

__all__ = [
    "AUTO_CHUNK",
    "FinalizedAggregates",
    "PrefixAccumulator",
    "accumulate_views",
    "adaptive_chunk_rows",
    "ExecutionEvent",
    "ExecutionKnobs",
    "ExecutionPlan",
    "ExecutionPlanner",
    "JsonlSink",
    "MemorySink",
    "RunContext",
    "TableSink",
    "execute_plan",
    "resolve_execution_knobs",
    "validate_trace_event",
    "validate_trace_file",
    "ParallelStats",
    "WorkerReport",
    "parallel_accumulate_views",
    "shard_views",
    "tree_merge",
    "FunnelCounts",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "run_pipeline_accumulated",
    "run_pipeline_chunked",
    "DEFAULT_STAGES",
    "Stage",
    "StageEngine",
    "StageTiming",
    "ClassifierEvaluation",
    "evaluate_thresholds",
    "label_isp_blocks",
    "tolerance_for_view",
    "tolerances_for_views",
    "tolerances_from_accumulator",
    "stable_dark_blocks",
    "refine_with_liveness",
    "FederatedResult",
    "MarkingRegistry",
    "OperatorReport",
    "QuorumError",
    "ReportValidation",
    "federate",
    "validate_reports",
    "MetaTelescope",
    "MetaTelescopeResult",
    "SNAPSHOT_COLUMNS",
    "VERDICT_CANDIDATE",
    "VERDICT_DARK",
    "VERDICT_GRAY",
    "VERDICT_NAMES",
    "VERDICT_UNCLEAN",
    "VERDICT_UNKNOWN",
    "ClassificationSnapshot",
    "PointAnswer",
    "SnapshotDiff",
    "build_snapshot",
    "empty_snapshot",
    "telescope_coverage",
    "confusion_against_truth",
]
