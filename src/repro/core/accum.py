"""Mergeable per-/24 aggregation state for streaming inference.

The batch pipeline used to re-aggregate a whole vantage-day on every
run.  A :class:`PrefixAccumulator` replaces that with bounded-memory
streaming semantics:

* ``update(chunk, vantage=..., day=..., sampling_factor=...)`` folds a
  bounded-size :class:`~repro.traffic.flows.FlowTable` chunk in;
* ``merge(other)`` combines two accumulators (associative — partial
  aggregates from different chunk orders, days or federation members
  combine into the same state);
* ``finalize(spoof_tolerance)`` emits the columnar
  :class:`FinalizedAggregates` the stage engine classifies from.

Every statistic the seven-step pipeline needs is kept in mergeable
struct-of-arrays form: per-destination-IP TCP packet/byte and total
packet estimates (the per-IP survival fingerprint), per-source-IP
sampled sightings, per-vantage per-/24 source packets (both with and
without the ignored-sender filter, so the spoofing tolerance can be
derived from the accumulator itself), and per-day per-/24 volume
estimates (the across-days median of the volume filter).

All counts are integers (or integer-valued floats after sampling-factor
rescaling), so the partial sums are exact in float64 and the chunked
path classifies **bit-identically** to the batch path — at chunk size
1, 97 or a whole day.

Internally each keyed column family is a small log-structured store:
chunk aggregates append as sorted *parts* and are compacted (grouped
and summed) every ``compact_every`` parts (a constructor knob,
default :data:`DEFAULT_COMPACT_EVERY`), so ``update`` stays O(chunk)
amortised and memory stays O(distinct keys), not O(rows).

For IPC (the parallel engine, federation members) an accumulator has a
compact columnar wire form: :meth:`PrefixAccumulator.to_state` compacts
every family to a single part and returns plain numpy arrays keyed by
stable names; :meth:`PrefixAccumulator.from_state` rebuilds an
equivalent accumulator.  The wire form never carries log-structured
parts, so shipping a partial is as cheap as its distinct keys.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping

import numpy as np

from repro.net.family import FAMILY_IPV4, IPV4, family as _family_of
from repro.traffic.flows import FlowTable, aggregate_sums
from repro.traffic.packets import PROTO_TCP
from repro.vantage.sampling import VantageDayView

#: Default pending parts a :class:`_KeyedSums` tolerates before compacting.
DEFAULT_COMPACT_EVERY = 16

#: Sentinel chunk size: derive a per-view chunk size from the view's
#: row count (see :func:`adaptive_chunk_rows`).
AUTO_CHUNK = "auto"

#: Wire-form version emitted by :meth:`PrefixAccumulator.to_state`.
_STATE_VERSION = 1


def _empty_keys() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def adaptive_chunk_rows(
    total_rows: int, target_chunks: int = 8, floor: int = 8192,
    ceiling: int = 1 << 18,
) -> int | None:
    """Chunk size balancing bounded memory against part build-up.

    Small views are ingested whole (``None``): chunking them buys no
    memory headroom but piles up log-structured parts, which is exactly
    the chunked-path peak-memory regression seen at fixed tiny chunk
    sizes.  Large views are split into about ``target_chunks`` pieces,
    clamped to ``[floor, ceiling]`` rows, so ingestion memory stays a
    fraction of the view while each family stays a handful of parts.
    """
    if total_rows <= floor:
        return None
    return min(max(floor, -(-total_rows // target_chunks)), ceiling)


def resolve_chunk_size(
    chunk_size: int | str | None, total_rows: int
) -> int | None:
    """Resolve the public ``chunk_size`` knob for one view.

    ``None`` ingests the view whole, an integer is used as-is, and
    :data:`AUTO_CHUNK` (``"auto"``) picks :func:`adaptive_chunk_rows`.
    """
    if chunk_size is None:
        return None
    if chunk_size == AUTO_CHUNK:
        return adaptive_chunk_rows(total_rows)
    if isinstance(chunk_size, str):
        raise ValueError(
            f"chunk_size must be an int, None or {AUTO_CHUNK!r}; "
            f"got {chunk_size!r}"
        )
    return chunk_size


class _KeyedSums:
    """Mergeable sorted ``int64 key -> float64 sums`` column family."""

    __slots__ = (
        "num_values", "compact_every", "kernel", "_parts", "_sorted",
        "_normalized",
    )

    def __init__(
        self,
        num_values: int,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        kernel=None,
    ) -> None:
        if compact_every < 2:
            raise ValueError(f"compact_every must be >= 2: {compact_every}")
        self.num_values = num_values
        self.compact_every = compact_every
        self.kernel = kernel
        self._parts: list[tuple[np.ndarray, tuple[np.ndarray, ...]]] = []
        # Parallel flags: True when that part is known sorted-unique
        # (fold/compaction output), unlocking linear merge compaction.
        self._sorted: list[bool] = []
        self._normalized = True

    def add(
        self,
        keys: np.ndarray,
        *values: np.ndarray,
        sorted_unique: bool = False,
    ) -> None:
        """Append one keyed part (keys need not be unique or sorted).

        ``sorted_unique`` asserts the part already has strictly
        ascending unique keys — the shape every grouped-fold output has
        — letting compaction merge linearly instead of re-sorting.
        """
        if len(values) != self.num_values:
            raise ValueError(
                f"expected {self.num_values} value column(s), got {len(values)}"
            )
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        self._parts.append(
            (keys, tuple(np.asarray(v, dtype=np.float64) for v in values))
        )
        self._sorted.append(bool(sorted_unique))
        self._normalized = len(self._parts) == 1 and sorted_unique
        if len(self._parts) >= self.compact_every:
            self.compacted()

    def absorb(self, other: "_KeyedSums") -> None:
        """Merge another family in (the other keeps its logical state).

        The other side is compacted first so at most one part crosses
        over — absorbing a long chunk log would otherwise multiply the
        pending-part memory on this side before the next compaction.
        """
        if other.num_values != self.num_values:
            raise ValueError("cannot merge column families of different arity")
        keys, values = other.compacted()
        if len(keys):
            self._parts.append((keys, values))
            self._sorted.append(True)
            self._normalized = False
        if len(self._parts) >= self.compact_every:
            self.compacted()

    def copy(self) -> "_KeyedSums":
        """An independent copy (parts share immutable arrays)."""
        duplicate = _KeyedSums(self.num_values, self.compact_every, self.kernel)
        duplicate._parts = list(self._parts)
        duplicate._sorted = list(self._sorted)
        duplicate._normalized = self._normalized
        return duplicate

    def _group_parts(
        self, parts: list[tuple[np.ndarray, tuple[np.ndarray, ...]]],
        sorted_flags: list[bool],
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """Group-by-sum a run of parts into one sorted-unique part.

        Sums per key follow part order, then row order within a part —
        the ``np.bincount``-over-concatenation operation order — so the
        linear merge chain the native kernel takes and the reference
        regroup produce identical bits.
        """
        if len(parts) == 1 and sorted_flags[0]:
            return parts[0]
        kernel = self.kernel
        if kernel is not None and all(sorted_flags):
            keys, values = kernel.merge_sorted_parts(parts)
            return keys, tuple(values)
        keys = np.concatenate([part[0] for part in parts])
        stacked = [
            np.concatenate([part[1][i] for part in parts])
            for i in range(self.num_values)
        ]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        sums = tuple(
            np.bincount(inverse, weights=column, minlength=len(unique_keys))
            for column in stacked
        )
        return unique_keys, sums

    def squash_pending(self) -> None:
        """Collapse the pending parts without touching the base part.

        Tiered compaction: parts after the first (fresh chunk
        aggregates) are grouped and summed into one, so pending memory
        dies with the view that produced it — at O(pending keys) cost,
        not the O(total keys) a full :meth:`compacted` pays.  When the
        squashed tier has grown to the base part's size it is promoted
        (full compaction), keeping the total work amortised-logarithmic
        instead of quadratic in the number of views.
        """
        if len(self._parts) <= 2:
            return
        squashed = self._group_parts(self._parts[1:], self._sorted[1:])
        self._parts = [self._parts[0], squashed]
        self._sorted = [self._sorted[0], True]
        if len(squashed[0]) >= len(self._parts[0][0]):
            self.compacted()

    def compacted(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """Group-by-sum all parts; returns (and keeps) the single part."""
        if not self._parts:
            return _empty_keys(), tuple(
                np.empty(0, dtype=np.float64) for _ in range(self.num_values)
            )
        if self._normalized:
            return self._parts[0]
        if len(self._parts) > 1 or self._sorted[0]:
            # A lone sorted-unique part falls through `_group_parts`
            # untouched: already-compacted state costs nothing.
            self._parts = [self._group_parts(self._parts, self._sorted)]
        else:
            # A lone raw part may still carry duplicate keys.
            keys, columns = self._parts[0]
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            if len(unique_keys) != len(keys):
                sums = tuple(
                    np.bincount(inverse, weights=c, minlength=len(unique_keys))
                    for c in columns
                )
                self._parts = [(unique_keys, sums)]
            elif not np.array_equal(unique_keys, keys):
                order = np.argsort(keys)
                self._parts = [(keys[order], tuple(c[order] for c in columns))]
        self._sorted = [True]
        self._normalized = True
        return self._parts[0]


class FinalizedAggregates:
    """Columnar output of :meth:`PrefixAccumulator.finalize`.

    The pooled, tolerance-applied statistics the stage engine consumes;
    the streaming equivalent of what the batch pipeline used to pool
    from whole vantage-day views.
    """

    __slots__ = (
        "dst_ips",
        "ip_tcp_pkts_est",
        "ip_tcp_bytes_est",
        "ip_total_pkts_est",
        "src_ips",
        "src_ip_pkts_sampled",
        "vol_blocks",
        "vol_median_est",
        "src_blocks",
        "src_block_excess",
        "applied_tolerances",
        "family",
        "block_shift",
    )

    def __init__(
        self,
        dst_ips: np.ndarray,
        ip_tcp_pkts_est: np.ndarray,
        ip_tcp_bytes_est: np.ndarray,
        ip_total_pkts_est: np.ndarray,
        src_ips: np.ndarray,
        src_ip_pkts_sampled: np.ndarray,
        vol_blocks: np.ndarray,
        vol_median_est: np.ndarray,
        src_blocks: np.ndarray,
        src_block_excess: np.ndarray,
        applied_tolerances: dict[str, float],
        family: str = "ipv4",
        block_shift: int = 8,
    ) -> None:
        self.dst_ips = dst_ips
        self.ip_tcp_pkts_est = ip_tcp_pkts_est
        self.ip_tcp_bytes_est = ip_tcp_bytes_est
        self.ip_total_pkts_est = ip_total_pkts_est
        self.src_ips = src_ips
        self.src_ip_pkts_sampled = src_ip_pkts_sampled
        self.vol_blocks = vol_blocks
        self.vol_median_est = vol_median_est
        self.src_blocks = src_blocks
        self.src_block_excess = src_block_excess
        self.applied_tolerances = applied_tolerances
        self.family = family
        self.block_shift = block_shift


class PrefixAccumulator:
    """Mergeable streaming per-block aggregation state.

    The accumulator is address-family generic: it adopts the family of
    the first chunk it folds (v4 construction sites need no change) and
    rejects chunks or merges from a different family afterwards.  An
    explicit ``family`` pins it up front.
    """

    def __init__(
        self,
        ignore_sources_from_asns: frozenset[int] = frozenset(),
        compact_every: int = DEFAULT_COMPACT_EVERY,
        kernel=None,
        family: str | None = None,
    ) -> None:
        from repro.core.kernels import get_kernel

        self.ignore_sources_from_asns = frozenset(ignore_sources_from_asns)
        self.compact_every = compact_every
        self._family_name: str | None = None
        self._family = None
        if family is not None:
            self._adopt_family(family)
        # ``None`` means the numpy reference: direct library use stays
        # on the extracted semantics; the execution engine resolves the
        # public ``kernel`` knob (including ``auto``) before passing a
        # name or backend instance down.
        self.kernel = (
            get_kernel(kernel if kernel is not None else "numpy")
            if kernel is None or isinstance(kernel, str)
            else kernel
        )
        self._ignored_asns = (
            np.fromiter(self.ignore_sources_from_asns, dtype=np.int32)
            if self.ignore_sources_from_asns
            else None
        )
        # dst IP -> (tcp pkts est, tcp bytes est, total pkts est)
        self._dst_ip_sums = _KeyedSums(3, compact_every, self.kernel)
        # src IP -> sampled packets (ignored senders filtered out)
        self._src_ip_sums = _KeyedSums(1, compact_every, self.kernel)
        # vantage -> src /24 -> (filtered sampled pkts, raw sampled pkts)
        self._src_by_vantage: dict[str, _KeyedSums] = {}
        # day -> dst /24 -> estimated total packets
        self._volume_by_day: dict[int, _KeyedSums] = {}
        self._days_by_vantage: dict[str, set[int]] = {}
        self._rows_ingested = 0

    # -- address family ------------------------------------------------

    @property
    def family(self) -> str:
        """The adopted family name (``"ipv4"`` until anything else is)."""
        return self._family_name or FAMILY_IPV4

    @property
    def address_family(self):
        """The adopted :class:`~repro.net.family.AddressFamily` (v4 default)."""
        return self._family if self._family is not None else IPV4

    def _adopt_family(self, name: str) -> None:
        if self._family_name is None:
            self._family_name = name
            self._family = _family_of(name)
        elif name != self._family_name:
            raise ValueError(
                f"cannot mix address families in one accumulator: "
                f"{self._family_name} already adopted, got {name}"
            )

    # -- ingestion -----------------------------------------------------

    def observe(self, vantage: str, day: int) -> None:
        """Record that a vantage reported on a day (even with no rows).

        Mirrors the batch pipeline, where an empty view still claims a
        window tolerance and a volume-matrix row for its day.
        """
        self._days_by_vantage.setdefault(vantage, set()).add(day)
        self._src_by_vantage.setdefault(
            vantage, _KeyedSums(2, self.compact_every, self.kernel)
        )
        self._volume_by_day.setdefault(
            day, _KeyedSums(1, self.compact_every, self.kernel)
        )

    def update(
        self,
        chunk: FlowTable,
        *,
        vantage: str,
        day: int,
        sampling_factor: float = 1.0,
    ) -> "PrefixAccumulator":
        """Fold one flow chunk of a vantage-day in; returns ``self``."""
        self.observe(vantage, day)
        if len(chunk) == 0:
            return self
        self._adopt_family(chunk.family)
        block_shift = self._family.key_block_shift
        factor = float(sampling_factor)
        self._rows_ingested += len(chunk)
        packets = chunk.packets
        per_vantage = self._src_by_vantage[vantage]
        if self._ignored_asns is None:
            # The fused hot path: one kernel call folds all four keyed
            # parts of a chunk (per-dst-key sums, the block volume
            # regroup, per-src-key sums, the raw block source regroup).
            # Every part comes back sorted-unique, so downstream
            # compaction can merge linearly instead of re-sorting.
            dst, vol, src, raw = self.kernel.fold_chunk(
                chunk.src_ip, chunk.dst_ip, chunk.proto, packets,
                chunk.bytes, factor, block_shift,
            )
            self._dst_ip_sums.add(dst[0], *dst[1], sorted_unique=True)
            self._volume_by_day[day].add(vol[0], *vol[1], sorted_unique=True)
            per_vantage.add(raw[0], raw[1][0], raw[1][0], sorted_unique=True)
            self._src_ip_sums.add(src[0], *src[1], sorted_unique=True)
            return self

        is_tcp = chunk.proto == PROTO_TCP
        dst_ips, (tcp_pkts, tcp_bytes, total_pkts) = aggregate_sums(
            chunk.dst_ip.astype(np.int64),
            np.where(is_tcp, packets, 0),
            np.where(is_tcp, chunk.bytes, 0),
            packets,
        )
        self._dst_ip_sums.add(
            dst_ips, tcp_pkts * factor, tcp_bytes * factor,
            total_pkts * factor, sorted_unique=True,
        )

        # Re-group the per-key sums by block instead of sorting the raw
        # rows a second time: the unique-key table is far smaller than
        # the chunk, and integer sums regroup exactly.
        vol_blocks, (vol_pkts,) = aggregate_sums(
            self._family.block_of(dst_ips), total_pkts
        )
        self._volume_by_day[day].add(
            vol_blocks, vol_pkts * factor, sorted_unique=True
        )

        raw_blocks, (raw_pkts,) = aggregate_sums(chunk.src_blocks(), packets)
        kept = chunk.filter(~np.isin(chunk.sender_asn, self._ignored_asns))
        src_ips, (src_pkts,) = aggregate_sums(
            kept.src_ip.astype(np.int64), kept.packets
        )
        per_vantage.add(
            raw_blocks, np.zeros(len(raw_blocks)), raw_pkts, sorted_unique=True
        )
        per_vantage.add(
            self._family.block_of(src_ips), src_pkts, np.zeros(len(src_ips))
        )
        self._src_ip_sums.add(src_ips, src_pkts, sorted_unique=True)
        return self

    def update_view(
        self,
        view: VantageDayView,
        chunk_size: int | str | None = None,
        on_chunk=None,
    ) -> "PrefixAccumulator":
        """Fold a whole vantage-day view in, optionally chunk by chunk.

        ``chunk_size`` may be an integer row count, ``None`` (whole
        view) or :data:`AUTO_CHUNK` to derive an adaptive size from the
        view's rows.  The view boundary is a natural compaction point:
        the chunk log is squashed so pending parts never outlive the
        view that produced them (without re-sorting the whole table).
        ``on_chunk(rows, seconds)`` is called after each folded chunk —
        the execution engine's per-chunk observability hook.
        """
        self.observe(view.vantage, view.day)
        # num_rows is cheap for archive-backed views (segment headers,
        # no data mapped); len(view.flows) would materialise the day.
        rows = getattr(view, "num_rows", None)
        if rows is None:
            rows = len(view.flows)
        resolved = resolve_chunk_size(chunk_size, rows)
        for chunk in view.iter_chunks(resolved):
            started = time.perf_counter() if on_chunk is not None else 0.0
            self.update(
                chunk,
                vantage=view.vantage,
                day=view.day,
                sampling_factor=view.sampling_factor,
            )
            if on_chunk is not None:
                on_chunk(len(chunk), time.perf_counter() - started)
        if resolved is not None:
            self._dst_ip_sums.squash_pending()
            self._src_ip_sums.squash_pending()
            self._src_by_vantage[view.vantage].squash_pending()
            self._volume_by_day[view.day].squash_pending()
        return self

    # -- combination ---------------------------------------------------

    def merge(self, other: "PrefixAccumulator") -> "PrefixAccumulator":
        """Fold another accumulator in (in place); returns ``self``.

        ``other`` is left untouched, so per-day partials can be merged
        into many different windows.  Merging is associative and
        commutative up to float summation order — exact for the
        integer-valued counts the pipeline tracks.
        """
        if other.ignore_sources_from_asns != self.ignore_sources_from_asns:
            raise ValueError(
                "cannot merge accumulators with different ignored-sender sets"
            )
        if other._family_name is not None:
            self._adopt_family(other._family_name)
        self._dst_ip_sums.absorb(other._dst_ip_sums)
        self._src_ip_sums.absorb(other._src_ip_sums)
        for vantage, theirs in other._src_by_vantage.items():
            mine = self._src_by_vantage.get(vantage)
            if mine is None:
                mine = _KeyedSums(
                    theirs.num_values, self.compact_every, self.kernel
                )
                self._src_by_vantage[vantage] = mine
            mine.absorb(theirs)
        for day, theirs in other._volume_by_day.items():
            mine = self._volume_by_day.get(day)
            if mine is None:
                mine = _KeyedSums(
                    theirs.num_values, self.compact_every, self.kernel
                )
                self._volume_by_day[day] = mine
            mine.absorb(theirs)
        for vantage, days in other._days_by_vantage.items():
            self._days_by_vantage.setdefault(vantage, set()).update(days)
        self._rows_ingested += other._rows_ingested
        return self

    def compact(self) -> "PrefixAccumulator":
        """Collapse every column family to a single grouped part.

        Called before merging partials on a coordinator and before
        serialization so neither ships or carries a chunk log; safe (and
        cheap) to call at any time.  Returns ``self``.
        """
        self._dst_ip_sums.compacted()
        self._src_ip_sums.compacted()
        for sums in self._src_by_vantage.values():
            sums.compacted()
        for sums in self._volume_by_day.values():
            sums.compacted()
        return self

    def copy(self) -> "PrefixAccumulator":
        """An independent copy safe to merge elsewhere."""
        duplicate = PrefixAccumulator(
            self.ignore_sources_from_asns, self.compact_every, self.kernel,
            family=self._family_name,
        )
        duplicate._dst_ip_sums = self._dst_ip_sums.copy()
        duplicate._src_ip_sums = self._src_ip_sums.copy()
        duplicate._src_by_vantage = {
            vantage: sums.copy() for vantage, sums in self._src_by_vantage.items()
        }
        duplicate._volume_by_day = {
            day: sums.copy() for day, sums in self._volume_by_day.items()
        }
        duplicate._days_by_vantage = {
            vantage: set(days) for vantage, days in self._days_by_vantage.items()
        }
        duplicate._rows_ingested = self._rows_ingested
        return duplicate

    # -- wire form -----------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        """Compact columnar wire form of this accumulator.

        Every family is compacted to a single grouped part and shipped
        as raw numpy arrays under stable keys — no log-structured parts,
        no Python object graph — so worker->coordinator IPC and
        federation transfers cost O(distinct keys).  The accumulator
        itself stays usable (compaction is its normal maintenance).
        """
        def part(sums: _KeyedSums) -> tuple[np.ndarray, ...]:
            keys, values = sums.compacted()
            return (keys, *values)

        return {
            "version": _STATE_VERSION,
            # The *adopted* family (None while empty), so an empty
            # partial restored elsewhere can still adopt any family.
            "family": self._family_name,
            "ignore_sources_from_asns": tuple(
                sorted(self.ignore_sources_from_asns)
            ),
            "rows_ingested": self._rows_ingested,
            "dst_ip_sums": part(self._dst_ip_sums),
            "src_ip_sums": part(self._src_ip_sums),
            "src_by_vantage": {
                vantage: part(sums)
                for vantage, sums in self._src_by_vantage.items()
            },
            "volume_by_day": {
                int(day): part(sums)
                for day, sums in self._volume_by_day.items()
            },
            "days_by_vantage": {
                vantage: tuple(sorted(days))
                for vantage, days in self._days_by_vantage.items()
            },
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, Any],
        compact_every: int = DEFAULT_COMPACT_EVERY,
        kernel=None,
    ) -> "PrefixAccumulator":
        """Rebuild an accumulator from :meth:`to_state` output.

        The round trip is exact: the rebuilt accumulator finalizes (and
        merges) bit-identically to the original.  ``compact_every`` and
        ``kernel`` are local execution policy, not data, so they are
        not part of the wire form.
        """
        version = state.get("version")
        if version != _STATE_VERSION:
            raise ValueError(
                f"unsupported accumulator state version: {version!r}"
            )
        accumulator = cls(
            frozenset(state["ignore_sources_from_asns"]), compact_every, kernel,
            family=state.get("family"),
        )
        resolved = accumulator.kernel

        def load(sums: _KeyedSums, part: tuple[np.ndarray, ...]) -> None:
            keys, *values = part
            # Wire parts come from `compacted()` — sorted-unique by
            # construction.
            sums.add(keys, *values, sorted_unique=True)

        load(accumulator._dst_ip_sums, state["dst_ip_sums"])
        load(accumulator._src_ip_sums, state["src_ip_sums"])
        for vantage, part in state["src_by_vantage"].items():
            family = _KeyedSums(2, compact_every, resolved)
            load(family, part)
            accumulator._src_by_vantage[vantage] = family
        for day, part in state["volume_by_day"].items():
            family = _KeyedSums(1, compact_every, resolved)
            load(family, part)
            accumulator._volume_by_day[int(day)] = family
        for vantage, days in state["days_by_vantage"].items():
            accumulator._days_by_vantage[vantage] = set(
                int(day) for day in days
            )
            accumulator._src_by_vantage.setdefault(
                vantage, _KeyedSums(2, compact_every, resolved)
            )
        accumulator._rows_ingested = int(state["rows_ingested"])
        return accumulator

    # -- introspection -------------------------------------------------

    def is_empty(self) -> bool:
        """True when no vantage-day has been observed at all."""
        return not self._days_by_vantage

    def days(self) -> list[int]:
        """Sorted days with at least one observation."""
        return sorted(self._volume_by_day)

    def vantages(self) -> list[str]:
        """Sorted vantage codes that have reported."""
        return sorted(self._days_by_vantage)

    def days_by_vantage(self) -> dict[str, frozenset[int]]:
        """Days each vantage contributed (window-tolerance scaling)."""
        return {
            vantage: frozenset(days)
            for vantage, days in self._days_by_vantage.items()
        }

    def rows_ingested(self) -> int:
        """Total flow rows folded in so far (diagnostic)."""
        return self._rows_ingested

    def observed_blocks(self) -> np.ndarray:
        """Sorted blocks that received any traffic."""
        dst_ips, _ = self._dst_ip_sums.compacted()
        return np.unique(self.address_family.block_of(dst_ips))

    def vantage_source_blocks(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per vantage: (src /24 blocks, *raw* pooled sampled packets).

        Raw means before the ignored-sender filter — the input the
        unrouted-space spoofing tolerance is derived from.
        """
        result = {}
        for vantage, sums in self._src_by_vantage.items():
            blocks, (_, raw) = sums.compacted()
            result[vantage] = (blocks, raw)
        return result

    # -- finalisation --------------------------------------------------

    def finalize(
        self, spoof_tolerance: float | Mapping[str, float] = 0.0
    ) -> FinalizedAggregates:
        """Pool the partial aggregates into classification columns.

        ``spoof_tolerance`` follows the pipeline-config convention: a
        scalar is a per-day allowance scaled by each vantage's window
        length; a mapping gives whole-window allowances per vantage.
        Finalising does not consume the accumulator — more chunks may
        be folded in and a fresh finalize taken later.
        """
        dst_ips, (tcp_pkts, tcp_bytes, total_pkts) = self._dst_ip_sums.compacted()
        src_ips, (src_ip_pkts,) = self._src_ip_sums.compacted()

        applied: dict[str, float] = {}
        excess = _KeyedSums(1, kernel=self.kernel)
        for vantage, sums in self._src_by_vantage.items():
            blocks, (filtered, _) = sums.compacted()
            tolerance = self._tolerance_of(spoof_tolerance, vantage)
            applied[vantage] = tolerance
            excess.add(
                blocks, np.maximum(filtered - tolerance, 0), sorted_unique=True
            )
        src_blocks, (src_excess,) = excess.compacted()

        days = self.days()
        day_tables = [self._volume_by_day[day].compacted() for day in days]
        if any(len(blocks) for blocks, _ in day_tables):
            vol_blocks = np.unique(
                np.concatenate([blocks for blocks, _ in day_tables])
            )
        else:
            vol_blocks = _empty_keys()
        volume_matrix = np.zeros((max(len(days), 1), len(vol_blocks)))
        for row, (blocks, (est,)) in enumerate(day_tables):
            volume_matrix[row, np.searchsorted(vol_blocks, blocks)] = est
        vol_median_est = np.median(volume_matrix, axis=0)

        return FinalizedAggregates(
            dst_ips=dst_ips,
            ip_tcp_pkts_est=tcp_pkts,
            ip_tcp_bytes_est=tcp_bytes,
            ip_total_pkts_est=total_pkts,
            src_ips=src_ips,
            src_ip_pkts_sampled=src_ip_pkts,
            vol_blocks=vol_blocks,
            vol_median_est=vol_median_est,
            src_blocks=src_blocks,
            src_block_excess=src_excess,
            applied_tolerances=applied,
            family=self.family,
            block_shift=self.address_family.key_block_shift,
        )

    def _tolerance_of(
        self, spoof_tolerance: float | Mapping[str, float], vantage: str
    ) -> float:
        if isinstance(spoof_tolerance, Mapping):
            return float(spoof_tolerance.get(vantage, 0.0))
        # A scalar is per day; scale to this vantage's window length.
        return float(spoof_tolerance) * len(self._days_by_vantage[vantage])


def accumulate_views(
    views: Iterator[VantageDayView] | list[VantageDayView],
    ignore_sources_from_asns: frozenset[int] = frozenset(),
    chunk_size: int | str | None = None,
    compact_every: int = DEFAULT_COMPACT_EVERY,
    kernel=None,
) -> PrefixAccumulator:
    """Accumulator over an iterable of views (the one-liner entry)."""
    accumulator = PrefixAccumulator(
        ignore_sources_from_asns, compact_every, kernel
    )
    for view in views:
        accumulator.update_view(view, chunk_size=chunk_size)
    return accumulator
