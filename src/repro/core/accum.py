"""Mergeable per-/24 aggregation state for streaming inference.

The batch pipeline used to re-aggregate a whole vantage-day on every
run.  A :class:`PrefixAccumulator` replaces that with bounded-memory
streaming semantics:

* ``update(chunk, vantage=..., day=..., sampling_factor=...)`` folds a
  bounded-size :class:`~repro.traffic.flows.FlowTable` chunk in;
* ``merge(other)`` combines two accumulators (associative — partial
  aggregates from different chunk orders, days or federation members
  combine into the same state);
* ``finalize(spoof_tolerance)`` emits the columnar
  :class:`FinalizedAggregates` the stage engine classifies from.

Every statistic the seven-step pipeline needs is kept in mergeable
struct-of-arrays form: per-destination-IP TCP packet/byte and total
packet estimates (the per-IP survival fingerprint), per-source-IP
sampled sightings, per-vantage per-/24 source packets (both with and
without the ignored-sender filter, so the spoofing tolerance can be
derived from the accumulator itself), and per-day per-/24 volume
estimates (the across-days median of the volume filter).

All counts are integers (or integer-valued floats after sampling-factor
rescaling), so the partial sums are exact in float64 and the chunked
path classifies **bit-identically** to the batch path — at chunk size
1, 97 or a whole day.

Internally each keyed column family is a small log-structured store:
chunk aggregates append as sorted *parts* and are compacted (grouped
and summed) every :data:`_COMPACT_EVERY` parts, so ``update`` stays
O(chunk) amortised and memory stays O(distinct keys), not O(rows).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums
from repro.traffic.packets import PROTO_TCP
from repro.vantage.sampling import VantageDayView

#: Pending parts a :class:`_KeyedSums` tolerates before compacting.
_COMPACT_EVERY = 16


def _empty_keys() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


class _KeyedSums:
    """Mergeable sorted ``int64 key -> float64 sums`` column family."""

    __slots__ = ("num_values", "_parts")

    def __init__(self, num_values: int) -> None:
        self.num_values = num_values
        self._parts: list[tuple[np.ndarray, tuple[np.ndarray, ...]]] = []

    def add(self, keys: np.ndarray, *values: np.ndarray) -> None:
        """Append one keyed part (keys need not be unique or sorted)."""
        if len(values) != self.num_values:
            raise ValueError(
                f"expected {self.num_values} value column(s), got {len(values)}"
            )
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        self._parts.append(
            (keys, tuple(np.asarray(v, dtype=np.float64) for v in values))
        )
        if len(self._parts) >= _COMPACT_EVERY:
            self.compacted()

    def absorb(self, other: "_KeyedSums") -> None:
        """Merge another family in (the other is left untouched)."""
        if other.num_values != self.num_values:
            raise ValueError("cannot merge column families of different arity")
        self._parts.extend(other._parts)
        if len(self._parts) >= _COMPACT_EVERY:
            self.compacted()

    def copy(self) -> "_KeyedSums":
        """An independent copy (parts share immutable arrays)."""
        duplicate = _KeyedSums(self.num_values)
        duplicate._parts = list(self._parts)
        return duplicate

    def compacted(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """Group-by-sum all parts; returns (and keeps) the single part."""
        if not self._parts:
            return _empty_keys(), tuple(
                np.empty(0, dtype=np.float64) for _ in range(self.num_values)
            )
        if len(self._parts) > 1:
            keys = np.concatenate([part[0] for part in self._parts])
            stacked = [
                np.concatenate([part[1][i] for part in self._parts])
                for i in range(self.num_values)
            ]
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            sums = tuple(
                np.bincount(inverse, weights=column, minlength=len(unique_keys))
                for column in stacked
            )
            self._parts = [(unique_keys, sums)]
        else:
            # A lone part may still carry duplicate keys; normalise it.
            keys, columns = self._parts[0]
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            if len(unique_keys) != len(keys):
                sums = tuple(
                    np.bincount(inverse, weights=c, minlength=len(unique_keys))
                    for c in columns
                )
                self._parts = [(unique_keys, sums)]
            elif not np.array_equal(unique_keys, keys):
                order = np.argsort(keys)
                self._parts = [(keys[order], tuple(c[order] for c in columns))]
        return self._parts[0]


class FinalizedAggregates:
    """Columnar output of :meth:`PrefixAccumulator.finalize`.

    The pooled, tolerance-applied statistics the stage engine consumes;
    the streaming equivalent of what the batch pipeline used to pool
    from whole vantage-day views.
    """

    __slots__ = (
        "dst_ips",
        "ip_tcp_pkts_est",
        "ip_tcp_bytes_est",
        "ip_total_pkts_est",
        "src_ips",
        "src_ip_pkts_sampled",
        "vol_blocks",
        "vol_median_est",
        "src_blocks",
        "src_block_excess",
        "applied_tolerances",
    )

    def __init__(
        self,
        dst_ips: np.ndarray,
        ip_tcp_pkts_est: np.ndarray,
        ip_tcp_bytes_est: np.ndarray,
        ip_total_pkts_est: np.ndarray,
        src_ips: np.ndarray,
        src_ip_pkts_sampled: np.ndarray,
        vol_blocks: np.ndarray,
        vol_median_est: np.ndarray,
        src_blocks: np.ndarray,
        src_block_excess: np.ndarray,
        applied_tolerances: dict[str, float],
    ) -> None:
        self.dst_ips = dst_ips
        self.ip_tcp_pkts_est = ip_tcp_pkts_est
        self.ip_tcp_bytes_est = ip_tcp_bytes_est
        self.ip_total_pkts_est = ip_total_pkts_est
        self.src_ips = src_ips
        self.src_ip_pkts_sampled = src_ip_pkts_sampled
        self.vol_blocks = vol_blocks
        self.vol_median_est = vol_median_est
        self.src_blocks = src_blocks
        self.src_block_excess = src_block_excess
        self.applied_tolerances = applied_tolerances


class PrefixAccumulator:
    """Mergeable streaming per-/24 aggregation state."""

    def __init__(
        self, ignore_sources_from_asns: frozenset[int] = frozenset()
    ) -> None:
        self.ignore_sources_from_asns = frozenset(ignore_sources_from_asns)
        self._ignored_asns = (
            np.fromiter(self.ignore_sources_from_asns, dtype=np.int32)
            if self.ignore_sources_from_asns
            else None
        )
        # dst IP -> (tcp pkts est, tcp bytes est, total pkts est)
        self._dst_ip_sums = _KeyedSums(3)
        # src IP -> sampled packets (ignored senders filtered out)
        self._src_ip_sums = _KeyedSums(1)
        # vantage -> src /24 -> (filtered sampled pkts, raw sampled pkts)
        self._src_by_vantage: dict[str, _KeyedSums] = {}
        # day -> dst /24 -> estimated total packets
        self._volume_by_day: dict[int, _KeyedSums] = {}
        self._days_by_vantage: dict[str, set[int]] = {}
        self._rows_ingested = 0

    # -- ingestion -----------------------------------------------------

    def observe(self, vantage: str, day: int) -> None:
        """Record that a vantage reported on a day (even with no rows).

        Mirrors the batch pipeline, where an empty view still claims a
        window tolerance and a volume-matrix row for its day.
        """
        self._days_by_vantage.setdefault(vantage, set()).add(day)
        self._src_by_vantage.setdefault(vantage, _KeyedSums(2))
        self._volume_by_day.setdefault(day, _KeyedSums(1))

    def update(
        self,
        chunk: FlowTable,
        *,
        vantage: str,
        day: int,
        sampling_factor: float = 1.0,
    ) -> "PrefixAccumulator":
        """Fold one flow chunk of a vantage-day in; returns ``self``."""
        self.observe(vantage, day)
        if len(chunk) == 0:
            return self
        factor = float(sampling_factor)
        self._rows_ingested += len(chunk)
        packets = chunk.packets
        is_tcp = chunk.proto == PROTO_TCP

        dst_ips, (tcp_pkts, tcp_bytes, total_pkts) = aggregate_sums(
            chunk.dst_ip.astype(np.int64),
            np.where(is_tcp, packets, 0),
            np.where(is_tcp, chunk.bytes, 0),
            packets,
        )
        self._dst_ip_sums.add(
            dst_ips, tcp_pkts * factor, tcp_bytes * factor, total_pkts * factor
        )

        vol_blocks, (vol_pkts,) = aggregate_sums(chunk.dst_blocks(), packets)
        self._volume_by_day[day].add(vol_blocks, vol_pkts * factor)

        raw_blocks, (raw_pkts,) = aggregate_sums(chunk.src_blocks(), packets)
        per_vantage = self._src_by_vantage[vantage]
        if self._ignored_asns is None:
            src_ips, (src_pkts,) = aggregate_sums(
                chunk.src_ip.astype(np.int64), packets
            )
            per_vantage.add(raw_blocks, raw_pkts, raw_pkts)
        else:
            kept = chunk.filter(~np.isin(chunk.sender_asn, self._ignored_asns))
            src_ips, (src_pkts,) = aggregate_sums(
                kept.src_ip.astype(np.int64), kept.packets
            )
            per_vantage.add(raw_blocks, np.zeros(len(raw_blocks)), raw_pkts)
            per_vantage.add(src_ips >> 8, src_pkts, np.zeros(len(src_ips)))
        self._src_ip_sums.add(src_ips, src_pkts)
        return self

    def update_view(
        self, view: VantageDayView, chunk_size: int | None = None
    ) -> "PrefixAccumulator":
        """Fold a whole vantage-day view in, optionally chunk by chunk."""
        self.observe(view.vantage, view.day)
        for chunk in view.iter_chunks(chunk_size):
            self.update(
                chunk,
                vantage=view.vantage,
                day=view.day,
                sampling_factor=view.sampling_factor,
            )
        return self

    # -- combination ---------------------------------------------------

    def merge(self, other: "PrefixAccumulator") -> "PrefixAccumulator":
        """Fold another accumulator in (in place); returns ``self``.

        ``other`` is left untouched, so per-day partials can be merged
        into many different windows.  Merging is associative and
        commutative up to float summation order — exact for the
        integer-valued counts the pipeline tracks.
        """
        if other.ignore_sources_from_asns != self.ignore_sources_from_asns:
            raise ValueError(
                "cannot merge accumulators with different ignored-sender sets"
            )
        self._dst_ip_sums.absorb(other._dst_ip_sums)
        self._src_ip_sums.absorb(other._src_ip_sums)
        for vantage, theirs in other._src_by_vantage.items():
            mine = self._src_by_vantage.get(vantage)
            if mine is None:
                self._src_by_vantage[vantage] = theirs.copy()
            else:
                mine.absorb(theirs)
        for day, theirs in other._volume_by_day.items():
            mine = self._volume_by_day.get(day)
            if mine is None:
                self._volume_by_day[day] = theirs.copy()
            else:
                mine.absorb(theirs)
        for vantage, days in other._days_by_vantage.items():
            self._days_by_vantage.setdefault(vantage, set()).update(days)
        self._rows_ingested += other._rows_ingested
        return self

    def copy(self) -> "PrefixAccumulator":
        """An independent copy safe to merge elsewhere."""
        duplicate = PrefixAccumulator(self.ignore_sources_from_asns)
        duplicate._dst_ip_sums = self._dst_ip_sums.copy()
        duplicate._src_ip_sums = self._src_ip_sums.copy()
        duplicate._src_by_vantage = {
            vantage: sums.copy() for vantage, sums in self._src_by_vantage.items()
        }
        duplicate._volume_by_day = {
            day: sums.copy() for day, sums in self._volume_by_day.items()
        }
        duplicate._days_by_vantage = {
            vantage: set(days) for vantage, days in self._days_by_vantage.items()
        }
        duplicate._rows_ingested = self._rows_ingested
        return duplicate

    # -- introspection -------------------------------------------------

    def is_empty(self) -> bool:
        """True when no vantage-day has been observed at all."""
        return not self._days_by_vantage

    def days(self) -> list[int]:
        """Sorted days with at least one observation."""
        return sorted(self._volume_by_day)

    def vantages(self) -> list[str]:
        """Sorted vantage codes that have reported."""
        return sorted(self._days_by_vantage)

    def days_by_vantage(self) -> dict[str, frozenset[int]]:
        """Days each vantage contributed (window-tolerance scaling)."""
        return {
            vantage: frozenset(days)
            for vantage, days in self._days_by_vantage.items()
        }

    def rows_ingested(self) -> int:
        """Total flow rows folded in so far (diagnostic)."""
        return self._rows_ingested

    def observed_blocks(self) -> np.ndarray:
        """Sorted /24 blocks that received any traffic."""
        dst_ips, _ = self._dst_ip_sums.compacted()
        return np.unique(dst_ips >> 8)

    def vantage_source_blocks(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per vantage: (src /24 blocks, *raw* pooled sampled packets).

        Raw means before the ignored-sender filter — the input the
        unrouted-space spoofing tolerance is derived from.
        """
        result = {}
        for vantage, sums in self._src_by_vantage.items():
            blocks, (_, raw) = sums.compacted()
            result[vantage] = (blocks, raw)
        return result

    # -- finalisation --------------------------------------------------

    def finalize(
        self, spoof_tolerance: float | Mapping[str, float] = 0.0
    ) -> FinalizedAggregates:
        """Pool the partial aggregates into classification columns.

        ``spoof_tolerance`` follows the pipeline-config convention: a
        scalar is a per-day allowance scaled by each vantage's window
        length; a mapping gives whole-window allowances per vantage.
        Finalising does not consume the accumulator — more chunks may
        be folded in and a fresh finalize taken later.
        """
        dst_ips, (tcp_pkts, tcp_bytes, total_pkts) = self._dst_ip_sums.compacted()
        src_ips, (src_ip_pkts,) = self._src_ip_sums.compacted()

        applied: dict[str, float] = {}
        excess = _KeyedSums(1)
        for vantage, sums in self._src_by_vantage.items():
            blocks, (filtered, _) = sums.compacted()
            tolerance = self._tolerance_of(spoof_tolerance, vantage)
            applied[vantage] = tolerance
            excess.add(blocks, np.maximum(filtered - tolerance, 0))
        src_blocks, (src_excess,) = excess.compacted()

        days = self.days()
        day_tables = [self._volume_by_day[day].compacted() for day in days]
        if any(len(blocks) for blocks, _ in day_tables):
            vol_blocks = np.unique(
                np.concatenate([blocks for blocks, _ in day_tables])
            )
        else:
            vol_blocks = _empty_keys()
        volume_matrix = np.zeros((max(len(days), 1), len(vol_blocks)))
        for row, (blocks, (est,)) in enumerate(day_tables):
            volume_matrix[row, np.searchsorted(vol_blocks, blocks)] = est
        vol_median_est = np.median(volume_matrix, axis=0)

        return FinalizedAggregates(
            dst_ips=dst_ips,
            ip_tcp_pkts_est=tcp_pkts,
            ip_tcp_bytes_est=tcp_bytes,
            ip_total_pkts_est=total_pkts,
            src_ips=src_ips,
            src_ip_pkts_sampled=src_ip_pkts,
            vol_blocks=vol_blocks,
            vol_median_est=vol_median_est,
            src_blocks=src_blocks,
            src_block_excess=src_excess,
            applied_tolerances=applied,
        )

    def _tolerance_of(
        self, spoof_tolerance: float | Mapping[str, float], vantage: str
    ) -> float:
        if isinstance(spoof_tolerance, Mapping):
            return float(spoof_tolerance.get(vantage, 0.0))
        # A scalar is per day; scale to this vantage's window length.
        return float(spoof_tolerance) * len(self._days_by_vantage[vantage])


def accumulate_views(
    views: Iterator[VantageDayView] | list[VantageDayView],
    ignore_sources_from_asns: frozenset[int] = frozenset(),
    chunk_size: int | None = None,
) -> PrefixAccumulator:
    """Accumulator over an iterable of views (the one-liner entry)."""
    accumulator = PrefixAccumulator(ignore_sources_from_asns)
    for view in views:
        accumulator.update_view(view, chunk_size=chunk_size)
    return accumulator
