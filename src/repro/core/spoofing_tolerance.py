"""Spoofing tolerance from unrouted address space (paper Section 7.2).

Spoofers draw fake sources from routed *and* unrouted space, so the
rate at which packets appear "from" /24s inside never-announced /8s is
a clean baseline for how much spoofed pollution any /24 suffers.  The
paper takes the 99.99th percentile of per-/24 daily packet counts
inside two unrouted /8s and forgives that many source packets per /24
per vantage-day.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.vantage.sampling import VantageDayView

if TYPE_CHECKING:
    from repro.core.accum import PrefixAccumulator

DEFAULT_QUANTILE = 0.9999


def tolerance_for_view(
    view: VantageDayView,
    unrouted_blocks: np.ndarray,
    quantile: float = DEFAULT_QUANTILE,
) -> float:
    """Forgivable source packets per /24 for one vantage-day.

    Computed over *all* unrouted baseline blocks, including the ones
    with zero sightings — most of the distribution is zeros, which is
    why the tolerance is usually 0-2 packets.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile out of range: {quantile}")
    unrouted = np.unique(np.asarray(unrouted_blocks, dtype=np.int64))
    if len(unrouted) == 0:
        raise ValueError("need unrouted baseline blocks")
    agg = view.aggregates()
    counts = np.zeros(len(unrouted))
    mask = np.isin(agg.src_blocks, unrouted)
    seen_blocks = agg.src_blocks[mask]
    seen_pkts = agg.src_packets[mask]
    counts[np.searchsorted(unrouted, seen_blocks)] = seen_pkts
    return float(np.quantile(counts, quantile, method="higher"))


def tolerances_for_views(
    views: list[VantageDayView],
    unrouted_blocks: np.ndarray,
    quantile: float = DEFAULT_QUANTILE,
) -> dict[str, float]:
    """Per-vantage *window* tolerances, the pipeline's expected format.

    Pollution per unrouted /24 is pooled over each vantage's views
    (all days of the window) before the percentile is taken — "for
    each vantage point and each time frame", as the paper puts it.
    Hence the tolerance rises with window length (up to ~4 packets/day
    x 7 days in the paper's setting).
    """
    unrouted = np.unique(np.asarray(unrouted_blocks, dtype=np.int64))
    if len(unrouted) == 0:
        raise ValueError("need unrouted baseline blocks")
    pooled: dict[str, np.ndarray] = {}
    for view in views:
        counts = pooled.setdefault(view.vantage, np.zeros(len(unrouted)))
        agg = view.aggregates()
        mask = np.isin(agg.src_blocks, unrouted)
        counts[np.searchsorted(unrouted, agg.src_blocks[mask])] += agg.src_packets[
            mask
        ]
    return {
        vantage: float(np.quantile(counts, quantile, method="higher"))
        for vantage, counts in pooled.items()
    }


def tolerances_from_accumulator(
    accumulator: "PrefixAccumulator",
    unrouted_blocks: np.ndarray,
    quantile: float = DEFAULT_QUANTILE,
) -> dict[str, float]:
    """Per-vantage window tolerances from streamed aggregates.

    Identical to :func:`tolerances_for_views` on the same traffic: the
    accumulator keeps raw (unfiltered) per-source-/24 packet sums per
    vantage, which is exactly the pooled quantity the batch path
    computes from each view's aggregates.
    """
    unrouted = np.unique(np.asarray(unrouted_blocks, dtype=np.int64))
    if len(unrouted) == 0:
        raise ValueError("need unrouted baseline blocks")
    tolerances: dict[str, float] = {}
    for vantage, (blocks, pkts) in accumulator.vantage_source_blocks().items():
        counts = np.zeros(len(unrouted))
        mask = np.isin(blocks, unrouted)
        counts[np.searchsorted(unrouted, blocks[mask])] = pkts[mask]
        tolerances[vantage] = float(
            np.quantile(counts, quantile, method="higher")
        )
    return tolerances
