"""Post-inference refinement and spoof-mitigation extensions.

Section 4.3: inferred-dark blocks that any public liveness dataset
(Censys / NDT / ISI) reports active are removed, yielding the *final*
meta-telescope prefix list the rest of the paper analyses.

Section 9 sketches two further spoofing mitigations; both are
implemented here so the ablation bench can compare them:

* dropping source sightings from networks known not to deploy BCP 38
  (the Spoofer-project list) — realised as a pipeline option, with the
  helper :func:`non_bcp38_asns` building the list from a registry;
* ignoring source sightings whose claimed origin lies outside the
  sender's CAIDA customer cone (cone-violating packets are spoofed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.asinfo import ASRegistry
from repro.bgp.topology import AsTopology
from repro.datasets.liveness import LivenessDataset, union_liveness
from repro.datasets.pfx2as import PrefixToAsMap
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class RefinementResult:
    """Outcome of the liveness refinement step."""

    final_blocks: np.ndarray
    removed_blocks: np.ndarray

    def removed_fraction(self) -> float:
        """Share of inferred-dark blocks flagged active (paper: 13.9 %)."""
        total = len(self.final_blocks) + len(self.removed_blocks)
        return len(self.removed_blocks) / total if total else 0.0


def refine_with_liveness(
    dark_blocks: np.ndarray, liveness: list[LivenessDataset]
) -> RefinementResult:
    """Drop inferred-dark blocks any liveness dataset reports active."""
    dark = np.unique(np.asarray(dark_blocks, dtype=np.int64))
    if not liveness:
        return RefinementResult(final_blocks=dark, removed_blocks=dark[:0])
    union = union_liveness(liveness)
    flagged = union.contains(dark)
    return RefinementResult(
        final_blocks=dark[~flagged], removed_blocks=dark[flagged]
    )


def non_bcp38_asns(registry: ASRegistry) -> frozenset[int]:
    """ASes without source-address validation (the Spoofer list)."""
    return frozenset(a.asn for a in registry if not a.spoof_filtered)


def cone_filtered_view(
    view: VantageDayView,
    topology: AsTopology,
    pfx2as: PrefixToAsMap,
) -> VantageDayView:
    """Drop flows whose claimed source violates the sender's cone.

    A flow observed from member AS *s* claiming a source address
    originated by AS *o* is plausible only if *o* lies in *s*'s
    customer cone; everything else is treated as spoofed and excluded
    from the view before inference.
    """
    flows = view.flows
    if len(flows) == 0:
        return view
    claimed_origin = pfx2as.asns_of_blocks(flows.src_blocks())
    keep = np.zeros(len(flows), dtype=bool)
    sender_asns = flows.sender_asn.astype(np.int64)
    pairs = np.unique(
        np.stack([sender_asns, claimed_origin], axis=1), axis=0
    )
    allowed = {
        (int(sender), int(origin))
        for sender, origin in pairs
        if origin >= 0
        and sender >= 0
        and int(origin) in topology.customer_cone(int(sender))
    }
    key = sender_asns * (1 << 32) + np.where(claimed_origin >= 0, claimed_origin, 0)
    allowed_keys = np.array(
        sorted(s * (1 << 32) + o for s, o in allowed), dtype=np.int64
    )
    if len(allowed_keys):
        idx = np.searchsorted(allowed_keys, key)
        idx = np.clip(idx, 0, len(allowed_keys) - 1)
        keep = (allowed_keys[idx] == key) & (claimed_origin >= 0)
    return VantageDayView(
        vantage=view.vantage,
        day=view.day,
        flows=flows.filter(keep),
        sampling_factor=view.sampling_factor,
    )


def drop_spoofed_ground_truth(view: VantageDayView) -> VantageDayView:
    """Oracle refinement: remove flows the simulator knows are spoofed.

    Not available in reality — used only to upper-bound what perfect
    spoofing mitigation could recover (ablation benches).
    """
    flows = view.flows
    return VantageDayView(
        vantage=view.vantage,
        day=view.day,
        flows=flows.filter(~flows.spoofed),
        sampling_factor=view.sampling_factor,
    )


def merge_flow_tables(views: list[VantageDayView]) -> FlowTable:
    """Convenience: all flows of several views as one table."""
    return FlowTable.concat([view.flows for view in views])
