"""Kernel registry: the ``kernel=numpy|native|auto`` execution knob.

Two backends compute the pipeline's hot loops:

* ``numpy`` — the reference backend.  Its operations are the exact
  code the accumulator, stages and trie ran before this module existed
  (extracted, semantics unchanged): ``np.unique`` + per-column
  ``np.bincount`` grouping, ``np.searchsorted`` membership and
  interval probes.
* ``native`` — the same operations with the hot loops compiled:
  fused radix-partition group-sums for the :class:`_KeyedSums`
  fold/compact path, linear sorted-part merges, and fused binary-search
  mask probes.  Two providers are tried in order: **Numba**
  (``pip install repro[native]``) JIT-compiles
  :mod:`repro.core._kernels_impl`; without Numba, a small C library
  (``_kernels.c``) is compiled once with the system C compiler and
  bound through ctypes (cached under ``~/.cache/repro/kernels``).
  When neither provider is available the backend silently degrades to
  the numpy reference (the engine emits a ``kernel`` trace event with
  the fallback reason).

**Identity contract.**  Both backends produce bit-identical
classifications: native kernels accumulate per-key sums in original
row order and merge parts left-to-right — the same float operation
order as ``np.bincount`` over concatenated parts — so for the
integer-valued counts the pipeline tracks (exact in float64) every
sum is reproduced bit for bit.  The contract is gated by the parity
suite (``tests/core/test_kernels.py``) and the CI kernel-identity
smoke.

Backends are resolved by name through :func:`get_kernel`; ``auto``
picks ``native`` when a provider is available.  Resolution is cached
per process; :func:`invalidate_cache` resets it (tests, env changes).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.traffic.packets import PROTO_TCP

__all__ = [
    "KERNEL_CHOICES",
    "DISABLE_NATIVE_ENV",
    "NumpyKernel",
    "NativeKernel",
    "get_kernel",
    "resolve_kernel_name",
    "native_provider",
    "invalidate_cache",
]

#: Accepted values of the ``kernel`` execution knob.
KERNEL_CHOICES = ("auto", "numpy", "native")

#: Set (to any non-empty value) to disable both native providers —
#: the supported way to exercise the silent-fallback path.
DISABLE_NATIVE_ENV = "REPRO_DISABLE_NATIVE_KERNEL"

#: Override the on-disk cache directory for the compiled C library.
CACHE_DIR_ENV = "REPRO_KERNEL_CACHE"

_DIRECT_SLOTS = 1 << 13


def _part(keys: np.ndarray, *values: np.ndarray):
    return keys, tuple(values)


class NumpyKernel:
    """The reference backend — extracted, unchanged numpy semantics."""

    name = "numpy"
    provider = "numpy"
    fallback_reason: str | None = None

    def fold_chunk(
        self,
        src_ip: np.ndarray,
        dst_ip: np.ndarray,
        proto: np.ndarray,
        packets: np.ndarray,
        bytes_: np.ndarray,
        factor: float,
        block_shift: int = 8,
    ):
        """The fused per-chunk fold: four keyed parts in one call.

        Returns ``(dst, vol, src, raw)`` parts, each ``(keys, cols)``:
        per-dst-key (tcp pkts, tcp bytes, total pkts) estimates, the
        per-block volume regroup, per-src-key sampled packets, and the
        raw per-block source regroup — exactly what
        :meth:`~repro.core.accum.PrefixAccumulator.update` appends for
        a chunk without an ignored-sender filter.  ``block_shift`` is
        the family's key-to-block shift (8 for IPv4 /24s, 16 for IPv6
        /48 sites over /64 keys).
        """
        from repro.traffic.flows import aggregate_sums

        is_tcp = proto == PROTO_TCP
        dst_ips, (tcp_pkts, tcp_bytes, total_pkts) = aggregate_sums(
            dst_ip.astype(np.int64),
            np.where(is_tcp, packets, 0),
            np.where(is_tcp, bytes_, 0),
            packets,
        )
        vol_blocks, (vol_pkts,) = aggregate_sums(dst_ips >> block_shift, total_pkts)
        src_ips, (src_pkts,) = aggregate_sums(src_ip.astype(np.int64), packets)
        raw_blocks, (raw_pkts,) = aggregate_sums(src_ips >> block_shift, src_pkts)
        return (
            _part(
                dst_ips,
                tcp_pkts * factor,
                tcp_bytes * factor,
                total_pkts * factor,
            ),
            _part(vol_blocks, vol_pkts * factor),
            _part(src_ips, np.asarray(src_pkts, dtype=np.float64)),
            _part(raw_blocks, np.asarray(raw_pkts, dtype=np.float64)),
        )

    def group_sum(self, keys: np.ndarray, values: tuple[np.ndarray, ...]):
        """Group-by-sum one keyed part into ascending unique keys.

        The exact compaction math of :class:`_KeyedSums`: float64 sums
        accumulated in row order via ``np.bincount``.
        """
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        sums = tuple(
            np.bincount(inverse, weights=column, minlength=len(unique_keys))
            for column in values
        )
        return unique_keys, sums

    def merge_sorted_parts(self, parts):
        """Group-sum sorted-unique parts (list of ``(keys, cols)``).

        The reference concatenates and re-groups; sums per key follow
        part order — the order the native backend's linear merge
        reproduces.
        """
        keys = np.concatenate([part[0] for part in parts])
        num_values = len(parts[0][1])
        stacked = [
            np.concatenate([part[1][i] for part in parts])
            for i in range(num_values)
        ]
        return self.group_sum(keys, tuple(stacked))

    def sorted_member_mask(
        self, values: np.ndarray, table: np.ndarray
    ) -> np.ndarray:
        from repro.net.blocksets import sorted_member_mask

        return sorted_member_mask(values, table)

    def interval_covered_mask(
        self, starts: np.ndarray, ends: np.ndarray, blocks: np.ndarray
    ) -> np.ndarray:
        from repro.net.trie import interval_covered_mask

        return interval_covered_mask(starts, ends, blocks)

    def describe(self) -> dict[str, Any]:
        """Provenance record (plans, snapshots, trace events)."""
        return {
            "name": self.name,
            "provider": self.provider,
            "fallback_reason": self.fallback_reason,
        }


# ---------------------------------------------------------------------------
# Native providers
# ---------------------------------------------------------------------------


class _CcOps:
    """ctypes bindings over the on-demand-compiled ``_kernels.c``."""

    provider = "cc"

    def __init__(self, lib: ctypes.CDLL) -> None:
        i64 = ctypes.c_int64
        f64 = ctypes.c_double
        p_i64 = ctypes.POINTER(i64)
        p_f64 = ctypes.POINTER(f64)
        p_u8 = ctypes.POINTER(ctypes.c_uint8)
        p_u16 = ctypes.POINTER(ctypes.c_uint16)
        p_u32 = ctypes.POINTER(ctypes.c_uint32)
        p_void = ctypes.c_void_p
        pp_f64 = ctypes.POINTER(p_f64)

        lib.fold_chunk.restype = i64
        lib.fold_chunk.argtypes = [
            p_u32, p_u32, p_u8, p_i64, p_i64, i64, f64, i64,
            p_i64, p_f64, p_f64, p_f64,
            p_i64, p_f64,
            p_i64, p_f64,
            p_i64, p_f64,
            p_void, p_void,
            p_f64, p_u8, p_u16,
            p_i64,
        ]
        lib.group_sum.restype = i64
        lib.group_sum.argtypes = [
            p_i64, i64, pp_f64, i64,
            p_i64, pp_f64,
            p_void, p_void,
            p_f64, p_u8, p_u16,
        ]
        lib.merge_sorted.restype = i64
        lib.merge_sorted.argtypes = [
            p_i64, pp_f64, i64,
            p_i64, pp_f64, i64,
            i64, p_i64, pp_f64,
        ]
        lib.merge_k.restype = i64
        lib.merge_k.argtypes = [
            ctypes.POINTER(p_i64), pp_f64, p_i64, i64, i64,
            p_i64, pp_f64,
        ]
        lib.member_mask.restype = None
        lib.member_mask.argtypes = [p_i64, i64, p_i64, i64, p_u8]
        lib.interval_mask.restype = None
        lib.interval_mask.argtypes = [p_i64, p_i64, i64, p_i64, i64, p_u8]
        self._lib = lib
        self._acc = np.empty(3 * _DIRECT_SLOTS, dtype=np.float64)
        self._seen = np.zeros(_DIRECT_SLOTS, dtype=np.uint8)
        self._touched = np.empty(_DIRECT_SLOTS, dtype=np.uint16)
        self._scratch = np.empty(0, dtype=np.uint8)
        self._out_keys: list[np.ndarray] = []
        self._out_cols: list[np.ndarray] = []

    def _buffers(self, rows: int) -> tuple[np.ndarray, np.ndarray]:
        # 32 bytes covers the widest record (group_sum's key + 3 f64).
        need = 32 * max(rows, 1)
        if len(self._scratch) < 2 * need:
            self._scratch = np.empty(2 * need, dtype=np.uint8)
        return self._scratch[:need], self._scratch[need:2 * need]

    def _outputs(self, rows: int, nkeys: int, ncols: int):
        """Pooled full-length output staging (results are copied out)."""
        while len(self._out_keys) < nkeys:
            self._out_keys.append(np.empty(0, dtype=np.int64))
        while len(self._out_cols) < ncols:
            self._out_cols.append(np.empty(0, dtype=np.float64))
        for i in range(nkeys):
            if len(self._out_keys[i]) < rows:
                self._out_keys[i] = np.empty(rows, dtype=np.int64)
        for i in range(ncols):
            if len(self._out_cols[i]) < rows:
                self._out_cols[i] = np.empty(rows, dtype=np.float64)
        return self._out_keys[:nkeys], self._out_cols[:ncols]

    @staticmethod
    def _ptr(array: np.ndarray, ctype):
        return array.ctypes.data_as(ctypes.POINTER(ctype))

    @staticmethod
    def _col_ptrs(columns):
        p_f64 = ctypes.POINTER(ctypes.c_double)
        ptrs = (p_f64 * len(columns))()
        for i, col in enumerate(columns):
            ptrs[i] = col.ctypes.data_as(p_f64)
        return ptrs

    def fold_chunk(self, src_ip, dst_ip, proto, packets, bytes_, factor,
                   block_shift=8):
        n = len(dst_ip)
        bufa, bufb = self._buffers(n)
        keys, cols = self._outputs(n, 4, 6)
        dst_keys, vol_keys, src_keys, raw_keys = keys
        dst_cols = cols[:3]
        vol_pk, src_pk, raw_pk = cols[3:6]
        counts = np.zeros(4, dtype=np.int64)
        i64, u8, u16, u32, f64 = (
            ctypes.c_int64, ctypes.c_uint8, ctypes.c_uint16,
            ctypes.c_uint32, ctypes.c_double,
        )
        status = self._lib.fold_chunk(
            self._ptr(src_ip, u32), self._ptr(dst_ip, u32),
            self._ptr(proto, u8), self._ptr(packets, i64),
            self._ptr(bytes_, i64), n, factor, block_shift,
            self._ptr(dst_keys, i64), self._ptr(dst_cols[0], f64),
            self._ptr(dst_cols[1], f64), self._ptr(dst_cols[2], f64),
            self._ptr(vol_keys, i64), self._ptr(vol_pk, f64),
            self._ptr(src_keys, i64), self._ptr(src_pk, f64),
            self._ptr(raw_keys, i64), self._ptr(raw_pk, f64),
            bufa.ctypes.data_as(ctypes.c_void_p),
            bufb.ctypes.data_as(ctypes.c_void_p),
            self._ptr(self._acc, f64), self._ptr(self._seen, u8),
            self._ptr(self._touched, u16), self._ptr(counts, i64),
        )
        if status != 0:
            return None
        ndst, nvol, nsrc, nraw = (int(c) for c in counts)
        return (
            _part(dst_keys[:ndst].copy(), *(c[:ndst].copy() for c in dst_cols)),
            _part(vol_keys[:nvol].copy(), vol_pk[:nvol].copy()),
            _part(src_keys[:nsrc].copy(), src_pk[:nsrc].copy()),
            _part(raw_keys[:nraw].copy(), raw_pk[:nraw].copy()),
        )

    def group_sum(self, keys, values):
        n = len(keys)
        ncols = len(values)
        if ncols > 3:
            return None
        bufa, bufb = self._buffers(n)
        (out_keys,), out_cols = self._outputs(n, 1, ncols)
        i64, u8, u16, f64 = (
            ctypes.c_int64, ctypes.c_uint8, ctypes.c_uint16, ctypes.c_double,
        )
        count = self._lib.group_sum(
            self._ptr(keys, i64), n, self._col_ptrs(values), ncols,
            self._ptr(out_keys, i64), self._col_ptrs(out_cols),
            bufa.ctypes.data_as(ctypes.c_void_p),
            bufb.ctypes.data_as(ctypes.c_void_p),
            self._ptr(self._acc, f64), self._ptr(self._seen, u8),
            self._ptr(self._touched, u16),
        )
        if count < 0:
            return None
        count = int(count)
        return out_keys[:count].copy(), tuple(
            c[:count].copy() for c in out_cols
        )

    def merge_sorted(self, ka, va, kb, vb):
        ncols = len(va)
        cap = len(ka) + len(kb)
        # Pooled staging is safe here: the returned arrays are copies,
        # so chained merges never alias their own input.
        (out_keys,), out_cols = self._outputs(cap, 1, ncols)
        i64 = ctypes.c_int64
        count = int(
            self._lib.merge_sorted(
                self._ptr(ka, i64), self._col_ptrs(va), len(ka),
                self._ptr(kb, i64), self._col_ptrs(vb), len(kb),
                ncols, self._ptr(out_keys, i64), self._col_ptrs(out_cols),
            )
        )
        return out_keys[:count].copy(), tuple(
            c[:count].copy() for c in out_cols
        )

    def merge_k(self, parts):
        nparts = len(parts)
        if nparts > 64:
            return None
        ncols = len(parts[0][1])
        cap = sum(len(part[0]) for part in parts)
        (out_keys,), out_cols = self._outputs(cap, 1, ncols)
        i64 = ctypes.c_int64
        p_i64 = ctypes.POINTER(i64)
        p_f64 = ctypes.POINTER(ctypes.c_double)
        key_ptrs = (p_i64 * nparts)()
        col_ptrs = (p_f64 * (nparts * ncols))()
        lens = (i64 * nparts)()
        for p, (keys, columns) in enumerate(parts):
            key_ptrs[p] = keys.ctypes.data_as(p_i64)
            lens[p] = len(keys)
            for c, column in enumerate(columns):
                col_ptrs[p * ncols + c] = column.ctypes.data_as(p_f64)
        count = int(
            self._lib.merge_k(
                key_ptrs, col_ptrs, lens, nparts, ncols,
                self._ptr(out_keys, i64), self._col_ptrs(out_cols),
            )
        )
        if count < 0:  # pragma: no cover - capacity guarded above
            return None
        return out_keys[:count].copy(), tuple(
            c[:count].copy() for c in out_cols
        )

    def member_mask(self, values, table):
        out = np.empty(len(values), dtype=np.uint8)
        i64, u8 = ctypes.c_int64, ctypes.c_uint8
        self._lib.member_mask(
            self._ptr(values, i64), len(values),
            self._ptr(table, i64), len(table), self._ptr(out, u8),
        )
        return out.view(np.bool_)

    def interval_mask(self, starts, ends, blocks):
        out = np.empty(len(blocks), dtype=np.uint8)
        i64, u8 = ctypes.c_int64, ctypes.c_uint8
        self._lib.interval_mask(
            self._ptr(starts, i64), self._ptr(ends, i64), len(starts),
            self._ptr(blocks, i64), len(blocks), self._ptr(out, u8),
        )
        return out.view(np.bool_)


class _ImplOps:
    """The Numba provider: jitted :mod:`repro.core._kernels_impl`."""

    provider = "numba"

    def __init__(self, jit) -> None:
        from repro.core import _kernels_impl as impl

        self._fold3 = jit(impl.fold3_impl)
        self._fold1 = jit(impl.fold1_impl)
        self._group = jit(impl.group_sum_impl)
        self._merge = jit(impl.merge_sorted_impl)
        self._merge_k = jit(impl.merge_k_impl)
        self._member = jit(impl.member_mask_impl)
        self._interval = jit(impl.interval_mask_impl)
        self._acc = np.empty(3 * _DIRECT_SLOTS, dtype=np.float64)
        self._seen = np.zeros(_DIRECT_SLOTS, dtype=np.uint8)
        self._touched = np.empty(_DIRECT_SLOTS, dtype=np.uint16)

    def fold_chunk(self, src_ip, dst_ip, proto, packets, bytes_, factor,
                   block_shift=8):
        n = len(dst_ip)
        key_a = np.empty(n, dtype=np.int64)
        key_b = np.empty(n, dtype=np.int64)
        pk_a = np.empty(n, dtype=np.int32)
        pk_b = np.empty(n, dtype=np.int32)
        by_a = np.empty(n, dtype=np.int32)
        by_b = np.empty(n, dtype=np.int32)
        counts = np.zeros(2, dtype=np.int64)

        dst_keys = np.empty(n, dtype=np.int64)
        dst_cols = [np.empty(n, dtype=np.float64) for _ in range(3)]
        vol_keys = np.empty(n, dtype=np.int64)
        vol_pk = np.empty(n, dtype=np.float64)
        status = self._fold3(
            dst_ip, proto, packets, bytes_, float(factor), block_shift,
            dst_keys, dst_cols[0], dst_cols[1], dst_cols[2],
            vol_keys, vol_pk,
            key_a, pk_a, by_a, key_b, pk_b, by_b,
            counts,
        )
        if status != 0:
            return None
        ndst, nvol = int(counts[0]), int(counts[1])

        src_keys = np.empty(n, dtype=np.int64)
        src_pk = np.empty(n, dtype=np.float64)
        raw_keys = np.empty(n, dtype=np.int64)
        raw_pk = np.empty(n, dtype=np.float64)
        status = self._fold1(
            src_ip, packets, block_shift,
            src_keys, src_pk, raw_keys, raw_pk,
            key_a, pk_a, key_b, pk_b,
            counts,
        )
        if status != 0:
            return None
        nsrc, nraw = int(counts[0]), int(counts[1])
        return (
            _part(dst_keys[:ndst].copy(), *(c[:ndst].copy() for c in dst_cols)),
            _part(vol_keys[:nvol].copy(), vol_pk[:nvol].copy()),
            _part(src_keys[:nsrc].copy(), src_pk[:nsrc].copy()),
            _part(raw_keys[:nraw].copy(), raw_pk[:nraw].copy()),
        )

    def group_sum(self, keys, values):
        n = len(keys)
        if len(values) > 3:
            return None
        cols = np.ascontiguousarray(np.stack(values)) if values else (
            np.empty((0, n), dtype=np.float64)
        )
        out_keys = np.empty(n, dtype=np.int64)
        out_cols = np.empty((len(values), n), dtype=np.float64)
        key_a = np.empty(n, dtype=np.int64)
        key_b = np.empty(n, dtype=np.int64)
        off_a = np.empty(n, dtype=np.int64)
        off_b = np.empty(n, dtype=np.int64)
        count = self._group(
            keys, cols, out_keys, out_cols,
            key_a, off_a, key_b, off_b,
            self._acc, self._seen, self._touched,
        )
        if count < 0:
            return None
        count = int(count)
        return out_keys[:count].copy(), tuple(
            out_cols[c, :count].copy() for c in range(len(values))
        )

    def merge_sorted(self, ka, va, kb, vb):
        ncols = len(va)
        cap = len(ka) + len(kb)
        ko = np.empty(cap, dtype=np.int64)
        vo = np.empty((ncols, cap), dtype=np.float64)
        count = int(
            self._merge(
                ka, np.ascontiguousarray(np.stack(va)),
                kb, np.ascontiguousarray(np.stack(vb)),
                ko, vo,
            )
        )
        return ko[:count].copy(), tuple(
            vo[c, :count].copy() for c in range(ncols)
        )

    def merge_k(self, parts):
        ncols = len(parts[0][1])
        keys_cat = np.concatenate([part[0] for part in parts])
        total = len(keys_cat)
        cols_cat = np.empty((ncols, total), dtype=np.float64)
        part_ends = np.empty(len(parts), dtype=np.int64)
        position = 0
        for p, (keys, columns) in enumerate(parts):
            for c in range(ncols):
                cols_cat[c, position:position + len(keys)] = columns[c]
            position += len(keys)
            part_ends[p] = position
        out_keys = np.empty(total, dtype=np.int64)
        out_cols = np.empty((ncols, total), dtype=np.float64)
        count = int(
            self._merge_k(keys_cat, cols_cat, part_ends, out_keys, out_cols)
        )
        return out_keys[:count].copy(), tuple(
            out_cols[c, :count].copy() for c in range(ncols)
        )

    def member_mask(self, values, table):
        out = np.empty(len(values), dtype=np.uint8)
        self._member(values, table, out)
        return out.view(np.bool_)

    def interval_mask(self, starts, ends, blocks):
        out = np.empty(len(blocks), dtype=np.uint8)
        self._interval(starts, ends, blocks, out)
        return out.view(np.bool_)


def _load_numba_ops() -> tuple[Any | None, str | None]:
    try:
        import numba
    except ImportError:
        return None, "numba not installed"
    try:
        jit = numba.njit(cache=False, nogil=True)
        return _ImplOps(jit), None
    except Exception as error:  # pragma: no cover - defensive
        return None, f"numba unusable: {error}"


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "repro" / "kernels"


def _load_cc_ops() -> tuple[Any | None, str | None]:
    source = Path(__file__).with_name("_kernels.c")
    if not source.exists():  # pragma: no cover - packaging error
        return None, "_kernels.c not packaged"
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None, "no C compiler on PATH"
    text = source.read_bytes()
    digest = hashlib.sha256(text).hexdigest()[:16]
    shared = _cache_dir() / f"kernels-{digest}.so"
    if not shared.exists():
        try:
            shared.parent.mkdir(parents=True, exist_ok=True)
            with tempfile.NamedTemporaryFile(
                dir=shared.parent, suffix=".so", delete=False
            ) as handle:
                temp = handle.name
            result = subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", temp, str(source)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                os.unlink(temp)
                detail = result.stderr.decode(errors="replace").strip()
                return None, f"cc failed: {detail.splitlines()[-1] if detail else '?'}"
            os.replace(temp, shared)
        except Exception as error:
            return None, f"cc build failed: {error}"
    try:
        return _CcOps(ctypes.CDLL(str(shared))), None
    except OSError as error:  # pragma: no cover - corrupt cache
        return None, f"cannot load {shared.name}: {error}"


class NativeKernel(NumpyKernel):
    """Compiled hot loops; every operation falls back to the reference.

    ``ops`` is a provider object (Numba or cc); ``None`` means neither
    provider is available and the backend *is* the reference — the
    silent-fallback contract (``fallback_reason`` says why, and the
    engine surfaces it as a ``kernel`` trace event).
    """

    name = "native"

    def __init__(self, ops: Any | None, fallback_reason: str | None = None):
        self._ops = ops
        self.provider = ops.provider if ops is not None else "numpy"
        self.fallback_reason = fallback_reason

    def fold_chunk(self, src_ip, dst_ip, proto, packets, bytes_, factor,
                   block_shift=8):
        ops = self._ops
        # Native folds are compiled for the uint32 IPv4 key layout; any
        # other family (uint64 IPv6 keys) silently takes the reference
        # path — same dtype-gate contract as a missing provider.
        if (
            ops is not None
            and src_ip.dtype == np.uint32
            and dst_ip.dtype == np.uint32
            and proto.dtype == np.uint8
            and packets.dtype == np.int64
            and bytes_.dtype == np.int64
        ):
            result = ops.fold_chunk(
                np.ascontiguousarray(src_ip),
                np.ascontiguousarray(dst_ip),
                np.ascontiguousarray(proto),
                np.ascontiguousarray(packets),
                np.ascontiguousarray(bytes_),
                float(factor),
                int(block_shift),
            )
            if result is not None:
                return result
        return super().fold_chunk(
            src_ip, dst_ip, proto, packets, bytes_, factor, block_shift
        )

    def group_sum(self, keys, values):
        ops = self._ops
        if ops is not None and len(keys):
            keys = np.ascontiguousarray(keys, dtype=np.int64)
            columns = tuple(
                np.ascontiguousarray(v, dtype=np.float64) for v in values
            )
            result = ops.group_sum(keys, columns)
            if result is not None:
                return result
        return super().group_sum(keys, values)

    def merge_sorted_parts(self, parts):
        ops = self._ops
        if ops is None:
            return super().merge_sorted_parts(parts)
        normalized = [
            (
                np.ascontiguousarray(keys, dtype=np.int64),
                tuple(
                    np.ascontiguousarray(c, dtype=np.float64)
                    for c in columns
                ),
            )
            for keys, columns in parts
        ]
        if len(normalized) == 1:
            return normalized[0]
        if len(normalized) == 2:
            (ka, va), (kb, vb) = normalized
            return ops.merge_sorted(ka, va, kb, vb)
        result = ops.merge_k(normalized)
        if result is not None:
            return result
        # Degenerate part count: chain pairwise, left to right — the
        # same per-key accumulation order, just more passes.
        keys, columns = normalized[0]
        for next_keys, next_columns in normalized[1:]:
            keys, columns = ops.merge_sorted(
                keys, columns, next_keys, next_columns
            )
        return keys, columns

    def sorted_member_mask(self, values, table):
        ops = self._ops
        if ops is not None and len(table) and len(values):
            values = np.asarray(values)
            if values.dtype == np.int64 and table.dtype == np.int64:
                return ops.member_mask(
                    np.ascontiguousarray(values), np.ascontiguousarray(table)
                )
        return super().sorted_member_mask(values, table)

    def interval_covered_mask(self, starts, ends, blocks):
        ops = self._ops
        if ops is not None and len(starts):
            blocks = np.asarray(blocks, dtype=np.int64)
            if starts.dtype == np.int64 and ends.dtype == np.int64:
                return ops.interval_mask(
                    np.ascontiguousarray(starts),
                    np.ascontiguousarray(ends),
                    np.ascontiguousarray(blocks),
                )
        return super().interval_covered_mask(starts, ends, blocks)


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_CACHE: dict[str, Any] = {}


def invalidate_cache() -> None:
    """Forget resolved backends (tests; env-var changes)."""
    _CACHE.clear()


def _native_kernel() -> NativeKernel:
    if "native" not in _CACHE:
        if os.environ.get(DISABLE_NATIVE_ENV):
            _CACHE["native"] = NativeKernel(
                None, f"disabled via {DISABLE_NATIVE_ENV}"
            )
        else:
            ops, numba_reason = _load_numba_ops()
            if ops is None:
                ops, cc_reason = _load_cc_ops()
                if ops is None:
                    _CACHE["native"] = NativeKernel(
                        None, f"{numba_reason}; {cc_reason}"
                    )
                else:
                    _CACHE["native"] = NativeKernel(ops)
            else:
                _CACHE["native"] = NativeKernel(ops)
    return _CACHE["native"]


def get_kernel(name: str | None) -> NumpyKernel:
    """The backend instance for a resolved knob value.

    ``numpy`` and ``native`` return the named backend (``native``
    degrades to reference semantics when no provider is available);
    ``auto``/``None`` resolve via :func:`resolve_kernel_name` first.
    """
    name = resolve_kernel_name(name)
    if name == "numpy":
        if "numpy" not in _CACHE:
            _CACHE["numpy"] = NumpyKernel()
        return _CACHE["numpy"]
    return _native_kernel()


def resolve_kernel_name(name: str | None) -> str:
    """Resolve the public knob value to a concrete backend name.

    ``auto`` (and ``None``) pick ``native`` when a provider is
    actually available — never the degraded fallback — so ``auto``
    on a machine without Numba or a C compiler plans ``numpy``.
    """
    if name is None:
        name = "auto"
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {', '.join(KERNEL_CHOICES)}; got {name!r}"
        )
    if name == "auto":
        return "native" if native_provider() is not None else "numpy"
    return name


def native_provider() -> str | None:
    """The native backend's provider name, or None when degraded."""
    kernel = _native_kernel()
    return kernel.provider if kernel.fallback_reason is None else None
