"""Federated meta-telescopes (paper Section 9).

The paper sketches two cooperation mechanisms between operators:

* **federated detection** — trusted parties share their inferred
  prefix lists and combine them "to detect meta-telescope prefixes
  with higher accuracy collectively";
* **opt-in marking** — a standardised, *private* tag (a BGP community
  or an RPKI extension known only to the involved parties) with which
  an operator marks its own announced-but-unused space, giving the
  federation ground truth for those prefixes without revealing the
  tagging to scanners.

Both are implemented here.  Votes make the federation robust to one
member's spoofing-polluted or sampling-starved view; the marking
registry short-circuits inference for space whose owners opted in.

Because members are other operators' infrastructure, reports are
sanity-checked before they vote: a member whose dark list is not
(essentially) a subset of what it claims to have observed is excluded,
an implausibly oversized dark list is down-weighted, and a ``min_quorum``
of credible members must remain or the combination refuses to produce
a list at all (:class:`QuorumError`).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.accum import PrefixAccumulator
from repro.core.engine import RunContext, resolve_execution_knobs
from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.core.parallel import tree_merge


@dataclass(frozen=True, slots=True)
class OperatorReport:
    """One federation member's contribution."""

    operator: str
    dark_blocks: np.ndarray
    #: Blocks the operator *observed* (its vote is meaningful only for
    #: these; an unobserved block is an abstention, not a "no").
    observed_blocks: np.ndarray

    @classmethod
    def from_result(
        cls, operator: str, result: MetaTelescopeResult, observed: np.ndarray
    ) -> "OperatorReport":
        """Build a report from a local inference run."""
        return cls(
            operator=operator,
            dark_blocks=np.unique(np.asarray(result.prefixes, dtype=np.int64)),
            observed_blocks=np.unique(np.asarray(observed, dtype=np.int64)),
        )

    @classmethod
    def from_accumulator(
        cls,
        operator: str,
        accumulator: PrefixAccumulator,
        telescope: MetaTelescope,
        use_spoofing_tolerance: bool = False,
    ) -> "OperatorReport":
        """Build a report by classifying streamed partial aggregates.

        The member never has to keep (or share) raw flows: the mergeable
        accumulator it built chunk by chunk is enough to both infer the
        dark list and state which blocks it actually observed.
        """
        result = telescope.infer_accumulated(
            accumulator, use_spoofing_tolerance=use_spoofing_tolerance
        )
        return cls.from_result(operator, result, accumulator.observed_blocks())


@dataclass
class MarkingRegistry:
    """The private opt-in tagging of announced-but-unused space.

    Only federation members can resolve the tags; scanners cannot (the
    whole point of keeping the encoding private — tagged prefixes must
    not end up on blacklists).
    """

    _marked: dict[int, str] = field(default_factory=dict)

    def mark(self, blocks: np.ndarray, owner: str) -> None:
        """An operator tags its own unused /24 blocks."""
        for block in np.asarray(blocks, dtype=np.int64):
            self._marked[int(block)] = owner

    def unmark(self, blocks: np.ndarray) -> None:
        """Remove tags (space was put into use)."""
        for block in np.asarray(blocks, dtype=np.int64):
            self._marked.pop(int(block), None)

    def marked_blocks(self) -> np.ndarray:
        """All tagged blocks, sorted."""
        return np.array(sorted(self._marked), dtype=np.int64)

    def owner_of(self, block: int) -> str | None:
        """The operator that tagged ``block``, if any."""
        return self._marked.get(int(block))

    def __len__(self) -> int:
        return len(self._marked)


@dataclass(frozen=True, slots=True)
class ReportValidation:
    """Sanity verdict for one member's report."""

    operator: str
    #: Share of the dark list never claimed as observed (impossible
    #: votes — an honest member can only call observed space dark).
    foreign_dark_share: float
    #: Dark-list size relative to the median member's (spoofing
    #: pollution inflates a single member's list far beyond its peers).
    size_ratio: float
    #: 1.0 full vote, 0.5 down-weighted, 0.0 excluded.
    weight: float
    reasons: tuple[str, ...] = ()

    def excluded(self) -> bool:
        """Whether the member's votes were discarded entirely."""
        return self.weight == 0.0


class QuorumError(ValueError):
    """Too few credible members remained to federate."""


def _coerce_partial(
    operator: str, partial, kernel: str | None = None
) -> PrefixAccumulator:
    """Accept an accumulator or its ``to_state()`` wire form.

    ``kernel`` names the backend decoded wire states are rebuilt on —
    an accumulator sent as an object keeps whatever backend its member
    built it with (both classify identically).
    """
    if isinstance(partial, PrefixAccumulator):
        return partial
    if isinstance(partial, Mapping):
        try:
            return PrefixAccumulator.from_state(partial, kernel=kernel)
        except (KeyError, ValueError) as error:
            raise ValueError(
                f"member {operator!r} sent a malformed wire state: {error}"
            ) from error
    raise TypeError(
        f"member {operator!r} sent a {type(partial).__name__}; expected a "
        "PrefixAccumulator or its to_state() mapping"
    )


#: Work inherited by forked member-classification workers.
_FEDERATION_WORK: tuple[
    dict[str, list[PrefixAccumulator]], MetaTelescope, bool
] | None = None


def _classify_member(operator: str) -> tuple[OperatorReport, float]:
    members, coordinator, use_spoofing_tolerance = _FEDERATION_WORK
    started = time.perf_counter()
    merged = tree_merge(members[operator], copy=True)
    report = OperatorReport.from_accumulator(
        operator,
        merged,
        coordinator,
        use_spoofing_tolerance=use_spoofing_tolerance,
    )
    return report, time.perf_counter() - started


def _classify_members(
    members: dict[str, list[PrefixAccumulator]],
    coordinator: MetaTelescope,
    use_spoofing_tolerance: bool,
    workers: int | None,
    context: RunContext | None = None,
) -> list[OperatorReport]:
    """Merge + classify each member's partials, optionally in parallel.

    Worker resolution goes through the engine's
    :func:`~repro.core.engine.resolve_execution_knobs` like every other
    frontend (``0`` = one per CPU).  With more than one resolved worker
    and a ``fork``-capable platform, members are classified across a
    process pool; the coordinator telescope and the decoded partials
    are inherited copy-on-write, and only the small report arrays cross
    the pipe.  Reports are identical to the serial path —
    classification is a pure function of each member's merged
    aggregates.  With a ``context``, one ``member`` event per operator
    lands on the spine.
    """
    global _FEDERATION_WORK
    workers = resolve_execution_knobs(workers=workers).workers
    operators = list(members)
    use_pool = (
        workers > 1
        and len(operators) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    _FEDERATION_WORK = (members, coordinator, use_spoofing_tolerance)
    try:
        if use_pool:
            mp = multiprocessing.get_context("fork")
            with mp.Pool(processes=min(workers, len(operators))) as pool:
                outcomes = pool.map(_classify_member, operators)
        else:
            outcomes = [_classify_member(operator) for operator in operators]
    finally:
        _FEDERATION_WORK = None
    if context is not None:
        for report, seconds in outcomes:
            context.emit(
                "member",
                report.operator,
                seconds,
                rows_out=len(report.dark_blocks),
                meta={"observed": len(report.observed_blocks)},
            )
    return [report for report, _ in outcomes]


@dataclass(frozen=True)
class FederatedResult:
    """Outcome of a federated combination."""

    prefixes: np.ndarray
    #: Of which: confirmed by the vote among observers.
    voted_blocks: np.ndarray
    #: Of which: contributed by the opt-in marking registry.
    marked_blocks: np.ndarray
    votes_for: dict[int, int] = field(default_factory=dict)
    validations: tuple[ReportValidation, ...] = ()

    def num_prefixes(self) -> int:
        """Size of the federated meta-telescope."""
        return len(self.prefixes)

    def excluded_members(self) -> tuple[str, ...]:
        """Operators whose reports failed the sanity checks."""
        return tuple(v.operator for v in self.validations if v.excluded())

    def to_snapshot(self, day: int, provenance=None):
        """Freeze the federated list into a servable snapshot.

        Registry-marked blocks carry confidence 1.0 — their owners
        *declared* them unused, which is ground truth, not inference;
        voted blocks keep the builder's single-day score.
        """
        import dataclasses

        from repro.core.snapshot import build_snapshot

        record = {
            "engine": "federated",
            "members": [v.operator for v in self.validations],
            "excluded": list(self.excluded_members()),
        }
        record.update(provenance or {})
        snapshot = build_snapshot(day=day, dark=self.prefixes, provenance=record)
        if len(self.marked_blocks):
            confidence = snapshot.confidence.copy()
            confidence[np.isin(snapshot.blocks, self.marked_blocks)] = 1.0
            snapshot = dataclasses.replace(snapshot, confidence=confidence)
        return snapshot


def validate_reports(
    reports: list[OperatorReport],
    max_foreign_dark_share: float = 0.1,
    max_size_ratio: float = 20.0,
) -> list[ReportValidation]:
    """Sanity-check member reports before they may vote.

    Two invariants are checked: *dark ⊆ observed* (a member can only
    judge space it saw traffic for; a report violating this beyond
    ``max_foreign_dark_share`` is fabricated or corrupted and is
    excluded) and *plausible size* (a dark list more than
    ``max_size_ratio`` times the median member's suggests a
    spoofing-polluted view and is down-weighted, not trusted fully).
    """
    sizes = np.array([len(r.dark_blocks) for r in reports], dtype=np.float64)
    median_size = float(np.median(sizes)) if len(sizes) else 0.0
    validations = []
    for report in reports:
        reasons: list[str] = []
        weight = 1.0
        dark_size = len(report.dark_blocks)
        foreign = (
            len(np.setdiff1d(report.dark_blocks, report.observed_blocks))
            / dark_size
            if dark_size
            else 0.0
        )
        if foreign > max_foreign_dark_share:
            weight = 0.0
            reasons.append(
                f"{foreign:.0%} of dark blocks were never observed"
            )
        size_ratio = dark_size / max(median_size, 1.0)
        if weight > 0.0 and size_ratio > max_size_ratio:
            weight = 0.5
            reasons.append(
                f"dark list {size_ratio:.0f}x the median member's"
            )
        validations.append(
            ReportValidation(
                operator=report.operator,
                foreign_dark_share=float(foreign),
                size_ratio=float(size_ratio),
                weight=weight,
                reasons=tuple(reasons),
            )
        )
    return validations


def federate(
    reports: list[OperatorReport],
    registry: MarkingRegistry | None = None,
    min_vote_share: float = 0.5,
    *,
    validate: bool = True,
    max_foreign_dark_share: float = 0.1,
    max_size_ratio: float = 20.0,
    min_quorum: int = 1,
    partials: Mapping[str, Sequence["PrefixAccumulator | Mapping"]] | None = None,
    coordinator: MetaTelescope | None = None,
    use_spoofing_tolerance: bool = False,
    workers: int | None = None,
    context: RunContext | None = None,
    kernel: str | None = None,
) -> FederatedResult:
    """Combine member reports (and the marking registry) into one list.

    A block joins the federated meta-telescope when at least
    ``min_vote_share`` of the (weighted) members that *observed* it
    inferred it dark, or when its owner tagged it in the registry.
    Abstentions (members that never observed the block) do not count
    against it.

    With ``validate`` (the default) each report is sanity-checked
    first — see :func:`validate_reports` — and failing members vote
    with reduced or zero weight.  If fewer than ``min_quorum`` credible
    members remain, :class:`QuorumError` is raised rather than serving
    a list nobody stands behind.

    ``partials`` lets members contribute *partial accumulators* (e.g.
    one per day or per ingestion node) instead of finished reports: for
    each ``operator -> accumulators`` entry the partials are tree-merged
    and classified on the ``coordinator`` telescope, and the resulting
    report votes alongside the pre-built ``reports`` (same validation
    rules).  An operator may appear in either or both forms.  Each
    partial may be a :class:`PrefixAccumulator` or its compact columnar
    wire form (:meth:`~PrefixAccumulator.to_state`) — what a remote
    member would actually put on the wire.  ``workers`` > 1 classifies
    members across a process pool (same reports, pure throughput),
    ``kernel`` picks the backend decoded wire states are folded on
    (bit-identical reports either way), and a ``context`` records one
    ``member`` event per classified operator on the observability
    spine.
    """
    if partials:
        if coordinator is None:
            raise ValueError(
                "partial accumulators require a coordinator telescope"
            )
        reports = list(reports)
        members: dict[str, list[PrefixAccumulator]] = {}
        for operator, accumulators in partials.items():
            decoded = [
                _coerce_partial(operator, partial, kernel=kernel)
                for partial in accumulators
            ]
            if not decoded:
                raise ValueError(f"member {operator!r} sent no partials")
            members[operator] = decoded
        reports.extend(
            _classify_members(
                members, coordinator, use_spoofing_tolerance, workers,
                context=context,
            )
        )
    if not reports:
        raise ValueError("a federation needs at least one member")
    if not 0.0 < min_vote_share <= 1.0:
        raise ValueError(f"min_vote_share out of range: {min_vote_share}")
    if min_quorum < 1:
        raise ValueError(f"min_quorum must be >= 1: {min_quorum}")

    if validate:
        validations = validate_reports(
            reports,
            max_foreign_dark_share=max_foreign_dark_share,
            max_size_ratio=max_size_ratio,
        )
    else:
        validations = [
            ReportValidation(
                operator=report.operator,
                foreign_dark_share=0.0,
                size_ratio=1.0,
                weight=1.0,
            )
            for report in reports
        ]
    weights = {v.operator: v.weight for v in validations}
    credible = [r for r in reports if weights[r.operator] > 0.0]
    if len(credible) < min_quorum:
        raise QuorumError(
            f"only {len(credible)} credible member(s) of {len(reports)} "
            f"remain; quorum is {min_quorum}"
        )

    all_candidates = np.unique(
        np.concatenate([report.dark_blocks for report in credible])
    )
    votes_for = np.zeros(len(all_candidates), dtype=np.float64)
    observers = np.zeros(len(all_candidates), dtype=np.float64)
    for report in credible:
        weight = weights[report.operator]
        observers += weight * np.isin(all_candidates, report.observed_blocks)
        votes_for += weight * np.isin(all_candidates, report.dark_blocks)
    # Every vote comes from an observer even if the member's observed
    # set was reported sloppily (within the validation tolerance).
    observers = np.maximum(observers, votes_for)
    share = votes_for / np.maximum(observers, 1e-12)
    voted = all_candidates[share >= min_vote_share]

    marked = (
        registry.marked_blocks() if registry is not None
        else np.empty(0, dtype=np.int64)
    )
    prefixes = np.union1d(voted, marked)
    return FederatedResult(
        prefixes=prefixes,
        voted_blocks=voted,
        marked_blocks=marked,
        votes_for={
            int(block): int(round(count))
            for block, count in zip(all_candidates, votes_for)
        },
        validations=tuple(validations),
    )
