"""Federated meta-telescopes (paper Section 9).

The paper sketches two cooperation mechanisms between operators:

* **federated detection** — trusted parties share their inferred
  prefix lists and combine them "to detect meta-telescope prefixes
  with higher accuracy collectively";
* **opt-in marking** — a standardised, *private* tag (a BGP community
  or an RPKI extension known only to the involved parties) with which
  an operator marks its own announced-but-unused space, giving the
  federation ground truth for those prefixes without revealing the
  tagging to scanners.

Both are implemented here.  Votes make the federation robust to one
member's spoofing-polluted or sampling-starved view; the marking
registry short-circuits inference for space whose owners opted in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metatelescope import MetaTelescopeResult


@dataclass(frozen=True, slots=True)
class OperatorReport:
    """One federation member's contribution."""

    operator: str
    dark_blocks: np.ndarray
    #: Blocks the operator *observed* (its vote is meaningful only for
    #: these; an unobserved block is an abstention, not a "no").
    observed_blocks: np.ndarray

    @classmethod
    def from_result(
        cls, operator: str, result: MetaTelescopeResult, observed: np.ndarray
    ) -> "OperatorReport":
        """Build a report from a local inference run."""
        return cls(
            operator=operator,
            dark_blocks=np.unique(np.asarray(result.prefixes, dtype=np.int64)),
            observed_blocks=np.unique(np.asarray(observed, dtype=np.int64)),
        )


@dataclass
class MarkingRegistry:
    """The private opt-in tagging of announced-but-unused space.

    Only federation members can resolve the tags; scanners cannot (the
    whole point of keeping the encoding private — tagged prefixes must
    not end up on blacklists).
    """

    _marked: dict[int, str] = field(default_factory=dict)

    def mark(self, blocks: np.ndarray, owner: str) -> None:
        """An operator tags its own unused /24 blocks."""
        for block in np.asarray(blocks, dtype=np.int64):
            self._marked[int(block)] = owner

    def unmark(self, blocks: np.ndarray) -> None:
        """Remove tags (space was put into use)."""
        for block in np.asarray(blocks, dtype=np.int64):
            self._marked.pop(int(block), None)

    def marked_blocks(self) -> np.ndarray:
        """All tagged blocks, sorted."""
        return np.array(sorted(self._marked), dtype=np.int64)

    def owner_of(self, block: int) -> str | None:
        """The operator that tagged ``block``, if any."""
        return self._marked.get(int(block))

    def __len__(self) -> int:
        return len(self._marked)


@dataclass(frozen=True)
class FederatedResult:
    """Outcome of a federated combination."""

    prefixes: np.ndarray
    #: Of which: confirmed by the vote among observers.
    voted_blocks: np.ndarray
    #: Of which: contributed by the opt-in marking registry.
    marked_blocks: np.ndarray
    votes_for: dict[int, int] = field(default_factory=dict)

    def num_prefixes(self) -> int:
        """Size of the federated meta-telescope."""
        return len(self.prefixes)


def federate(
    reports: list[OperatorReport],
    registry: MarkingRegistry | None = None,
    min_vote_share: float = 0.5,
) -> FederatedResult:
    """Combine member reports (and the marking registry) into one list.

    A block joins the federated meta-telescope when at least
    ``min_vote_share`` of the members that *observed* it inferred it
    dark, or when its owner tagged it in the registry.  Abstentions
    (members that never observed the block) do not count against it.
    """
    if not reports:
        raise ValueError("a federation needs at least one member")
    if not 0.0 < min_vote_share <= 1.0:
        raise ValueError(f"min_vote_share out of range: {min_vote_share}")

    all_candidates = np.unique(
        np.concatenate([report.dark_blocks for report in reports])
    )
    votes_for = np.zeros(len(all_candidates), dtype=np.int64)
    observers = np.zeros(len(all_candidates), dtype=np.int64)
    for report in reports:
        observers += np.isin(all_candidates, report.observed_blocks)
        votes_for += np.isin(all_candidates, report.dark_blocks)
    # Every vote comes from an observer even if the member's observed
    # set was reported sloppily.
    observers = np.maximum(observers, votes_for)
    share = votes_for / np.maximum(observers, 1)
    voted = all_candidates[share >= min_vote_share]

    marked = (
        registry.marked_blocks() if registry is not None
        else np.empty(0, dtype=np.int64)
    )
    prefixes = np.union1d(voted, marked)
    return FederatedResult(
        prefixes=prefixes,
        voted_blocks=voted,
        marked_blocks=marked,
        votes_for={
            int(block): int(count)
            for block, count in zip(all_candidates, votes_for)
        },
    )
