"""The stage engine: the seven-step funnel as explicit stages.

The paper's Figure-2 funnel is a composition of per-/24 eligibility
filters followed by a per-IP classification.  Each step is a
:class:`Stage` object that reads the finalized accumulator columns
(:class:`repro.core.accum.FinalizedAggregates`) through a shared
:class:`StageContext` and returns a per-block eligibility mask; the
:class:`StageEngine` ANDs the masks in pipeline order, records one
funnel count and one wall-time per stage, and classifies the survivors
into dark / unclean / gray exactly as the batch pipeline always has.

The engine is deliberately pure over *finalized* columns: whether those
columns came from one giant vantage-day table, from a chunk-by-chunk
stream, or from merging federation partials, classification is
bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.net.special import SpecialPurposeRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (accum ← stages)
    from repro.core.accum import FinalizedAggregates


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Tunable thresholds of the inference pipeline.

    Defaults correspond to the paper's choices translated to simulation
    units (the volume threshold scales with the world's traffic
    intensity; 44 bytes is intensity-free).
    """

    avg_size_threshold: float = 44.0
    #: Per-IP survival slack: an address fails only above this mean size
    #: (48 B = SYN with one option; see the pipeline granularity note).
    ip_size_threshold: float = 48.0
    volume_threshold_pkts_day: float = 700.0
    #: Forgiven source packets per /24 (spoofing tolerance).  Either a
    #: per-day number, or a mapping ``vantage -> packets`` covering the
    #: whole inference window at that vantage (the paper computes the
    #: tolerance "for each vantage point and each time frame").
    spoof_tolerance: float | dict[str, float] = 0.0
    #: Sender ASes whose flows are ignored for source sightings
    #: (the BCP 38 / Spoofer-list mitigation of Section 9).
    ignore_sources_from_asns: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class FunnelCounts:
    """Figure-2 funnel: /24 blocks surviving after each step."""

    observed: int
    after_tcp: int
    after_avg_size: int
    after_source_unseen: int
    after_special: int
    after_routed: int
    after_volume: int

    def as_rows(self, block_label: str = "/24 subnets") -> list[tuple[str, int]]:
        """(step name, surviving count) rows, in pipeline order.

        ``block_label`` names the block granularity in the first row
        (``"/24 subnets"`` for IPv4, ``"/48 sites"`` for IPv6).
        """
        return [
            (f"observed {block_label}", self.observed),
            ("TCP", self.after_tcp),
            ("average <= threshold bytes", self.after_avg_size),
            ("never sent a packet", self.after_source_unseen),
            ("private / reserved / multicast", self.after_special),
            ("globally routed", self.after_routed),
            ("asymmetric routing (volume)", self.after_volume),
        ]


@dataclass(frozen=True, slots=True)
class StageTiming:
    """Wall time and survivor count of one stage evaluation."""

    stage: str
    seconds: float
    surviving: int


@dataclass(frozen=True)
class PipelineResult:
    """Classification output plus diagnostics."""

    dark_blocks: np.ndarray
    unclean_blocks: np.ndarray
    gray_blocks: np.ndarray
    funnel: FunnelCounts
    #: Blocks dropped by the volume filter (step 6) among candidates.
    volume_filtered_blocks: np.ndarray
    #: Per-vantage window tolerances that were applied (packets).
    applied_tolerances: dict[str, float] = field(default_factory=dict)
    #: Per-stage wall time of this run (``()`` when not recorded).
    stage_timings: tuple[StageTiming, ...] = ()
    #: Address family the block ids live in.
    family: str = "ipv4"

    def num_dark(self) -> int:
        """Number of inferred meta-telescope prefixes."""
        return len(self.dark_blocks)


class StageContext:
    """Shared, lazily derived per-block state the stages read from.

    The per-IP survival evidence is computed once (on first access) and
    reused by the source-unseen stage and the final classification.
    """

    def __init__(
        self,
        finalized: "FinalizedAggregates",
        config: PipelineConfig,
        routing: RoutingTable,
        special: SpecialPurposeRegistry,
        kernel=None,
    ) -> None:
        from repro.core.kernels import get_kernel

        self.finalized = finalized
        self.config = config
        self.routing = routing
        self.special = special
        # The mask kernel: membership and interval probes run on the
        # same backend as the fold (reference numpy unless told else).
        self.kernel = get_kernel("numpy") if kernel is None else kernel
        ip_blocks = finalized.dst_ips >> finalized.block_shift
        if len(ip_blocks) and np.all(ip_blocks[1:] >= ip_blocks[:-1]):
            # Finalized columns are sorted by construction: the block
            # axis falls out of a boundary scan, no re-sort needed.
            firsts = np.empty(len(ip_blocks), dtype=bool)
            firsts[0] = True
            np.not_equal(ip_blocks[1:], ip_blocks[:-1], out=firsts[1:])
            self.blocks: np.ndarray = ip_blocks[firsts]
            self.position: np.ndarray = np.cumsum(firsts) - 1
        else:
            self.blocks = np.unique(ip_blocks)
            self.position = np.searchsorted(self.blocks, ip_blocks)
        self.num_blocks: int = len(self.blocks)

    # -- per-block reductions ------------------------------------------

    def per_block_any(self, mask: np.ndarray) -> np.ndarray:
        """OR-reduce a per-IP mask onto the block axis."""
        out = np.zeros(self.num_blocks, dtype=bool)
        np.logical_or.at(out, self.position, mask)
        return out

    def per_block_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum-reduce a per-IP column onto the block axis."""
        return np.bincount(
            self.position, weights=values, minlength=self.num_blocks
        )

    # -- shared evidence -----------------------------------------------

    @cached_property
    def blocks_with_real_sources(self) -> np.ndarray:
        """Source /24s whose pooled packets exceed the tolerance."""
        finalized = self.finalized
        return finalized.src_blocks[finalized.src_block_excess > 0]

    @cached_property
    def _ip_survival(self) -> tuple[np.ndarray, np.ndarray]:
        """(survives, fails) per destination IP.

        An address *survives* when its TCP looks like IBR and it never
        sources; it *fails* when it shows payload-bearing TCP or
        sources traffic.  UDP-only addresses carry no TCP evidence
        either way and stay neutral.
        """
        finalized = self.finalized
        has_tcp = finalized.ip_tcp_pkts_est > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            avg_size = np.where(
                has_tcp,
                finalized.ip_tcp_bytes_est
                / np.maximum(finalized.ip_tcp_pkts_est, 1),
                np.inf,
            )
        ip_size_ok = avg_size <= self.config.ip_size_threshold
        # A block's sources are forgiven entirely when their pooled
        # sampled packets stay within the pooled tolerance.  Both id
        # tables are sorted, so membership is a searchsorted probe.
        ip_is_source = self.kernel.sorted_member_mask(
            finalized.dst_ips, finalized.src_ips
        ) & self.kernel.sorted_member_mask(
            finalized.dst_ips >> finalized.block_shift,
            self.blocks_with_real_sources,
        )
        survives = has_tcp & ip_size_ok & ~ip_is_source
        fails = (has_tcp & ~ip_size_ok) | ip_is_source
        return survives, fails

    @cached_property
    def block_any_survivor(self) -> np.ndarray:
        """Per block: any address individually survives."""
        return self.per_block_any(self._ip_survival[0])

    @cached_property
    def block_any_failed(self) -> np.ndarray:
        """Per block: any address individually fails."""
        return self.per_block_any(self._ip_survival[1])

    @cached_property
    def block_has_source(self) -> np.ndarray:
        """Per block: unforgiven source sightings exist."""
        return self.kernel.sorted_member_mask(
            self.blocks, self.blocks_with_real_sources
        )

    @cached_property
    def block_tcp_pkts(self) -> np.ndarray:
        """Estimated TCP packets per block."""
        return self.per_block_sum(self.finalized.ip_tcp_pkts_est)


class Stage:
    """One eligibility filter of the funnel."""

    #: Short identifier used in timing rows and CLI output.
    name: str = "stage"

    def mask(self, ctx: StageContext) -> np.ndarray:
        """Per-block eligibility under this stage alone."""
        raise NotImplementedError


class TcpStage(Stage):
    """Step 1: the /24 must receive TCP at all."""

    name = "tcp"

    def mask(self, ctx: StageContext) -> np.ndarray:
        return ctx.block_tcp_pkts > 0


class AvgSizeStage(Stage):
    """Step 2: the block's inbound TCP mean size must stay small."""

    name = "avg-size"

    def mask(self, ctx: StageContext) -> np.ndarray:
        block_tcp_bytes = ctx.per_block_sum(ctx.finalized.ip_tcp_bytes_est)
        any_tcp = ctx.block_tcp_pkts > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            block_avg = np.where(
                any_tcp,
                block_tcp_bytes / np.maximum(ctx.block_tcp_pkts, 1),
                np.inf,
            )
        return block_avg <= ctx.config.avg_size_threshold


class SourceUnseenStage(Stage):
    """Step 3: some address must individually survive (never source)."""

    name = "source-unseen"

    def mask(self, ctx: StageContext) -> np.ndarray:
        return ctx.block_any_survivor


class SpecialStage(Stage):
    """Step 4: outside private / multicast / reserved space."""

    name = "special"

    def mask(self, ctx: StageContext) -> np.ndarray:
        return ~ctx.special.special_mask(ctx.blocks)


class RoutedStage(Stage):
    """Step 5: inside a globally announced prefix."""

    name = "routed"

    def mask(self, ctx: StageContext) -> np.ndarray:
        return ctx.routing.routed_mask(ctx.blocks, kernel=ctx.kernel)


class VolumeStage(Stage):
    """Step 6: daily-median volume under the asymmetry threshold."""

    name = "volume"

    def mask(self, ctx: StageContext) -> np.ndarray:
        finalized = ctx.finalized
        volume_est = np.zeros(ctx.num_blocks)
        if len(finalized.vol_blocks):
            vol_pos = np.searchsorted(finalized.vol_blocks, ctx.blocks)
            vol_pos = np.clip(vol_pos, 0, len(finalized.vol_blocks) - 1)
            hit = finalized.vol_blocks[vol_pos] == ctx.blocks
            volume_est[hit] = finalized.vol_median_est[vol_pos[hit]]
        return volume_est <= ctx.config.volume_threshold_pkts_day


#: The paper's funnel, in order.  The engine maps these six stages onto
#: the six post-``observed`` fields of :class:`FunnelCounts`.
DEFAULT_STAGES: tuple[Stage, ...] = (
    TcpStage(),
    AvgSizeStage(),
    SourceUnseenStage(),
    SpecialStage(),
    RoutedStage(),
    VolumeStage(),
)


class StageEngine:
    """Runs the stages over finalized columns and classifies survivors."""

    def __init__(self, stages: tuple[Stage, ...] = DEFAULT_STAGES) -> None:
        if len(stages) != len(DEFAULT_STAGES):
            raise ValueError(
                "the funnel has exactly "
                f"{len(DEFAULT_STAGES)} stages (got {len(stages)})"
            )
        self.stages = stages

    def run(
        self,
        finalized: "FinalizedAggregates",
        routing: RoutingTable,
        special: SpecialPurposeRegistry,
        config: PipelineConfig,
        context=None,
        kernel=None,
    ) -> PipelineResult:
        """Classify finalized columns (``context``: a
        :class:`~repro.core.engine.RunContext`; each stage also lands
        on its observability spine as a ``stage`` event).  ``kernel``
        selects the mask backend (reference numpy when ``None``)."""
        ctx = StageContext(finalized, config, routing, special, kernel)
        surviving = np.ones(ctx.num_blocks, dtype=bool)
        cumulative: list[np.ndarray] = []
        counts: list[int] = []
        timings: list[StageTiming] = []
        rows_in = ctx.num_blocks
        for stage in self.stages:
            started = time.perf_counter()
            surviving = surviving & stage.mask(ctx)
            elapsed = time.perf_counter() - started
            cumulative.append(surviving)
            counts.append(int(surviving.sum()))
            timings.append(StageTiming(stage.name, elapsed, counts[-1]))
            if context is not None:
                context.emit(
                    "stage", stage.name, elapsed,
                    rows_in=rows_in, rows_out=counts[-1],
                )
            rows_in = counts[-1]

        started = time.perf_counter()
        candidates = cumulative[-1]
        dark = candidates & ~ctx.block_has_source & ~ctx.block_any_failed
        gray = candidates & ctx.block_has_source
        unclean = candidates & ~ctx.block_has_source & ctx.block_any_failed
        volume_filtered = cumulative[-2] & ~cumulative[-1]
        classify_seconds = time.perf_counter() - started
        timings.append(
            StageTiming("classify", classify_seconds, int(candidates.sum()))
        )
        if context is not None:
            context.emit(
                "stage", "classify", classify_seconds,
                rows_in=rows_in, rows_out=int(candidates.sum()),
                meta={
                    "dark": int(dark.sum()),
                    "unclean": int(unclean.sum()),
                    "gray": int(gray.sum()),
                },
            )

        funnel = FunnelCounts(ctx.num_blocks, *counts)
        return PipelineResult(
            dark_blocks=ctx.blocks[dark],
            unclean_blocks=ctx.blocks[unclean],
            gray_blocks=ctx.blocks[gray],
            funnel=funnel,
            volume_filtered_blocks=ctx.blocks[volume_filtered],
            applied_tolerances=finalized.applied_tolerances,
            stage_timings=tuple(timings),
            family=finalized.family,
        )
