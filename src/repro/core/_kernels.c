/* Native fold kernels for the meta-telescope accumulator.
 *
 * Compiled on demand by repro.core.kernels (cc -O3 -shared -fPIC) and
 * bound through ctypes; Numba JIT (repro.core._kernels_impl) is the
 * same algorithm expressed in Python.  Identity contract: every kernel
 * accumulates per-key sums in original row order and merges parts
 * left-to-right, reproducing numpy's np.unique + np.bincount float
 * operation order bit for bit (see docs/architecture.md §11).
 *
 * Grouping algorithm (fold3 / fold1): rows become compact records
 * (key offset + 32-bit values, the TCP flag packed into the sign bit
 * of the packet field), fully sorted by key with a stable LSD radix
 * sort in 1-3 passes of <= 13 bits, then reduced by a branchless
 * segmented scan that accumulates each key's float64 sums in original
 * row order and emits unique keys ascending, with the per-/24 regroup
 * as a second branchless scan over the uniques — no hashing, no
 * comparison sort, no random gathers, no data-dependent branches in
 * the hot loops.
 */

#include <stdint.h>
#include <string.h>

#define DIRECT_BITS 13
#define DIRECT_SLOTS (1 << DIRECT_BITS)
#define DIRECT_MASK (DIRECT_SLOTS - 1)
#define RADIX_BITS 11
#define RADIX_SLOTS (1 << RADIX_BITS)
#define MAX_PASS_BITS 13
#define MAX_PASS_SLOTS (1 << MAX_PASS_BITS)

#define PROTO_TCP 6

typedef struct { uint32_t off; int32_t pktcp; int32_t by; } rec3_t;
typedef struct { uint32_t off; int32_t pk; } rec1_t;

/* Width in bits of `range` (0..32).  The operand must be 64-bit: a
 * 32-bit shift by 32 is undefined behaviour (x86 shifts count mod 32),
 * which turns full-range keys into an infinite loop. */
static int bits_of(uint64_t range) {
    int bits = 0;
    while (range >> bits) bits++;
    return bits;
}

/* Split `bits` into 1-3 stable LSD passes of <= MAX_PASS_BITS each. */
static int pass_plan(int bits, int *widths) {
    int npass = bits <= MAX_PASS_BITS ? 1 : (bits <= 2 * MAX_PASS_BITS ? 2 : 3);
    for (int p = 0; p < npass; p++)
        widths[p] = bits / npass + (p < bits % npass);
    return npass;
}

/* Grouped (tcp_pkts, tcp_bytes, total_pkts) float64 sums per dst IP
 * plus the per-/24 regroup of total packets, via full radix sort and a
 * branchless segmented reduce.  Sums accumulate unscaled (exact for
 * the integer counts involved) and are scaled by `factor` once at the
 * end — the same operation order as the numpy reference.  Returns the
 * unique-key count, or -1 when a value overflows the 31-bit record
 * field (caller falls back to the reference path). */
static int64_t fold3(
    const uint32_t *keys, const uint8_t *proto,
    const int64_t *packets, const int64_t *bytes_, int64_t n,
    uint32_t kmin, int bits, double factor, int64_t block_shift,
    int64_t *out_keys, double *out_a, double *out_b, double *out_c,
    int64_t *blk_keys, double *blk_vals, int64_t *nblk_out,
    rec3_t *bufa, rec3_t *bufb)
{
    *nblk_out = 0;
    if (n == 0) return 0;
    int widths[3];
    int npass = pass_plan(bits, widths);

    /* All pass histograms in one read of the keys. */
    int64_t hist[3][MAX_PASS_SLOTS];
    for (int p = 0; p < npass; p++)
        memset(hist[p], 0, sizeof(int64_t) << widths[p]);
    {
        int w0 = widths[0], w1 = widths[1 % npass];
        uint32_t m0 = (1u << w0) - 1, m1 = (1u << w1) - 1;
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = keys[i] - kmin;
            hist[0][u & m0]++;
            if (npass > 1) hist[1][(u >> w0) & m1]++;
            if (npass > 2) hist[2][u >> (w0 + w1)]++;
        }
    }
    for (int p = 0; p < npass; p++) {
        int64_t run = 0;
        for (int64_t b = 0; b < (int64_t)1 << widths[p]; b++) {
            int64_t count = hist[p][b];
            hist[p][b] = run;
            run += count;
        }
    }

    /* Pass 1 scatters records straight from the input columns; the
     * TCP flag rides in the sign bit of the packet field. */
    {
        uint32_t mask = (1u << widths[0]) - 1;
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = keys[i] - kmin;
            rec3_t rec;
            rec.off = u;
            rec.pktcp = (int32_t)packets[i]
                | (proto[i] == PROTO_TCP ? INT32_MIN : 0);
            rec.by = (int32_t)bytes_[i];
            bufa[hist[0][u & mask]++] = rec;
        }
    }
    rec3_t *cur = bufa, *alt = bufb;
    int shift = widths[0];
    for (int p = 1; p < npass; p++) {
        uint32_t mask = (1u << widths[p]) - 1;
        for (int64_t i = 0; i < n; i++)
            alt[hist[p][(cur[i].off >> shift) & mask]++] = cur[i];
        rec3_t *swap = cur; cur = alt; alt = swap;
        shift += widths[p];
    }
    const rec3_t *recs = cur;

    /* Branchless segmented reduce: records are in full key order with
     * original row order preserved per key. */
    uint32_t prev = recs[0].off;
    double tcp0 = (double)((uint32_t)recs[0].pktcp >> 31);
    double pk0 = (double)(recs[0].pktcp & INT32_MAX);
    out_keys[0] = (int64_t)kmin + prev;
    out_a[0] = tcp0 * pk0;
    out_b[0] = tcp0 * (double)recs[0].by;
    out_c[0] = pk0;
    int64_t nu = 1;
    for (int64_t i = 1; i < n; i++) {
        rec3_t rec = recs[i];
        int fresh = rec.off != prev;
        prev = rec.off;
        nu += fresh;
        int64_t m = nu - 1;
        out_keys[m] = (int64_t)kmin + rec.off;
        double sum_a = out_a[m], sum_b = out_b[m], sum_c = out_c[m];
        sum_a = fresh ? 0.0 : sum_a;
        sum_b = fresh ? 0.0 : sum_b;
        sum_c = fresh ? 0.0 : sum_c;
        double tcp = (double)((uint32_t)rec.pktcp >> 31);
        double pk = (double)(rec.pktcp & INT32_MAX);
        out_a[m] = sum_a + tcp * pk;
        out_b[m] = sum_b + tcp * (double)rec.by;
        out_c[m] = sum_c + pk;
    }

    /* Per-block regroup of the (still unscaled) totals. */
    int64_t prev_blk = out_keys[0] >> block_shift;
    blk_keys[0] = prev_blk;
    blk_vals[0] = out_c[0];
    int64_t nblk = 1;
    for (int64_t i = 1; i < nu; i++) {
        int64_t blk = out_keys[i] >> block_shift;
        int fresh = blk != prev_blk;
        prev_blk = blk;
        nblk += fresh;
        int64_t m = nblk - 1;
        blk_keys[m] = blk;
        double sum = blk_vals[m];
        sum = fresh ? 0.0 : sum;
        blk_vals[m] = sum + out_c[i];
    }
    for (int64_t i = 0; i < nu; i++) {
        out_a[i] *= factor;
        out_b[i] *= factor;
        out_c[i] *= factor;
    }
    for (int64_t i = 0; i < nblk; i++) blk_vals[i] *= factor;
    *nblk_out = nblk;
    return nu;
}

/* Grouped packet sums per src IP plus the per-block regroup (unscaled). */
static int64_t fold1(
    const uint32_t *keys, const int64_t *packets, int64_t n,
    uint32_t kmin, int bits, int64_t block_shift,
    int64_t *out_keys, double *out_a,
    int64_t *blk_keys, double *blk_vals, int64_t *nblk_out,
    rec1_t *bufa, rec1_t *bufb)
{
    *nblk_out = 0;
    if (n == 0) return 0;
    int widths[3];
    int npass = pass_plan(bits, widths);

    int64_t hist[3][MAX_PASS_SLOTS];
    for (int p = 0; p < npass; p++)
        memset(hist[p], 0, sizeof(int64_t) << widths[p]);
    {
        int w0 = widths[0], w1 = widths[1 % npass];
        uint32_t m0 = (1u << w0) - 1, m1 = (1u << w1) - 1;
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = keys[i] - kmin;
            hist[0][u & m0]++;
            if (npass > 1) hist[1][(u >> w0) & m1]++;
            if (npass > 2) hist[2][u >> (w0 + w1)]++;
        }
    }
    for (int p = 0; p < npass; p++) {
        int64_t run = 0;
        for (int64_t b = 0; b < (int64_t)1 << widths[p]; b++) {
            int64_t count = hist[p][b];
            hist[p][b] = run;
            run += count;
        }
    }

    {
        uint32_t mask = (1u << widths[0]) - 1;
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = keys[i] - kmin;
            rec1_t rec;
            rec.off = u;
            rec.pk = (int32_t)packets[i];
            bufa[hist[0][u & mask]++] = rec;
        }
    }
    rec1_t *cur = bufa, *alt = bufb;
    int shift = widths[0];
    for (int p = 1; p < npass; p++) {
        uint32_t mask = (1u << widths[p]) - 1;
        for (int64_t i = 0; i < n; i++)
            alt[hist[p][(cur[i].off >> shift) & mask]++] = cur[i];
        rec1_t *swap = cur; cur = alt; alt = swap;
        shift += widths[p];
    }
    const rec1_t *recs = cur;

    uint32_t prev = recs[0].off;
    out_keys[0] = (int64_t)kmin + prev;
    out_a[0] = (double)recs[0].pk;
    int64_t nu = 1;
    for (int64_t i = 1; i < n; i++) {
        rec1_t rec = recs[i];
        int fresh = rec.off != prev;
        prev = rec.off;
        nu += fresh;
        int64_t m = nu - 1;
        out_keys[m] = (int64_t)kmin + rec.off;
        double sum = out_a[m];
        sum = fresh ? 0.0 : sum;
        out_a[m] = sum + (double)rec.pk;
    }

    int64_t prev_blk = out_keys[0] >> block_shift;
    blk_keys[0] = prev_blk;
    blk_vals[0] = out_a[0];
    int64_t nblk = 1;
    for (int64_t i = 1; i < nu; i++) {
        int64_t blk = out_keys[i] >> block_shift;
        int fresh = blk != prev_blk;
        prev_blk = blk;
        nblk += fresh;
        int64_t m = nblk - 1;
        blk_keys[m] = blk;
        double sum = blk_vals[m];
        sum = fresh ? 0.0 : sum;
        blk_vals[m] = sum + out_a[i];
    }
    *nblk_out = nblk;
    return nu;
}

/* The fused per-chunk accumulator fold: one call produces all four
 * keyed parts PrefixAccumulator.update() appends for a chunk with no
 * ignored-sender filter.  counts = {n_dst, n_vol, n_src, n_raw}; -1 on
 * 31-bit value overflow (fallback).  acc/seen/touched are scratch for
 * group_sum and unused here (one scratch contract for all entries). */
int64_t fold_chunk(
    const uint32_t *src_ip, const uint32_t *dst_ip, const uint8_t *proto,
    const int64_t *packets, const int64_t *bytes_, int64_t n, double factor,
    int64_t block_shift,
    int64_t *dst_keys, double *dst_tcp_pk, double *dst_tcp_by, double *dst_tot,
    int64_t *vol_keys, double *vol_pk,
    int64_t *src_keys, double *src_pk,
    int64_t *raw_keys, double *raw_pk,
    void *bufa, void *bufb,
    double *acc, uint8_t *seen, uint16_t *touched,
    int64_t *counts)
{
    (void)acc; (void)seen; (void)touched;
    if (n == 0) {
        counts[0] = counts[1] = counts[2] = counts[3] = 0;
        return 0;
    }
    /* Fused scan: both key ranges plus the 31-bit value guard. */
    uint32_t dmin = dst_ip[0], dmax = dst_ip[0];
    uint32_t smin = src_ip[0], smax = src_ip[0];
    for (int64_t i = 0; i < n; i++) {
        uint32_t d = dst_ip[i], s = src_ip[i];
        if (d < dmin) dmin = d;
        if (d > dmax) dmax = d;
        if (s < smin) smin = s;
        if (s > smax) smax = s;
        if ((uint64_t)packets[i] >= INT32_MAX
            || (uint64_t)bytes_[i] >= INT32_MAX)
            return -1;
    }
    int64_t nvol = 0, nraw = 0;
    int64_t ndst = fold3(dst_ip, proto, packets, bytes_, n,
                         dmin, bits_of(dmax - dmin), factor, block_shift,
                         dst_keys, dst_tcp_pk, dst_tcp_by, dst_tot,
                         vol_keys, vol_pk, &nvol,
                         (rec3_t *)bufa, (rec3_t *)bufb);
    if (ndst < 0) return -1;
    int64_t nsrc = fold1(src_ip, packets, n,
                         smin, bits_of(smax - smin), block_shift,
                         src_keys, src_pk, raw_keys, raw_pk, &nraw,
                         (rec1_t *)bufa, (rec1_t *)bufb);
    if (nsrc < 0) return -1;
    counts[0] = ndst;
    counts[1] = nvol;
    counts[2] = nsrc;
    counts[3] = nraw;
    return 0;
}

/* Standalone grouped sums over one i64-keyed part (u32-range keys),
 * accumulating in row order; ncols <= 3.  Used for compacting raw
 * (unsorted) parts.  Returns unique count or -1 when the key range
 * exceeds the partition machinery (caller falls back). */
int64_t group_sum(
    const int64_t *keys, int64_t n, const double *const *cols, int64_t ncols,
    int64_t *out_keys, double **out_cols,
    void *bufa, void *bufb,
    double *acc, uint8_t *seen, uint16_t *touched)
{
    if (n == 0) return 0;
    if (ncols < 1 || ncols > 3) return -1;
    int64_t kmin = keys[0], kmax = keys[0];
    for (int64_t i = 0; i < n; i++) {
        int64_t k = keys[i];
        if (k < kmin) kmin = k;
        if (k > kmax) kmax = k;
    }
    if ((uint64_t)(kmax - kmin) > UINT32_MAX) return -1;

    /* Widened records: i64 key offset + up to three f64 values. */
    typedef struct { uint32_t off; double v[3]; } grec_t;
    grec_t *ba = (grec_t *)bufa, *bb = (grec_t *)bufb;

    int64_t nu = 0, nt = 0, smin = DIRECT_SLOTS, smax = -1;
    int bits = bits_of((uint32_t)(kmax - kmin));

    int64_t h1[RADIX_SLOTS], h2[RADIX_SLOTS];
    const grec_t *recs = NULL;
    if (bits > DIRECT_BITS) {
        int part_bits = bits - DIRECT_BITS;
        int d1 = part_bits > RADIX_BITS ? RADIX_BITS : part_bits;
        int d2 = part_bits - d1;
        uint32_t mask1 = (1u << d1) - 1;
        int shift2 = DIRECT_BITS + d1;
        memset(h1, 0, sizeof(int64_t) * (size_t)(1 << d1));
        if (d2) memset(h2, 0, sizeof(int64_t) * (size_t)(1 << d2));
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = (uint32_t)(keys[i] - kmin);
            h1[(u >> DIRECT_BITS) & mask1]++;
            if (d2) h2[u >> shift2]++;
        }
        int64_t run = 0;
        for (int64_t b = 0; b < (1 << d1); b++) {
            int64_t count = h1[b];
            h1[b] = run;
            run += count;
        }
        if (d2) {
            run = 0;
            for (int64_t b = 0; b < (1 << d2); b++) {
                int64_t count = h2[b];
                h2[b] = run;
                run += count;
            }
        }
        for (int64_t i = 0; i < n; i++) {
            uint32_t u = (uint32_t)(keys[i] - kmin);
            grec_t rec;
            rec.off = u;
            for (int64_t c = 0; c < ncols; c++) rec.v[c] = cols[c][i];
            ba[h1[(u >> DIRECT_BITS) & mask1]++] = rec;
        }
        recs = ba;
        if (d2) {
            for (int64_t i = 0; i < n; i++) {
                uint32_t u = ba[i].off;
                bb[h2[u >> shift2]++] = ba[i];
            }
            recs = bb;
        }
    }

    if (recs == NULL) {
        /* Direct path: accumulate straight from the columns. */
        for (int64_t i = 0; i < n; i++) {
            int64_t s = keys[i] - kmin;
            if (!seen[s]) {
                seen[s] = 1;
                touched[nt++] = (uint16_t)s;
                for (int64_t c = 0; c < ncols; c++) acc[3 * s + c] = 0.0;
                if (s < smin) smin = s;
                if (s > smax) smax = s;
            }
            for (int64_t c = 0; c < ncols; c++) acc[3 * s + c] += cols[c][i];
        }
        /* Emit (ascending). */
        int64_t span = smax - smin + 1;
        if (nt * nt < span) {
            for (int64_t i = 1; i < nt; i++) {
                uint16_t slot = touched[i];
                int64_t j = i - 1;
                while (j >= 0 && touched[j] > slot) {
                    touched[j + 1] = touched[j];
                    j--;
                }
                touched[j + 1] = slot;
            }
            for (int64_t i = 0; i < nt; i++) {
                int64_t s = touched[i];
                out_keys[nu] = kmin + s;
                for (int64_t c = 0; c < ncols; c++)
                    out_cols[c][nu] = acc[3 * s + c];
                seen[s] = 0;
                nu++;
            }
        } else {
            for (int64_t s = smin; s <= smax; s++) {
                if (!seen[s]) continue;
                out_keys[nu] = kmin + s;
                for (int64_t c = 0; c < ncols; c++)
                    out_cols[c][nu] = acc[3 * s + c];
                seen[s] = 0;
                nu++;
            }
        }
        return nu;
    }

    uint32_t cur = recs[0].off >> DIRECT_BITS;
    for (int64_t i = 0; i <= n; i++) {
        uint32_t g = i < n ? recs[i].off >> DIRECT_BITS : cur + 1;
        if (g != cur) {
            int64_t span = smax - smin + 1;
            int64_t base = kmin + ((int64_t)cur << DIRECT_BITS);
            if (nt * nt < span) {
                for (int64_t a = 1; a < nt; a++) {
                    uint16_t slot = touched[a];
                    int64_t j = a - 1;
                    while (j >= 0 && touched[j] > slot) {
                        touched[j + 1] = touched[j];
                        j--;
                    }
                    touched[j + 1] = slot;
                }
                for (int64_t a = 0; a < nt; a++) {
                    int64_t s = touched[a];
                    out_keys[nu] = base + s;
                    for (int64_t c = 0; c < ncols; c++)
                        out_cols[c][nu] = acc[3 * s + c];
                    seen[s] = 0;
                    nu++;
                }
            } else {
                for (int64_t s = smin; s <= smax; s++) {
                    if (!seen[s]) continue;
                    out_keys[nu] = base + s;
                    for (int64_t c = 0; c < ncols; c++)
                        out_cols[c][nu] = acc[3 * s + c];
                    seen[s] = 0;
                    nu++;
                }
            }
            nt = 0; smin = DIRECT_SLOTS; smax = -1;
            if (i == n) break;
            cur = g;
        }
        int64_t s = recs[i].off & DIRECT_MASK;
        if (!seen[s]) {
            seen[s] = 1;
            touched[nt++] = (uint16_t)s;
            for (int64_t c = 0; c < ncols; c++) acc[3 * s + c] = 0.0;
            if (s < smin) smin = s;
            if (s > smax) smax = s;
        }
        for (int64_t c = 0; c < ncols; c++) acc[3 * s + c] += recs[i].v[c];
    }
    return nu;
}

/* Two-way merge of sorted-unique keyed parts, summing equal keys as
 * left + right — the float operation order np.bincount applies to the
 * concatenated parts.  Returns the merged length. */
int64_t merge_sorted(
    const int64_t *ka, const double *const *va, int64_t na,
    const int64_t *kb, const double *const *vb, int64_t nb,
    int64_t ncols, int64_t *ko, double **vo)
{
    int64_t i = 0, j = 0, m = 0;
    while (i < na && j < nb) {
        int64_t a = ka[i], b = kb[j];
        if (a < b) {
            ko[m] = a;
            for (int64_t c = 0; c < ncols; c++) vo[c][m] = va[c][i];
            i++;
        } else if (b < a) {
            ko[m] = b;
            for (int64_t c = 0; c < ncols; c++) vo[c][m] = vb[c][j];
            j++;
        } else {
            ko[m] = a;
            for (int64_t c = 0; c < ncols; c++)
                vo[c][m] = va[c][i] + vb[c][j];
            i++;
            j++;
        }
        m++;
    }
    while (i < na) {
        ko[m] = ka[i];
        for (int64_t c = 0; c < ncols; c++) vo[c][m] = va[c][i];
        i++;
        m++;
    }
    while (j < nb) {
        ko[m] = kb[j];
        for (int64_t c = 0; c < ncols; c++) vo[c][m] = vb[c][j];
        j++;
        m++;
    }
    return m;
}

/* K-way merge of sorted-unique keyed parts, accumulating each key's
 * sum over parts in part order starting from 0.0 — the float operation
 * order np.bincount applies to the concatenated parts.  One sequential
 * pass over every part; no sort.  `part_cols` holds nparts*ncols
 * column pointers, part-major.  Returns the merged length, or -1 when
 * nparts exceeds the head-index capacity (caller falls back). */
int64_t merge_k(
    const int64_t *const *part_keys, const double *const *part_cols,
    const int64_t *part_lens, int64_t nparts, int64_t ncols,
    int64_t *ko, double **vo)
{
    int64_t idx[64];
    if (nparts > 64) return -1;
    for (int64_t p = 0; p < nparts; p++) idx[p] = 0;
    int64_t m = 0;
    for (;;) {
        int64_t best = 0;
        int live = 0;
        for (int64_t p = 0; p < nparts; p++) {
            if (idx[p] < part_lens[p]) {
                int64_t k = part_keys[p][idx[p]];
                if (!live || k < best) best = k;
                live = 1;
            }
        }
        if (!live) break;
        ko[m] = best;
        for (int64_t c = 0; c < ncols; c++) vo[c][m] = 0.0;
        for (int64_t p = 0; p < nparts; p++) {
            int64_t i = idx[p];
            if (i < part_lens[p] && part_keys[p][i] == best) {
                const double *const *cols = part_cols + p * ncols;
                for (int64_t c = 0; c < ncols; c++) vo[c][m] += cols[c][i];
                idx[p] = i + 1;
            }
        }
        m++;
    }
    return m;
}

/* values[i] in sorted table?  (np.searchsorted probe, fused). */
void member_mask(
    const int64_t *values, int64_t n, const int64_t *table, int64_t m,
    uint8_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        int64_t lo = 0, hi = m;
        while (lo < hi) {
            int64_t mid = (lo + hi) >> 1;
            if (table[mid] < v) lo = mid + 1;
            else hi = mid;
        }
        out[i] = lo < m && table[lo] == v;
    }
}

/* blocks[i] inside any [starts, ends) interval (sorted starts with the
 * cumulative-max end invariant — see repro.net.trie). */
void interval_mask(
    const int64_t *starts, const int64_t *ends, int64_t m,
    const int64_t *blocks, int64_t n, uint8_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t b = blocks[i];
        /* upper_bound(starts, b) - 1 */
        int64_t lo = 0, hi = m;
        while (lo < hi) {
            int64_t mid = (lo + hi) >> 1;
            if (starts[mid] <= b) lo = mid + 1;
            else hi = mid;
        }
        out[i] = lo > 0 && b <= ends[lo - 1];
    }
}
