"""Per-prefix confidence scoring for inferred meta-telescope prefixes.

The paper stresses conservative, low-false-positive inference and
recommends multi-day confirmation before acting on a prefix (§5, §7.1).
An operator serving the list onward ("information as a service") wants
that materialised as a *score* per prefix, not a binary list.  The
score here combines the three evidence dimensions the paper reasons
about:

* **observation depth** — how many distinct addresses of the /24 were
  seen (all surviving); one lucky SYN is weaker evidence than thirty
  clean addresses;
* **traffic margin** — how far the block's estimated volume sits below
  the asymmetric-routing threshold (borderline blocks are risky);
* **recurrence** — on how many individual days the block was inferred
  dark (the §7.1 stability recommendation).

Each dimension maps to [0, 1]; the score is their weighted mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import PipelineConfig
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class ConfidenceWeights:
    """Relative weights of the three evidence dimensions."""

    observation: float = 0.4
    margin: float = 0.25
    recurrence: float = 0.35

    def normalised(self) -> tuple[float, float, float]:
        """The weights scaled to sum to one."""
        total = self.observation + self.margin + self.recurrence
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return (
            self.observation / total,
            self.margin / total,
            self.recurrence / total,
        )


@dataclass(frozen=True)
class ConfidenceScores:
    """Scores aligned with ``blocks`` (all in [0, 1])."""

    blocks: np.ndarray
    score: np.ndarray
    observation: np.ndarray
    margin: np.ndarray
    recurrence: np.ndarray

    def top(self, count: int) -> list[tuple[int, float]]:
        """The highest-confidence prefixes."""
        order = np.argsort(-self.score, kind="stable")[:count]
        return [(int(self.blocks[i]), float(self.score[i])) for i in order]

    def above(self, threshold: float) -> np.ndarray:
        """Blocks whose score meets ``threshold``."""
        return self.blocks[self.score >= threshold]


def score_prefixes(
    dark_blocks: np.ndarray,
    views: list[VantageDayView],
    daily_dark: dict[int, np.ndarray],
    config: PipelineConfig | None = None,
    weights: ConfidenceWeights | None = None,
    saturation_ips: int = 16,
) -> ConfidenceScores:
    """Score each inferred prefix on the three evidence dimensions.

    ``views`` are the views the inference ran on; ``daily_dark`` maps
    each day to that day's independent dark set (for recurrence).
    ``saturation_ips`` is the observed-address count at which the
    observation dimension saturates at 1.0.
    """
    if config is None:
        config = PipelineConfig()
    if weights is None:
        weights = ConfidenceWeights()
    blocks = np.unique(np.asarray(dark_blocks, dtype=np.int64))

    # Observation depth: pooled distinct dst IPs per block.
    ip_sets: dict[int, set[int]] = {}
    volume_by_day: dict[int, dict[int, float]] = {}
    for view in views:
        agg = view.aggregates()
        family = view.flows.address_family
        mask = np.isin(family.block_of(agg.dst_ips), blocks)
        for ip in agg.dst_ips[mask].tolist():
            ip_sets.setdefault(family.block_of_key(ip), set()).add(ip)
        vmask = np.isin(agg.blocks, blocks)
        day_volume = volume_by_day.setdefault(view.day, {})
        estimates = agg.total_packets() * view.sampling_factor
        for block, estimate in zip(
            agg.blocks[vmask].tolist(), estimates[vmask].tolist()
        ):
            day_volume[block] = day_volume.get(block, 0.0) + estimate

    observation = np.array(
        [
            min(len(ip_sets.get(int(block), ())), saturation_ips) / saturation_ips
            for block in blocks
        ]
    )

    # Volume margin: median daily estimate relative to the threshold.
    threshold = config.volume_threshold_pkts_day
    margin = np.empty(len(blocks))
    for i, block in enumerate(blocks):
        daily = [
            volume.get(int(block), 0.0) for volume in volume_by_day.values()
        ]
        median = float(np.median(daily)) if daily else 0.0
        margin[i] = max(0.0, 1.0 - median / threshold) if threshold else 0.0

    # Recurrence: share of days independently inferring the block dark.
    num_days = max(len(daily_dark), 1)
    recurrence = np.zeros(len(blocks))
    for daily in daily_dark.values():
        recurrence += np.isin(blocks, daily)
    recurrence /= num_days

    w_obs, w_margin, w_rec = weights.normalised()
    score = w_obs * observation + w_margin * margin + w_rec * recurrence
    return ConfidenceScores(
        blocks=blocks,
        score=score,
        observation=observation,
        margin=margin,
        recurrence=recurrence,
    )
