"""One engine, many frontends: planned execution with a trace spine.

Every way of running the seven-step inference — the batch facade
(:class:`~repro.core.metatelescope.MetaTelescope`), the rolling-window
online loop, federated member classification, the process-pool fan-out
and the CLI — used to re-resolve the same knobs (``chunk_size``,
``workers``, ``compact_every``) and report timings in its own shape.
This module centralises all of that:

* :func:`resolve_execution_knobs` — the **single** knob-resolution
  point (auto chunk sizing, worker capping, compaction cadence).  No
  facade resolves knobs on its own anymore.
* :class:`ExecutionPlanner` — inspects the views (row counts, archive
  vs in-memory storage, CPU count, optional memory budget) and emits a
  declarative, inspectable :class:`ExecutionPlan`: execution mode
  (``serial`` | ``chunked`` | ``parallel``), per-view chunk resolution,
  deterministic shard layout, compaction cadence, cache policy and a
  peak-memory estimate.  A plan is data — print it, serialise it,
  compare it — and ``python -m repro plan`` does exactly that without
  executing anything.
* :class:`RunContext` — threaded through every layer; carries the
  resolved knobs, the plan, seeded RNG handles, the fault plan, and
  the **observability spine**: structured per-stage / per-chunk /
  per-worker :class:`ExecutionEvent` records emitted to pluggable
  sinks (:class:`MemorySink` for tests and facades,
  :class:`JsonlSink` for trace files, :class:`TableSink` for the CLI).
* :func:`execute_plan` — the one fold path.  Serial, chunked and
  parallel execution all run through it; classification downstream is
  bit-identical for every plan by the accumulator's associativity.

The legacy reporting shapes (:class:`~repro.core.stages.StageTiming`
rows, the CLI timing table) are *derived* from the event stream in one
place (:meth:`RunContext.stage_timings`), so parallel fan-out rows and
online carry-day rows can no longer disagree about their format.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy as np

from repro.core.accum import (
    DEFAULT_COMPACT_EVERY,
    PrefixAccumulator,
    adaptive_chunk_rows,
    resolve_chunk_size,
)
from repro.core.kernels import get_kernel, resolve_kernel_name
from repro.core.stages import StageTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.vantage.sampling import VantageDayView

#: Rough memory cost of one in-flight flow record (the nine FlowTable
#: columns) — used only for the plan's peak-memory *estimate*.
BYTES_PER_ROW = 42

#: Version stamped into every trace event (bump on schema changes).
TRACE_VERSION = 1

#: Every key a serialised trace event carries, in emission order.
TRACE_FIELDS = (
    "v",
    "kind",
    "name",
    "scope",
    "started",
    "seconds",
    "rows_in",
    "rows_out",
    "bytes",
    "peak_rss_mib",
    "cache_hits",
    "cache_misses",
    "quarantined",
    "meta",
)

#: Event kinds that map onto legacy :class:`StageTiming` rows.
_TIMING_KINDS = frozenset({"worker", "ipc", "merge", "stage"})


def default_workers() -> int:
    """Worker count matching the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _peak_rss_mib() -> float | None:
    """Process high-water RSS in MiB (cheap; None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak_kib / 1024.0


# ---------------------------------------------------------------------------
# Knob resolution (the one copy)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ExecutionKnobs:
    """The resolved execution knobs every layer reads from.

    ``chunk_size`` keeps the public tri-state form (``None`` | int |
    ``"auto"``) because chunk rows resolve *per view*;
    ``workers`` is always a concrete count >= 1; ``kernel`` is always
    a concrete backend name (``auto`` resolves at knob time).
    """

    chunk_size: int | str | None
    workers: int
    compact_every: int
    kernel: str = "numpy"

    def parallel(self) -> bool:
        """Whether this knob set fans out across a process pool."""
        return self.workers > 1


def resolve_execution_knobs(
    chunk_size: int | str | None = None,
    workers: int | None = None,
    compact_every: int | None = None,
    kernel: str | None = None,
    *,
    cpus: int | None = None,
) -> ExecutionKnobs:
    """Resolve the public execution knobs once, for every frontend.

    * ``workers``: ``None``/``1`` → serial (1); ``0`` → one per
      available CPU (the capped auto setting); an explicit count is
      honoured literally — oversubscription is the operator's call,
      and classification is identical at any count regardless.
    * ``chunk_size``: validated tri-state (``None`` | int >= 1 |
      ``"auto"``); per-view rows resolve later against each view's
      ``num_rows`` via :func:`~repro.core.accum.resolve_chunk_size`.
    * ``compact_every``: accumulator compaction cadence (default
      :data:`~repro.core.accum.DEFAULT_COMPACT_EVERY`).
    * ``kernel``: compute backend (``numpy`` | ``native`` | ``auto``;
      default ``auto``).  Resolved here to a concrete backend name via
      :func:`~repro.core.kernels.resolve_kernel_name` — ``auto`` plans
      ``native`` only when a provider is actually available.
      Classification is bit-identical either way.
    """
    if cpus is None:
        cpus = default_workers()
    if workers is None:
        workers = 1
    elif workers == 0:
        workers = cpus
    elif workers < 0:
        raise ValueError(f"workers must be >= 0: {workers}")

    if isinstance(chunk_size, str):
        # Normalise through the shared validator (raises on junk).
        resolve_chunk_size(chunk_size, 0)
    elif chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1: {chunk_size}")

    if compact_every is None:
        compact_every = DEFAULT_COMPACT_EVERY
    elif compact_every < 2:
        raise ValueError(f"compact_every must be >= 2: {compact_every}")
    return ExecutionKnobs(
        chunk_size=chunk_size,
        workers=workers,
        compact_every=compact_every,
        kernel=resolve_kernel_name(kernel),
    )


# ---------------------------------------------------------------------------
# The declarative plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ViewSpec:
    """What the planner knows about one vantage-day view."""

    vantage: str
    day: int
    num_rows: int
    #: ``"archive"`` (memory-mapped flowpack) or ``"memory"``.
    storage: str
    sampling_factor: float
    #: Resolved ingestion chunk rows for this view (None: whole view).
    chunk_rows: int | None


@dataclass(frozen=True)
class ExecutionPlan:
    """A declarative, inspectable execution plan.

    The plan is pure data: building it touches no flow payload (row
    counts come from ``num_rows``, which archive-backed views answer
    from segment headers), and executing it is
    :func:`execute_plan`'s job.  Identical classification across plans
    is the engine's core invariant, pinned by
    ``tests/core/test_engine.py``.
    """

    #: ``"serial"`` | ``"chunked"`` | ``"parallel"``.
    mode: str
    views: tuple[ViewSpec, ...]
    knobs: ExecutionKnobs
    #: Per-worker shard buckets (``()`` outside parallel mode); each
    #: shard is (view index, first row, one-past-last row).
    shards: tuple[tuple[tuple[int, int, int], ...], ...] = ()
    #: ``"memmap"`` when archive-backed views stream off the page
    #: cache, ``"in-memory"`` otherwise.
    cache_policy: str = "in-memory"
    #: Estimated coordinator-side peak of the fold (MiB).
    est_peak_mib: float = 0.0

    @property
    def workers(self) -> int:
        """Concrete worker count (1 outside parallel mode)."""
        return self.knobs.workers if self.mode == "parallel" else 1

    def total_rows(self) -> int:
        """Flow rows the plan will fold."""
        return sum(view.num_rows for view in self.views)

    def describe_rows(self) -> list[tuple[str, str]]:
        """(field, value) rows for the CLI ``plan`` renderer."""
        storages = {view.storage for view in self.views}
        chunk_rows = sorted(
            {view.chunk_rows for view in self.views if view.chunk_rows},
        )
        return [
            ("mode", self.mode),
            ("views", f"{len(self.views)}"),
            ("rows", f"{self.total_rows():,}"),
            ("storage", ", ".join(sorted(storages)) or "-"),
            ("workers", f"{self.workers}"),
            (
                "shards",
                f"{sum(len(bucket) for bucket in self.shards)}"
                if self.shards
                else "-",
            ),
            (
                "chunk rows",
                ", ".join(f"{rows:,}" for rows in chunk_rows) or "whole view",
            ),
            ("compact every", f"{self.knobs.compact_every} parts"),
            ("kernel", self.knobs.kernel),
            ("cache policy", self.cache_policy),
            ("est. peak", f"{self.est_peak_mib:.1f} MiB"),
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (trace events embed this)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "total_rows": self.total_rows(),
            "cache_policy": self.cache_policy,
            "est_peak_mib": round(self.est_peak_mib, 3),
            "compact_every": self.knobs.compact_every,
            "kernel": self.knobs.kernel,
            "views": [
                {
                    "vantage": view.vantage,
                    "day": view.day,
                    "num_rows": view.num_rows,
                    "storage": view.storage,
                    "chunk_rows": view.chunk_rows,
                }
                for view in self.views
            ],
            "shards": [list(map(list, bucket)) for bucket in self.shards],
        }


def view_spec(
    view: "VantageDayView", chunk_size: int | str | None
) -> ViewSpec:
    """Planner-side descriptor of one view (no payload touched)."""
    rows = getattr(view, "num_rows", None)
    if rows is None:  # pragma: no cover - every view exposes num_rows
        rows = len(view.flows)
    return ViewSpec(
        vantage=view.vantage,
        day=view.day,
        num_rows=int(rows),
        storage=getattr(view, "storage", "memory"),
        sampling_factor=float(view.sampling_factor),
        chunk_rows=resolve_chunk_size(chunk_size, rows),
    )


@dataclass(frozen=True, slots=True)
class ExecutionPlanner:
    """Turns views + knobs (+ machine facts) into an ExecutionPlan.

    The planner is pure: the same views, knobs, and machine facts
    always yield the same plan, so plans can be printed, diffed and
    golden-tested.  ``memory_budget_mib`` lets an operator cap the
    estimated fold peak: when the whole-view working set would exceed
    the budget and no explicit ``chunk_size`` was given, the planner
    switches to adaptive chunking on its own.
    """

    cpus: int = field(default_factory=default_workers)
    memory_budget_mib: float | None = None

    def plan(
        self,
        views: Sequence["VantageDayView"],
        chunk_size: int | str | None = None,
        workers: int | None = None,
        compact_every: int | None = None,
        mode: str | None = None,
        kernel: str | None = None,
    ) -> ExecutionPlan:
        """Build the plan for one fold (``mode`` forces the decision).

        Without ``mode`` the planner picks: ``parallel`` when the
        resolved worker count exceeds 1 and there are views to shard,
        else ``chunked`` when any view resolves a bounded chunk size,
        else ``serial``.
        """
        knobs = resolve_execution_knobs(
            chunk_size, workers, compact_every, kernel, cpus=self.cpus
        )
        chunk_size = knobs.chunk_size
        if (
            chunk_size is None
            and self.memory_budget_mib is not None
            and views
        ):
            largest = max(
                int(getattr(view, "num_rows", 0) or 0) for view in views
            )
            if largest * BYTES_PER_ROW / 2**20 > self.memory_budget_mib:
                # Cap in-flight rows so one chunk fits the budget.
                chunk_size = max(
                    1, int(self.memory_budget_mib * 2**20 / BYTES_PER_ROW)
                )
        specs = tuple(view_spec(view, chunk_size) for view in views)

        if mode is None:
            if knobs.parallel() and specs:
                mode = "parallel"
            elif any(spec.chunk_rows is not None for spec in specs):
                mode = "chunked"
            else:
                mode = "serial"
        elif mode not in ("serial", "chunked", "parallel"):
            raise ValueError(f"unknown execution mode: {mode!r}")
        if mode != "parallel":
            knobs = ExecutionKnobs(
                chunk_size=chunk_size,
                workers=1,
                compact_every=knobs.compact_every,
                kernel=knobs.kernel,
            )
        else:
            knobs = ExecutionKnobs(
                chunk_size=chunk_size,
                workers=max(2, knobs.workers) if specs else 1,
                compact_every=knobs.compact_every,
                kernel=knobs.kernel,
            )

        shards: tuple[tuple[tuple[int, int, int], ...], ...] = ()
        if mode == "parallel" and specs:
            from repro.core.parallel import shard_views

            shards = tuple(
                tuple(bucket)
                for bucket in shard_views(list(views), knobs.workers)
            )
        return ExecutionPlan(
            mode=mode,
            views=specs,
            knobs=knobs,
            shards=shards,
            cache_policy=(
                "memmap"
                if any(spec.storage == "archive" for spec in specs)
                else "in-memory"
            ),
            est_peak_mib=self._estimate_peak_mib(specs, mode, knobs),
        )

    def _estimate_peak_mib(
        self,
        specs: tuple[ViewSpec, ...],
        mode: str,
        knobs: ExecutionKnobs,
    ) -> float:
        """Coordinator-side working-set estimate of the fold (MiB).

        Archive-backed views stream off the memmap, so only the
        in-flight chunk counts; in-memory views are already resident,
        so the whole view does.  Parallel mode adds one wire-form
        partial per worker, approximated by the distinct-key share of
        the rows.  An estimate, not a measurement — the trace's
        ``peak_rss_mib`` field is the measurement.
        """
        peak_rows = 0
        for spec in specs:
            in_flight = (
                min(spec.chunk_rows or spec.num_rows, spec.num_rows)
                if spec.storage == "archive" or spec.chunk_rows
                else spec.num_rows
            )
            peak_rows = max(peak_rows, in_flight)
        total = sum(spec.num_rows for spec in specs)
        estimate = peak_rows * BYTES_PER_ROW
        # Accumulator keys are a fraction of rows; wire-form partials
        # (one per worker) dominate the parallel coordinator.
        accumulator = total * BYTES_PER_ROW * 0.25
        if mode == "parallel":
            accumulator *= 1 + min(knobs.workers, 4) * 0.25
        return (estimate + accumulator) / 2**20


# ---------------------------------------------------------------------------
# The observability spine: events and sinks
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ExecutionEvent:
    """One structured record on the trace spine."""

    #: ``plan`` | ``view`` | ``chunk`` | ``worker`` | ``ipc`` |
    #: ``merge`` | ``stage`` | ``cache`` | ``generate`` | ``member``
    #: | ``quarantine`` — open set; sinks must pass unknown kinds on.
    kind: str
    name: str
    #: Facade-assigned grouping label (e.g. ``fold`` / ``window``).
    scope: str = "run"
    #: Wall-clock start (``time.time()``), for cross-process ordering.
    started: float = 0.0
    seconds: float = 0.0
    rows_in: int | None = None
    rows_out: int | None = None
    bytes: int | None = None
    peak_rss_mib: float | None = None
    cache_hits: int | None = None
    cache_misses: int | None = None
    quarantined: int | None = None
    meta: Mapping[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        """The serialised trace form (all TRACE_FIELDS, nulls kept)."""
        return {
            "v": TRACE_VERSION,
            "kind": self.kind,
            "name": self.name,
            "scope": self.scope,
            "started": self.started,
            "seconds": self.seconds,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "bytes": self.bytes,
            "peak_rss_mib": self.peak_rss_mib,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "quarantined": self.quarantined,
            "meta": dict(self.meta) if self.meta is not None else None,
        }


class MemorySink:
    """In-memory sink (tests, and the facades' timing derivation)."""

    def __init__(self) -> None:
        self.events: list[ExecutionEvent] = []

    def emit(self, event: ExecutionEvent) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonlSink:
    """Appends one JSON object per event to a trace file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None

    def emit(self, event: ExecutionEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        json.dump(event.to_json(), self._handle)
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TableSink:
    """Collects timing rows and renders the CLI table on demand."""

    def __init__(self) -> None:
        self._rows: list[tuple[str, str, object]] = []

    def emit(self, event: ExecutionEvent) -> None:
        if event.kind in _TIMING_KINDS:
            self._rows.append(
                (
                    event.name,
                    f"{event.seconds * 1e3:.2f}",
                    event.rows_out if event.rows_out is not None else "-",
                )
            )

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def render(self) -> str:
        """The stage-timing table (empty string when nothing timed)."""
        if not self._rows:
            return ""
        from repro.reporting.tables import format_table

        return format_table(["stage", "ms", "surviving"], self._rows)


# ---------------------------------------------------------------------------
# RunContext
# ---------------------------------------------------------------------------


@dataclass
class RunContext:
    """Everything one execution carries through every layer.

    A context owns a private :class:`MemorySink` (so the facades can
    always derive their legacy timing shapes) plus any caller-supplied
    sinks, the resolved knobs, the plan being executed, a seeded RNG
    handle, and the active fault plan.  It is cheap to construct —
    facades make one per run when the caller does not pass one.
    """

    knobs: ExecutionKnobs = field(
        default_factory=lambda: resolve_execution_knobs()
    )
    plan: ExecutionPlan | None = None
    sinks: tuple = ()
    seed: int | None = None
    fault_plan: "FaultPlan | None" = None
    scope: str = "run"
    _memory: MemorySink = field(default_factory=MemorySink, repr=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)

    @property
    def rng(self) -> np.random.Generator:
        """Seeded RNG handle (stable per context)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
        return self._rng

    # -- emission ------------------------------------------------------

    def emit(
        self,
        kind: str,
        name: str,
        seconds: float = 0.0,
        *,
        started: float | None = None,
        rows_in: int | None = None,
        rows_out: int | None = None,
        bytes: int | None = None,
        peak_rss_mib: float | None = None,
        cache_hits: int | None = None,
        cache_misses: int | None = None,
        quarantined: int | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> ExecutionEvent:
        """Emit one event to the private and every attached sink."""
        event = ExecutionEvent(
            kind=kind,
            name=name,
            scope=self.scope,
            started=time.time() - seconds if started is None else started,
            seconds=seconds,
            rows_in=rows_in,
            rows_out=rows_out,
            bytes=bytes,
            peak_rss_mib=peak_rss_mib,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            quarantined=quarantined,
            meta=meta,
        )
        self._memory.emit(event)
        for sink in self.sinks:
            sink.emit(event)
        return event

    @contextmanager
    def timed(self, kind: str, name: str, **counters: Any) -> Iterator[None]:
        """Time a block and emit one event on exit."""
        wall = time.time()
        started = time.perf_counter()
        yield
        self.emit(
            kind,
            name,
            time.perf_counter() - started,
            started=wall,
            peak_rss_mib=_peak_rss_mib(),
            **counters,
        )

    @contextmanager
    def scoped(self, scope: str) -> Iterator["RunContext"]:
        """Label every event emitted inside the block with ``scope``."""
        previous, self.scope = self.scope, scope
        try:
            yield self
        finally:
            self.scope = previous

    # -- derived views -------------------------------------------------

    def events(
        self, kinds: Sequence[str] | None = None
    ) -> tuple[ExecutionEvent, ...]:
        """Events recorded so far (optionally filtered by kind)."""
        if kinds is None:
            return tuple(self._memory.events)
        wanted = frozenset(kinds)
        return tuple(e for e in self._memory.events if e.kind in wanted)

    def stage_timings(
        self, scopes: Sequence[str] | None = None
    ) -> tuple[StageTiming, ...]:
        """The legacy per-stage rows, derived from the event stream.

        This is the **only** place events become
        :class:`~repro.core.stages.StageTiming` rows, so parallel
        fan-out rows (``fanout[wK]`` / ``ipc`` / ``merge``) and stage
        rows always share one shape no matter which facade ran.
        """
        wanted = None if scopes is None else frozenset(scopes)
        rows = []
        for event in self._memory.events:
            if event.kind not in _TIMING_KINDS:
                continue
            if wanted is not None and event.scope not in wanted:
                continue
            surviving = event.rows_out if event.rows_out is not None else 0
            rows.append(StageTiming(event.name, event.seconds, surviving))
        return tuple(rows)

    def close(self) -> None:
        """Flush and close every attached sink."""
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------------
# The one fold path
# ---------------------------------------------------------------------------


def execute_plan(
    plan: ExecutionPlan,
    views: Sequence["VantageDayView"],
    context: RunContext | None = None,
    *,
    ignore_sources_from_asns: frozenset[int] = frozenset(),
) -> PrefixAccumulator:
    """Fold ``views`` into one accumulator, exactly as planned.

    Serial and chunked modes run in-process, emitting one ``view``
    event per vantage-day and one ``chunk`` event per ingestion chunk;
    parallel mode fans out across the plan's shard buckets and emits
    ``worker`` / ``ipc`` / ``merge`` events from the pool statistics.
    Classification downstream is bit-identical across modes for the
    same views — the engine's core invariant.
    """
    if context is None:
        context = RunContext(knobs=plan.knobs, plan=plan)
    context.plan = plan
    context.emit(
        "plan",
        plan.mode,
        rows_in=plan.total_rows(),
        meta=plan.to_dict(),
    )
    # One "kernel" event per execution: which backend actually computes
    # (``native`` may degrade to reference semantics — the describe()
    # meta carries the provider and the fallback reason, if any).
    kernel = get_kernel(plan.knobs.kernel)
    context.emit("kernel", kernel.name, meta=kernel.describe())
    if plan.mode == "parallel" and plan.views:
        return _execute_parallel(plan, views, context, ignore_sources_from_asns)
    return _execute_serial(plan, views, context, ignore_sources_from_asns, kernel)


def _execute_serial(
    plan: ExecutionPlan,
    views: Sequence["VantageDayView"],
    context: RunContext,
    ignored: frozenset[int],
    kernel,
) -> PrefixAccumulator:
    accumulator = PrefixAccumulator(ignored, plan.knobs.compact_every, kernel)
    for view, spec in zip(views, plan.views):
        wall = time.time()
        started = time.perf_counter()

        def on_chunk(rows: int, seconds: float) -> None:
            context.emit(
                "chunk",
                f"{spec.vantage}@d{spec.day}",
                seconds,
                rows_in=rows,
            )

        accumulator.update_view(
            view, chunk_size=spec.chunk_rows, on_chunk=on_chunk
        )
        context.emit(
            "view",
            f"{spec.vantage}@d{spec.day}",
            time.perf_counter() - started,
            started=wall,
            rows_in=spec.num_rows,
            peak_rss_mib=_peak_rss_mib(),
            meta={"storage": spec.storage},
        )
    return accumulator


def _execute_parallel(
    plan: ExecutionPlan,
    views: Sequence["VantageDayView"],
    context: RunContext,
    ignored: frozenset[int],
) -> PrefixAccumulator:
    from repro.core.parallel import parallel_accumulate_views

    accumulator, stats = parallel_accumulate_views(
        views,
        ignore_sources_from_asns=ignored,
        workers=plan.knobs.workers,
        chunk_size=plan.knobs.chunk_size,
        buckets=[list(bucket) for bucket in plan.shards] or None,
        kernel=plan.knobs.kernel,
    )
    emit_parallel_events(context, stats)
    return accumulator


def emit_parallel_events(context: RunContext, stats) -> None:
    """Translate a pool's :class:`ParallelStats` onto the spine.

    One ``worker`` event per worker report (named ``fanout[wK]`` so the
    derived timing rows keep their historical names), one ``ipc`` and
    one ``merge`` event.  Serial short-circuits (``mode == "serial"``)
    emit nothing — a serial fold has no fan-out rows, matching the
    historical tables.
    """
    if stats is None or stats.mode == "serial":
        return
    for report in stats.reports:
        context.emit(
            "worker",
            f"fanout[w{report.index}]",
            report.fold_seconds,
            rows_in=report.rows,
            rows_out=report.rows,
            meta={"shards": report.shards, "mode": stats.mode},
        )
    context.emit(
        "ipc", "ipc", stats.ipc_seconds(), rows_out=stats.partials
    )
    context.emit(
        "merge", "merge", stats.merge_seconds, rows_out=stats.partials
    )


# ---------------------------------------------------------------------------
# Trace validation (the golden schema)
# ---------------------------------------------------------------------------

#: Field -> accepted JSON types for one trace event object.
TRACE_SCHEMA: dict[str, tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "name": (str,),
    "scope": (str,),
    "started": (int, float),
    "seconds": (int, float),
    "rows_in": (int, type(None)),
    "rows_out": (int, type(None)),
    "bytes": (int, type(None)),
    "peak_rss_mib": (int, float, type(None)),
    "cache_hits": (int, type(None)),
    "cache_misses": (int, type(None)),
    "quarantined": (int, type(None)),
    "meta": (dict, type(None)),
}


def validate_trace_event(obj: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` when one trace object violates the schema."""
    if set(obj) != set(TRACE_FIELDS):
        missing = set(TRACE_FIELDS) - set(obj)
        extra = set(obj) - set(TRACE_FIELDS)
        raise ValueError(
            f"trace event keys mismatch: missing={sorted(missing)} "
            f"extra={sorted(extra)}"
        )
    for name, types in TRACE_SCHEMA.items():
        value = obj[name]
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError(
                f"trace field {name!r} has {type(value).__name__} "
                f"({value!r}); expected {[t.__name__ for t in types]}"
            )
    if obj["v"] != TRACE_VERSION:
        raise ValueError(f"unsupported trace version: {obj['v']!r}")
    if obj["seconds"] < 0:
        raise ValueError(f"negative duration: {obj['seconds']!r}")


def validate_trace_file(path: str | Path) -> int:
    """Validate a JSONL trace; returns the number of events checked."""
    count = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from error
            try:
                validate_trace_event(obj)
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: {error}") from error
            count += 1
    if count == 0:
        raise ValueError(f"{path}: trace contains no events")
    return count
